file(REMOVE_RECURSE
  "CMakeFiles/roclk_sensor.dir/tdc.cpp.o"
  "CMakeFiles/roclk_sensor.dir/tdc.cpp.o.d"
  "CMakeFiles/roclk_sensor.dir/thermometer.cpp.o"
  "CMakeFiles/roclk_sensor.dir/thermometer.cpp.o.d"
  "libroclk_sensor.a"
  "libroclk_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
