file(REMOVE_RECURSE
  "libroclk_sensor.a"
)
