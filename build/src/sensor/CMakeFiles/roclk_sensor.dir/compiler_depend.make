# Empty compiler generated dependencies file for roclk_sensor.
# This may be replaced when dependencies are built.
