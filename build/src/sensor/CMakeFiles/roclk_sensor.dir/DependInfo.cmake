
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/tdc.cpp" "src/sensor/CMakeFiles/roclk_sensor.dir/tdc.cpp.o" "gcc" "src/sensor/CMakeFiles/roclk_sensor.dir/tdc.cpp.o.d"
  "/root/repo/src/sensor/thermometer.cpp" "src/sensor/CMakeFiles/roclk_sensor.dir/thermometer.cpp.o" "gcc" "src/sensor/CMakeFiles/roclk_sensor.dir/thermometer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/roclk_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
