# Empty compiler generated dependencies file for roclk_chip.
# This may be replaced when dependencies are built.
