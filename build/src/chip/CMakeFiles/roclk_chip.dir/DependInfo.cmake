
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chip/clock_domain.cpp" "src/chip/CMakeFiles/roclk_chip.dir/clock_domain.cpp.o" "gcc" "src/chip/CMakeFiles/roclk_chip.dir/clock_domain.cpp.o.d"
  "/root/repo/src/chip/floorplan.cpp" "src/chip/CMakeFiles/roclk_chip.dir/floorplan.cpp.o" "gcc" "src/chip/CMakeFiles/roclk_chip.dir/floorplan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
