file(REMOVE_RECURSE
  "libroclk_chip.a"
)
