file(REMOVE_RECURSE
  "CMakeFiles/roclk_chip.dir/clock_domain.cpp.o"
  "CMakeFiles/roclk_chip.dir/clock_domain.cpp.o.d"
  "CMakeFiles/roclk_chip.dir/floorplan.cpp.o"
  "CMakeFiles/roclk_chip.dir/floorplan.cpp.o.d"
  "libroclk_chip.a"
  "libroclk_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
