# Empty compiler generated dependencies file for roclk_control.
# This may be replaced when dependencies are built.
