file(REMOVE_RECURSE
  "CMakeFiles/roclk_control.dir/calibration.cpp.o"
  "CMakeFiles/roclk_control.dir/calibration.cpp.o.d"
  "CMakeFiles/roclk_control.dir/constraints.cpp.o"
  "CMakeFiles/roclk_control.dir/constraints.cpp.o.d"
  "CMakeFiles/roclk_control.dir/control_block.cpp.o"
  "CMakeFiles/roclk_control.dir/control_block.cpp.o.d"
  "CMakeFiles/roclk_control.dir/iir_control.cpp.o"
  "CMakeFiles/roclk_control.dir/iir_control.cpp.o.d"
  "CMakeFiles/roclk_control.dir/setpoint_governor.cpp.o"
  "CMakeFiles/roclk_control.dir/setpoint_governor.cpp.o.d"
  "CMakeFiles/roclk_control.dir/teatime.cpp.o"
  "CMakeFiles/roclk_control.dir/teatime.cpp.o.d"
  "libroclk_control.a"
  "libroclk_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
