file(REMOVE_RECURSE
  "libroclk_control.a"
)
