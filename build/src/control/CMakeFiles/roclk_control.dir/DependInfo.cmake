
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/calibration.cpp" "src/control/CMakeFiles/roclk_control.dir/calibration.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/calibration.cpp.o.d"
  "/root/repo/src/control/constraints.cpp" "src/control/CMakeFiles/roclk_control.dir/constraints.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/constraints.cpp.o.d"
  "/root/repo/src/control/control_block.cpp" "src/control/CMakeFiles/roclk_control.dir/control_block.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/control_block.cpp.o.d"
  "/root/repo/src/control/iir_control.cpp" "src/control/CMakeFiles/roclk_control.dir/iir_control.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/iir_control.cpp.o.d"
  "/root/repo/src/control/setpoint_governor.cpp" "src/control/CMakeFiles/roclk_control.dir/setpoint_governor.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/setpoint_governor.cpp.o.d"
  "/root/repo/src/control/teatime.cpp" "src/control/CMakeFiles/roclk_control.dir/teatime.cpp.o" "gcc" "src/control/CMakeFiles/roclk_control.dir/teatime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
