file(REMOVE_RECURSE
  "CMakeFiles/roclk_variation.dir/scenario.cpp.o"
  "CMakeFiles/roclk_variation.dir/scenario.cpp.o.d"
  "CMakeFiles/roclk_variation.dir/sources.cpp.o"
  "CMakeFiles/roclk_variation.dir/sources.cpp.o.d"
  "CMakeFiles/roclk_variation.dir/spatial_map.cpp.o"
  "CMakeFiles/roclk_variation.dir/spatial_map.cpp.o.d"
  "CMakeFiles/roclk_variation.dir/variation.cpp.o"
  "CMakeFiles/roclk_variation.dir/variation.cpp.o.d"
  "libroclk_variation.a"
  "libroclk_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
