
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variation/scenario.cpp" "src/variation/CMakeFiles/roclk_variation.dir/scenario.cpp.o" "gcc" "src/variation/CMakeFiles/roclk_variation.dir/scenario.cpp.o.d"
  "/root/repo/src/variation/sources.cpp" "src/variation/CMakeFiles/roclk_variation.dir/sources.cpp.o" "gcc" "src/variation/CMakeFiles/roclk_variation.dir/sources.cpp.o.d"
  "/root/repo/src/variation/spatial_map.cpp" "src/variation/CMakeFiles/roclk_variation.dir/spatial_map.cpp.o" "gcc" "src/variation/CMakeFiles/roclk_variation.dir/spatial_map.cpp.o.d"
  "/root/repo/src/variation/variation.cpp" "src/variation/CMakeFiles/roclk_variation.dir/variation.cpp.o" "gcc" "src/variation/CMakeFiles/roclk_variation.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
