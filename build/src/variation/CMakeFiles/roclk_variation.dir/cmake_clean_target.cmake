file(REMOVE_RECURSE
  "libroclk_variation.a"
)
