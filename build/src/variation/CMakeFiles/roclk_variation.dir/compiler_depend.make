# Empty compiler generated dependencies file for roclk_variation.
# This may be replaced when dependencies are built.
