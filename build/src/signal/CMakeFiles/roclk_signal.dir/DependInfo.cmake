
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/filter.cpp" "src/signal/CMakeFiles/roclk_signal.dir/filter.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/filter.cpp.o.d"
  "/root/repo/src/signal/jury.cpp" "src/signal/CMakeFiles/roclk_signal.dir/jury.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/jury.cpp.o.d"
  "/root/repo/src/signal/polynomial.cpp" "src/signal/CMakeFiles/roclk_signal.dir/polynomial.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/polynomial.cpp.o.d"
  "/root/repo/src/signal/roots.cpp" "src/signal/CMakeFiles/roclk_signal.dir/roots.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/roots.cpp.o.d"
  "/root/repo/src/signal/spectrum.cpp" "src/signal/CMakeFiles/roclk_signal.dir/spectrum.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/spectrum.cpp.o.d"
  "/root/repo/src/signal/transfer_function.cpp" "src/signal/CMakeFiles/roclk_signal.dir/transfer_function.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/transfer_function.cpp.o.d"
  "/root/repo/src/signal/waveform.cpp" "src/signal/CMakeFiles/roclk_signal.dir/waveform.cpp.o" "gcc" "src/signal/CMakeFiles/roclk_signal.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
