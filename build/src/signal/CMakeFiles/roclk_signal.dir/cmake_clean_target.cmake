file(REMOVE_RECURSE
  "libroclk_signal.a"
)
