# Empty dependencies file for roclk_signal.
# This may be replaced when dependencies are built.
