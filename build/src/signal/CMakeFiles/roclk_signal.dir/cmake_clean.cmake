file(REMOVE_RECURSE
  "CMakeFiles/roclk_signal.dir/filter.cpp.o"
  "CMakeFiles/roclk_signal.dir/filter.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/jury.cpp.o"
  "CMakeFiles/roclk_signal.dir/jury.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/polynomial.cpp.o"
  "CMakeFiles/roclk_signal.dir/polynomial.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/roots.cpp.o"
  "CMakeFiles/roclk_signal.dir/roots.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/spectrum.cpp.o"
  "CMakeFiles/roclk_signal.dir/spectrum.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/transfer_function.cpp.o"
  "CMakeFiles/roclk_signal.dir/transfer_function.cpp.o.d"
  "CMakeFiles/roclk_signal.dir/waveform.cpp.o"
  "CMakeFiles/roclk_signal.dir/waveform.cpp.o.d"
  "libroclk_signal.a"
  "libroclk_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
