file(REMOVE_RECURSE
  "libroclk_osc.a"
)
