# Empty dependencies file for roclk_osc.
# This may be replaced when dependencies are built.
