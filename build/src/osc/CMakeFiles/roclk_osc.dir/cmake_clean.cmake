file(REMOVE_RECURSE
  "CMakeFiles/roclk_osc.dir/jitter.cpp.o"
  "CMakeFiles/roclk_osc.dir/jitter.cpp.o.d"
  "CMakeFiles/roclk_osc.dir/ring_oscillator.cpp.o"
  "CMakeFiles/roclk_osc.dir/ring_oscillator.cpp.o.d"
  "CMakeFiles/roclk_osc.dir/stage_chain.cpp.o"
  "CMakeFiles/roclk_osc.dir/stage_chain.cpp.o.d"
  "libroclk_osc.a"
  "libroclk_osc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_osc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
