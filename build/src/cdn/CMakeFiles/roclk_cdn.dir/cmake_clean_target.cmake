file(REMOVE_RECURSE
  "libroclk_cdn.a"
)
