file(REMOVE_RECURSE
  "CMakeFiles/roclk_cdn.dir/cdn.cpp.o"
  "CMakeFiles/roclk_cdn.dir/cdn.cpp.o.d"
  "libroclk_cdn.a"
  "libroclk_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
