# Empty dependencies file for roclk_cdn.
# This may be replaced when dependencies are built.
