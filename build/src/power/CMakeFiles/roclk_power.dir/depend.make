# Empty dependencies file for roclk_power.
# This may be replaced when dependencies are built.
