file(REMOVE_RECURSE
  "CMakeFiles/roclk_power.dir/voltage_model.cpp.o"
  "CMakeFiles/roclk_power.dir/voltage_model.cpp.o.d"
  "libroclk_power.a"
  "libroclk_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
