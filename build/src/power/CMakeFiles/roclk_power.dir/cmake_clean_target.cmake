file(REMOVE_RECURSE
  "libroclk_power.a"
)
