file(REMOVE_RECURSE
  "libroclk_common.a"
)
