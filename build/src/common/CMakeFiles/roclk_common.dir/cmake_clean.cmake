file(REMOVE_RECURSE
  "CMakeFiles/roclk_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/roclk_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/roclk_common.dir/fixed_point.cpp.o"
  "CMakeFiles/roclk_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/roclk_common.dir/flags.cpp.o"
  "CMakeFiles/roclk_common.dir/flags.cpp.o.d"
  "CMakeFiles/roclk_common.dir/rng.cpp.o"
  "CMakeFiles/roclk_common.dir/rng.cpp.o.d"
  "CMakeFiles/roclk_common.dir/stats.cpp.o"
  "CMakeFiles/roclk_common.dir/stats.cpp.o.d"
  "CMakeFiles/roclk_common.dir/table.cpp.o"
  "CMakeFiles/roclk_common.dir/table.cpp.o.d"
  "CMakeFiles/roclk_common.dir/thread_pool.cpp.o"
  "CMakeFiles/roclk_common.dir/thread_pool.cpp.o.d"
  "libroclk_common.a"
  "libroclk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
