# Empty dependencies file for roclk_common.
# This may be replaced when dependencies are built.
