
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/edge_simulator.cpp" "src/core/CMakeFiles/roclk_core.dir/edge_simulator.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/edge_simulator.cpp.o.d"
  "/root/repo/src/core/gate_level_simulator.cpp" "src/core/CMakeFiles/roclk_core.dir/gate_level_simulator.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/gate_level_simulator.cpp.o.d"
  "/root/repo/src/core/inputs.cpp" "src/core/CMakeFiles/roclk_core.dir/inputs.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/inputs.cpp.o.d"
  "/root/repo/src/core/loop_simulator.cpp" "src/core/CMakeFiles/roclk_core.dir/loop_simulator.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/loop_simulator.cpp.o.d"
  "/root/repo/src/core/throughput_model.cpp" "src/core/CMakeFiles/roclk_core.dir/throughput_model.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/throughput_model.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/roclk_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/roclk_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/roclk_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/roclk_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/roclk_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/roclk_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
