file(REMOVE_RECURSE
  "libroclk_core.a"
)
