# Empty compiler generated dependencies file for roclk_core.
# This may be replaced when dependencies are built.
