file(REMOVE_RECURSE
  "CMakeFiles/roclk_core.dir/edge_simulator.cpp.o"
  "CMakeFiles/roclk_core.dir/edge_simulator.cpp.o.d"
  "CMakeFiles/roclk_core.dir/gate_level_simulator.cpp.o"
  "CMakeFiles/roclk_core.dir/gate_level_simulator.cpp.o.d"
  "CMakeFiles/roclk_core.dir/inputs.cpp.o"
  "CMakeFiles/roclk_core.dir/inputs.cpp.o.d"
  "CMakeFiles/roclk_core.dir/loop_simulator.cpp.o"
  "CMakeFiles/roclk_core.dir/loop_simulator.cpp.o.d"
  "CMakeFiles/roclk_core.dir/throughput_model.cpp.o"
  "CMakeFiles/roclk_core.dir/throughput_model.cpp.o.d"
  "CMakeFiles/roclk_core.dir/trace.cpp.o"
  "CMakeFiles/roclk_core.dir/trace.cpp.o.d"
  "libroclk_core.a"
  "libroclk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
