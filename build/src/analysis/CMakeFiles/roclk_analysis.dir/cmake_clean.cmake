file(REMOVE_RECURSE
  "CMakeFiles/roclk_analysis.dir/analytic.cpp.o"
  "CMakeFiles/roclk_analysis.dir/analytic.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/estimation.cpp.o"
  "CMakeFiles/roclk_analysis.dir/estimation.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/experiments.cpp.o"
  "CMakeFiles/roclk_analysis.dir/experiments.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/frequency_response.cpp.o"
  "CMakeFiles/roclk_analysis.dir/frequency_response.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/iir_design.cpp.o"
  "CMakeFiles/roclk_analysis.dir/iir_design.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/metrics.cpp.o"
  "CMakeFiles/roclk_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/multi_domain.cpp.o"
  "CMakeFiles/roclk_analysis.dir/multi_domain.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/stability_metrics.cpp.o"
  "CMakeFiles/roclk_analysis.dir/stability_metrics.cpp.o.d"
  "CMakeFiles/roclk_analysis.dir/yield.cpp.o"
  "CMakeFiles/roclk_analysis.dir/yield.cpp.o.d"
  "libroclk_analysis.a"
  "libroclk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
