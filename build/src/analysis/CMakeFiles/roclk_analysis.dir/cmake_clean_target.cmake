file(REMOVE_RECURSE
  "libroclk_analysis.a"
)
