
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analytic.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/analytic.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/analytic.cpp.o.d"
  "/root/repo/src/analysis/estimation.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/estimation.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/estimation.cpp.o.d"
  "/root/repo/src/analysis/experiments.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/experiments.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/experiments.cpp.o.d"
  "/root/repo/src/analysis/frequency_response.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/frequency_response.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/frequency_response.cpp.o.d"
  "/root/repo/src/analysis/iir_design.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/iir_design.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/iir_design.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/multi_domain.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/multi_domain.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/multi_domain.cpp.o.d"
  "/root/repo/src/analysis/stability_metrics.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/stability_metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/stability_metrics.cpp.o.d"
  "/root/repo/src/analysis/yield.cpp" "src/analysis/CMakeFiles/roclk_analysis.dir/yield.cpp.o" "gcc" "src/analysis/CMakeFiles/roclk_analysis.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/roclk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/roclk_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/roclk_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/roclk_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/roclk_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/roclk_control.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
