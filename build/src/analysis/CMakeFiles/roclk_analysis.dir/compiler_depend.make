# Empty compiler generated dependencies file for roclk_analysis.
# This may be replaced when dependencies are built.
