# Empty dependencies file for fig9_hedv_grid.
# This may be replaced when dependencies are built.
