file(REMOVE_RECURSE
  "CMakeFiles/fig9_hedv_grid.dir/fig9_hedv_grid.cpp.o"
  "CMakeFiles/fig9_hedv_grid.dir/fig9_hedv_grid.cpp.o.d"
  "fig9_hedv_grid"
  "fig9_hedv_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hedv_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
