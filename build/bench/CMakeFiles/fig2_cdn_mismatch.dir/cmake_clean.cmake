file(REMOVE_RECURSE
  "CMakeFiles/fig2_cdn_mismatch.dir/fig2_cdn_mismatch.cpp.o"
  "CMakeFiles/fig2_cdn_mismatch.dir/fig2_cdn_mismatch.cpp.o.d"
  "fig2_cdn_mismatch"
  "fig2_cdn_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cdn_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
