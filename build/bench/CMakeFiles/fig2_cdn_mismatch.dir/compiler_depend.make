# Empty compiler generated dependencies file for fig2_cdn_mismatch.
# This may be replaced when dependencies are built.
