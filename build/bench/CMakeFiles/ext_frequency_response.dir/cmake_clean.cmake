file(REMOVE_RECURSE
  "CMakeFiles/ext_frequency_response.dir/ext_frequency_response.cpp.o"
  "CMakeFiles/ext_frequency_response.dir/ext_frequency_response.cpp.o.d"
  "ext_frequency_response"
  "ext_frequency_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_frequency_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
