# Empty dependencies file for ext_frequency_response.
# This may be replaced when dependencies are built.
