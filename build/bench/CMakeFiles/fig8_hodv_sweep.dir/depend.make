# Empty dependencies file for fig8_hodv_sweep.
# This may be replaced when dependencies are built.
