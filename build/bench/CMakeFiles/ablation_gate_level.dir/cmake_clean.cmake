file(REMOVE_RECURSE
  "CMakeFiles/ablation_gate_level.dir/ablation_gate_level.cpp.o"
  "CMakeFiles/ablation_gate_level.dir/ablation_gate_level.cpp.o.d"
  "ablation_gate_level"
  "ablation_gate_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gate_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
