file(REMOVE_RECURSE
  "CMakeFiles/table1_taxonomy.dir/table1_taxonomy.cpp.o"
  "CMakeFiles/table1_taxonomy.dir/table1_taxonomy.cpp.o.d"
  "table1_taxonomy"
  "table1_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
