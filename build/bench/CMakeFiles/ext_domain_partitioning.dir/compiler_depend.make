# Empty compiler generated dependencies file for ext_domain_partitioning.
# This may be replaced when dependencies are built.
