file(REMOVE_RECURSE
  "CMakeFiles/ext_domain_partitioning.dir/ext_domain_partitioning.cpp.o"
  "CMakeFiles/ext_domain_partitioning.dir/ext_domain_partitioning.cpp.o.d"
  "ext_domain_partitioning"
  "ext_domain_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_domain_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
