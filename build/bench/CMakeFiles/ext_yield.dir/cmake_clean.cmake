file(REMOVE_RECURSE
  "CMakeFiles/ext_yield.dir/ext_yield.cpp.o"
  "CMakeFiles/ext_yield.dir/ext_yield.cpp.o.d"
  "ext_yield"
  "ext_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
