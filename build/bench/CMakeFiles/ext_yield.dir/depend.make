# Empty dependencies file for ext_yield.
# This may be replaced when dependencies are built.
