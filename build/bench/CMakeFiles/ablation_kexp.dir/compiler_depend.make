# Empty compiler generated dependencies file for ablation_kexp.
# This may be replaced when dependencies are built.
