file(REMOVE_RECURSE
  "CMakeFiles/ablation_kexp.dir/ablation_kexp.cpp.o"
  "CMakeFiles/ablation_kexp.dir/ablation_kexp.cpp.o.d"
  "ablation_kexp"
  "ablation_kexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
