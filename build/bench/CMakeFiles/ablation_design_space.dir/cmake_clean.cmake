file(REMOVE_RECURSE
  "CMakeFiles/ablation_design_space.dir/ablation_design_space.cpp.o"
  "CMakeFiles/ablation_design_space.dir/ablation_design_space.cpp.o.d"
  "ablation_design_space"
  "ablation_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
