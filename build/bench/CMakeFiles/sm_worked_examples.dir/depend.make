# Empty dependencies file for sm_worked_examples.
# This may be replaced when dependencies are built.
