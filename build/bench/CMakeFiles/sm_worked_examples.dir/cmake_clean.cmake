file(REMOVE_RECURSE
  "CMakeFiles/sm_worked_examples.dir/sm_worked_examples.cpp.o"
  "CMakeFiles/sm_worked_examples.dir/sm_worked_examples.cpp.o.d"
  "sm_worked_examples"
  "sm_worked_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_worked_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
