# Empty dependencies file for ablation_teatime.
# This may be replaced when dependencies are built.
