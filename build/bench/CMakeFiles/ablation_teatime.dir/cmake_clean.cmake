file(REMOVE_RECURSE
  "CMakeFiles/ablation_teatime.dir/ablation_teatime.cpp.o"
  "CMakeFiles/ablation_teatime.dir/ablation_teatime.cpp.o.d"
  "ablation_teatime"
  "ablation_teatime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_teatime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
