file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_mismatch.dir/ext_dynamic_mismatch.cpp.o"
  "CMakeFiles/ext_dynamic_mismatch.dir/ext_dynamic_mismatch.cpp.o.d"
  "ext_dynamic_mismatch"
  "ext_dynamic_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
