# Empty dependencies file for ext_dynamic_mismatch.
# This may be replaced when dependencies are built.
