file(REMOVE_RECURSE
  "CMakeFiles/ablation_edge_model.dir/ablation_edge_model.cpp.o"
  "CMakeFiles/ablation_edge_model.dir/ablation_edge_model.cpp.o.d"
  "ablation_edge_model"
  "ablation_edge_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edge_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
