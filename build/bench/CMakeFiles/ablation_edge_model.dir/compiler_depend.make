# Empty compiler generated dependencies file for ablation_edge_model.
# This may be replaced when dependencies are built.
