file(REMOVE_RECURSE
  "CMakeFiles/voltage_droop.dir/voltage_droop.cpp.o"
  "CMakeFiles/voltage_droop.dir/voltage_droop.cpp.o.d"
  "voltage_droop"
  "voltage_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltage_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
