# Empty compiler generated dependencies file for voltage_droop.
# This may be replaced when dependencies are built.
