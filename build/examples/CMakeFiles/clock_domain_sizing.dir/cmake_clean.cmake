file(REMOVE_RECURSE
  "CMakeFiles/clock_domain_sizing.dir/clock_domain_sizing.cpp.o"
  "CMakeFiles/clock_domain_sizing.dir/clock_domain_sizing.cpp.o.d"
  "clock_domain_sizing"
  "clock_domain_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_domain_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
