# Empty compiler generated dependencies file for clock_domain_sizing.
# This may be replaced when dependencies are built.
