# Empty compiler generated dependencies file for setpoint_tuning.
# This may be replaced when dependencies are built.
