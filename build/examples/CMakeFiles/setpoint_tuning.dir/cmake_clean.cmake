file(REMOVE_RECURSE
  "CMakeFiles/setpoint_tuning.dir/setpoint_tuning.cpp.o"
  "CMakeFiles/setpoint_tuning.dir/setpoint_tuning.cpp.o.d"
  "setpoint_tuning"
  "setpoint_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setpoint_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
