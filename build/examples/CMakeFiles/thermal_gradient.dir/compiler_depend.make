# Empty compiler generated dependencies file for thermal_gradient.
# This may be replaced when dependencies are built.
