file(REMOVE_RECURSE
  "CMakeFiles/thermal_gradient.dir/thermal_gradient.cpp.o"
  "CMakeFiles/thermal_gradient.dir/thermal_gradient.cpp.o.d"
  "thermal_gradient"
  "thermal_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
