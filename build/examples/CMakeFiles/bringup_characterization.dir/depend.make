# Empty dependencies file for bringup_characterization.
# This may be replaced when dependencies are built.
