file(REMOVE_RECURSE
  "CMakeFiles/bringup_characterization.dir/bringup_characterization.cpp.o"
  "CMakeFiles/bringup_characterization.dir/bringup_characterization.cpp.o.d"
  "bringup_characterization"
  "bringup_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bringup_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
