# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_voltage_droop "/root/repo/build/examples/voltage_droop")
set_tests_properties(example_voltage_droop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thermal_gradient "/root/repo/build/examples/thermal_gradient")
set_tests_properties(example_thermal_gradient PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_setpoint_tuning "/root/repo/build/examples/setpoint_tuning")
set_tests_properties(example_setpoint_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clock_domain_sizing "/root/repo/build/examples/clock_domain_sizing")
set_tests_properties(example_clock_domain_sizing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bringup_characterization "/root/repo/build/examples/bringup_characterization")
set_tests_properties(example_bringup_characterization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
