# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(roclk_sim_smoke "/root/repo/build/tools/roclk_sim" "--cycles" "2000" "--skip" "500")
set_tests_properties(roclk_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(roclk_sim_help "/root/repo/build/tools/roclk_sim" "--help")
set_tests_properties(roclk_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(roclk_sim_governor "/root/repo/build/tools/roclk_sim" "--system" "teatime" "--governor" "--cycles" "2000" "--skip" "500")
set_tests_properties(roclk_sim_governor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(roclk_sim_rejects_unknown_flag "/root/repo/build/tools/roclk_sim" "--no-such-flag" "1")
set_tests_properties(roclk_sim_rejects_unknown_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
