file(REMOVE_RECURSE
  "CMakeFiles/roclk_sim.dir/roclk_sim.cpp.o"
  "CMakeFiles/roclk_sim.dir/roclk_sim.cpp.o.d"
  "roclk_sim"
  "roclk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
