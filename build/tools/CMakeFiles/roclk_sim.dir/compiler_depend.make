# Empty compiler generated dependencies file for roclk_sim.
# This may be replaced when dependencies are built.
