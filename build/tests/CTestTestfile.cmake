# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/roclk_common_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_signal_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_variation_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_chip_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_hw_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_control_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_core_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/roclk_integration_tests[1]_include.cmake")
