file(REMOVE_RECURSE
  "CMakeFiles/roclk_hw_tests.dir/cdn/test_cdn.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/cdn/test_cdn.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_jitter.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_jitter.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_ring_oscillator.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_ring_oscillator.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_stage_chain.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/osc/test_stage_chain.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/power/test_voltage_model.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/power/test_voltage_model.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/sensor/test_tdc.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/sensor/test_tdc.cpp.o.d"
  "CMakeFiles/roclk_hw_tests.dir/sensor/test_thermometer.cpp.o"
  "CMakeFiles/roclk_hw_tests.dir/sensor/test_thermometer.cpp.o.d"
  "roclk_hw_tests"
  "roclk_hw_tests.pdb"
  "roclk_hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
