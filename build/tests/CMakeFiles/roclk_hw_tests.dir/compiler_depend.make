# Empty compiler generated dependencies file for roclk_hw_tests.
# This may be replaced when dependencies are built.
