file(REMOVE_RECURSE
  "CMakeFiles/roclk_control_tests.dir/control/test_calibration.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_calibration.cpp.o.d"
  "CMakeFiles/roclk_control_tests.dir/control/test_constraints.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_constraints.cpp.o.d"
  "CMakeFiles/roclk_control_tests.dir/control/test_control_misc.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_control_misc.cpp.o.d"
  "CMakeFiles/roclk_control_tests.dir/control/test_iir_control.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_iir_control.cpp.o.d"
  "CMakeFiles/roclk_control_tests.dir/control/test_setpoint_governor.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_setpoint_governor.cpp.o.d"
  "CMakeFiles/roclk_control_tests.dir/control/test_teatime.cpp.o"
  "CMakeFiles/roclk_control_tests.dir/control/test_teatime.cpp.o.d"
  "roclk_control_tests"
  "roclk_control_tests.pdb"
  "roclk_control_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_control_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
