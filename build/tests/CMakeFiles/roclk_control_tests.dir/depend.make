# Empty dependencies file for roclk_control_tests.
# This may be replaced when dependencies are built.
