
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control/test_calibration.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_calibration.cpp.o.d"
  "/root/repo/tests/control/test_constraints.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_constraints.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_constraints.cpp.o.d"
  "/root/repo/tests/control/test_control_misc.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_control_misc.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_control_misc.cpp.o.d"
  "/root/repo/tests/control/test_iir_control.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_iir_control.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_iir_control.cpp.o.d"
  "/root/repo/tests/control/test_setpoint_governor.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_setpoint_governor.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_setpoint_governor.cpp.o.d"
  "/root/repo/tests/control/test_teatime.cpp" "tests/CMakeFiles/roclk_control_tests.dir/control/test_teatime.cpp.o" "gcc" "tests/CMakeFiles/roclk_control_tests.dir/control/test_teatime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/roclk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/roclk_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/roclk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/roclk_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/roclk_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/roclk_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/roclk_control.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/roclk_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
