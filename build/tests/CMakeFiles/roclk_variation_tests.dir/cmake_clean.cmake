file(REMOVE_RECURSE
  "CMakeFiles/roclk_variation_tests.dir/variation/test_classify.cpp.o"
  "CMakeFiles/roclk_variation_tests.dir/variation/test_classify.cpp.o.d"
  "CMakeFiles/roclk_variation_tests.dir/variation/test_sources.cpp.o"
  "CMakeFiles/roclk_variation_tests.dir/variation/test_sources.cpp.o.d"
  "CMakeFiles/roclk_variation_tests.dir/variation/test_spatial_map.cpp.o"
  "CMakeFiles/roclk_variation_tests.dir/variation/test_spatial_map.cpp.o.d"
  "roclk_variation_tests"
  "roclk_variation_tests.pdb"
  "roclk_variation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_variation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
