# Empty dependencies file for roclk_variation_tests.
# This may be replaced when dependencies are built.
