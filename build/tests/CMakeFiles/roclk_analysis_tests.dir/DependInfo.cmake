
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_analytic.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_analytic.cpp.o.d"
  "/root/repo/tests/analysis/test_estimation.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_estimation.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_estimation.cpp.o.d"
  "/root/repo/tests/analysis/test_experiments.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_experiments.cpp.o.d"
  "/root/repo/tests/analysis/test_frequency_response.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_frequency_response.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_frequency_response.cpp.o.d"
  "/root/repo/tests/analysis/test_iir_design.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_iir_design.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_iir_design.cpp.o.d"
  "/root/repo/tests/analysis/test_metrics.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_metrics.cpp.o.d"
  "/root/repo/tests/analysis/test_multi_domain.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_multi_domain.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_multi_domain.cpp.o.d"
  "/root/repo/tests/analysis/test_stability_metrics.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_stability_metrics.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_stability_metrics.cpp.o.d"
  "/root/repo/tests/analysis/test_yield.cpp" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_yield.cpp.o" "gcc" "tests/CMakeFiles/roclk_analysis_tests.dir/analysis/test_yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/roclk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/roclk_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/roclk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/roclk_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/roclk_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/osc/CMakeFiles/roclk_osc.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/roclk_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/roclk_control.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/roclk_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/roclk_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/roclk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
