file(REMOVE_RECURSE
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_analytic.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_analytic.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_estimation.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_estimation.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_experiments.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_experiments.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_frequency_response.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_frequency_response.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_iir_design.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_iir_design.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_metrics.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_metrics.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_multi_domain.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_multi_domain.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_stability_metrics.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_stability_metrics.cpp.o.d"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_yield.cpp.o"
  "CMakeFiles/roclk_analysis_tests.dir/analysis/test_yield.cpp.o.d"
  "roclk_analysis_tests"
  "roclk_analysis_tests.pdb"
  "roclk_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
