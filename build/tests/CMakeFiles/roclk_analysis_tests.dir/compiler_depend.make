# Empty compiler generated dependencies file for roclk_analysis_tests.
# This may be replaced when dependencies are built.
