# Empty compiler generated dependencies file for roclk_core_tests.
# This may be replaced when dependencies are built.
