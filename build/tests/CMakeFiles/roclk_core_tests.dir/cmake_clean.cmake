file(REMOVE_RECURSE
  "CMakeFiles/roclk_core_tests.dir/core/test_edge_simulator.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_edge_simulator.cpp.o.d"
  "CMakeFiles/roclk_core_tests.dir/core/test_gate_level_simulator.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_gate_level_simulator.cpp.o.d"
  "CMakeFiles/roclk_core_tests.dir/core/test_inputs.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_inputs.cpp.o.d"
  "CMakeFiles/roclk_core_tests.dir/core/test_loop_simulator.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_loop_simulator.cpp.o.d"
  "CMakeFiles/roclk_core_tests.dir/core/test_throughput_model.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_throughput_model.cpp.o.d"
  "CMakeFiles/roclk_core_tests.dir/core/test_trace.cpp.o"
  "CMakeFiles/roclk_core_tests.dir/core/test_trace.cpp.o.d"
  "roclk_core_tests"
  "roclk_core_tests.pdb"
  "roclk_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
