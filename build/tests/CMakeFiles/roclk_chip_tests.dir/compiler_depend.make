# Empty compiler generated dependencies file for roclk_chip_tests.
# This may be replaced when dependencies are built.
