file(REMOVE_RECURSE
  "CMakeFiles/roclk_chip_tests.dir/chip/test_clock_domain.cpp.o"
  "CMakeFiles/roclk_chip_tests.dir/chip/test_clock_domain.cpp.o.d"
  "CMakeFiles/roclk_chip_tests.dir/chip/test_floorplan.cpp.o"
  "CMakeFiles/roclk_chip_tests.dir/chip/test_floorplan.cpp.o.d"
  "roclk_chip_tests"
  "roclk_chip_tests.pdb"
  "roclk_chip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_chip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
