# Empty dependencies file for roclk_signal_tests.
# This may be replaced when dependencies are built.
