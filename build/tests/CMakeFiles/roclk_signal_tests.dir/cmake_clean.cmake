file(REMOVE_RECURSE
  "CMakeFiles/roclk_signal_tests.dir/signal/test_filter.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_filter.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_jury.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_jury.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_polynomial.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_polynomial.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_roots.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_roots.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_spectrum.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_spectrum.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_transfer_function.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_transfer_function.cpp.o.d"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_waveform.cpp.o"
  "CMakeFiles/roclk_signal_tests.dir/signal/test_waveform.cpp.o.d"
  "roclk_signal_tests"
  "roclk_signal_tests.pdb"
  "roclk_signal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_signal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
