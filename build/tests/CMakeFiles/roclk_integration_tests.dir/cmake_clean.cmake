file(REMOVE_RECURSE
  "CMakeFiles/roclk_integration_tests.dir/integration/test_fuzz_loop.cpp.o"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_fuzz_loop.cpp.o.d"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_gate_level.cpp.o"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_gate_level.cpp.o.d"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_golden_regression.cpp.o"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_golden_regression.cpp.o.d"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_linear_model_equivalence.cpp.o"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_linear_model_equivalence.cpp.o.d"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_paper_claims.cpp.o"
  "CMakeFiles/roclk_integration_tests.dir/integration/test_paper_claims.cpp.o.d"
  "roclk_integration_tests"
  "roclk_integration_tests.pdb"
  "roclk_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
