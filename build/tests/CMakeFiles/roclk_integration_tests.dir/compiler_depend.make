# Empty compiler generated dependencies file for roclk_integration_tests.
# This may be replaced when dependencies are built.
