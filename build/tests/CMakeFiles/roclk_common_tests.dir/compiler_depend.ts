# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for roclk_common_tests.
