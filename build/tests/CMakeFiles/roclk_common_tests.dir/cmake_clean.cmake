file(REMOVE_RECURSE
  "CMakeFiles/roclk_common_tests.dir/common/test_ascii_plot.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_ascii_plot.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_fixed_point.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_fixed_point.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_flags.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_flags.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_math.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_math.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_rng.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_stats.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_status.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_status.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_table.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_table.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_thread_pool.cpp.o.d"
  "CMakeFiles/roclk_common_tests.dir/common/test_units.cpp.o"
  "CMakeFiles/roclk_common_tests.dir/common/test_units.cpp.o.d"
  "roclk_common_tests"
  "roclk_common_tests.pdb"
  "roclk_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roclk_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
