# Empty dependencies file for roclk_common_tests.
# This may be replaced when dependencies are built.
