#!/usr/bin/env bash
# Crash-recovery smoke of the sweep-service cache journal, run by ctest
# (roclk_journal_smoke) and the CI build-test job:
#   1. start roclk_sweepd with --journal, run a corner query (simulated,
#      journaled), capture its payload
#   2. kill -9 the daemon — no drain, no clean close; the journal's
#      whole-record appends are all the durability there is
#   3. restart on the same journal; the same query must be a cache hit
#      (zero re-simulations) with a byte-identical payload
#   4. clean shutdown; the exit stats line must show the warm start
#
# Usage: journal_smoke.sh <roclk_sweepd> <roclk_sweep> <socket> <journal>
set -euo pipefail

SWEEPD=$1
SWEEP=$2
SOCKET=$3
JOURNAL=$4

rm -f "$SOCKET" "$JOURNAL" "$JOURNAL.tmp"
DAEMON_PID=0
trap '[ "$DAEMON_PID" -ne 0 ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCKET" ] && return 0
    sleep 0.1
  done
  echo "daemon never bound $SOCKET"
  return 1
}

QUERY=(corner --cycles 2000 --skip 200 --te-over-c 20)

echo "--- cold start: simulate and journal one scenario"
"$SWEEPD" --socket "$SOCKET" --journal "$JOURNAL" &
DAEMON_PID=$!
wait_for_socket
COLD=$("$SWEEP" --socket "$SOCKET" "${QUERY[@]}")
echo "$COLD"
grep -q "status=OK from_cache=0" <<<"$COLD"

echo "--- kill -9 (no drain, no clean close)"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=0
rm -f "$SOCKET"
[ -s "$JOURNAL" ] || { echo "journal is empty after the crash"; exit 1; }

echo "--- warm restart from the journal"
STDERR_LOG=$(mktemp)
"$SWEEPD" --socket "$SOCKET" --journal "$JOURNAL" 2>"$STDERR_LOG" &
DAEMON_PID=$!
wait_for_socket
WARM=$("$SWEEP" --socket "$SOCKET" "${QUERY[@]}")
echo "$WARM"
# The crashed daemon's answer is served from the recovered cache,
# byte-identically, with zero re-simulations.
grep -q "status=OK from_cache=1" <<<"$WARM"
COLD_PAYLOAD=$(sed 's/from_cache=[01]//' <<<"$COLD")
WARM_PAYLOAD=$(sed 's/from_cache=[01]//' <<<"$WARM")
[ "$COLD_PAYLOAD" = "$WARM_PAYLOAD" ] || {
  echo "warm payload differs from cold payload"
  echo "cold: $COLD_PAYLOAD"
  echo "warm: $WARM_PAYLOAD"
  exit 1
}

echo "--- shutdown"
"$SWEEP" --socket "$SOCKET" --shutdown
DAEMON_EXIT=0
wait "$DAEMON_PID" || DAEMON_EXIT=$?
DAEMON_PID=0
trap - EXIT
[ "$DAEMON_EXIT" -eq 0 ] || { echo "daemon exit=$DAEMON_EXIT"; exit 1; }
cat "$STDERR_LOG"
grep -q "journal warm start: recovered=1" "$STDERR_LOG"
grep -q "simulations=0" "$STDERR_LOG"
rm -f "$STDERR_LOG" "$JOURNAL" "$JOURNAL.tmp"
echo "journal smoke OK"
