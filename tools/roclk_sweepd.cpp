// roclk_sweepd — the sweep-service daemon.
//
// Listens on a Unix-domain socket (or serves a single session over
// stdin/stdout with --stdio), wraps a SweepService in the frame protocol,
// and serves scenario queries until a client sends a shutdown frame.
// docs/service.md is the operations runbook.
//
// Typical use:
//   roclk_sweepd --socket /tmp/roclk.sock --threads 4 &
//   roclk_sweep  --socket /tmp/roclk.sock corner --tclk-over-c 1.5
//   roclk_sweep  --socket /tmp/roclk.sock --shutdown

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "roclk/common/flags.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/service/server.hpp"
#include "roclk/service/session.hpp"
#include "roclk/service/transport.hpp"

namespace {

using namespace roclk;
using namespace roclk::service;

int serve_stdio(SweepService& sweep_service) {
  // fd 0 carries requests, fd 1 responses; logs go to stderr so framing
  // stays clean.
  std::fprintf(stderr, "[roclk_sweepd] serving one session on stdio\n");
  const SessionEnd end = run_server_session(0, sweep_service);
  std::fprintf(stderr, "[roclk_sweepd] session ended (%u)\n",
               static_cast<unsigned>(end));
  return end == SessionEnd::kTransportError ? 1 : 0;
}

int serve_socket(SweepService& sweep_service, const std::string& path) {
  UnixListener listener;
  if (const Status status = listener.listen(path); !status.is_ok()) {
    std::fprintf(stderr, "[roclk_sweepd] %s\n",
                 status.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "[roclk_sweepd] listening on %s\n", path.c_str());

  std::atomic<bool> stop{false};
  std::mutex sessions_mutex;
  std::vector<std::thread> sessions;

  for (;;) {
    FdStream conn = listener.accept();
    if (!conn.valid()) {
      if (stop.load()) break;  // woken by a shutdown session
      if (!listener.listening()) break;
      continue;  // transient accept failure
    }
    const std::lock_guard lock{sessions_mutex};
    sessions.emplace_back(
        [&sweep_service, &stop, &listener, fd = conn.release()]() mutable {
          FdStream owned{fd};
          const SessionEnd end =
              run_server_session(owned.fd(), sweep_service);
          if (end == SessionEnd::kShutdownRequested) {
            stop.store(true);
            listener.wake();
          }
        });
  }

  for (std::thread& t : sessions) t.join();
  std::fprintf(stderr, "[roclk_sweepd] drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags{
      "roclk_sweepd: sweep-service daemon serving scenario queries "
      "(corner / grid / yield) over the roclk frame protocol."};
  flags.add_string("socket", "", "Unix socket path to listen on")
      .add_bool("stdio", false,
                "serve exactly one session over stdin/stdout instead")
      .add_int("max-in-flight", 64,
               "admission bound: concurrent simulating+waiting requests")
      .add_int("cache-capacity", 1024,
               "result-cache entries (LRU evicted, 0 disables)")
      .add_int("deadline-ms", 0,
               "default deadline for requests that carry none (0 = none)")
      .add_int("threads", 0,
               "simulation pool threads (0 = sequential execution)")
      .add_string("journal", "",
                  "cache journal path: warm-start from it on boot, append "
                  "every result to it (crash-safe; empty disables)")
      .add_int("journal-compact-every", 4096,
               "appended records between journal compactions");

  if (const Status status = flags.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  const std::string socket_path = flags.get_string("socket");
  const bool stdio = flags.get_bool("stdio");
  if (stdio == !socket_path.empty()) {
    std::fprintf(stderr,
                 "exactly one of --socket PATH or --stdio is required\n");
    return 2;
  }

  const std::int64_t threads = flags.get_int("threads");
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
  }

  ServiceConfig config;
  config.max_in_flight =
      static_cast<std::size_t>(flags.get_int("max-in-flight"));
  config.cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache-capacity"));
  config.default_deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms"));
  config.sim_pool = pool.get();
  config.journal_path = flags.get_string("journal");
  config.journal_compact_every =
      static_cast<std::uint64_t>(flags.get_int("journal-compact-every"));
  SweepService sweep_service{config};
  if (!config.journal_path.empty()) {
    const ServiceStats warm = sweep_service.stats();
    std::fprintf(stderr,
                 "[roclk_sweepd] journal warm start: recovered=%llu "
                 "dropped_words=%llu\n",
                 static_cast<unsigned long long>(warm.journal_recovered),
                 static_cast<unsigned long long>(warm.journal_dropped_words));
  }

  const int exit_code = stdio ? serve_stdio(sweep_service)
                              : serve_socket(sweep_service, socket_path);

  const ServiceStats stats = sweep_service.stats();
  std::fprintf(stderr,
               "[roclk_sweepd] accepted=%llu cache_hits=%llu "
               "coalesced=%llu simulations=%llu shed=%llu "
               "deadline_exceeded=%llu invalid=%llu completed=%llu "
               "journal_recovered=%llu journal_appends=%llu "
               "journal_compactions=%llu journal_errors=%llu\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.simulations),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.invalid),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.journal_recovered),
               static_cast<unsigned long long>(stats.journal_appends),
               static_cast<unsigned long long>(stats.journal_compactions),
               static_cast<unsigned long long>(stats.journal_errors));
  return exit_code;
}
