#!/usr/bin/env bash
# End-to-end smoke of the sweep-service daemon, run by ctest
# (roclk_service_smoke) and the CI service-smoke job:
#   1. start roclk_sweepd on a Unix socket
#   2. client round-trips: ping, then a tiny corner query twice
#      (cache miss then content-addressed hit)
#   3. malformed-frame probe must get a typed MALFORMED_FRAME answer
#   4. shutdown frame must drain the daemon to a clean exit
#
# Usage: service_smoke.sh <roclk_sweepd> <roclk_sweep> <socket-path>
set -euo pipefail

SWEEPD=$1
SWEEP=$2
SOCKET=$3

rm -f "$SOCKET"
"$SWEEPD" --socket "$SOCKET" --cache-capacity 8 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCKET" ] && break
  sleep 0.1
done
[ -S "$SOCKET" ] || { echo "daemon never bound $SOCKET"; exit 1; }

echo "--- ping"
"$SWEEP" --socket "$SOCKET" --ping

QUERY=(corner --cycles 2000 --skip 200 --te-over-c 20)
echo "--- corner query (cache miss)"
MISS=$("$SWEEP" --socket "$SOCKET" "${QUERY[@]}")
echo "$MISS"
grep -q "status=OK from_cache=0" <<<"$MISS"

echo "--- corner query again (content-addressed cache hit)"
HIT=$("$SWEEP" --socket "$SOCKET" "${QUERY[@]}")
echo "$HIT"
grep -q "status=OK from_cache=1" <<<"$HIT"

echo "--- malformed frame probe"
"$SWEEP" --socket "$SOCKET" --send-malformed

echo "--- shutdown"
"$SWEEP" --socket "$SOCKET" --shutdown
DAEMON_EXIT=0
wait "$DAEMON_PID" || DAEMON_EXIT=$?
trap - EXIT
[ "$DAEMON_EXIT" -eq 0 ] || { echo "daemon exit=$DAEMON_EXIT"; exit 1; }
[ ! -S "$SOCKET" ] || { echo "socket not unlinked on exit"; exit 1; }
echo "service smoke OK"
