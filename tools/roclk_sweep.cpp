// roclk_sweep — client CLI for the sweep-service daemon.
//
// Connects to a roclk_sweepd Unix socket and runs one scenario query
// (corner / grid / yield), a liveness ping, a shutdown request, or the
// deliberately-broken-bytes probe the CI smoke job uses to prove malformed
// frames get a typed answer.  docs/service.md documents the protocol.
//
//   roclk_sweep --socket /tmp/roclk.sock corner --tclk-over-c 1.5
//   roclk_sweep --socket /tmp/roclk.sock grid --axis te --lo 2 --hi 200 \
//       --points 9 --scale log
//   roclk_sweep --socket /tmp/roclk.sock yield --margin-points 5
//   roclk_sweep --socket /tmp/roclk.sock --ping
//   roclk_sweep --socket /tmp/roclk.sock --shutdown
//
// Exit codes: 0 success, 1 failure, 2 bad flags, 3 the daemon answered
// SHUTTING_DOWN (retryable — rerun once the daemon restarts; its journal
// warm start turns the retry into a cache hit).  With --retries N the
// query path goes through ResilientClient, which reconnects and backs
// off across transport failures and retryable statuses before giving up.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "roclk/common/flags.hpp"
#include "roclk/common/stream_key.hpp"
#include "roclk/service/client.hpp"
#include "roclk/service/retry.hpp"

namespace {

using namespace roclk;
using namespace roclk::service;

int fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

void print_response_meta(const Response& r) {
  std::printf("status=%s from_cache=%d coalesced=%d hash=%016llx\n",
              to_string(r.status), r.from_cache ? 1 : 0,
              r.coalesced ? 1 : 0,
              static_cast<unsigned long long>(r.content_hash));
  if (!r.message.empty()) std::printf("message: %s\n", r.message.c_str());
}

void print_values(QueryKind kind, const Response& r) {
  const std::vector<double>& v = r.values;
  switch (kind) {
    case QueryKind::kCornerMargin:
      if (v.size() == 5) {
        std::printf("safety_margin=%.6f mean_period=%.6f "
                    "relative_adaptive_period=%.6f violations=%.0f "
                    "tau_ripple=%.6f\n",
                    v[0], v[1], v[2], v[3], v[4]);
      }
      break;
    case QueryKind::kGridSweep:
      std::printf("%12s %24s %14s\n", "x", "rel_adaptive_period",
                  "safety_margin");
      for (std::size_t i = 0; i + 3 <= v.size(); i += 3) {
        std::printf("%12.6f %24.6f %14.6f\n", v[i], v[i + 1], v[i + 2]);
      }
      break;
    case QueryKind::kYieldCurve:
      if (v.size() >= 3) {
        std::printf("mean_worst_path=%.6f mean_adaptive_period=%.6f "
                    "p99_worst_path=%.6f\n",
                    v[0], v[1], v[2]);
        std::printf("%12s %12s %14s\n", "margin", "fixed_yield",
                    "adaptive_yield");
        for (std::size_t i = 3; i + 3 <= v.size(); i += 3) {
          std::printf("%12.4f %12.4f %14.4f\n", v[i], v[i + 1], v[i + 2]);
        }
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags{
      "roclk_sweep: query a running roclk_sweepd.  Positional argument "
      "picks the query kind: corner (default) | grid | yield."};
  flags.add_string("socket", "", "daemon's Unix socket path (required)")
      .add_bool("ping", false, "liveness probe instead of a query")
      .add_bool("shutdown", false, "ask the daemon to drain and exit")
      .add_bool("send-malformed", false,
                "send deliberately broken bytes; expect MALFORMED_FRAME")
      .add_int("deadline-ms", 0, "per-request deadline (0 = none)")
      // Retry policy (docs/service.md §6).  0 retries = one shot.
      .add_int("retries", 0, "retry budget beyond the first attempt")
      .add_int("retry-backoff-ms", 10, "initial backoff before a retry")
      .add_int("retry-budget-ms", 0,
               "total scheduled-backoff budget (0 = unlimited)")
      .add_int("retry-seed", 1, "jitter stream seed (deterministic)")
      // Corner scenario (also the base corner of a grid query).
      .add_string("system", "iir", "iir | teatime | free | fixed")
      .add_double("setpoint-c", 64.0, "set-point c in RO stages")
      .add_double("tclk-over-c", 1.0, "T_clk / c")
      .add_double("amplitude-frac", 0.2, "HoDV amplitude / c")
      .add_double("te-over-c", 50.0, "HoDV period / c")
      .add_double("mu-over-c", 0.0, "HeDV mismatch / c")
      .add_int("cycles", 0, "simulated cycles (0 = auto)")
      .add_int("skip", 1000, "transient cycles dropped")
      .add_double("free-ro-margin-frac", 0.0, "free-RO margin / c")
      .add_int("quantization", 2, "cdn::DelayQuantization (0|1|2)")
      // Grid query.
      .add_string("axis", "tclk", "grid axis: tclk | te | mu")
      .add_string("scale", "linear", "grid scale: linear | log")
      .add_double("lo", 0.5, "grid lower bound")
      .add_double("hi", 2.0, "grid upper bound")
      .add_int("points", 7, "grid points")
      // Yield query.
      .add_int("chips", 500, "Monte-Carlo chips")
      .add_int("paths", 64, "critical paths per chip")
      .add_double("margin-lo", 0.0, "yield margin grid lower bound")
      .add_double("margin-hi", 16.0, "yield margin grid upper bound")
      .add_int("margin-points", 9, "yield margin grid points")
      .add_int("seed", 1234, "yield Monte-Carlo seed");

  if (const Status status = flags.parse(argc, argv); !status.is_ok()) {
    std::fprintf(stderr, "error: %s\n%s", status.to_string().c_str(),
                 flags.help_text().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }
  const std::string socket_path = flags.get_string("socket");
  if (socket_path.empty()) return fail("--socket PATH is required");

  Result<Client> connected = Client::connect(socket_path);
  if (!connected.is_ok()) return fail(connected.status().to_string());
  Client client = std::move(connected).value();

  if (flags.get_bool("ping")) {
    const Result<Response> pong = client.ping();
    if (!pong.is_ok()) return fail(pong.status().to_string());
    print_response_meta(pong.value());
    return pong.value().ok() ? 0 : 1;
  }
  if (flags.get_bool("shutdown")) {
    const Result<Response> ack = client.shutdown_server();
    if (!ack.is_ok()) return fail(ack.status().to_string());
    print_response_meta(ack.value());
    return ack.value().ok() ? 0 : 1;
  }
  if (flags.get_bool("send-malformed")) {
    // A full frame's worth of wrong-magic words: the server must answer
    // MALFORMED_FRAME and close, not hang or drop the connection.
    const Result<Response> reply =
        client.send_raw({0xDEADBEEFDEADBEEFULL, 0, 0, 0});
    if (!reply.is_ok()) return fail(reply.status().to_string());
    print_response_meta(reply.value());
    return reply.value().status == ResponseStatus::kMalformedFrame ? 0 : 1;
  }

  Request request;
  request.deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms"));

  CornerQuery corner;
  const std::string system = flags.get_string("system");
  if (system == "iir") {
    corner.system = 0;
  } else if (system == "teatime") {
    corner.system = 1;
  } else if (system == "free") {
    corner.system = 2;
  } else if (system == "fixed") {
    corner.system = 3;
  } else {
    return fail("unknown --system: " + system);
  }
  corner.setpoint_c = flags.get_double("setpoint-c");
  corner.tclk_over_c = flags.get_double("tclk-over-c");
  corner.amplitude_frac = flags.get_double("amplitude-frac");
  corner.te_over_c = flags.get_double("te-over-c");
  corner.mu_over_c = flags.get_double("mu-over-c");
  corner.cycles = static_cast<std::uint64_t>(flags.get_int("cycles"));
  corner.skip = static_cast<std::uint64_t>(flags.get_int("skip"));
  corner.free_ro_margin_frac = flags.get_double("free-ro-margin-frac");
  corner.quantization =
      static_cast<std::uint32_t>(flags.get_int("quantization"));

  std::string kind = "corner";
  if (!flags.positional().empty()) kind = flags.positional().front();
  if (kind == "corner") {
    request.kind = QueryKind::kCornerMargin;
    request.corner = corner;
  } else if (kind == "grid") {
    request.kind = QueryKind::kGridSweep;
    request.grid.base = corner;
    const std::string axis = flags.get_string("axis");
    if (axis == "tclk") {
      request.grid.axis = GridAxis::kTclkOverC;
    } else if (axis == "te") {
      request.grid.axis = GridAxis::kTeOverC;
    } else if (axis == "mu") {
      request.grid.axis = GridAxis::kMuOverC;
    } else {
      return fail("unknown --axis: " + axis);
    }
    const std::string scale = flags.get_string("scale");
    if (scale == "linear") {
      request.grid.scale = GridScale::kLinear;
    } else if (scale == "log") {
      request.grid.scale = GridScale::kLog;
    } else {
      return fail("unknown --scale: " + scale);
    }
    request.grid.lo = flags.get_double("lo");
    request.grid.hi = flags.get_double("hi");
    request.grid.points =
        static_cast<std::uint64_t>(flags.get_int("points"));
  } else if (kind == "yield") {
    request.kind = QueryKind::kYieldCurve;
    request.yield.chips = static_cast<std::uint64_t>(flags.get_int("chips"));
    request.yield.paths = static_cast<std::uint64_t>(flags.get_int("paths"));
    request.yield.setpoint_c = flags.get_double("setpoint-c");
    request.yield.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    request.yield.margin_lo = flags.get_double("margin-lo");
    request.yield.margin_hi = flags.get_double("margin-hi");
    request.yield.margin_points =
        static_cast<std::uint64_t>(flags.get_int("margin-points"));
  } else {
    return fail("unknown query kind: " + kind +
                " (expected corner | grid | yield)");
  }

  Result<Response> reply = Status::internal("query never ran");
  const int retries = flags.get_int("retries");
  if (retries > 0) {
    ResilientClientConfig resilient_config;
    resilient_config.retry.max_attempts =
        static_cast<std::uint32_t>(retries) + 1;
    resilient_config.retry.initial_backoff_ms =
        static_cast<std::uint32_t>(flags.get_int("retry-backoff-ms"));
    resilient_config.retry.total_backoff_budget_ms =
        static_cast<std::uint32_t>(flags.get_int("retry-budget-ms"));
    // One-shot CLI: the breaker exists to shed sustained load, not a
    // single query — leave it disabled.
    resilient_config.breaker.failure_threshold = 0;
    resilient_config.jitter_key =
        StreamKey{static_cast<std::uint64_t>(flags.get_int("retry-seed"))};
    // The first attempt reuses the connection dialed above; reconnects
    // dial the socket fresh.
    auto first = std::make_shared<std::optional<Client>>(std::move(client));
    resilient_config.connect = [socket_path, first]() -> Result<Client> {
      if (first->has_value()) {
        Client dialed = std::move(**first);
        first->reset();
        return dialed;
      }
      return Client::connect(socket_path);
    };
    ResilientClient resilient{std::move(resilient_config)};
    reply = resilient.query(request);
    const RetryStats& stats = resilient.stats();
    if (stats.retries > 0) {
      std::fprintf(stderr,
                   "[roclk_sweep] attempts=%llu retries=%llu "
                   "reconnects=%llu backoff_ms=%llu\n",
                   static_cast<unsigned long long>(stats.attempts),
                   static_cast<unsigned long long>(stats.retries),
                   static_cast<unsigned long long>(stats.reconnects),
                   static_cast<unsigned long long>(stats.backoff_ms_total));
    }
  } else {
    reply = client.query(request);
  }
  if (!reply.is_ok()) return fail(reply.status().to_string());
  print_response_meta(reply.value());
  print_values(request.kind, reply.value());
  if (reply.value().status == ResponseStatus::kShuttingDown) {
    std::fprintf(stderr,
                 "error: daemon is draining (SHUTTING_DOWN) — retryable; "
                 "rerun once it restarts (the cache journal makes the "
                 "retry a warm hit)\n");
    return 3;
  }
  return reply.value().ok() ? 0 : 1;
}
