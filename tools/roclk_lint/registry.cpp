#include "registry.hpp"

#include <algorithm>
#include <sstream>

namespace roclk::lint {

namespace {

constexpr std::string_view kBegin =
    "<!-- roclk-lint: stream-key-registry begin -->";
constexpr std::string_view kEnd =
    "<!-- roclk-lint: stream-key-registry end -->";

std::string trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t");
  return std::string{s.substr(first, last - first + 1)};
}

/// Splits a markdown table row `| a | b | c |` into trimmed cells.
std::vector<std::string> split_row(std::string_view line) {
  std::vector<std::string> cells;
  std::size_t start = line.find('|');
  if (start == std::string_view::npos) return cells;
  ++start;
  while (true) {
    const std::size_t next = line.find('|', start);
    if (next == std::string_view::npos) break;
    cells.push_back(trim(line.substr(start, next - start)));
    start = next + 1;
  }
  return cells;
}

bool is_separator_row(const std::vector<std::string>& cells) {
  return !cells.empty() &&
         std::all_of(cells.begin(), cells.end(), [](const std::string& c) {
           return !c.empty() &&
                  c.find_first_not_of("-: ") == std::string::npos;
         });
}

}  // namespace

bool TagRegistry::has_tag(std::string_view tag) const {
  return std::any_of(entries.begin(), entries.end(),
                     [&](const RegistryEntry& e) { return e.tag == tag; });
}

TagRegistry parse_tag_registry(std::string_view markdown, std::string* error) {
  TagRegistry registry;
  const auto fail = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return TagRegistry{};
  };

  std::istringstream in{std::string{markdown}};
  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  bool saw_begin = false;
  int tag_col = -1;
  int owner_col = -1;
  int derivation_col = -1;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = trim(line);
    if (trimmed == kBegin) {
      in_block = true;
      saw_begin = true;
      continue;
    }
    if (trimmed == kEnd) {
      in_block = false;
      continue;
    }
    if (!in_block || trimmed.empty()) continue;
    const auto cells = split_row(trimmed);
    if (cells.empty()) {
      return fail("stream-key registry: non-table line " +
                  std::to_string(lineno) + " inside the registry block");
    }
    if (tag_col < 0) {
      // First row is the header; locate the stable columns by name.
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == "tag") tag_col = static_cast<int>(i);
        if (cells[i] == "owner") owner_col = static_cast<int>(i);
        if (cells[i] == "derivation") derivation_col = static_cast<int>(i);
      }
      if (tag_col < 0 || owner_col < 0 || derivation_col < 0) {
        return fail(
            "stream-key registry: header row must name the columns "
            "`tag`, `owner` and `derivation`");
      }
      continue;
    }
    if (is_separator_row(cells)) continue;
    const auto cell = [&](int col) -> std::string {
      return static_cast<std::size_t>(col) < cells.size() ? cells[col]
                                                          : std::string{};
    };
    RegistryEntry entry;
    entry.tag = cell(tag_col);
    entry.owner = cell(owner_col);
    entry.derivation = cell(derivation_col);
    entry.line = lineno;
    if (entry.tag.empty()) {
      return fail("stream-key registry: row at line " +
                  std::to_string(lineno) + " has an empty tag cell");
    }
    registry.entries.push_back(std::move(entry));
  }
  if (!saw_begin) {
    return fail(std::string{"stream-key registry: marker `"} +
                std::string{kBegin} + "` not found");
  }
  if (in_block) {
    return fail(std::string{"stream-key registry: marker `"} +
                std::string{kEnd} + "` not found");
  }
  if (registry.entries.empty()) {
    return fail("stream-key registry: block contains no entries");
  }
  if (error != nullptr) error->clear();
  return registry;
}

std::string render_tag_registry(const TagRegistry& registry) {
  std::ostringstream out;
  out << kBegin << '\n';
  out << "| tag | owner | derivation |\n";
  out << "| --- | --- | --- |\n";
  for (const auto& entry : registry.entries) {
    out << "| " << entry.tag << " | " << entry.owner << " | "
        << entry.derivation << " |\n";
  }
  out << kEnd << '\n';
  return out.str();
}

}  // namespace roclk::lint
