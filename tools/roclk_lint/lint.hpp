// roclk_lint: project-specific static checks the generic toolchain
// cannot express.
//
// The rules encode repo invariants that matter for reproducibility:
//   round       std::round/lround/llround bypass round_ties_away and are
//               only allowed inside common/math.hpp, the one place the
//               tie-breaking contract is defined and tested.
//   rng         rand()/srand()/std::random_device are nondeterministic;
//               all randomness must flow through common/rng.
//   naked-new   owning raw new/delete; use containers or smart pointers.
//   endl        std::endl flushes on every call; use '\n'.
//   pragma-once every header must start its include guard with
//               #pragma once.
//   fault-rng   fault/ sources must draw randomness exclusively from
//               common/rng: <random> engines and distributions would
//               break the (seed, schedule) -> run reproducibility
//               contract of the fault subsystem.
//   socket-include
//               raw socket headers (<sys/socket.h>, <sys/un.h>, poll /
//               select / epoll, inet) are confined to the service
//               transport layer (roclk/service/transport.{hpp,cpp});
//               everything else speaks typed Frame values so protocol
//               logic stays testable without file descriptors.
//
// A finding on a line can be waived with an inline comment naming the
// rule: `// roclk-lint: allow(round)`.  Comments and string/character
// literals are stripped before matching, so prose and patterns (such as
// the ones in this tool's own source) never trigger findings.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace roclk::lint {

struct Finding {
  std::filesystem::path file;
  std::size_t line{0};  // 1-based
  std::string rule;
  std::string message;
};

/// Replaces comments and string/character literals (including raw
/// strings) with spaces, preserving newlines so line numbers survive.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view source);

/// Inline waivers: (1-based line, rule) pairs collected from
/// `roclk-lint: allow(rule[, rule...])` comments in the raw source.
/// Shared by the per-line rules and every project pass.
[[nodiscard]] std::vector<std::pair<std::size_t, std::string>>
collect_waivers(std::string_view source);

/// True when `line` carries a waiver for `rule`.
[[nodiscard]] bool is_waived(
    const std::vector<std::pair<std::size_t, std::string>>& waivers,
    std::size_t line, std::string_view rule);

/// Lints one file's contents.  `display_path` is used both for reporting
/// and for the per-file rule exemptions (math.hpp may round, rng.hpp/.cpp
/// may use the raw generators), so pass a path rooted at the repo.
[[nodiscard]] std::vector<Finding> lint_source(
    const std::filesystem::path& display_path, std::string_view source);

/// Recursively lints every .hpp/.cpp under `root` (files are reported
/// relative to `base` when given).  Throws std::runtime_error on I/O
/// failure.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& root,
    const std::filesystem::path& base = {});

}  // namespace roclk::lint
