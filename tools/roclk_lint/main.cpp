// roclk_lint driver: lints each path given on the command line and
// exits non-zero if any finding survives.  Run from CI (and ctest) as
//   roclk_lint <repo>/include <repo>/src <repo>/tools
#include <cstdio>
#include <exception>
#include <filesystem>

#include "lint.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: roclk_lint <dir-or-file>...\n");
    return 2;
  }
  try {
    std::size_t total = 0;
    for (int i = 1; i < argc; ++i) {
      const std::filesystem::path root{argv[i]};
      const auto findings = roclk::lint::lint_tree(root, root.parent_path());
      for (const auto& finding : findings) {
        std::fprintf(stderr, "%s:%zu: [%s] %s\n",
                     finding.file.generic_string().c_str(), finding.line,
                     finding.rule.c_str(), finding.message.c_str());
      }
      total += findings.size();
    }
    if (total != 0) {
      std::fprintf(stderr, "roclk_lint: %zu finding(s)\n", total);
      return 1;
    }
    std::printf("roclk_lint: clean\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
}
