// roclk_lint driver.
//
//   roclk_lint [options] [<dir-or-file>...]
//
//   <dir-or-file>...        per-line rules (round, rng, naked-new, ...)
//                           over each tree, as before
//   --project <root>        run the project passes (layering,
//                           determinism, lock discipline) over
//                           <root>/{include,src,tools,bench}
//   --design <file>         stream-key registry source
//                           (default: <root>/DESIGN.md)
//   --baseline <file>       fingerprints that do not gate (still
//                           reported, marked suppressed in SARIF)
//   --sarif <out>           write a SARIF 2.1.0 log of every finding
//   --write-baseline <out>  accept the current findings as the baseline
//
// Exit codes: 0 clean (or every finding baselined), 1 findings, 2 usage
// or I/O error.  CI runs:
//   roclk_lint include src tools --project . --baseline
//     tools/roclk_lint/baseline.json --sarif roclk_lint.sarif
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "passes.hpp"
#include "project.hpp"
#include "registry.hpp"
#include "sarif.hpp"

namespace {

namespace fs = std::filesystem;
using roclk::lint::Finding;

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("roclk_lint: cannot read " + path.string());
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: roclk_lint [--project <root>] [--design <file>]\n"
      "                  [--baseline <file>] [--sarif <out>]\n"
      "                  [--write-baseline <out>] [<dir-or-file>...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  fs::path project_root;
  fs::path design_path;
  fs::path baseline_path;
  fs::path sarif_path;
  fs::path write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    const auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--project") {
      const char* v = value();
      if (v == nullptr) return usage();
      project_root = v;
    } else if (arg == "--design") {
      const char* v = value();
      if (v == nullptr) return usage();
      design_path = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      baseline_path = v;
    } else if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage();
      sarif_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      write_baseline_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "roclk_lint: unknown option %s\n", argv[i]);
      return usage();
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty() && project_root.empty()) return usage();

  try {
    std::vector<Finding> findings;
    // Raw text per reported path, for fingerprinting.
    std::map<std::string, std::string> texts;

    // --- per-line rules over the positional trees (legacy behaviour).
    for (const auto& root : roots) {
      std::vector<fs::path> files;
      if (fs::is_regular_file(root)) {
        files.push_back(root);
      } else if (fs::is_directory(root)) {
        for (const auto& entry : fs::recursive_directory_iterator(root)) {
          if (!entry.is_regular_file()) continue;
          const std::string ext = entry.path().extension().string();
          if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
            files.push_back(entry.path());
          }
        }
      } else {
        throw std::runtime_error("roclk_lint: no such file or directory: " +
                                 root.string());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        const fs::path display = fs::proximate(file, root.parent_path());
        std::string text = read_file(file);
        auto file_findings = roclk::lint::lint_source(display, text);
        findings.insert(findings.end(),
                        std::make_move_iterator(file_findings.begin()),
                        std::make_move_iterator(file_findings.end()));
        texts.emplace(display.generic_string(), std::move(text));
      }
    }

    // --- project passes.
    if (!project_root.empty()) {
      const auto files = roclk::lint::load_project(project_root);
      for (const auto& file : files) {
        texts.emplace(file.path.generic_string(), file.text);
      }
      const fs::path design =
          design_path.empty() ? project_root / "DESIGN.md" : design_path;
      roclk::lint::TagRegistry registry;
      const roclk::lint::TagRegistry* registry_ptr = nullptr;
      fs::path registry_display = "DESIGN.md";
      if (fs::is_regular_file(design)) {
        std::string error;
        std::string design_text = read_file(design);
        registry = roclk::lint::parse_tag_registry(design_text, &error);
        if (!error.empty()) {
          std::fprintf(stderr, "%s: %s\n", design.string().c_str(),
                       error.c_str());
          return 2;
        }
        registry_ptr = &registry;
        registry_display = fs::proximate(design, project_root);
        texts.emplace(registry_display.generic_string(),
                      std::move(design_text));
      }
      auto project_findings =
          roclk::lint::check_project(files, registry_ptr, registry_display);
      findings.insert(findings.end(),
                      std::make_move_iterator(project_findings.begin()),
                      std::make_move_iterator(project_findings.end()));
    }

    // --- fingerprints, baseline, reports.
    roclk::lint::Baseline baseline;
    if (!baseline_path.empty() && fs::is_regular_file(baseline_path)) {
      baseline = roclk::lint::parse_baseline(read_file(baseline_path));
    }
    const auto line_of = [&](const fs::path& path,
                             std::size_t line) -> std::string {
      const auto it = texts.find(path.generic_string());
      if (it == texts.end() || line == 0) return {};
      std::istringstream in{it->second};
      std::string text;
      for (std::size_t n = 1; std::getline(in, text); ++n) {
        if (n == line) return text;
      }
      return {};
    };
    const auto annotated =
        roclk::lint::annotate_findings(findings, line_of, baseline);

    std::size_t gating = 0;
    for (const auto& f : annotated) {
      std::fprintf(stderr, "%s:%zu: [%s] %s%s\n",
                   f.finding.file.generic_string().c_str(), f.finding.line,
                   f.finding.rule.c_str(), f.finding.message.c_str(),
                   f.baselined ? " (baselined)" : "");
      if (!f.baselined) ++gating;
    }

    if (!sarif_path.empty()) {
      std::ofstream out{sarif_path, std::ios::binary};
      if (!out) {
        throw std::runtime_error("roclk_lint: cannot write " +
                                 sarif_path.string());
      }
      out << roclk::lint::to_sarif(annotated);
    }
    if (!write_baseline_path.empty()) {
      std::ofstream out{write_baseline_path, std::ios::binary};
      if (!out) {
        throw std::runtime_error("roclk_lint: cannot write " +
                                 write_baseline_path.string());
      }
      out << roclk::lint::render_baseline(annotated);
      std::fprintf(stderr, "roclk_lint: wrote %zu fingerprint(s) to %s\n",
                   annotated.size(), write_baseline_path.string().c_str());
    }

    if (gating != 0) {
      std::fprintf(stderr, "roclk_lint: %zu finding(s)\n", gating);
      return 1;
    }
    std::printf("roclk_lint: clean (%zu baselined)\n",
                annotated.size() - gating);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }
}
