// Round-trip and error-path tests for the DESIGN.md stream-key
// registry parser.
#include "registry.hpp"

#include <gtest/gtest.h>

#include <string>

namespace roclk::lint {
namespace {

const char* const kDoc =
    "# DESIGN\n"
    "\n"
    "prose before\n"
    "\n"
    "<!-- roclk-lint: stream-key-registry begin -->\n"
    "| tag | owner | derivation |\n"
    "| --- | --- | --- |\n"
    "| analysis.yield | analysis/yield | `root.split(\"analysis.yield\")` |\n"
    "| chip | analysis/yield | per-chip substream |\n"
    "| fault.schedule | fault/fault | prefix-stable events |\n"
    "<!-- roclk-lint: stream-key-registry end -->\n"
    "\n"
    "prose after\n";

TEST(RegistryTest, ParsesEntriesWithLineNumbers) {
  std::string error;
  const TagRegistry registry = parse_tag_registry(kDoc, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(registry.entries.size(), 3u);
  EXPECT_EQ(registry.entries[0].tag, "analysis.yield");
  EXPECT_EQ(registry.entries[0].owner, "analysis/yield");
  EXPECT_EQ(registry.entries[0].line, 8u);
  EXPECT_EQ(registry.entries[2].tag, "fault.schedule");
  EXPECT_TRUE(registry.has_tag("chip"));
  EXPECT_FALSE(registry.has_tag("nope"));
}

TEST(RegistryTest, RenderParseRoundTripsExactly) {
  std::string error;
  const TagRegistry registry = parse_tag_registry(kDoc, &error);
  ASSERT_TRUE(error.empty()) << error;
  const std::string rendered = render_tag_registry(registry);
  const TagRegistry reparsed = parse_tag_registry(rendered, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(reparsed.entries.size(), registry.entries.size());
  for (std::size_t i = 0; i < registry.entries.size(); ++i) {
    EXPECT_EQ(reparsed.entries[i].tag, registry.entries[i].tag);
    EXPECT_EQ(reparsed.entries[i].owner, registry.entries[i].owner);
    EXPECT_EQ(reparsed.entries[i].derivation, registry.entries[i].derivation);
  }
  // Rendering the reparse reproduces the rendering bit-for-bit: the
  // canonical form is a fixed point.
  EXPECT_EQ(render_tag_registry(reparsed), rendered);
}

TEST(RegistryTest, MissingMarkersIsAnError) {
  std::string error;
  const TagRegistry registry =
      parse_tag_registry("# no registry here\n", &error);
  EXPECT_TRUE(registry.entries.empty());
  EXPECT_NE(error.find("not found"), std::string::npos);
}

TEST(RegistryTest, MissingEndMarkerIsAnError) {
  std::string error;
  const std::string doc =
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| tag | owner | derivation |\n"
      "| --- | --- | --- |\n"
      "| a | b | c |\n";
  const TagRegistry registry = parse_tag_registry(doc, &error);
  EXPECT_TRUE(registry.entries.empty());
  EXPECT_NE(error.find("end"), std::string::npos);
}

TEST(RegistryTest, HeaderMustNameStableColumns) {
  std::string error;
  const std::string doc =
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| name | who | how |\n"
      "| --- | --- | --- |\n"
      "| a | b | c |\n"
      "<!-- roclk-lint: stream-key-registry end -->\n";
  const TagRegistry registry = parse_tag_registry(doc, &error);
  EXPECT_TRUE(registry.entries.empty());
  EXPECT_NE(error.find("tag"), std::string::npos);
}

TEST(RegistryTest, ColumnOrderIsFreeBecauseHeaderNamesBind) {
  std::string error;
  const std::string doc =
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| owner | derivation | tag |\n"
      "| --- | --- | --- |\n"
      "| yield | chain | analysis.yield |\n"
      "<!-- roclk-lint: stream-key-registry end -->\n";
  const TagRegistry registry = parse_tag_registry(doc, &error);
  ASSERT_EQ(registry.entries.size(), 1u);
  EXPECT_EQ(registry.entries[0].tag, "analysis.yield");
  EXPECT_EQ(registry.entries[0].owner, "yield");
}

TEST(RegistryTest, EmptyTagCellIsAnError) {
  std::string error;
  const std::string doc =
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| tag | owner | derivation |\n"
      "| --- | --- | --- |\n"
      "|  | b | c |\n"
      "<!-- roclk-lint: stream-key-registry end -->\n";
  const TagRegistry registry = parse_tag_registry(doc, &error);
  EXPECT_TRUE(registry.entries.empty());
  EXPECT_NE(error.find("empty tag"), std::string::npos);
}

TEST(RegistryTest, EmptyBlockIsAnError) {
  std::string error;
  const std::string doc =
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| tag | owner | derivation |\n"
      "| --- | --- | --- |\n"
      "<!-- roclk-lint: stream-key-registry end -->\n";
  const TagRegistry registry = parse_tag_registry(doc, &error);
  EXPECT_TRUE(registry.entries.empty());
  EXPECT_NE(error.find("no entries"), std::string::npos);
}

}  // namespace
}  // namespace roclk::lint
