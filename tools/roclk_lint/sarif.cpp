#include "sarif.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>

namespace roclk::lint {

namespace {

/// FNV-1a, the same cheap stable hash the rest of the tooling uses.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Collapses all whitespace runs so reformatting does not move a
/// finding out of the baseline.
std::string normalize_ws(std::string_view text) {
  std::string out;
  bool pending_space = false;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\r') {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* digits = "0123456789abcdef";
          out += "\\u00";
          out += digits[(c >> 4) & 0xF];
          out += digits[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleInfo {
  const char* id;
  const char* description;
};

/// Every rule either pass family can emit, in stable order — the SARIF
/// driver.rules array and the docs both derive from this list.
constexpr std::array<RuleInfo, 20> kRules{{
    {"round", "std::round family bypasses the ties-away contract"},
    {"rng", "raw C/std randomness outside common/rng"},
    {"xoshiro", "direct Xoshiro256 construction outside common/rng"},
    {"naked-new", "owning raw new/delete"},
    {"endl", "std::endl forces a flush"},
    {"pragma-once", "header missing #pragma once"},
    {"fault-rng", "fault/ must draw randomness from common/rng"},
    {"simd-include", "vendor intrinsics outside the simd.hpp shim"},
    {"socket-include", "socket headers outside service/transport"},
    {"layer-include", "include edge violates the module layering DAG"},
    {"layer-dag", "the layering adjacency table itself is cyclic"},
    {"include-cycle", "cyclic header include chain"},
    {"wall-clock", "wall-clock source in deterministic library code"},
    {"sleep", "wall-clock sleeping outside the retry backoff module"},
    {"env-source", "environment read in deterministic library code"},
    {"tag-unregistered", "StreamKey tag missing from the DESIGN.md registry"},
    {"tag-duplicate", "StreamKey tag registered twice"},
    {"naked-lock", "direct mutex lock()/unlock() instead of a RAII guard"},
    {"dead-mutex", "header mutex member never guarded by any TU"},
    {"lock-order", "second mutex acquired while one is held"},
}};

int rule_index(std::string_view id) {
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    if (id == kRules[i].id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string finding_fingerprint(const Finding& finding,
                                std::string_view line_text) {
  const std::string normalized = normalize_ws(line_text);
  const std::string context =
      normalized.empty() ? std::to_string(finding.line) : normalized;
  return finding.rule + ":" + finding.file.generic_string() + ":" +
         hex16(fnv1a(context));
}

Baseline parse_baseline(std::string_view text) {
  Baseline baseline;
  // Minimal reader: collect every quoted string after the "findings"
  // key.  The file is machine-written (render_baseline), so this does
  // not need a general JSON parser.
  const std::size_t key = text.find("\"findings\"");
  if (key == std::string_view::npos) return baseline;
  std::size_t pos = text.find('[', key);
  const std::size_t end = text.find(']', key);
  if (pos == std::string_view::npos || end == std::string_view::npos) {
    return baseline;
  }
  while (pos < end) {
    const std::size_t open = text.find('"', pos);
    if (open == std::string_view::npos || open >= end) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string_view::npos || close > end) break;
    baseline.fingerprints.insert(
        std::string{text.substr(open + 1, close - open - 1)});
    pos = close + 1;
  }
  return baseline;
}

std::string render_baseline(const std::vector<AnnotatedFinding>& findings) {
  std::vector<std::string> prints;
  prints.reserve(findings.size());
  for (const auto& f : findings) prints.push_back(f.fingerprint);
  std::sort(prints.begin(), prints.end());
  prints.erase(std::unique(prints.begin(), prints.end()), prints.end());
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < prints.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(prints[i])
        << "\"";
  }
  out << (prints.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::vector<AnnotatedFinding> annotate_findings(
    const std::vector<Finding>& findings,
    const std::function<std::string(const std::filesystem::path&,
                                    std::size_t)>& line_of,
    const Baseline& baseline) {
  std::vector<AnnotatedFinding> out;
  out.reserve(findings.size());
  for (const auto& finding : findings) {
    AnnotatedFinding annotated;
    annotated.finding = finding;
    annotated.fingerprint = finding_fingerprint(
        finding, line_of ? line_of(finding.file, finding.line) : "");
    annotated.baselined =
        baseline.fingerprints.count(annotated.fingerprint) != 0;
    out.push_back(std::move(annotated));
  }
  return out;
}

std::string to_sarif(const std::vector<AnnotatedFinding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"roclk_lint\",\n"
      << "          \"informationUri\": "
         "\"docs/static_analysis.md\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    out << "            {\"id\": \"" << kRules[i].id
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(kRules[i].description) << "\"}}"
        << (i + 1 < kRules.size() ? ",\n" : "\n");
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.finding.rule)
        << "\",\n";
    const int index = rule_index(f.finding.rule);
    if (index >= 0) out << "          \"ruleIndex\": " << index << ",\n";
    out << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \""
        << json_escape(f.finding.message) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.finding.file.generic_string()) << "\"},\n"
        << "                \"region\": {\"startLine\": "
        << (f.finding.line == 0 ? 1 : f.finding.line) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ],\n"
        << "          \"partialFingerprints\": {\"roclkFingerprint/v1\": \""
        << json_escape(f.fingerprint) << "\"}";
    if (f.baselined) {
      out << ",\n          \"suppressions\": [{\"kind\": \"external\", "
             "\"status\": \"accepted\", \"justification\": \"baselined in "
             "tools/roclk_lint/baseline.json\"}]";
    }
    out << "\n        }" << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace roclk::lint
