// SARIF 2.1.0 emission and the findings baseline.
//
// Fingerprints make findings stable across unrelated edits: a finding
// is identified by (rule, file, hash of the whitespace-normalized line
// text), never by line number — inserting a line above a historical
// finding does not churn the baseline.  The checked-in baseline file
// (tools/roclk_lint/baseline.json) lists fingerprints that do not gate:
// they still appear in the SARIF log, marked with a `suppressions`
// entry, so dashboards keep history while CI only fails on new
// findings.
#pragma once

#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace roclk::lint {

struct AnnotatedFinding {
  Finding finding;
  std::string fingerprint;
  bool baselined{false};
};

/// `line_text` is the raw source line the finding anchors to (empty if
/// unavailable; the fingerprint then degrades to rule+file+line).
[[nodiscard]] std::string finding_fingerprint(const Finding& finding,
                                              std::string_view line_text);

struct Baseline {
  std::set<std::string> fingerprints;
};

/// Parses a baseline file: JSON of the form
///   {"version": 1, "findings": ["<fingerprint>", ...]}
/// (a minimal reader — exactly the shape render_baseline writes).
[[nodiscard]] Baseline parse_baseline(std::string_view text);

/// Renders every finding's fingerprint as a baseline file, one per
/// line, sorted — `roclk_lint --write-baseline` uses this to accept the
/// current state of the tree.
[[nodiscard]] std::string render_baseline(
    const std::vector<AnnotatedFinding>& findings);

/// Computes fingerprints and marks baselined findings.  `line_of` maps
/// (repo-relative path, 1-based line) to the raw line text; return ""
/// when unknown.
[[nodiscard]] std::vector<AnnotatedFinding> annotate_findings(
    const std::vector<Finding>& findings,
    const std::function<std::string(const std::filesystem::path&,
                                    std::size_t)>& line_of,
    const Baseline& baseline);

/// Serializes findings as a SARIF 2.1.0 log (one run, tool `roclk_lint`,
/// every finding a `result` with rule metadata, partialFingerprints and
/// — for baselined findings — an accepted suppression).
[[nodiscard]] std::string to_sarif(
    const std::vector<AnnotatedFinding>& findings);

}  // namespace roclk::lint
