// The multi-pass project analyzer (DESIGN.md §15).  Each pass sees the
// whole project at once — the per-line rules in lint.hpp cannot express
// these checks:
//
//   layering     pass 1 — the #include graph over include/roclk/ + src/
//                must respect the architecture DAG (common at the bottom,
//                service at the top; the enforced edges mirror the build
//                order documented in src/CMakeLists.txt).  Rules:
//                `layer-include` (a file includes a module its layer may
//                not depend on) and `include-cycle` (header cycle, with
//                the full who-includes-whom chain in the message).
//
//   determinism  pass 2 — simulation results must be pure functions of
//                their inputs.  Rules: `wall-clock` (system_clock /
//                steady_clock / high_resolution_clock / time() /
//                gettimeofday / clock_gettime), `env-source`
//                (getenv/setenv family), and `sleep` (sleep_for /
//                nanosleep family; real sleeping is confined to the
//                retry backoff module so failure handling stays
//                replayable through injected hooks) — all banned in
//                library code; tools/, bench/, examples/, tests/ and
//                the service transport TU are allowlisted, and
//                service/retry.cpp may sleep — plus `tag-unregistered`
//                and `tag-duplicate`, cross-checking every StreamKey
//                split("...") literal against the DESIGN.md §13 registry.
//
//   locks        pass 3 — lock discipline.  Rules: `naked-lock` (direct
//                .lock()/.unlock()/.try_lock() on a declared mutex;
//                require lock_guard/unique_lock/scoped_lock),
//                `dead-mutex` (a mutex member declared in a header that
//                no file ever guards), and `lock-order` (acquiring a
//                second mutex while one is held — nested acquisition is
//                a deadlock hazard unless the global order is documented
//                with a waiver; a detected inversion names both sites).
//
// Every pass honours the shared `roclk-lint: allow(rule)` waivers.
#pragma once

#include <vector>

#include "lint.hpp"
#include "project.hpp"
#include "registry.hpp"

namespace roclk::lint {

/// Pass 1: layering DAG + include-cycle detection.
[[nodiscard]] std::vector<Finding> check_layering(
    const std::vector<SourceFile>& files);

/// Pass 2: wall-clock/environment audit and StreamKey tag cross-check.
/// `registry` may be null (tag checks are skipped, e.g. fixture trees
/// without a DESIGN.md); `registry_path` is used to report
/// `tag-duplicate` findings at their registry row.
[[nodiscard]] std::vector<Finding> check_determinism(
    const std::vector<SourceFile>& files, const TagRegistry* registry,
    const std::filesystem::path& registry_path = "DESIGN.md");

/// Pass 3: lock discipline.
[[nodiscard]] std::vector<Finding> check_locks(
    const std::vector<SourceFile>& files);

/// All three project passes in order, one findings list.
[[nodiscard]] std::vector<Finding> check_project(
    const std::vector<SourceFile>& files, const TagRegistry* registry,
    const std::filesystem::path& registry_path = "DESIGN.md");

}  // namespace roclk::lint
