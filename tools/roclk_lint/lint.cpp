#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace roclk::lint {

namespace {

bool path_ends_with(const std::filesystem::path& path, std::string_view tail) {
  const std::string s = path.generic_string();
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

bool is_header(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h";
}

bool word_before_is(std::string_view text, std::size_t pos,
                    std::string_view word) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  return pos >= word.size() &&
         text.compare(pos - word.size(), word.size(), word) == 0 &&
         (pos == word.size() ||
          !std::isalnum(static_cast<unsigned char>(text[pos - word.size() - 1])));
}

bool char_before_is(std::string_view text, std::size_t pos, char c) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  return pos > 0 && text[pos - 1] == c;
}

}  // namespace

/// Rules waived on a given 1-based line via `roclk-lint: allow(rule)`.
std::vector<std::pair<std::size_t, std::string>> collect_waivers(
    std::string_view source) {
  std::vector<std::pair<std::size_t, std::string>> waivers;
  static const std::regex kAllow{R"(roclk-lint:\s*allow\(([a-z0-9_,\- ]+)\))"};
  std::istringstream in{std::string{source}};
  std::string line;
  for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
    std::smatch match;
    if (!std::regex_search(line, match, kAllow)) continue;
    std::istringstream rules{match[1].str()};
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      const auto first = rule.find_first_not_of(' ');
      const auto last = rule.find_last_not_of(' ');
      if (first == std::string::npos) continue;
      waivers.emplace_back(lineno, rule.substr(first, last - first + 1));
    }
  }
  return waivers;
}

bool is_waived(
    const std::vector<std::pair<std::size_t, std::string>>& waivers,
    std::size_t line, std::string_view rule) {
  return std::any_of(waivers.begin(), waivers.end(), [&](const auto& w) {
    return w.first == line && w.second == rule;
  });
}

std::string strip_comments_and_strings(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim".  Skip to the
          // matching close sequence, blanking everything but newlines.
          std::size_t j = i + 2;
          std::string delim;
          while (j < source.size() && source[j] != '(') delim += source[j++];
          const std::string close = ")" + delim + "\"";
          std::size_t end = source.find(close, j);
          if (end == std::string_view::npos) end = source.size();
          else end += close.size();
          for (std::size_t k = i; k < end; ++k) {
            out += source[k] == '\n' ? '\n' : ' ';
          }
          i = end - 1;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'' &&
                   (i == 0 ||
                    (!std::isalnum(static_cast<unsigned char>(source[i - 1])) &&
                     source[i - 1] != '_'))) {
          // A quote after an identifier/number char is a digit separator
          // (1'000'000), not a character literal.
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (next == '\n') out.back() = '\n';
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_source(const std::filesystem::path& display_path,
                                 std::string_view source) {
  std::vector<Finding> findings;
  const auto waivers = collect_waivers(source);
  const auto waived = [&](std::size_t line, std::string_view rule) {
    for (const auto& [wline, wrule] : waivers) {
      if (wline == line && wrule == rule) return true;
    }
    return false;
  };
  const auto report = [&](std::size_t line, std::string rule,
                          std::string message) {
    if (waived(line, rule)) return;
    findings.push_back(
        {display_path, line, std::move(rule), std::move(message)});
  };

  if (is_header(display_path) &&
      source.find("#pragma once") == std::string_view::npos) {
    report(1, "pragma-once", "header is missing #pragma once");
  }

  const bool may_round = path_ends_with(display_path, "common/math.hpp");
  const bool may_intrinsics =
      path_ends_with(display_path, "common/simd.hpp");
  const bool may_sockets =
      path_ends_with(display_path, "service/transport.cpp") ||
      path_ends_with(display_path, "service/transport.hpp");
  const bool may_raw_rng = path_ends_with(display_path, "common/rng.hpp") ||
                           path_ends_with(display_path, "common/rng.cpp");
  const std::string generic = display_path.generic_string();
  const bool is_fault_source = generic.rfind("fault/", 0) == 0 ||
                               generic.find("/fault/") != std::string::npos;

  static const std::regex kRound{R"(std\s*::\s*(l?l?round)\s*\()"};
  static const std::regex kRand{R"((^|[^:\w])(std\s*::\s*)?s?rand\s*\()"};
  static const std::regex kRandomDevice{R"(\brandom_device\b)"};
  static const std::regex kNakedNew{R"(\bnew\b)"};
  static const std::regex kNakedDelete{R"(\bdelete\b)"};
  static const std::regex kEndl{R"(std\s*::\s*endl\b)"};
  static const std::regex kIncludeLine{R"(^\s*#\s*include\b)"};
  static const std::regex kRandomHeader{R"(#\s*include\s*<random>)"};
  static const std::regex kIntrinsicsHeader{
      R"(#\s*include\s*<([a-z0-9]*mmintrin|immintrin|x86intrin|x86gprintrin|)"
      R"(arm_neon|arm_sve|arm_acle)\.h>)"};
  static const std::regex kStdRandom{
      R"(std\s*::\s*(mt19937|minstd_rand|ranlux\w*|knuth_b|)"
      R"(default_random_engine|[a-z_]+_distribution)\b)"};
  // Construction only: `Xoshiro256 rng{seed}` / `Xoshiro256{seed}`.
  // References, members (`Xoshiro256 rng_;`) and the class definition in
  // common/rng.hpp don't match.
  static const std::regex kXoshiroConstruct{R"(Xoshiro256\s*(\w+\s*)?\{)"};
  static const std::regex kSocketHeader{
      R"(#\s*include\s*<(sys/socket\.h|sys/un\.h|netinet/[a-z_/]+\.h|)"
      R"(arpa/inet\.h|poll\.h|sys/epoll\.h|sys/select\.h)>)"};

  const std::string stripped = strip_comments_and_strings(source);
  std::istringstream in{stripped};
  std::string line;
  for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
    std::smatch match;
    if (!may_round && std::regex_search(line, match, kRound)) {
      report(lineno, "round",
             "std::" + match[1].str() +
                 " bypasses the ties-away contract; use " +
                 (match[1].str() == "round" ? "round_ties_away"
                                            : "llround_ties_away") +
                 " from roclk/common/math.hpp");
    }
    if (!may_raw_rng) {
      if (std::regex_search(line, match, kRand)) {
        report(lineno, "rng",
               "raw C rand()/srand() is nondeterministic across platforms; "
               "use roclk/common/rng.hpp");
      }
      if (std::regex_search(line, kRandomDevice)) {
        report(lineno, "rng",
               "std::random_device breaks reproducibility; seed via "
               "roclk/common/rng.hpp");
      }
      if (std::regex_search(line, kXoshiroConstruct)) {
        report(lineno, "xoshiro",
               "direct Xoshiro256 construction couples draws to evaluation "
               "order; derive a StreamKey and use CounterRng from "
               "roclk/common/stream_key.hpp (sequential generators that "
               "genuinely accumulate state may waive this)");
      }
    }
    // `#include <new>` contains the keyword but allocates nothing.
    const bool include_line = std::regex_search(line, kIncludeLine);
    if (!include_line) {
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kNakedNew);
           it != std::sregex_iterator{}; ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        if (word_before_is(line, pos, "operator")) continue;
        report(lineno, "naked-new",
               "owning raw 'new'; use std::make_unique or a container");
      }
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kNakedDelete);
           it != std::sregex_iterator{}; ++it) {
        const auto pos = static_cast<std::size_t>(it->position());
        if (char_before_is(line, pos, '=')) continue;  // deleted function
        if (word_before_is(line, pos, "operator")) continue;
        report(lineno, "naked-new",
               "raw 'delete'; the owner should be a smart pointer or "
               "container");
      }
    }
    if (std::regex_search(line, kEndl)) {
      report(lineno, "endl", "std::endl forces a flush; write '\\n' instead");
    }
    if (!may_intrinsics && std::regex_search(line, kIntrinsicsHeader)) {
      report(lineno, "simd-include",
             "vendor SIMD intrinsics are confined to roclk/common/simd.hpp "
             "(the dispatch shim); write kernels against its backend traits");
    }
    if (!may_sockets && std::regex_search(line, kSocketHeader)) {
      report(lineno, "socket-include",
             "raw socket APIs are confined to roclk/service/transport.{hpp,"
             "cpp}; speak Frame values through the transport layer instead");
    }
    if (is_fault_source) {
      if (std::regex_search(line, kRandomHeader)) {
        report(lineno, "fault-rng",
               "fault/ must not include <random>; draw randomness from "
               "roclk/common/rng.hpp so (seed, schedule) stays reproducible");
      } else if (std::regex_search(line, match, kStdRandom)) {
        report(lineno, "fault-rng",
               "fault/ must not use std::" + match[1].str() +
                   "; draw randomness from roclk/common/rng.hpp so "
                   "(seed, schedule) stays reproducible");
      }
    }
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root,
                               const std::filesystem::path& base) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
  } else if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  } else {
    throw std::runtime_error("roclk_lint: no such file or directory: " +
                             root.string());
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      throw std::runtime_error("roclk_lint: cannot read " + file.string());
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const fs::path display =
        base.empty() ? file : fs::proximate(file, base);
    auto file_findings = lint_source(display, contents.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace roclk::lint
