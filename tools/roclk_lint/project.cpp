#include "project.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace roclk::lint {

namespace {

const char* const kLibraryModules[] = {
    "common", "signal",  "variation", "fault",    "power", "cdn", "chip",
    "osc",    "sensor",  "control",   "core",     "analysis", "service",
};

bool is_library_module(std::string_view name) {
  return std::any_of(std::begin(kLibraryModules), std::end(kLibraryModules),
                     [&](const char* m) { return name == m; });
}

/// Splits a generic path into components.
std::vector<std::string> components(const std::filesystem::path& path) {
  std::vector<std::string> parts;
  for (const auto& part : path) parts.push_back(part.generic_string());
  return parts;
}

}  // namespace

std::string module_of(const std::filesystem::path& repo_rel) {
  const auto parts = components(repo_rel);
  // include/roclk/<module>/... — headers of the layered library.
  if (parts.size() >= 4 && parts[0] == "include" && parts[1] == "roclk" &&
      is_library_module(parts[2])) {
    return parts[2];
  }
  // src/<module>/... — the matching TUs (and private headers).
  if (parts.size() >= 3 && parts[0] == "src" && is_library_module(parts[1])) {
    return parts[1];
  }
  return {};
}

Scope scope_of(const std::filesystem::path& repo_rel) {
  if (!module_of(repo_rel).empty()) return Scope::kLibrary;
  const auto parts = components(repo_rel);
  if (!parts.empty() && (parts[0] == "tools" || parts[0] == "bench" ||
                         parts[0] == "examples" || parts[0] == "tests")) {
    return Scope::kApp;
  }
  return Scope::kOther;
}

std::vector<SourceFile> load_project(const std::filesystem::path& repo_root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const char* top : {"include", "src", "tools", "bench"}) {
    const fs::path root = repo_root / top;
    if (!fs::is_directory(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".h" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      std::ifstream in{entry.path(), std::ios::binary};
      if (!in) {
        throw std::runtime_error("roclk_lint: cannot read " +
                                 entry.path().string());
      }
      std::ostringstream contents;
      contents << in.rdbuf();
      files.push_back({fs::proximate(entry.path(), repo_root).generic_string(),
                       contents.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path.generic_string() < b.path.generic_string();
            });
  return files;
}

std::vector<IncludeEdge> project_includes(
    const std::vector<SourceFile>& files) {
  static const std::regex kInclude{
      R"(^\s*#\s*include\s*["<](roclk/[^">]+)[">])"};
  std::vector<IncludeEdge> edges;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string stripped = strip_comments_only(files[f].text);
    std::istringstream in{stripped};
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
      std::smatch match;
      if (std::regex_search(line, match, kInclude)) {
        edges.push_back({f, lineno, match[1].str()});
      }
    }
  }
  return edges;
}

std::string strip_comments_only(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string: copy through verbatim (contents are wanted here).
          std::size_t j = i + 2;
          std::string delim;
          while (j < source.size() && source[j] != '(') delim += source[j++];
          const std::string close = ")" + delim + "\"";
          std::size_t end = source.find(close, j);
          if (end == std::string_view::npos) end = source.size();
          else end += close.size();
          out.append(source.substr(i, end - i));
          i = end - 1;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'' &&
                   (i == 0 ||
                    (!std::isalnum(static_cast<unsigned char>(source[i - 1])) &&
                     source[i - 1] != '_'))) {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        out += c;
        if (c == '\\' && i + 1 < source.size()) {
          out += source[i + 1];
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

}  // namespace roclk::lint
