// Pass 1: include-graph layering.  The enforced DAG is the library's
// build order (src/CMakeLists.txt, bottom-up):
//
//   common
//     -> signal, cdn, fault, power          (leaf value layers)
//     -> variation, control                 (signal consumers)
//     -> chip, osc                          (variation consumers)
//     -> sensor                             (reads the oscillator)
//     -> core                               (composes the loop)
//     -> analysis -> service
//
// A module may directly include only the modules listed for it below;
// the map is itself checked for acyclicity so a bad edit to the table
// cannot silently legalise a cycle.  tools/, bench/, examples/ and
// tests/ sit outside the DAG and may include anything.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "passes.hpp"

namespace roclk::lint {

namespace {

const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"signal", {"common"}},
      {"cdn", {"common"}},
      {"fault", {"common"}},
      {"power", {"common"}},
      {"variation", {"common", "signal"}},
      {"control", {"common", "signal"}},
      {"chip", {"common", "signal", "variation"}},
      {"osc", {"common", "signal", "variation"}},
      {"sensor", {"common", "signal", "variation", "osc"}},
      {"core",
       {"common", "signal", "variation", "fault", "power", "cdn", "control",
        "chip", "osc", "sensor"}},
      {"analysis",
       {"common", "signal", "variation", "fault", "power", "cdn", "control",
        "chip", "osc", "sensor", "core"}},
      {"service", {"common", "analysis"}},
  };
  return kAllowed;
}

/// Module of an include target "roclk/<module>/...", or "" (umbrella /
/// unknown).
std::string target_module(std::string_view target) {
  if (target.rfind("roclk/", 0) != 0) return {};
  const std::string_view rest = target.substr(6);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  std::string module{rest.substr(0, slash)};
  return allowed_deps().count(module) != 0 ? module : std::string{};
}

std::string join(const std::set<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out.empty() ? std::string{"(nothing)"} : out;
}

/// DFS colouring over the module adjacency itself: a cycle here is a
/// bug in this file, reported loudly rather than silently legalised.
bool adjacency_is_acyclic() {
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  const auto& deps = allowed_deps();
  std::vector<std::pair<std::string, bool>> stack;
  for (const auto& [module, _] : deps) {
    if (colour[module] != 0) continue;
    stack.push_back({module, false});
    while (!stack.empty()) {
      auto [node, done] = stack.back();
      stack.pop_back();
      if (done) {
        colour[node] = 2;
        continue;
      }
      if (colour[node] == 2) continue;
      if (colour[node] == 1) return false;
      colour[node] = 1;
      stack.push_back({node, true});
      for (const auto& dep : deps.at(node)) {
        if (colour[dep] == 1) return false;
        if (colour[dep] == 0) stack.push_back({dep, false});
      }
    }
  }
  return true;
}

}  // namespace

std::vector<Finding> check_layering(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  if (!adjacency_is_acyclic()) {
    findings.push_back({"tools/roclk_lint/layering.cpp", 1, "layer-dag",
                        "the allowed-dependency table is cyclic; fix the "
                        "adjacency map before trusting any layering result"});
    return findings;
  }

  const auto edges = project_includes(files);
  std::vector<std::vector<std::pair<std::size_t, std::string>>> waivers;
  waivers.reserve(files.size());
  for (const auto& file : files) waivers.push_back(collect_waivers(file.text));

  // --- layer-include: every library include edge must be allowed.
  for (const auto& edge : edges) {
    const SourceFile& from = files[edge.file_index];
    if (scope_of(from.path) != Scope::kLibrary) continue;
    const std::string from_module = module_of(from.path);
    const std::string to_module = target_module(edge.target);
    if (is_waived(waivers[edge.file_index], edge.line, "layer-include")) {
      continue;
    }
    if (to_module.empty()) {
      findings.push_back(
          {from.path, edge.line, "layer-include",
           "library module `" + from_module + "` includes `" + edge.target +
               "`, which is not a layered module header (the roclk.hpp "
               "umbrella is app-facing and pulls in every layer)"});
      continue;
    }
    if (to_module == from_module) continue;
    const auto& allowed = allowed_deps().at(from_module);
    if (allowed.count(to_module) == 0) {
      findings.push_back(
          {from.path, edge.line, "layer-include",
           "layering violation: `" + from_module + "` -> `" + to_module +
               "` (" + from.path.generic_string() + " includes " +
               edge.target + "); `" + from_module +
               "` may depend only on: " + join(allowed)});
    }
  }

  // --- include-cycle: DFS over the header include graph with the full
  // who-includes-whom chain reconstructed from the DFS stack.
  std::map<std::string, std::size_t> header_index;  // canonical -> file
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::string generic = files[f].path.generic_string();
    if (generic.rfind("include/", 0) == 0) {
      header_index.emplace(generic.substr(8), f);
    }
  }
  // Adjacency restricted to headers, keeping the include line for the
  // diagnostic anchor.
  std::map<std::size_t, std::vector<std::pair<std::size_t, std::size_t>>>
      header_edges;  // file -> [(target file, line)]
  for (const auto& edge : edges) {
    const std::string generic = files[edge.file_index].path.generic_string();
    if (generic.rfind("include/", 0) != 0) continue;
    const auto it = header_index.find(edge.target);
    if (it == header_index.end()) continue;
    header_edges[edge.file_index].push_back({it->second, edge.line});
  }

  std::map<std::size_t, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::size_t> path;      // grey stack, in DFS order
  std::set<std::set<std::size_t>> reported;

  const std::function<void(std::size_t)> dfs = [&](std::size_t node) {
    colour[node] = 1;
    path.push_back(node);
    for (const auto& [next, line] : header_edges[node]) {
      if (colour[next] == 1) {
        // Back edge: the cycle is the stack suffix from `next`.
        const auto start = std::find(path.begin(), path.end(), next);
        std::set<std::size_t> members{start, path.end()};
        if (reported.insert(members).second &&
            !is_waived(waivers[node], line, "include-cycle")) {
          std::ostringstream chain;
          for (auto it = start; it != path.end(); ++it) {
            chain << files[*it].path.generic_string() << " -> ";
          }
          chain << files[next].path.generic_string();
          findings.push_back({files[node].path, line, "include-cycle",
                              "header include cycle: " + chain.str()});
        }
      } else if (colour[next] == 0) {
        dfs(next);
      }
    }
    path.pop_back();
    colour[node] = 2;
  };
  for (const auto& [name, f] : header_index) {
    (void)name;
    if (colour[f] == 0) dfs(f);
  }

  return findings;
}

}  // namespace roclk::lint
