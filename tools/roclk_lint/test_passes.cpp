// Unit tests for the project passes (layering, determinism, locks).
// Fixtures are in-memory (path, text) pairs; banned constructs appear
// only inside this file's string literals, so the per-line rules stay
// quiet on the analyzer's own source.
#include "passes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace roclk::lint {
namespace {

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

const Finding* find_rule(const std::vector<Finding>& findings,
                         const std::string& rule) {
  const auto it =
      std::find_if(findings.begin(), findings.end(),
                   [&](const Finding& f) { return f.rule == rule; });
  return it == findings.end() ? nullptr : &*it;
}

TagRegistry small_registry() {
  TagRegistry registry;
  registry.entries.push_back({"analysis.yield", "analysis/yield", "root", 10});
  registry.entries.push_back({"chip", "analysis/yield", "per chip", 11});
  return registry;
}

// ---------------------------------------------------------------- layering

TEST(LayeringTest, FlagsBackEdgeInclude) {
  const std::vector<SourceFile> files = {
      {"src/osc/ring.cpp",
       "#include \"roclk/analysis/yield.hpp\"\nint x;\n"},
  };
  const auto findings = check_layering(files);
  ASSERT_TRUE(has_rule(findings, "layer-include"));
  const Finding* f = find_rule(findings, "layer-include");
  EXPECT_EQ(f->line, 1u);
  EXPECT_NE(f->message.find("`osc` -> `analysis`"), std::string::npos);
  EXPECT_NE(f->message.find("may depend only on"), std::string::npos);
}

TEST(LayeringTest, AllowsDocumentedDependencies) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "#include \"roclk/control/iir_control.hpp\"\n"
       "#include \"roclk/sensor/tdc.hpp\"\n"
       "#include \"roclk/common/math.hpp\"\n"},
      {"src/service/server.cpp",
       "#include \"roclk/analysis/metrics.hpp\"\n"},
      {"src/variation/sources.cpp",
       "#include \"roclk/signal/waveform.hpp\"\n"},
  };
  EXPECT_TRUE(check_layering(files).empty());
}

TEST(LayeringTest, FlagsServiceReachingBelowAnalysis) {
  const std::vector<SourceFile> files = {
      {"src/service/server.cpp",
       "#include \"roclk/core/loop_simulator.hpp\"\n"},
  };
  EXPECT_TRUE(has_rule(check_layering(files), "layer-include"));
}

TEST(LayeringTest, FlagsUmbrellaIncludeFromLibrary) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp", "#include \"roclk/roclk.hpp\"\n"},
  };
  const auto findings = check_layering(files);
  ASSERT_TRUE(has_rule(findings, "layer-include"));
  EXPECT_NE(find_rule(findings, "layer-include")->message.find("umbrella"),
            std::string::npos);
}

TEST(LayeringTest, AppScopeIsOutsideTheDag) {
  const std::vector<SourceFile> files = {
      {"tools/roclk_sim.cpp", "#include \"roclk/roclk.hpp\"\n"},
      {"bench/runner.cpp", "#include \"roclk/service/server.hpp\"\n"},
  };
  EXPECT_TRUE(check_layering(files).empty());
}

TEST(LayeringTest, WaiverSuppressesBackEdge) {
  const std::vector<SourceFile> files = {
      {"src/osc/ring.cpp",
       "#include \"roclk/analysis/yield.hpp\"  "
       "// roclk-lint: allow(layer-include)\n"},
  };
  EXPECT_TRUE(check_layering(files).empty());
}

TEST(LayeringTest, DetectsIncludeCycleWithChain) {
  const std::vector<SourceFile> files = {
      {"include/roclk/core/a.hpp",
       "#pragma once\n#include \"roclk/core/b.hpp\"\n"},
      {"include/roclk/core/b.hpp",
       "#pragma once\n#include \"roclk/core/c.hpp\"\n"},
      {"include/roclk/core/c.hpp",
       "#pragma once\n#include \"roclk/core/a.hpp\"\n"},
  };
  const auto findings = check_layering(files);
  ASSERT_TRUE(has_rule(findings, "include-cycle"));
  const Finding* f = find_rule(findings, "include-cycle");
  // The chain names every participant, whoever the DFS entered first.
  EXPECT_NE(f->message.find("roclk/core/a.hpp"), std::string::npos);
  EXPECT_NE(f->message.find("roclk/core/b.hpp"), std::string::npos);
  EXPECT_NE(f->message.find("roclk/core/c.hpp"), std::string::npos);
  EXPECT_NE(f->message.find(" -> "), std::string::npos);
}

TEST(LayeringTest, SelfIncludeIsACycle) {
  const std::vector<SourceFile> files = {
      {"include/roclk/core/a.hpp",
       "#pragma once\n#include \"roclk/core/a.hpp\"\n"},
  };
  EXPECT_TRUE(has_rule(check_layering(files), "include-cycle"));
}

TEST(LayeringTest, AcyclicHeadersAreClean) {
  const std::vector<SourceFile> files = {
      {"include/roclk/core/a.hpp",
       "#pragma once\n#include \"roclk/common/math.hpp\"\n"},
      {"include/roclk/common/math.hpp", "#pragma once\n"},
  };
  EXPECT_FALSE(has_rule(check_layering(files), "include-cycle"));
}

// ------------------------------------------------------------- determinism

TEST(DeterminismTest, FlagsWallClockInLibrary) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "auto t0 = std::chrono::steady_clock::now();\n"},
  };
  const auto findings = check_determinism(files, nullptr);
  ASSERT_TRUE(has_rule(findings, "wall-clock"));
  EXPECT_NE(find_rule(findings, "wall-clock")->message.find("steady_clock"),
            std::string::npos);
}

TEST(DeterminismTest, FlagsTimeCallButNotLookalikes) {
  EXPECT_TRUE(has_rule(
      check_determinism({{"src/core/a.cpp", "auto t = std::time(nullptr);\n"}},
                        nullptr),
      "wall-clock"));
  EXPECT_TRUE(has_rule(
      check_determinism({{"src/core/a.cpp", "auto t = time(nullptr);\n"}},
                        nullptr),
      "wall-clock"));
  // Members, longer identifiers and declarations do not read the clock.
  EXPECT_TRUE(check_determinism(
                  {{"src/core/a.cpp",
                    "double wall_time(int);\nauto v = trace.time();\n"
                    "auto w = sim->time();\nint timer(int);\n"}},
                  nullptr)
                  .empty());
}

TEST(DeterminismTest, FlagsEnvironmentReads) {
  const auto findings = check_determinism(
      {{"src/common/flags.cpp", "const char* v = std::getenv(\"X\");\n"}},
      nullptr);
  ASSERT_TRUE(has_rule(findings, "env-source"));
}

TEST(DeterminismTest, AllowlistsAppScopeAndTransport) {
  const std::vector<SourceFile> files = {
      {"bench/runner.cpp", "auto t = std::chrono::steady_clock::now();\n"},
      {"tools/sweepd.cpp", "const char* v = getenv(\"HOME\");\n"},
      {"src/service/transport.cpp",
       "auto deadline = std::chrono::steady_clock::now();\n"},
      {"include/roclk/service/transport.hpp",
       "#pragma once\nusing Clock = std::chrono::steady_clock;\n"},
  };
  EXPECT_TRUE(check_determinism(files, nullptr).empty());
}

TEST(DeterminismTest, FlagsSleepOutsideTheBackoffModule) {
  const auto findings = check_determinism(
      {{"src/core/loop.cpp",
        "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"}},
      nullptr);
  ASSERT_TRUE(has_rule(findings, "sleep"));
  EXPECT_NE(find_rule(findings, "sleep")->message.find("sleep_ms"),
            std::string::npos);
  EXPECT_TRUE(has_rule(
      check_determinism({{"src/common/rng.cpp", "nanosleep(&ts, nullptr);\n"}},
                        nullptr),
      "sleep"));
}

TEST(DeterminismTest, SleepIsAllowedWhereRealWaitingLives) {
  // The backoff module owns the default sleep hook; the transport TU and
  // app scope measure real time by design.
  const std::vector<SourceFile> files = {
      {"src/service/retry.cpp",
       "std::this_thread::sleep_for(std::chrono::milliseconds(ms));\n"},
      {"src/service/transport.cpp", "nanosleep(&ts, nullptr);\n"},
      {"bench/soak.cpp", "sleep(1);\n"},
      {"tools/sweepd.cpp", "usleep(100);\n"},
  };
  EXPECT_FALSE(has_rule(check_determinism(files, nullptr), "sleep"));
}

TEST(DeterminismTest, SleepLookalikesAndWaiversAreClean) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "void maybe_sleep(int);\nauto s = config.sleep_budget;\n"},
      {"src/core/poll.cpp",
       "std::this_thread::sleep_for(tick);  "
       "// roclk-lint: allow(sleep) hardware settle time\n"},
  };
  EXPECT_FALSE(has_rule(check_determinism(files, nullptr), "sleep"));
}

TEST(DeterminismTest, WaiverSuppressesWithJustification) {
  const std::vector<SourceFile> files = {
      {"src/common/simd.cpp",
       "const char* raw = std::getenv(\"ROCLK_SIMD\");  "
       "// roclk-lint: allow(env-source) documented override\n"},
  };
  EXPECT_TRUE(check_determinism(files, nullptr).empty());
}

TEST(DeterminismTest, FlagsUnregisteredTag) {
  const TagRegistry registry = small_registry();
  const auto findings = check_determinism(
      {{"src/analysis/yield.cpp",
        "auto k = root.split(\"analysis.yield\").split(\"oops\");\n"}},
      &registry);
  ASSERT_TRUE(has_rule(findings, "tag-unregistered"));
  EXPECT_NE(find_rule(findings, "tag-unregistered")->message.find("`oops`"),
            std::string::npos);
  // The registered tag on the same line is not a finding.
  EXPECT_EQ(findings.size(), 1u);
}

TEST(DeterminismTest, RegisteredTagsAndCommentProseAreClean) {
  const TagRegistry registry = small_registry();
  const std::vector<SourceFile> files = {
      {"src/analysis/yield.cpp",
       "// derived as key.split(\"prose_only_tag\") per DESIGN.md\n"
       "auto k = root.split(\"analysis.yield\").split(\"chip\").at(i);\n"},
      {"tests/analysis/test_yield.cpp",
       "auto k = root.split(\"test_scratch\");\n"},  // app scope: exempt
  };
  EXPECT_TRUE(check_determinism(files, &registry).empty());
}

TEST(DeterminismTest, WaiverSuppressesUnregisteredTag) {
  const TagRegistry registry = small_registry();
  const auto findings = check_determinism(
      {{"src/analysis/yield.cpp",
        "auto k = root.split(\"scratch\");  "
        "// roclk-lint: allow(tag-unregistered)\n"}},
      &registry);
  EXPECT_TRUE(findings.empty());
}

TEST(DeterminismTest, FlagsDuplicateRegistryTag) {
  TagRegistry registry = small_registry();
  registry.entries.push_back({"chip", "somewhere/else", "alias!", 42});
  const auto findings = check_determinism({}, &registry, "DESIGN.md");
  ASSERT_TRUE(has_rule(findings, "tag-duplicate"));
  const Finding* f = find_rule(findings, "tag-duplicate");
  EXPECT_EQ(f->file.generic_string(), "DESIGN.md");
  EXPECT_EQ(f->line, 42u);
}

// ------------------------------------------------------------------- locks

TEST(LockTest, FlagsNakedLockAndUnlock) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex m_;\n"
       "void f() { m_.lock(); work(); m_.unlock(); }\n"},
  };
  const auto findings = check_locks(files);
  ASSERT_TRUE(has_rule(findings, "naked-lock"));
  EXPECT_EQ(std::count_if(findings.begin(), findings.end(),
                          [](const Finding& f) {
                            return f.rule == "naked-lock";
                          }),
            2);
  EXPECT_NE(find_rule(findings, "naked-lock")->message.find("lock_guard"),
            std::string::npos);
}

TEST(LockTest, GuardCallsAndGuardObjectsAreClean) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex m_;\n"
       "void f() {\n"
       "  std::unique_lock lk{m_};\n"
       "  cv.wait(lk);\n"
       "  lk.unlock();\n"  // unique_lock::unlock is RAII-safe
       "}\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "naked-lock"));
}

TEST(LockTest, WaiverSuppressesNakedLock) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex m_;\n"
       "void f() { m_.lock(); }  // roclk-lint: allow(naked-lock)\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "naked-lock"));
}

TEST(LockTest, FlagsHeaderMutexNobodyGuards) {
  const std::vector<SourceFile> files = {
      {"include/roclk/core/thing.hpp",
       "#pragma once\nclass T { std::mutex mu_;\n int x_; };\n"},
  };
  const auto findings = check_locks(files);
  ASSERT_TRUE(has_rule(findings, "dead-mutex"));
  EXPECT_EQ(find_rule(findings, "dead-mutex")->line, 2u);
}

TEST(LockTest, GuardInAnyTuMarksHeaderMutexLive) {
  const std::vector<SourceFile> files = {
      {"include/roclk/core/thing.hpp",
       "#pragma once\nclass T { std::mutex mu_; };\n"},
      {"src/core/thing.cpp",
       "void T::poke() { std::lock_guard lock{mu_}; }\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "dead-mutex"));
}

TEST(LockTest, LocalMutexesAreNotDeadMutexCandidates) {
  const std::vector<SourceFile> files = {
      {"src/core/thing.cpp", "std::mutex m;\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "dead-mutex"));
}

TEST(LockTest, FlagsSecondAcquisitionWhileHeld) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  std::lock_guard la{a_};\n"
       "  std::lock_guard lb{b_};\n"
       "}\n"},
  };
  const auto findings = check_locks(files);
  ASSERT_TRUE(has_rule(findings, "lock-order"));
  const Finding* f = find_rule(findings, "lock-order");
  EXPECT_EQ(f->line, 5u);
  EXPECT_NE(f->message.find("`b_`"), std::string::npos);
  EXPECT_NE(f->message.find("`a_`"), std::string::npos);
}

TEST(LockTest, ReportsInvertedOrderAcrossFunctions) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  std::lock_guard la{a_};\n"
       "  { std::lock_guard lb{b_}; }\n"
       "}\n"
       "void g() {\n"
       "  std::lock_guard lb{b_};\n"
       "  { std::lock_guard la{a_}; }\n"
       "}\n"},
  };
  const auto findings = check_locks(files);
  const auto inverted = std::find_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule == "lock-order" &&
               f.message.find("inverted") != std::string::npos;
      });
  ASSERT_NE(inverted, findings.end());
  EXPECT_EQ(inverted->line, 9u);
}

TEST(LockTest, GuardReleaseEndsTheHold) {
  // The coalesced-waiter idiom: drop the flight lock before taking the
  // service lock — sequential, not nested.
  const std::vector<SourceFile> files = {
      {"src/service/server.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  std::unique_lock la{a_};\n"
       "  la.unlock();\n"
       "  std::lock_guard lb{b_};\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "lock-order"));
}

TEST(LockTest, ScopeExitEndsTheHold) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  { std::lock_guard la{a_}; }\n"
       "  std::lock_guard lb{b_};\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "lock-order"));
}

TEST(LockTest, WaiverSuppressesLockOrder) {
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  std::lock_guard la{a_};\n"
       "  std::lock_guard lb{b_};  // roclk-lint: allow(lock-order)\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "lock-order"));
}

TEST(LockTest, SameLineGuardAndBlockScopesCorrectly) {
  // A guard declared on the same line as its block must die with the
  // block; its brace initialiser must not pop it early.
  const std::vector<SourceFile> files = {
      {"src/core/loop.cpp",
       "std::mutex a_;\nstd::mutex b_;\n"
       "void f() {\n"
       "  if (x) { std::lock_guard la{a_}; poke(); }\n"
       "  if (y) { std::lock_guard lb{b_}; poke(); }\n"
       "}\n"},
  };
  EXPECT_FALSE(has_rule(check_locks(files), "lock-order"));
}

// ---------------------------------------------------------- check_project

TEST(ProjectTest, RunsAllThreePasses) {
  const TagRegistry registry = small_registry();
  const std::vector<SourceFile> files = {
      {"src/osc/ring.cpp",
       "#include \"roclk/analysis/yield.hpp\"\n"
       "auto t = std::chrono::steady_clock::now();\n"
       "auto k = key.split(\"bogus\");\n"
       "std::mutex m_;\n"
       "void f() { m_.lock(); }\n"},
  };
  const auto findings = check_project(files, &registry, "DESIGN.md");
  EXPECT_TRUE(has_rule(findings, "layer-include"));
  EXPECT_TRUE(has_rule(findings, "wall-clock"));
  EXPECT_TRUE(has_rule(findings, "tag-unregistered"));
  EXPECT_TRUE(has_rule(findings, "naked-lock"));
}

}  // namespace
}  // namespace roclk::lint
