// Unit tests for the repo-specific linter.  Banned constructs below only
// ever appear inside string literals, which the linter strips before
// matching — so this file itself stays clean under roclk_lint.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace roclk::lint {
namespace {

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(StripTest, RemovesCommentsAndStringsKeepingLines) {
  const std::string source =
      "int a; // std::endl in a comment\n"
      "const char* s = \"new int[3]\";\n"
      "/* block\n   comment */ int b;\n";
  const std::string stripped = strip_comments_and_strings(source);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(source.begin(), source.end(), '\n'));
  EXPECT_EQ(stripped.find("endl"), std::string::npos);
  EXPECT_EQ(stripped.find("new int"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(StripTest, HandlesRawStringsAndEscapes) {
  const std::string source =
      "auto r = R\"(delete p; new X;)\";\n"
      "char c = '\\\"'; int keep = 1;\n";
  const std::string stripped = strip_comments_and_strings(source);
  EXPECT_EQ(stripped.find("delete"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);
}

TEST(LintTest, FlagsStdRoundOutsideMathHeader) {
  const auto findings =
      lint_source("src/foo.cpp", "double d = std::round(x);\n");
  ASSERT_TRUE(has_rule(findings, "round"));
  EXPECT_NE(findings.front().message.find("round_ties_away"),
            std::string::npos);
  EXPECT_TRUE(lint_source("include/roclk/common/math.hpp",
                          "#pragma once\ndouble d = std::llround(x);\n")
                  .empty());
}

TEST(LintTest, FlagsRawRandomnessOutsideRng) {
  EXPECT_TRUE(has_rule(lint_source("src/foo.cpp", "int r = rand();\n"),
                       "rng"));
  EXPECT_TRUE(has_rule(
      lint_source("src/foo.cpp", "std::random_device rd;\n"), "rng"));
  EXPECT_TRUE(
      lint_source("include/roclk/common/rng.hpp",
                  "#pragma once\ninline int r() { return rand(); }\n")
          .empty());
  // Identifiers merely containing "rand" are not findings.
  EXPECT_TRUE(lint_source("src/foo.cpp", "int grand(int); grand(2);\n")
                  .empty());
}

TEST(LintTest, IncludeOfNewHeaderIsNotNakedNew) {
  EXPECT_FALSE(has_rule(lint_source("src/foo.cpp", "#include <new>\n"),
                        "naked-new"));
}

TEST(LintTest, FlagsNakedNewAndDelete) {
  EXPECT_TRUE(has_rule(lint_source("src/foo.cpp", "auto* p = new int;\n"),
                       "naked-new"));
  EXPECT_TRUE(
      has_rule(lint_source("src/foo.cpp", "delete p;\n"), "naked-new"));
  // Deleted special members and operator overloads are not ownership.
  EXPECT_TRUE(lint_source("src/foo.cpp", "Foo(const Foo&) = delete;\n")
                  .empty());
  EXPECT_TRUE(
      lint_source("src/foo.cpp", "void operator delete(void*);\n").empty());
  EXPECT_TRUE(
      lint_source("src/foo.cpp", "int new_length = 3;\n").empty());
}

TEST(LintTest, FlagsEndlAndMissingPragmaOnce) {
  EXPECT_TRUE(has_rule(
      lint_source("src/foo.cpp", "std::cout << x << std::endl;\n"), "endl"));
  EXPECT_TRUE(has_rule(lint_source("include/foo.hpp", "int x;\n"),
                       "pragma-once"));
  EXPECT_TRUE(
      lint_source("include/foo.hpp", "#pragma once\nint x;\n").empty());
  // .cpp files need no pragma.
  EXPECT_FALSE(has_rule(lint_source("src/foo.cpp", "int x;\n"),
                        "pragma-once"));
}

TEST(LintTest, FaultSourcesMustUseCommonRng) {
  // <random> and std engines/distributions are findings inside fault/...
  EXPECT_TRUE(has_rule(
      lint_source("src/fault/injector.cpp", "#include <random>\n"),
      "fault-rng"));
  EXPECT_TRUE(has_rule(lint_source("include/roclk/fault/fault.hpp",
                                   "#pragma once\nstd::mt19937 gen;\n"),
                       "fault-rng"));
  EXPECT_TRUE(has_rule(
      lint_source("src/fault/fault.cpp",
                  "std::uniform_int_distribution<int> d(0, 9);\n"),
      "fault-rng"));
  // ...but not elsewhere, and common/rng usage inside fault/ is clean
  // as far as this rule goes (direct construction is the xoshiro rule's
  // concern, not fault-rng's).
  EXPECT_FALSE(has_rule(lint_source("src/core/foo.cpp", "std::mt19937 g;\n"),
                        "fault-rng"));
  EXPECT_FALSE(has_rule(lint_source("src/fault/fault.cpp",
                                    "#include \"roclk/common/rng.hpp\"\n"
                                    "common::Xoshiro256 rng{seed};\n"),
                        "fault-rng"));
  // "default/" must not be mistaken for a fault/ path.
  EXPECT_FALSE(has_rule(
      lint_source("src/default/foo.cpp", "std::mt19937 g;\n"), "fault-rng"));
}

TEST(LintTest, IntrinsicsHeadersConfinedToSimdShim) {
  // Vendor SIMD headers are findings everywhere...
  EXPECT_TRUE(has_rule(
      lint_source("src/core/fast.cpp", "#include <immintrin.h>\n"),
      "simd-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/fast.cpp", "#include <arm_neon.h>\n"),
      "simd-include"));
  EXPECT_TRUE(has_rule(
      lint_source("include/roclk/osc/ro.hpp",
                  "#pragma once\n#include <emmintrin.h>\n"),
      "simd-include"));
  // ...except inside the dispatch shim itself.
  EXPECT_FALSE(has_rule(lint_source("include/roclk/common/simd.hpp",
                                    "#pragma once\n#include <immintrin.h>\n"
                                    "#include <arm_neon.h>\n"),
                        "simd-include"));
}

TEST(LintTest, SocketHeadersConfinedToServiceTransport) {
  // Raw socket / fd-multiplexing headers are findings everywhere...
  EXPECT_TRUE(has_rule(
      lint_source("src/service/server.cpp", "#include <sys/socket.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("tools/roclk_sweepd.cpp", "#include <sys/un.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "#include <netinet/in.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "#include <arpa/inet.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "#include <poll.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "#include <sys/epoll.h>\n"),
      "socket-include"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "#include <sys/select.h>\n"),
      "socket-include"));
  // ...except inside the transport layer itself.
  EXPECT_FALSE(has_rule(
      lint_source("src/service/transport.cpp",
                  "#include <sys/socket.h>\n#include <sys/un.h>\n"),
      "socket-include"));
  EXPECT_FALSE(has_rule(
      lint_source("include/roclk/service/transport.hpp",
                  "#pragma once\n#include <sys/socket.h>\n"),
      "socket-include"));
}

TEST(LintTest, FlagsDirectXoshiroConstructionOutsideCommonRng) {
  // Declarations with an initialiser and temporaries are findings...
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "Xoshiro256 rng{seed};\n"), "xoshiro"));
  EXPECT_TRUE(has_rule(
      lint_source("src/core/foo.cpp", "auto v = Xoshiro256{s}.uniform();\n"),
      "xoshiro"));
  // ...but references, parameters and uninitialised members are not
  // (consuming a generator someone else seeded is fine).
  EXPECT_FALSE(has_rule(
      lint_source("src/core/foo.cpp", "void f(Xoshiro256& rng);\n"),
      "xoshiro"));
  EXPECT_FALSE(has_rule(
      lint_source("src/core/foo.cpp", "Xoshiro256 rng_;\n"), "xoshiro"));
  // The generator's own home may construct freely, and a waiver works.
  EXPECT_FALSE(has_rule(
      lint_source("include/roclk/common/rng.hpp",
                  "#pragma once\nXoshiro256 make() { return Xoshiro256{1}; }\n"),
      "xoshiro"));
  EXPECT_FALSE(has_rule(
      lint_source("src/osc/jitter.cpp",
                  "rng_ = Xoshiro256{seed};  // roclk-lint: allow(xoshiro)\n"),
      "xoshiro"));
}

TEST(LintTest, InlineWaiverSuppressesNamedRuleOnly) {
  const std::string waived =
      "auto* p = new int;  // roclk-lint: allow(naked-new)\n";
  EXPECT_TRUE(lint_source("src/foo.cpp", waived).empty());
  const std::string wrong_rule =
      "auto* p = new int;  // roclk-lint: allow(endl)\n";
  EXPECT_TRUE(has_rule(lint_source("src/foo.cpp", wrong_rule), "naked-new"));
}

TEST(LintTest, ReportsLineNumbers) {
  const auto findings =
      lint_source("src/foo.cpp", "int a;\nint b;\ndelete p;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().line, 3u);
}

}  // namespace
}  // namespace roclk::lint
