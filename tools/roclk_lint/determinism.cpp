// Pass 2: determinism audit.  The reproduction's core claim is that a
// simulation is a pure function of (config, StreamKey): bit-for-bit
// identical across scalar/SIMD/sharded/service paths.  Two things break
// that silently — reading ambient state (wall clocks, environment
// variables) and deriving an RNG substream from a tag string nobody
// registered (a later duplicate tag then aliases two streams).  This
// pass bans the former in library code and cross-checks the latter
// against the DESIGN.md §13 registry.
//
// Allowlist: tools/, bench/, examples/, tests/ (drivers measure real
// time by design) and the service transport TU (socket timeouts need a
// real clock).  Anything else carries a one-line justified waiver.
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

#include "passes.hpp"

namespace roclk::lint {

namespace {

bool path_ends_with(const std::filesystem::path& path, std::string_view tail) {
  const std::string s = path.generic_string();
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

bool is_allowlisted(const SourceFile& file) {
  if (scope_of(file.path) != Scope::kLibrary) return true;
  return path_ends_with(file.path, "service/transport.hpp") ||
         path_ends_with(file.path, "service/transport.cpp");
}

/// `time(` as a free-function call: not a member (`t.time(`), not a
/// qualified name tail (`::time(` is caught separately as std::time),
/// not part of a longer identifier (`wall_time(`).
bool is_free_time_call(const std::string& line, std::size_t pos) {
  if (pos > 0) {
    const char before = line[pos - 1];
    if (std::isalnum(static_cast<unsigned char>(before)) || before == '_' ||
        before == '.' || before == '>') {
      return false;
    }
  }
  std::size_t after = pos + 4;
  while (after < line.size() && line[after] == ' ') ++after;
  return after < line.size() && line[after] == '(';
}

}  // namespace

std::vector<Finding> check_determinism(
    const std::vector<SourceFile>& files, const TagRegistry* registry,
    const std::filesystem::path& registry_path) {
  std::vector<Finding> findings;

  static const std::regex kClock{
      R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"};
  static const std::regex kClockCall{
      R"(\b(gettimeofday|clock_gettime|timespec_get|localtime|gmtime)\s*\()"};
  static const std::regex kStdTime{R"(std\s*::\s*time\s*\()"};
  static const std::regex kEnv{
      R"(\b(getenv|secure_getenv|setenv|putenv|unsetenv)\s*\()"};
  static const std::regex kSleep{
      R"(\b(sleep_for|sleep_until|nanosleep|usleep|sleep)\s*\()"};
  static const std::regex kSplitTag{R"(\bsplit\s*\(\s*"([^"]*)\")"};

  // --- wall-clock / env-source over comment-and-string-stripped text.
  for (const auto& file : files) {
    if (is_allowlisted(file)) continue;
    // Blocking the calling thread is a failure-handling decision, and
    // those are replayable only where the wait goes through an
    // injectable hook.  Real sleeping is confined to the retry backoff
    // module (and the transport TU via the allowlist above).
    const bool may_sleep = path_ends_with(file.path, "service/retry.cpp");
    const auto waivers = collect_waivers(file.text);
    const std::string stripped = strip_comments_and_strings(file.text);
    std::istringstream in{stripped};
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
      std::smatch match;
      if (std::regex_search(line, match, kClock) &&
          !is_waived(waivers, lineno, "wall-clock")) {
        findings.push_back(
            {file.path, lineno, "wall-clock",
             "std::chrono::" + match[1].str() +
                 " makes results depend on when the code ran; library "
                 "simulations must be pure functions of their inputs "
                 "(timing belongs in bench/ or tools/)"});
      }
      if (std::regex_search(line, match, kClockCall) &&
          !is_waived(waivers, lineno, "wall-clock")) {
        findings.push_back({file.path, lineno, "wall-clock",
                            match[1].str() +
                                "() reads the wall clock; library code "
                                "must stay deterministic"});
      }
      bool std_time = std::regex_search(line, kStdTime);
      if (!std_time) {
        for (std::size_t pos = line.find("time"); pos != std::string::npos;
             pos = line.find("time", pos + 1)) {
          if (is_free_time_call(line, pos)) {
            std_time = true;
            break;
          }
        }
      }
      if (std_time && !is_waived(waivers, lineno, "wall-clock")) {
        findings.push_back({file.path, lineno, "wall-clock",
                            "time() reads the wall clock; library code "
                            "must stay deterministic"});
      }
      if (!may_sleep && std::regex_search(line, match, kSleep) &&
          !is_waived(waivers, lineno, "sleep")) {
        findings.push_back(
            {file.path, lineno, "sleep",
             match[1].str() +
                 "() blocks on the wall clock; real sleeping is confined "
                 "to service/retry.cpp and the transport TU — take an "
                 "injectable sleep hook (ResilientClientConfig::sleep_ms, "
                 "TransportFaultConfig::stall_hook) so tests replay "
                 "without waiting"});
      }
      if (std::regex_search(line, match, kEnv) &&
          !is_waived(waivers, lineno, "env-source")) {
        findings.push_back(
            {file.path, lineno, "env-source",
             match[1].str() +
                 "() makes behaviour depend on the process environment; "
                 "pass configuration explicitly (env overrides belong to "
                 "app scope or carry a justified waiver)"});
      }
    }
  }

  if (registry == nullptr) return findings;

  // --- tag-duplicate: a tag registered twice aliases two streams.
  std::set<std::string> seen;
  for (const auto& entry : registry->entries) {
    if (!seen.insert(entry.tag).second) {
      findings.push_back({registry_path, entry.line, "tag-duplicate",
                          "StreamKey tag `" + entry.tag +
                              "` is registered more than once; two owners "
                              "deriving the same tag alias their streams"});
    }
  }

  // --- tag-unregistered: every split("...") literal in library code
  // must appear in the registry.  Comment-only stripping keeps the
  // string contents visible while prose stays inert.
  for (const auto& file : files) {
    if (scope_of(file.path) != Scope::kLibrary) continue;
    const auto waivers = collect_waivers(file.text);
    const std::string stripped = strip_comments_only(file.text);
    std::istringstream in{stripped};
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kSplitTag);
           it != std::sregex_iterator{}; ++it) {
        const std::string tag = (*it)[1].str();
        if (registry->has_tag(tag)) continue;
        if (is_waived(waivers, lineno, "tag-unregistered")) continue;
        findings.push_back(
            {file.path, lineno, "tag-unregistered",
             "StreamKey tag `" + tag +
                 "` is not in the DESIGN.md stream-key registry; register "
                 "it (machine-readable block in §13) so no later caller "
                 "can alias the stream"});
      }
    }
  }

  return findings;
}

}  // namespace roclk::lint
