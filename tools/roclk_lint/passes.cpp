#include "passes.hpp"

#include <iterator>

namespace roclk::lint {

std::vector<Finding> check_project(const std::vector<SourceFile>& files,
                                   const TagRegistry* registry,
                                   const std::filesystem::path& registry_path) {
  std::vector<Finding> findings = check_layering(files);
  auto determinism = check_determinism(files, registry, registry_path);
  findings.insert(findings.end(),
                  std::make_move_iterator(determinism.begin()),
                  std::make_move_iterator(determinism.end()));
  auto locks = check_locks(files);
  findings.insert(findings.end(), std::make_move_iterator(locks.begin()),
                  std::make_move_iterator(locks.end()));
  return findings;
}

}  // namespace roclk::lint
