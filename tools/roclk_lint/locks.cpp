// Pass 3: lock discipline.  Three project-wide checks over the mutexes
// the analyzer can see syntactically (std::mutex and friends declared
// as members or variables):
//
//   naked-lock   .lock()/.unlock()/.try_lock() called directly on a
//                declared mutex name.  Raw calls drop the lock on early
//                return and exceptions; RAII guards are required.
//                Calls on guard objects (unique_lock et al.) are fine.
//
//   dead-mutex   a mutex member declared in a header that no file in
//                the project ever names inside a lock_guard /
//                unique_lock / scoped_lock / shared_lock or condition-
//                variable wait.  Either the state it was meant to guard
//                is unprotected, or the mutex is vestigial — both are
//                findings.
//
//   lock-order   acquiring a second mutex while one is held (tracked
//                per file through guard scopes, including explicit
//                guard.unlock() releases).  Nested acquisition is a
//                deadlock hazard unless a global order is documented —
//                waive the inner site with a justification.  When the
//                inverted pair also occurs in the same file the message
//                names both sites.
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "passes.hpp"

namespace roclk::lint {

namespace {

/// Last identifier component of a qualified expression such as
/// `impl_->mutex` or `state.m` — the name granularity mutex
/// declarations give us.
std::string base_name(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         (std::isalnum(static_cast<unsigned char>(expr[end - 1])) ||
          expr[end - 1] == '_')) {
    --end;
  }
  return std::string{expr.substr(end)};
}

std::string trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t");
  return std::string{s.substr(first, last - first + 1)};
}

struct MutexDecl {
  std::size_t file_index;
  std::size_t line;
  std::string name;
  bool in_header;
};

struct GuardSite {
  std::string guard_var;   // may be empty for unnamed temporaries
  std::string mutex_expr;  // first constructor argument, trimmed
  std::size_t line;
  int depth;               // brace depth at the declaration
  bool active{true};
};

const std::regex kMutexDecl{
    R"((?:std\s*::\s*)?\b((?:recursive_|shared_|timed_)*mutex)\s+(\w+)\s*(?:;|\{|=))"};
const std::regex kGuardDecl{
    R"(\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b\s*(?:<[^;<>]*>)?\s+(\w+)\s*[({]([^;)}]*)[)}])"};
const std::regex kNakedCall{R"(([A-Za-z_][\w.>\-]*)\s*\.\s*(lock|unlock|try_lock)\s*\()"};
const std::regex kGuardRelease{R"((\w+)\s*\.\s*unlock\s*\()"};
const std::regex kWaitCall{R"(\b(?:wait|wait_for|wait_until)\s*\(\s*([^,)]+))"};

}  // namespace

std::vector<Finding> check_locks(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Phase A: every syntactically visible mutex declaration.
  std::vector<MutexDecl> decls;
  std::set<std::string> mutex_names;
  std::vector<std::string> stripped_texts;
  stripped_texts.reserve(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    stripped_texts.push_back(strip_comments_and_strings(files[f].text));
    const std::string ext = files[f].path.extension().string();
    const bool in_header = ext == ".hpp" || ext == ".h";
    std::istringstream in{stripped_texts.back()};
    std::string line;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kMutexDecl);
           it != std::sregex_iterator{}; ++it) {
        decls.push_back({f, lineno, (*it)[2].str(), in_header});
        mutex_names.insert((*it)[2].str());
      }
    }
  }

  // Phase B: guard sites, naked calls and per-file lock-order tracking.
  std::set<std::string> guarded_names;  // mutex base names seen in guards
  for (std::size_t f = 0; f < files.size(); ++f) {
    const auto waivers = collect_waivers(files[f].text);
    std::istringstream in{stripped_texts[f]};
    std::string line;
    int depth = 0;
    std::vector<GuardSite> held;  // innermost last
    // (outer expr, inner expr) -> first line, for inversion reporting.
    std::map<std::pair<std::string, std::string>, std::size_t> nested_pairs;
    for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
      // Collect positional events first so pushes, releases and brace
      // scopes interleave in source order (a guard declared on the same
      // line as its enclosing block must die with that block, while its
      // own brace-initialiser `lock{m}` must not pop it).
      struct PushEvent {
        std::string guard_var;
        std::vector<std::string> exprs;
      };
      std::map<std::size_t, PushEvent> pushes;       // position -> event
      std::map<std::size_t, std::string> releases;   // position -> guard var
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kGuardDecl);
           it != std::sregex_iterator{}; ++it) {
        PushEvent event;
        event.guard_var = (*it)[2].str();
        // scoped_lock may take several mutexes: each argument counts.
        std::istringstream args{(*it)[3].str()};
        std::string arg;
        while (std::getline(args, arg, ',')) {
          const std::string expr = trim(arg);
          if (expr.empty() || expr == "std::defer_lock" ||
              expr == "std::adopt_lock" || expr == "std::try_to_lock") {
            continue;
          }
          event.exprs.push_back(expr);
        }
        pushes.emplace(static_cast<std::size_t>(it->position()),
                       std::move(event));
      }
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kGuardRelease);
           it != std::sregex_iterator{}; ++it) {
        releases.emplace(static_cast<std::size_t>(it->position()),
                         (*it)[1].str());
      }

      const auto acquire = [&](const PushEvent& event) {
        for (const auto& expr : event.exprs) {
          const std::string base = base_name(expr);
          if (mutex_names.count(base) != 0) guarded_names.insert(base);
          for (const auto& outer : held) {
            if (!outer.active || outer.mutex_expr == expr) continue;
            const auto inverted = nested_pairs.find({expr, outer.mutex_expr});
            if (!is_waived(waivers, lineno, "lock-order")) {
              std::string message =
                  "acquires `" + expr + "` while `" + outer.mutex_expr +
                  "` (line " + std::to_string(outer.line) +
                  ") is still held; nested locking deadlocks unless the "
                  "acquisition order is global — document it with a waiver "
                  "or release the outer lock first";
              if (inverted != nested_pairs.end()) {
                message = "inverted lock order: `" + outer.mutex_expr +
                          "` -> `" + expr + "` here, but line " +
                          std::to_string(inverted->second) +
                          " acquires them as `" + expr + "` -> `" +
                          outer.mutex_expr + "`; pick one global order";
              }
              findings.push_back(
                  {files[f].path, lineno, "lock-order", std::move(message)});
            }
            nested_pairs.try_emplace({outer.mutex_expr, expr}, lineno);
          }
          held.push_back({event.guard_var, expr, lineno, depth});
        }
      };

      for (std::size_t pos = 0; pos < line.size(); ++pos) {
        const auto push_it = pushes.find(pos);
        if (push_it != pushes.end()) acquire(push_it->second);
        const auto release_it = releases.find(pos);
        if (release_it != releases.end()) {
          for (auto& site : held) {
            if (site.active && !site.guard_var.empty() &&
                site.guard_var == release_it->second) {
              site.active = false;
            }
          }
        }
        const char c = line[pos];
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          while (!held.empty() && held.back().depth > depth) {
            held.pop_back();
          }
        }
      }

      // Condition-variable waits prove their guard's mutex is used.
      std::smatch wait_match;
      if (std::regex_search(line, wait_match, kWaitCall)) {
        const std::string base = base_name(trim(wait_match[1].str()));
        if (mutex_names.count(base) != 0) guarded_names.insert(base);
      }
      // Naked .lock()/.unlock()/.try_lock() on declared mutex names.
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kNakedCall);
           it != std::sregex_iterator{}; ++it) {
        const std::string receiver = (*it)[1].str();
        const std::string call = (*it)[2].str();
        const std::string base = base_name(receiver);
        if (mutex_names.count(base) == 0) continue;
        if (is_waived(waivers, lineno, "naked-lock")) continue;
        findings.push_back(
            {files[f].path, lineno, "naked-lock",
             "naked `" + receiver + "." + call +
                 "()`; an early return or exception leaks the lock — use "
                 "std::lock_guard / std::unique_lock / std::scoped_lock"});
      }
    }
  }

  // Phase C: header mutexes nobody guards.
  for (const auto& decl : decls) {
    if (!decl.in_header) continue;
    if (guarded_names.count(decl.name) != 0) continue;
    const auto waivers = collect_waivers(files[decl.file_index].text);
    if (is_waived(waivers, decl.line, "dead-mutex")) continue;
    findings.push_back(
        {files[decl.file_index].path, decl.line, "dead-mutex",
         "mutex member `" + decl.name +
             "` is declared in a header but no file ever guards it "
             "(lock_guard/unique_lock/scoped_lock); either the state it "
             "guards is unprotected or the mutex is dead"});
  }

  return findings;
}

}  // namespace roclk::lint
