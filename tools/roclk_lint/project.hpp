// Project model for the multi-pass analyzer: an in-memory snapshot of
// every translation unit and header, each mapped to its library module
// (the directory under include/roclk/ or src/) and scope (library code
// vs. applications such as tools/ and bench/), plus the repo-internal
// `#include "roclk/..."` edge list the layering pass walks.
//
// Everything here is pure value code over (path, text) pairs so the
// passes are unit-testable on synthetic fixture trees without touching
// the filesystem; `load_project` is the only function that does I/O.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace roclk::lint {

/// One file of the project, addressed by its repo-relative path.
struct SourceFile {
  std::filesystem::path path;  // repo-relative, generic separators
  std::string text;            // raw contents (waivers live in comments)
};

/// Which rule family applies to a file.
enum class Scope {
  kLibrary,  // include/roclk/<module>/... or src/<module>/...
  kApp,      // tools/, bench/, examples/, tests/ — out-of-layer drivers
  kOther,    // umbrella header, docs, anything unclassified
};

/// Library module a repo-relative path belongs to ("common", "core",
/// ...), or "" for files outside the layered library tree.
[[nodiscard]] std::string module_of(const std::filesystem::path& repo_rel);

[[nodiscard]] Scope scope_of(const std::filesystem::path& repo_rel);

/// A `#include "roclk/..."` site.  `target` is the include operand
/// exactly as written ("roclk/analysis/yield.hpp").
struct IncludeEdge {
  std::size_t file_index{0};  // into the files vector
  std::size_t line{0};        // 1-based include line
  std::string target;
};

/// Reads every .hpp/.h/.cpp/.cc under include/, src/, tools/ and bench/
/// of `repo_root`, sorted by path for deterministic diagnostics.
/// Throws std::runtime_error on I/O failure.
[[nodiscard]] std::vector<SourceFile> load_project(
    const std::filesystem::path& repo_root);

/// Extracts repo-internal include edges (targets starting "roclk/")
/// from comment-stripped text, so commented-out includes never count.
[[nodiscard]] std::vector<IncludeEdge> project_includes(
    const std::vector<SourceFile>& files);

/// Replaces comments with spaces but keeps string literals, preserving
/// newlines; used by passes that must read string contents (StreamKey
/// tags) without tripping on prose.
[[nodiscard]] std::string strip_comments_only(std::string_view source);

}  // namespace roclk::lint
