// Fingerprint, baseline and SARIF tests, including the end-to-end
// seeded-violation fixture tree the acceptance criteria call for.
#include "sarif.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "passes.hpp"
#include "project.hpp"
#include "registry.hpp"

namespace roclk::lint {
namespace {

namespace fs = std::filesystem;

Finding make_finding() {
  return {"src/core/loop.cpp", 7, "wall-clock", "steady_clock in library"};
}

TEST(FingerprintTest, StableAcrossLineNumbersAndWhitespace) {
  Finding a = make_finding();
  Finding b = make_finding();
  b.line = 99;  // an edit above the finding moved it
  const std::string text = "auto t = std::chrono::steady_clock::now();";
  const std::string reformatted =
      "  auto  t =\tstd::chrono::steady_clock::now();";
  EXPECT_EQ(finding_fingerprint(a, text), finding_fingerprint(b, text));
  EXPECT_EQ(finding_fingerprint(a, text),
            finding_fingerprint(a, reformatted));
}

TEST(FingerprintTest, DistinguishesRuleFileAndContent) {
  const Finding a = make_finding();
  Finding other_rule = make_finding();
  other_rule.rule = "env-source";
  Finding other_file = make_finding();
  other_file.file = "src/core/trace.cpp";
  const std::string text = "auto t = now();";
  EXPECT_NE(finding_fingerprint(a, text),
            finding_fingerprint(other_rule, text));
  EXPECT_NE(finding_fingerprint(a, text),
            finding_fingerprint(other_file, text));
  EXPECT_NE(finding_fingerprint(a, "x"), finding_fingerprint(a, "y"));
}

TEST(BaselineTest, RenderParseRoundTrip) {
  std::vector<AnnotatedFinding> findings;
  AnnotatedFinding f;
  f.finding = make_finding();
  f.fingerprint = "wall-clock:src/core/loop.cpp:0123456789abcdef";
  findings.push_back(f);
  f.fingerprint = "env-source:src/common/flags.cpp:fedcba9876543210";
  findings.push_back(f);
  const std::string rendered = render_baseline(findings);
  const Baseline parsed = parse_baseline(rendered);
  EXPECT_EQ(parsed.fingerprints.size(), 2u);
  EXPECT_EQ(parsed.fingerprints.count(
                "wall-clock:src/core/loop.cpp:0123456789abcdef"),
            1u);
}

TEST(BaselineTest, EmptyBaselineParses) {
  const Baseline parsed =
      parse_baseline("{\n  \"version\": 1,\n  \"findings\": []\n}\n");
  EXPECT_TRUE(parsed.fingerprints.empty());
}

TEST(BaselineTest, AnnotateMarksBaselinedFindings) {
  const Finding finding = make_finding();
  const std::string line_text = "auto t = steady_clock::now();";
  Baseline baseline;
  baseline.fingerprints.insert(finding_fingerprint(finding, line_text));
  const auto annotated = annotate_findings(
      {finding},
      [&](const fs::path&, std::size_t) { return line_text; }, baseline);
  ASSERT_EQ(annotated.size(), 1u);
  EXPECT_TRUE(annotated[0].baselined);
  // A different line text (the finding changed) no longer matches.
  const auto moved = annotate_findings(
      {finding}, [&](const fs::path&, std::size_t) { return "changed"; },
      baseline);
  EXPECT_FALSE(moved[0].baselined);
}

TEST(SarifTest, EmitsValid210Skeleton) {
  AnnotatedFinding f;
  f.finding = make_finding();
  f.fingerprint = "wall-clock:src/core/loop.cpp:0123456789abcdef";
  AnnotatedFinding suppressed;
  suppressed.finding = make_finding();
  suppressed.finding.rule = "env-source";
  suppressed.fingerprint = "env-source:src/core/loop.cpp:aaaa";
  suppressed.baselined = true;
  const std::string sarif = to_sarif({f, suppressed});

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"roclk_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"wall-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/loop.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("roclkFingerprint/v1"), std::string::npos);
  // Exactly the baselined finding carries a suppression.
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
  EXPECT_EQ(sarif.find("\"suppressions\""),
            sarif.rfind("\"suppressions\""));
  // Rule metadata is present for every rule the passes can emit.
  EXPECT_NE(sarif.find("\"id\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"tag-unregistered\""), std::string::npos);
}

TEST(SarifTest, EscapesJsonMetacharacters) {
  AnnotatedFinding f;
  f.finding = {"src/a.cpp", 1, "endl",
               "message with \"quotes\" and \\backslash\nnewline"};
  f.fingerprint = "endl:src/a.cpp:1";
  const std::string sarif = to_sarif({f});
  EXPECT_NE(sarif.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\\\\backslash"), std::string::npos);
  EXPECT_NE(sarif.find("\\nnewline"), std::string::npos);
}

TEST(SarifTest, EmptyResultsIsStillValid) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

// ------------------------------------------------- seeded fixture tree

class FixtureTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path{::testing::TempDir()} / "roclk_lint_fixture";
    fs::remove_all(root_);
    write("include/roclk/core/a.hpp",
          "#pragma once\n#include \"roclk/core/b.hpp\"\n");
    write("include/roclk/core/b.hpp",
          "#pragma once\n#include \"roclk/core/a.hpp\"\n");  // cycle
    write("src/osc/bad.cpp",
          "#include \"roclk/analysis/yield.hpp\"\n"          // back edge
          "auto t = std::chrono::steady_clock::now();\n"     // wall clock
          "auto k = key.split(\"unregistered_tag\");\n"      // tag
          "std::mutex a_;\nstd::mutex b_;\n"
          "void f() { a_.unlock(); }\n"                      // naked unlock
          "void g() {\n"
          "  std::lock_guard la{a_};\n"
          "  { std::lock_guard lb{b_}; }\n"                  // nested
          "}\n"
          "void h() {\n"
          "  std::lock_guard lb{b_};\n"
          "  { std::lock_guard la{a_}; }\n"                  // inverted
          "}\n");
  }

  void write(const std::string& rel, const std::string& text) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out{path, std::ios::binary};
    out << text;
  }

  fs::path root_;
};

TEST_F(FixtureTreeTest, AllThreePassesFireAndSarifIsEmitted) {
  const auto files = load_project(root_);
  ASSERT_EQ(files.size(), 3u);

  std::string error;
  const TagRegistry registry = parse_tag_registry(
      "<!-- roclk-lint: stream-key-registry begin -->\n"
      "| tag | owner | derivation |\n"
      "| --- | --- | --- |\n"
      "| analysis.yield | analysis/yield | root |\n"
      "<!-- roclk-lint: stream-key-registry end -->\n",
      &error);
  ASSERT_TRUE(error.empty()) << error;

  const auto findings = check_project(files, &registry, "DESIGN.md");
  const auto count = [&](const char* rule) {
    return std::count_if(findings.begin(), findings.end(),
                         [&](const Finding& f) { return f.rule == rule; });
  };
  EXPECT_EQ(count("include-cycle"), 1);
  EXPECT_EQ(count("layer-include"), 1);
  EXPECT_GE(count("wall-clock"), 1);
  EXPECT_EQ(count("tag-unregistered"), 1);
  EXPECT_EQ(count("naked-lock"), 1);
  EXPECT_GE(count("lock-order"), 2);  // nested + inverted

  const auto annotated = annotate_findings(
      findings,
      [&](const fs::path& path, std::size_t line) -> std::string {
        for (const auto& file : files) {
          if (file.path != path) continue;
          std::istringstream in{file.text};
          std::string text;
          for (std::size_t n = 1; std::getline(in, text); ++n) {
            if (n == line) return text;
          }
        }
        return {};
      },
      Baseline{});
  const std::string sarif = to_sarif(annotated);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"include-cycle\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layer-include\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"tag-unregistered\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"naked-lock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-order\""), std::string::npos);

  // Baselining every fingerprint turns the tree green: each result now
  // carries a suppression and none gate.
  Baseline accept_all;
  for (const auto& f : annotated) accept_all.fingerprints.insert(f.fingerprint);
  const auto rebaselined = annotate_findings(
      findings, [](const fs::path&, std::size_t) { return std::string{}; },
      accept_all);
  // Line text lookup differs, so re-annotate with the same lookup:
  std::size_t gating = 0;
  for (const auto& f : annotated) {
    if (accept_all.fingerprints.count(f.fingerprint) == 0) ++gating;
  }
  EXPECT_EQ(gating, 0u);
  (void)rebaselined;
}

}  // namespace
}  // namespace roclk::lint
