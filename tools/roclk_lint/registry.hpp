// DESIGN.md §13 StreamKey tag registry, machine-readable form.
//
// The registry lives in DESIGN.md between the markers
//
//   <!-- roclk-lint: stream-key-registry begin -->
//   | tag | owner | derivation |
//   | --- | --- | --- |
//   | analysis.yield | analysis/yield | root.split("analysis.yield") |
//   <!-- roclk-lint: stream-key-registry end -->
//
// Column names are stable API: `tag` (the literal split() operand),
// `owner` (module or subsystem that derives it) and `derivation` (the
// documented key chain).  The determinism pass cross-checks every
// split("...") literal in library code against the `tag` column.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace roclk::lint {

struct RegistryEntry {
  std::string tag;
  std::string owner;
  std::string derivation;
  std::size_t line{0};  // 1-based line of the row in the source document
};

struct TagRegistry {
  std::vector<RegistryEntry> entries;

  [[nodiscard]] bool has_tag(std::string_view tag) const;
};

/// Parses the registry block out of a markdown document.  On failure
/// (missing markers, missing header row, or a header row without the
/// stable column names) returns an empty registry and sets `error`.
[[nodiscard]] TagRegistry parse_tag_registry(std::string_view markdown,
                                             std::string* error);

/// Renders the registry back to its canonical markdown form (markers,
/// header, separator, one row per entry).  parse(render(r)) == r up to
/// line numbers — the round-trip the registry test locks down.
[[nodiscard]] std::string render_tag_registry(const TagRegistry& registry);

}  // namespace roclk::lint
