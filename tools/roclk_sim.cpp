// roclk_sim — command-line driver for the adaptive clock simulator.
//
// Runs one clock-generation system against a harmonic HoDV (+ optional
// static mismatch), prints the paper's metrics and optionally dumps the
// full trace as CSV.  Examples:
//
//   roclk_sim                                   # paper defaults, IIR RO
//   roclk_sim --system free --te-over-c 25
//   roclk_sim --system teatime --mu-over-c 0.2 --csv trace.csv
//   roclk_sim --system iir --governor --logic-depth 64
#include <cstdio>
#include <memory>
#include <string>

#include "roclk/roclk.hpp"

namespace {

using namespace roclk;

analysis::SystemKind parse_system(const std::string& name, bool& ok) {
  ok = true;
  if (name == "iir") return analysis::SystemKind::kIir;
  if (name == "teatime") return analysis::SystemKind::kTeaTime;
  if (name == "free") return analysis::SystemKind::kFreeRo;
  if (name == "fixed") return analysis::SystemKind::kFixedClock;
  ok = false;
  return analysis::SystemKind::kIir;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace roclk;
  FlagParser flags{
      "roclk_sim — self-adaptive clock generation simulator "
      "(SOCC 2012 reproduction)"};
  flags.add_string("system", "iir", "iir | teatime | free | fixed");
  flags.add_double("c", 64.0, "set-point (stages)");
  flags.add_double("tclk-over-c", 1.0, "CDN delay in nominal periods");
  flags.add_double("te-over-c", 50.0, "HoDV period in nominal periods");
  flags.add_double("amplitude-frac", 0.2, "HoDV amplitude as fraction of c");
  flags.add_double("mu-over-c", 0.0, "static RO<->TDC mismatch / c");
  flags.add_int("cycles", 6000, "simulated clock periods");
  flags.add_int("skip", 1500, "transient periods excluded from metrics");
  flags.add_string("csv", "", "write the full trace to this CSV file");
  flags.add_bool("governor", false,
                 "enable the runtime set-point governor (closed-loop "
                 "systems only)");
  flags.add_double("logic-depth", 64.0,
                   "pipeline logic depth L for the governor / throughput");
  flags.add_double("replay-penalty", 8.0,
                   "cycles lost per detected timing error");
  flags.add_string("config", "",
                   "load 'name = value' defaults from this file first; "
                   "command-line flags override");

  // Two-pass parse: pick up --config, load the file, then let the command
  // line override whatever the file set.
  if (Status s = flags.parse(argc, argv); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
    return 2;
  }
  if (const std::string config = flags.get_string("config");
      !config.empty()) {
    if (Status s = flags.parse_file(config); !s.is_ok()) {
      std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
      return 2;
    }
    if (Status s = flags.parse(argc, argv); !s.is_ok()) {
      std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
      return 2;
    }
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help_text().c_str());
    return 0;
  }

  bool system_ok = false;
  const auto kind = parse_system(flags.get_string("system"), system_ok);
  if (!system_ok) {
    std::fprintf(stderr, "error: unknown --system '%s'\n",
                 flags.get_string("system").c_str());
    return 2;
  }

  const double c = flags.get_double("c");
  const double tclk = flags.get_double("tclk-over-c") * c;
  const double te = flags.get_double("te-over-c") * c;
  const double amplitude = flags.get_double("amplitude-frac") * c;
  const double mu = flags.get_double("mu-over-c") * c;
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles"));
  const auto skip = static_cast<std::size_t>(flags.get_int("skip"));
  if (cycles == 0 || skip >= cycles) {
    std::fprintf(stderr, "error: need cycles > skip >= 0\n");
    return 2;
  }

  auto system = analysis::make_system(kind, c, tclk);
  const auto inputs = core::SimulationInputs::harmonic(amplitude, te, mu);

  core::SimulationTrace trace;
  const core::ThroughputConfig tp_cfg{flags.get_double("logic-depth"),
                                      flags.get_double("replay-penalty")};
  if (flags.get_bool("governor")) {
    if (kind != analysis::SystemKind::kIir &&
        kind != analysis::SystemKind::kTeaTime) {
      std::fprintf(stderr,
                   "error: --governor needs a closed-loop system\n");
      return 2;
    }
    control::GovernorConfig gov_cfg;
    gov_cfg.initial_setpoint = c;
    gov_cfg.logic_depth = flags.get_double("logic-depth");
    control::SetpointGovernor governor{gov_cfg};
    trace = core::run_with_governor(system, governor, inputs, cycles);
    std::printf("governor: final set-point %.1f stages after %zu epochs, "
                "%llu detected errors\n",
                governor.setpoint(), governor.epochs(),
                static_cast<unsigned long long>(governor.total_errors()));
  } else {
    trace = system.run(inputs, cycles);
  }

  const double fixed_period =
      analysis::fixed_clock_period(c, amplitude, std::fabs(mu));
  const auto metrics = analysis::evaluate_run(trace, c, fixed_period, skip);
  const auto throughput = core::evaluate_throughput(trace, tp_cfg, skip);

  std::printf("system                 : %s\n", analysis::to_string(kind));
  std::printf("cycles (skip)          : %zu (%zu)\n", cycles, skip);
  std::printf("needed safety margin   : %.2f stages\n",
              metrics.safety_margin);
  std::printf("mean delivered period  : %.3f stages\n", metrics.mean_period);
  std::printf("relative adaptive T    : %.4f  (T_fixed = %.1f stages)\n",
              metrics.relative_adaptive_period, fixed_period);
  std::printf("tau ripple             : %.2f stages\n", metrics.tau_ripple);
  std::printf("violations (tau < c)   : %zu\n", metrics.violations);
  std::printf("pipeline efficiency    : %.4f (errors vs L = %.0f: %zu)\n",
              throughput.efficiency, tp_cfg.logic_depth, throughput.errors);
  std::printf("tau trace              : %s\n",
              sparkline(trace.tau(), 60).c_str());

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty()) {
    if (trace.save_csv(csv_path)) {
      std::printf("trace written          : %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", csv_path.c_str());
      return 1;
    }
  }
  return 0;
}
