// Time-to-digital converter (TDC) delay sensors.
//
// A TDC (Drake et al., ICICDT 2008 — paper ref. [7]) launches a transition
// into a calibrated chain of stages at each delivered clock edge and latches
// how many stages it crossed by the next edge.  The integer reading tau is
// the local logic depth that fits in one clock period: tau < c means the
// period is too short for the set-point c (a timing error is imminent);
// tau > c wastes performance.
//
// Two measurement models mirror the ring-oscillator ones:
//  * additive (paper eqs. 4-5): tau = T_delivered - e + mu, with e the
//    homogeneous variation in stages and mu the RO<->TDC mismatch in
//    stages (positive mu = TDC reads optimistically high);
//  * physical: tau = T_delivered / ((1 + v_local)(1 + r)), with v_local
//    the fractional variation at the sensor site and r the fractional
//    stage mismatch (mu ~ -c * r to first order).
//
// Readings are quantised to integers (floor: only fully crossed stages
// count).  The one-cycle measurement latency (the TDC register z^-1 in the
// paper's Fig. 4) is modelled by the loop simulator, not here.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "roclk/common/check.hpp"
#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::sensor {

enum class Quantization {
  kFloor,  // physical: only completed stages are counted
  kNearest,
  kNone,   // keep the fractional reading (analysis convenience)
};

struct TdcConfig {
  variation::DiePoint location{0.5, 0.5};
  /// Static mismatch in stages added to the reading (the paper's mu).
  double mismatch_stages{0.0};
  /// Fractional stage-delay mismatch for the physical model (the paper's
  /// mu expressed as a relative speed difference; mu ~ -c * r).
  double relative_mismatch{0.0};
  Quantization quantization{Quantization::kFloor};
  /// Hardware chain length: readings saturate here.
  std::int64_t max_reading{4096};
};

class Tdc {
 public:
  explicit Tdc(TdcConfig config = {});

  static Status validate(const TdcConfig& config);

  [[nodiscard]] const TdcConfig& config() const { return config_; }

  /// Additive (paper) model.  `delivered_period` and `e_local` in stages.
  /// Per-simulated-cycle hot path: kept inline.
  [[nodiscard]] double measure_additive(double delivered_period,
                                        double e_local) const {
    ROCLK_CHECK(delivered_period > 0.0,
                "delivered period must be positive, got "
                    << delivered_period << " stages");
    return quantize(delivered_period - e_local + config_.mismatch_stages);
  }

  /// Physical model. `v_local` is the fractional variation at the sensor.
  [[nodiscard]] double measure_physical(double delivered_period,
                                        double v_local) const;

  /// Samples a variation source at the TDC's location.
  [[nodiscard]] double local_variation(
      const variation::VariationSource& source, double t) const {
    return source.at(t, config_.location);
  }

 private:
  [[nodiscard]] double quantize(double raw) const {
    // A NaN reading would slip through the saturation clamp below (every
    // comparison is false) and poison the control loop several cycles
    // downstream of the actual bug — catch it at the sensor.
    ROCLK_DCHECK(!std::isnan(raw),
                 "TDC raw reading is NaN (delivered period / variation "
                 "inputs inconsistent)");
    double q = raw;
    switch (config_.quantization) {
      case Quantization::kFloor:
        q = std::floor(raw);
        break;
      case Quantization::kNearest:
        q = round_ties_away(raw);
        break;
      case Quantization::kNone:
        break;
    }
    // Saturation (not an error): the hardware chain is max_reading stages
    // long and cannot count past it, nor report negative crossings.
    q = std::clamp(q, 0.0, static_cast<double>(config_.max_reading));
    return q;
  }

  TdcConfig config_;
};

/// A set of TDCs disseminated over the clock domain.  The control loop
/// consumes the *worst* (minimum) reading each cycle: the slowest region
/// of the die dictates the clock (paper section III).
class TdcArray {
 public:
  TdcArray() = default;
  explicit TdcArray(std::vector<Tdc> sensors);

  TdcArray& add(Tdc tdc);
  /// grid x grid sensors over the unit die, all with the given mismatch.
  static TdcArray make_grid(std::size_t grid, double mismatch_stages = 0.0);

  [[nodiscard]] std::size_t size() const { return sensors_.size(); }
  [[nodiscard]] bool empty() const { return sensors_.empty(); }
  [[nodiscard]] std::span<const Tdc> sensors() const { return sensors_; }

  /// Worst (minimum) additive reading given a homogeneous variation value
  /// common to all sensors.
  [[nodiscard]] double worst_additive(double delivered_period,
                                      double e_local) const;

  /// Worst (minimum) physical reading under a full variation source at
  /// time t: each sensor sees the variation at its own location.
  [[nodiscard]] double worst_physical(
      double delivered_period, const variation::VariationSource& source,
      double t) const;

  /// All physical readings (diagnostics).
  [[nodiscard]] std::vector<double> readings_physical(
      double delivered_period, const variation::VariationSource& source,
      double t) const;

 private:
  std::vector<Tdc> sensors_;
};

}  // namespace roclk::sensor
