// Thermometer-code TDC readout microarchitecture.
//
// A delay-line TDC latches, at the clock edge, which stages a transition
// has crossed: a thermometer code 111...1000...0 whose 1-run length is the
// reading tau.  Two hardware realities the behavioural Tdc hides:
//
//  * the latch adjacent to the moving edge can go metastable and resolve
//    the wrong way, producing "bubbles" (isolated wrong bits around the
//    1->0 boundary);
//  * the decoder choice matters: a priority encoder (first 0) is thrown
//    off by a single bubble, while a ones-counter (population count) is
//    immune to any *balanced* bubble pattern and off by at most the bubble
//    count otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "roclk/common/rng.hpp"
#include "roclk/common/status.hpp"
#include "roclk/osc/stage_chain.hpp"

namespace roclk::sensor {

/// Latched TDC sample: bits[i] == true means stage i was crossed.
class ThermometerCode {
 public:
  ThermometerCode() = default;
  explicit ThermometerCode(std::vector<bool> bits);

  /// Ideal code: `count` ones then zeros, total length `length`.
  static ThermometerCode ideal(std::size_t count, std::size_t length);

  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] bool bit(std::size_t i) const { return bits_.at(i); }
  [[nodiscard]] const std::vector<bool>& bits() const { return bits_; }

  /// True if the code is a clean thermometer (no bubbles).
  [[nodiscard]] bool is_clean() const;
  /// Number of bits that disagree with the nearest clean thermometer of
  /// the same ones-count.
  [[nodiscard]] std::size_t bubble_count() const;

  /// Priority-encoder decode: index of the first 0 (fragile to bubbles).
  [[nodiscard]] std::size_t decode_priority() const;
  /// Ones-counter decode: population count (bubble-tolerant).
  [[nodiscard]] std::size_t decode_ones_count() const;

  /// Flips each bit within `radius` of the 1->0 boundary with probability
  /// `p` (metastability model); deterministic in rng state.
  void inject_boundary_noise(Xoshiro256& rng, double p,
                             std::size_t radius = 2);

 private:
  std::vector<bool> bits_;
};

enum class TdcDecoder { kPriorityEncoder, kOnesCount };

struct DetailedTdcConfig {
  osc::StageChainConfig chain{};
  TdcDecoder decoder{TdcDecoder::kOnesCount};
  /// Probability that a boundary latch resolves the wrong way.
  double metastability_p{0.0};
  std::size_t metastability_radius{2};
  std::uint64_t seed{0xDEC0DE};
};

/// Gate-level TDC: propagates a transition down a physical StageChain for
/// one delivered period, latches the thermometer code (with optional
/// metastability) and decodes it.
class DetailedTdc {
 public:
  explicit DetailedTdc(DetailedTdcConfig config = {});

  /// Measures one delivered period (stages) under a variation source.
  [[nodiscard]] std::int64_t measure(double delivered_period,
                                     const variation::VariationSource& source,
                                     double t);

  /// The raw latched code of the last measure() call.
  [[nodiscard]] const ThermometerCode& last_code() const { return last_; }

  [[nodiscard]] const DetailedTdcConfig& config() const { return config_; }
  [[nodiscard]] const osc::StageChain& chain() const { return chain_; }

 private:
  DetailedTdcConfig config_;
  osc::StageChain chain_;
  Xoshiro256 rng_;
  ThermometerCode last_;
};

}  // namespace roclk::sensor
