// Runtime replay of a FaultSchedule.
//
// FaultInjector is the per-run cursor a simulator consults once per cycle:
// begin_cycle(n) folds every event active on cycle n into a flat
// CycleFaults struct the loop applies at its fault sites.  The cursor is
// O(active events) per cycle and allocation-free after construction, so a
// fault-free lane pays one branch (`injector == nullptr`) and a faulted
// lane a handful of comparisons.
//
// Cycles are absolute: they continue across successive run()/run_batch()
// calls and rewind only on reset(), mirroring the simulators' own state.
#pragma once

#include <cstdint>
#include <vector>

#include "roclk/fault/fault.hpp"

namespace roclk::fault {

/// Everything the loop needs to know about the current cycle's upsets.
/// Sensor-fault precedence (stuck > dropped > glitch) is already resolved
/// by the injector; additive kinds are already summed.
struct CycleFaults {
  bool any{false};
  bool tau_stuck{false};
  double tau_stuck_value{0.0};
  bool tau_dropped{false};
  double tau_glitch{0.0};  // additive outlier; 0 = none
  double ro_offset{0.0};   // stages added to the generated period
  bool cdn_drop{false};
  double droop{0.0};       // stages added to e_ro and e_tdc
};

class FaultInjector {
 public:
  /// Copies the schedule's events (the injector outlives no simulator,
  /// but the schedule may be a temporary).
  explicit FaultInjector(const FaultSchedule& schedule);

  /// Rewinds to cycle 0 with no active events.
  void reset();

  /// Faults for cycle `cycle`.  Cycles must be non-decreasing between
  /// resets (the simulators call once per step).
  [[nodiscard]] CycleFaults begin_cycle(std::uint64_t cycle);

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

 private:
  FaultSchedule schedule_;
  std::size_t next_{0};                // first event not yet started
  std::vector<std::size_t> active_;    // indices of in-flight events
};

}  // namespace roclk::fault
