// Deterministic fault taxonomy for the Fig. 4 loop.
//
// Silicon control loops fail at their seams, not in their transfer
// functions: a TDC (Drake et al., paper ref. [7]) latches a metastable
// outlier, a register drops a sample, an RO stage ages out, the CDN
// swallows an edge, the supply droops.  The reproduction models those
// upsets as *named, scheduled events* so every robustness experiment is
// exactly reproducible: a FaultSchedule is an explicit list of FaultEvents
// (built by hand or expanded from a 64-bit seed via common/rng), and both
// LoopSimulator and EnsembleSimulator replay it bit-for-bit.
//
// Fault sites and their magnitude semantics (all periods/readings in
// stages, consistent with the loop's signal conventions):
//
//   kind                 site         magnitude
//   -------------------  -----------  -----------------------------------
//   kTdcStuckAt          sensor mux   the reading tau is pinned at
//                                     `magnitude` (clamped to the chain's
//                                     [0, max_reading] like real codes)
//   kTdcDroppedSample    sensor mux   the capture register misses the
//                                     edge; the mux presents an empty
//                                     chain, tau = 0 (magnitude unused)
//   kTdcGlitch           sensor mux   metastable outlier: `magnitude` is
//                                     ADDED to the true reading, then
//                                     re-clamped to [0, max_reading]
//   kRoStageFailure      oscillator   step change of the l_RO -> period
//                                     mapping: T_gen gains `magnitude`
//                                     extra stages while active
//   kCdnDeliveryDrop     clock tree   a delivered edge is swallowed; the
//                                     leaves observe a doubled period for
//                                     each faulted cycle (magnitude
//                                     unused)
//   kVoltageDroop        whole die    supply step: `magnitude` stages are
//                                     added to BOTH e_ro and e_tdc (the
//                                     homogeneous slow-down convention:
//                                     positive e = slower silicon)
//
// Concurrent sensor faults resolve with the precedence
// stuck-at > dropped-sample > glitch (a pinned mux output masks
// everything downstream of it).  Overlapping events of one additive kind
// (glitch, RO step, droop) sum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::fault {

enum class FaultKind : std::uint8_t {
  kTdcStuckAt,
  kTdcDroppedSample,
  kTdcGlitch,
  kRoStageFailure,
  kCdnDeliveryDrop,
  kVoltageDroop,
};

inline constexpr std::size_t kFaultKindCount = 6;

[[nodiscard]] constexpr const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTdcStuckAt:
      return "tdc-stuck-at";
    case FaultKind::kTdcDroppedSample:
      return "tdc-dropped-sample";
    case FaultKind::kTdcGlitch:
      return "tdc-glitch";
    case FaultKind::kRoStageFailure:
      return "ro-stage-failure";
    case FaultKind::kCdnDeliveryDrop:
      return "cdn-delivery-drop";
    case FaultKind::kVoltageDroop:
      return "voltage-droop";
  }
  return "?";
}

/// One scheduled upset.  Active on cycles
/// [start_cycle, start_cycle + duration), or from start_cycle onward when
/// duration == kPermanent.
struct FaultEvent {
  static constexpr std::uint64_t kPermanent = 0;

  FaultKind kind{FaultKind::kTdcGlitch};
  std::uint64_t start_cycle{0};
  std::uint64_t duration{1};  // cycles; kPermanent = until reset
  double magnitude{0.0};      // kind-specific, see the table above

  [[nodiscard]] bool operator==(const FaultEvent& other) const = default;
  [[nodiscard]] bool permanent() const { return duration == kPermanent; }
  /// True on cycles the event is active.
  [[nodiscard]] bool active_at(std::uint64_t cycle) const {
    return cycle >= start_cycle &&
           (permanent() || cycle - start_cycle < duration);
  }
};

/// Parameter ranges for seeded random schedule generation.  Magnitudes are
/// drawn uniformly from the per-kind closed interval; start cycles
/// uniformly from [min_start, horizon); durations uniformly from
/// [1, max_duration].
struct RandomFaultSpec {
  std::uint64_t horizon_cycles{4000};
  std::uint64_t min_start{0};
  std::uint64_t max_duration{64};
  std::size_t event_count{4};
  /// Kinds eligible for generation; empty = all six.
  std::vector<FaultKind> kinds{};
  double stuck_min{0.0}, stuck_max{192.0};
  double glitch_min{-64.0}, glitch_max{64.0};
  double ro_step_min{-8.0}, ro_step_max{8.0};
  double droop_min{0.0}, droop_max{16.0};
};

/// An immutable-once-built, sorted list of FaultEvents.  The runtime
/// cursor that replays it lives in fault/injector.hpp.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Validates and appends one event (events may be added in any order;
  /// the schedule keeps itself sorted by start cycle).
  FaultSchedule& add(const FaultEvent& event);

  /// Rejects non-finite magnitudes, negative stuck readings, and
  /// magnitude-free kinds carrying a magnitude that would be ignored
  /// silently.
  [[nodiscard]] static Status validate_event(const FaultEvent& event);

  /// Expands (key, spec) into a deterministic schedule.  Event i draws
  /// its parameters from the indexed substream key.at(i), so the schedule
  /// is a pure function of (key, spec) on every platform and the first k
  /// events are stable as event_count grows.
  [[nodiscard]] static FaultSchedule random(StreamKey key,
                                            const RandomFaultSpec& spec);
  /// Raw-seed convenience: key = StreamKey{seed}.split("fault.schedule").
  [[nodiscard]] static FaultSchedule random(std::uint64_t seed,
                                            const RandomFaultSpec& spec);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::span<const FaultEvent> events() const { return events_; }

  /// True when any event has duration kPermanent (active until reset).
  [[nodiscard]] bool has_permanent_event() const;

  [[nodiscard]] bool operator==(const FaultSchedule& other) const = default;

 private:
  std::vector<FaultEvent> events_;  // sorted by (start_cycle, insertion)
};

}  // namespace roclk::fault
