// Gate-level ring oscillator microarchitecture.
//
// The behavioural RingOscillator treats the ring as "l_RO stages of 1
// nominal delay"; this header models what the hardware actually is: a
// physical chain of inverting stages laid out along a die segment, each
// stage's delay set by the variation at *its own* coordinates, and a tap
// multiplexer that closes the ring after a selectable stage.  Two hardware
// facts the abstraction hides:
//
//  * only an ODD number of inverting stages oscillates — the tap mux can
//    only realise odd lengths, so the controller's requested length is
//    quantised to the nearest odd value (steps of 2, not 1);
//  * the period is the *sum of the selected stages' individual delays*
//    (the physical two-traversals-per-period factor is absorbed into the
//    stage-delay unit so that period == length at nominal, matching the
//    paper's convention), so within-die variation across the chain shows
//    up as a per-stage, not just multiplicative, error.
#pragma once

#include <cstdint>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::osc {

struct StageChainConfig {
  std::size_t stages{129};              // physical chain length (odd)
  variation::DiePoint start{0.45, 0.5};  // chain start on the die
  variation::DiePoint end{0.55, 0.5};    // chain end (stages interpolate)
  double nominal_stage_delay{1.0};       // in stage units (by definition)
};

/// A physical chain of stages with per-stage die coordinates.
class StageChain {
 public:
  explicit StageChain(StageChainConfig config = {});

  static Status validate(const StageChainConfig& config);

  [[nodiscard]] std::size_t size() const { return positions_.size(); }
  [[nodiscard]] variation::DiePoint position(std::size_t i) const;

  /// Delay of stage i under `source` at time t (stage units).
  [[nodiscard]] double stage_delay(std::size_t i,
                                   const variation::VariationSource& source,
                                   double t) const;

  /// Total delay of the first `count` stages.
  [[nodiscard]] double chain_delay(std::size_t count,
                                   const variation::VariationSource& source,
                                   double t) const;

  /// How many stages a transition launched at the chain head crosses
  /// within `window` stage units (the TDC primitive).
  [[nodiscard]] std::size_t stages_crossed(
      double window, const variation::VariationSource& source,
      double t) const;

 private:
  StageChainConfig config_;
  std::vector<variation::DiePoint> positions_;
};

/// Tap-multiplexed ring oscillator on a StageChain.
class TappedRingOscillator {
 public:
  /// `min_length`/`max_length` bound the mux range; both forced odd.
  TappedRingOscillator(StageChainConfig chain, std::int64_t min_length,
                       std::int64_t max_length);

  /// Requests a length; the mux realises the nearest odd value in range.
  /// Returns the realised length.
  std::int64_t set_length(std::int64_t requested);

  [[nodiscard]] std::int64_t length() const { return length_; }

  /// Oscillation period: the selected stages' *individual* delays summed
  /// (period == length at zero variation).
  [[nodiscard]] double period_stages(const variation::VariationSource& source,
                                     double t) const;

  [[nodiscard]] const StageChain& chain() const { return chain_; }

 private:
  StageChain chain_;
  std::int64_t min_length_;
  std::int64_t max_length_;
  std::int64_t length_;
};

/// Quantises a requested ring length to the nearest odd value (hardware
/// taps sit after every second stage).
[[nodiscard]] std::int64_t nearest_odd(std::int64_t value);

}  // namespace roclk::osc
