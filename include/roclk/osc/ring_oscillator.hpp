// Ring oscillator model.
//
// A ring oscillator is a closed chain of an odd number of inverting stages;
// its period is the time a transition needs to travel twice around the
// ring.  Expressed in elementary stage delays, a ring of l_RO stages under
// fractional delay variation v oscillates with period
//   T = l_RO * (1 + v)      [multiplicative, physical model]
// which the paper linearises additively as
//   T = l_RO + e,   e = c * v [additive, discrete control model]
// because perturbation amplitudes stay modest (20%) and l_RO ~ c.
// RingOscillator exposes both forms; the discrete loop simulator uses the
// additive one (matching the paper's eqs. 4-5 exactly) and the event-driven
// simulator the multiplicative one.
//
// The length (number of stages) is the control input.  Hardware constrains
// it to an integer in [min_length, max_length]; length changes take effect
// on the *next* period (the current transition still travels the old
// chain), which the loop simulators model as the RO's one-cycle delay.
#pragma once

#include <algorithm>
#include <cstdint>

#include "roclk/common/status.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::osc {

struct RingOscillatorConfig {
  std::int64_t min_length{8};
  std::int64_t max_length{512};
  std::int64_t initial_length{64};
  variation::DiePoint location{0.5, 0.5};  // where the RO sits on the die
  /// Stage delay in seconds, only for translating results into ns (the
  /// paper's worked examples use c = 64 stages <=> 1 ns).
  double stage_delay_seconds{1e-9 / 64.0};
};

class RingOscillator {
 public:
  explicit RingOscillator(RingOscillatorConfig config = {});

  /// Validates a configuration without constructing.
  static Status validate(const RingOscillatorConfig& config);

  [[nodiscard]] std::int64_t length() const { return length_; }
  [[nodiscard]] const RingOscillatorConfig& config() const { return config_; }

  /// Requests a new length; clamps into [min, max].  Returns the actual
  /// length after clamping.
  std::int64_t set_length(std::int64_t requested) {
    const std::int64_t clamped =
        std::clamp(requested, config_.min_length, config_.max_length);
    saturated_ = clamped != requested;
    length_ = clamped;
    return length_;
  }

  /// True if the last set_length had to clamp.
  [[nodiscard]] bool saturated() const { return saturated_; }

  /// Period in nominal-stage units under fractional variation v
  /// (multiplicative, physical).
  [[nodiscard]] double period_stages_physical(double v) const {
    return static_cast<double>(length_) * (1.0 + v);
  }

  /// Period in nominal-stage units with an additive perturbation e given in
  /// stages (the paper's linearised model: T = l_RO + e).
  [[nodiscard]] double period_stages_additive(double e_stages) const {
    return static_cast<double>(length_) + e_stages;
  }

  /// Period in seconds under fractional variation v.
  [[nodiscard]] double period_seconds(double v) const {
    return period_stages_physical(v) * config_.stage_delay_seconds;
  }

  /// Samples the variation source at the RO's own die location: the RO is
  /// a *point sensor* (paper section II-A).
  [[nodiscard]] double local_variation(
      const variation::VariationSource& source, double t) const {
    return source.at(t, config_.location);
  }

 private:
  RingOscillatorConfig config_;
  std::int64_t length_;
  bool saturated_{false};
};

/// Fixed (PLL-style) clock source: period chosen at design time, immune to
/// control but *not* to physical reality — the paper's baseline simply has
/// a constant generated period.
class FixedClockSource {
 public:
  explicit FixedClockSource(double period_stages);

  [[nodiscard]] double period_stages() const { return period_stages_; }

 private:
  double period_stages_;
};

}  // namespace roclk::osc
