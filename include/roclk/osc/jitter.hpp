// Ring-oscillator period jitter.
//
// Real ROs are noisy clock sources: thermal noise gives white
// (cycle-to-cycle independent) period jitter, flicker noise an
// accumulating random-walk component.  The paper's model is noiseless;
// this extension quantifies how much of the adaptive clock's recovered
// margin jitter claws back (ext_jitter bench), since jitter eats directly
// into the same safety margin the loop is trying to shrink.
#pragma once

#include <cstdint>

#include "roclk/common/rng.hpp"

namespace roclk::osc {

struct JitterConfig {
  /// RMS of the white (cycle-to-cycle) period jitter, in stages.
  double white_sigma{0.0};
  /// Per-cycle RMS of the accumulating (random-walk) component, stages.
  double walk_sigma{0.0};
  /// The walk is leaky so long runs stay bounded (models the 1/f corner):
  /// walk[n] = leak * walk[n-1] + N(0, walk_sigma).
  double walk_leak{0.995};
  std::uint64_t seed{0x5EED};
};

class JitterModel {
 public:
  explicit JitterModel(JitterConfig config = {});

  /// Period perturbation (stages) for the next cycle.
  double sample();

  void reset();

  [[nodiscard]] const JitterConfig& config() const { return config_; }
  [[nodiscard]] double walk_state() const { return walk_; }

 private:
  JitterConfig config_;
  Xoshiro256 rng_;
  double walk_{0.0};
};

}  // namespace roclk::osc
