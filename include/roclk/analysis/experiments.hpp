// The paper's evaluation experiments (section IV) as reusable library
// routines.  Each bench binary is a thin printer over these functions, and
// the integration tests assert the paper's qualitative claims on their
// outputs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "roclk/analysis/metrics.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace roclk::analysis {

enum class SystemKind { kIir, kTeaTime, kFreeRo, kFixedClock };

[[nodiscard]] constexpr const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kIir:
      return "IIR RO";
    case SystemKind::kTeaTime:
      return "TEAtime RO";
    case SystemKind::kFreeRo:
      return "Free RO";
    case SystemKind::kFixedClock:
      return "Fixed clock";
  }
  return "?";
}

inline constexpr SystemKind kAdaptiveSystems[] = {
    SystemKind::kIir, SystemKind::kTeaTime, SystemKind::kFreeRo};
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kIir, SystemKind::kTeaTime, SystemKind::kFreeRo,
    SystemKind::kFixedClock};

/// Shared experiment parameters; defaults are the paper's (section IV).
struct ExperimentParams {
  double setpoint_c{64.0};
  double amplitude_frac{0.2};  // HoDV amplitude = 0.2 c
  std::size_t min_cycles{4000};
  std::size_t transient_skip{1000};
  /// Simulated periods per perturbation period (long perturbations need
  /// proportionally longer runs to reach steady state).
  double periods_of_perturbation{12.0};
  std::size_t max_cycles{400000};
  /// The sweeps resolve fractional t_clk/T ratios (Fig. 8's log axis and
  /// Fig. 9's 0.75c/1c/1.25c columns), so the CDN interpolates by default.
  cdn::DelayQuantization cdn_quantization{
      cdn::DelayQuantization::kLinearInterp};
};

/// Builds one of the four systems at set-point c and CDN delay t_clk.
[[nodiscard]] core::LoopSimulator make_system(
    SystemKind kind, double setpoint_c, double cdn_delay_stages,
    double open_loop_margin = 0.0,
    cdn::DelayQuantization cdn_quantization =
        cdn::DelayQuantization::kLinearInterp);

/// Number of simulation cycles adequate for a perturbation of period
/// `te_over_c` nominal periods.
[[nodiscard]] std::size_t cycles_for(const ExperimentParams& params,
                                     double te_over_c);

// ------------------------------------------------------------------ Fig. 7

/// Timing-error traces tau - c for the four systems under a harmonic HoDV.
struct Fig7Trace {
  SystemKind system;
  std::vector<double> timing_error;  // one value per period number
};
struct Fig7Result {
  double te_over_c;
  std::size_t first_period;  // paper plots periods 500..600
  std::size_t last_period;
  std::vector<Fig7Trace> traces;
};
[[nodiscard]] Fig7Result fig7_timing_error(double te_over_c,
                                           double tclk_over_c = 1.0,
                                           std::size_t first_period = 500,
                                           std::size_t last_period = 600,
                                           const ExperimentParams& params =
                                               {});

// ------------------------------------------------------------------ Fig. 8

/// One x point of a relative-adaptive-period sweep under HoDV.
struct RelativePeriodRow {
  double x;        // t_clk/c (upper plot) or T_e/c (lower plot)
  double iir;      // <T>/T_fixed for the IIR RO
  double teatime;  // ... TEAtime RO
  double free_ro;  // ... free-running RO
};

/// Fig. 8 upper: T_e fixed (default 100c), sweep t_clk/c.
[[nodiscard]] std::vector<RelativePeriodRow> fig8_cdn_delay_sweep(
    std::span<const double> tclk_over_c, double te_over_c = 100.0,
    const ExperimentParams& params = {});

/// Fig. 8 lower: t_clk fixed (default 1c), sweep T_e/c.
[[nodiscard]] std::vector<RelativePeriodRow> fig8_frequency_sweep(
    std::span<const double> te_over_c, double tclk_over_c = 1.0,
    const ExperimentParams& params = {});

/// Log-spaced grid helper for the sweeps.
[[nodiscard]] std::vector<double> log_space(double lo, double hi,
                                            std::size_t points);

// ------------------------------------------------------------------ Fig. 9

/// One subplot of Fig. 9: relative adaptive period vs static mismatch mu/c
/// for a given (t_clk/c, T_e/c) pair.  The free RO's safety margin is fixed
/// at design time to cover the whole mu range (paper section IV-B).
struct Fig9Cell {
  double tclk_over_c;
  double te_over_c;
  std::vector<double> mu_over_c;
  std::vector<double> iir;
  std::vector<double> teatime;
  std::vector<double> free_ro;
};
[[nodiscard]] Fig9Cell fig9_mismatch_sweep(double tclk_over_c,
                                           double te_over_c,
                                           std::span<const double> mu_over_c,
                                           const ExperimentParams& params =
                                               {});

// -------------------------------------------------- worked examples (IV)

/// Paper end-of-section-IV.A / IV.B arithmetic, fed by measured relative
/// periods.  Stage delay such that c = 64 stages <-> 1 ns.
struct WorkedExample {
  double fixed_period_ns;     // 1.2 ns (HoDV) or 1.4 ns (HoDV+HeDV)
  double adaptive_period_ns;  // measured
  double margin_saved_ns;     // fixed - adaptive
  double margin_reduction;    // fraction of the fixed margin recovered
};
[[nodiscard]] WorkedExample worked_example(double relative_adaptive_period,
                                           double fixed_period_stages,
                                           double setpoint_c,
                                           double ns_per_setpoint = 1.0);

/// Runs one system against a harmonic HoDV (+ optional static mu) and
/// reports its metrics.  The building block of all sweeps above.
[[nodiscard]] RunMetrics measure_system(
    SystemKind kind, double setpoint_c, double tclk_stages,
    double amplitude_stages, double period_stages, double mu_stages,
    double fixed_period, std::size_t cycles, std::size_t skip,
    double free_ro_margin = 0.0,
    cdn::DelayQuantization cdn_quantization =
        cdn::DelayQuantization::kLinearInterp);

/// Lane-parallel measure_system: one lane per operating point of the same
/// system kind, sharing one harmonic HoDV of `amplitude_stages` /
/// `period_stages` (so all lanes run the same number of cycles).
/// `tclk_stages` and `mu_stages` each hold either one shared value or one
/// per lane; the lane count is the longer of the two.  Results (and memo
/// entries) are bit-for-bit identical to calling measure_system per lane —
/// lanes already memoised are not re-simulated, the rest run through one
/// EnsembleSimulator with a streaming MetricsReducer.
[[nodiscard]] std::vector<RunMetrics> measure_system_ensemble(
    SystemKind kind, double setpoint_c, std::span<const double> tclk_stages,
    double amplitude_stages, double period_stages,
    std::span<const double> mu_stages, double fixed_period,
    std::size_t cycles, std::size_t skip, double free_ro_margin = 0.0,
    cdn::DelayQuantization cdn_quantization =
        cdn::DelayQuantization::kLinearInterp);

/// Same, on an explicit pool (nullptr = strictly sequential), following
/// the DESIGN.md §13 convention of the other MC entry points.  Per-lane
/// results are bitwise identical for every choice of pool; the overload
/// above runs on the shared process-wide pool.
[[nodiscard]] std::vector<RunMetrics> measure_system_ensemble(
    SystemKind kind, double setpoint_c, std::span<const double> tclk_stages,
    double amplitude_stages, double period_stages,
    std::span<const double> mu_stages, double fixed_period,
    std::size_t cycles, std::size_t skip, double free_ro_margin,
    cdn::DelayQuantization cdn_quantization, ThreadPool* pool);

}  // namespace roclk::analysis
