// Multi-domain clocking: partitioning a die into independent adaptive
// clock domains.
//
// Paper section II-A ties the tolerable dynamic-variation frequency to the
// CDN delay, "and also the clock domain size since it is directly related
// with CDN delay".  The constructive consequence: a die too large for one
// adaptive clock can be split into K domains, each with a smaller H-tree
// (smaller t_clk) and its own RO + TDC loop — at the cost of K clock
// generators and domain-crossing interfaces.  MultiDomainStudy runs that
// experiment: one shared variation environment, per-domain closed loops,
// per-domain safety margins.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "roclk/analysis/metrics.hpp"
#include "roclk/chip/clock_domain.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::analysis {

struct MultiDomainConfig {
  double die_size_mm{8.0};
  /// Domains per side: the die splits into side x side equal squares.
  std::size_t side{1};
  double setpoint_c{64.0};
  chip::ClockDomainConfig tree{};  // per-domain H-tree parameters (size_mm set
                             // from the partition)
  std::size_t cycles{6000};
  std::size_t transient_skip{1500};
  /// TDC sites per domain (grid x grid inside the domain).
  std::size_t tdc_grid{2};
};

struct DomainResult {
  variation::DiePoint centre{};   // domain centre on the unit die
  double cdn_delay_stages{0.0};   // from the domain's own H-tree
  analysis::RunMetrics metrics{};
};

struct MultiDomainResult {
  std::size_t domains{0};
  double domain_size_mm{0.0};
  double cdn_delay_stages{0.0};
  /// Worst per-domain safety margin: the chip-level margin (every domain
  /// must be error-free).
  double worst_safety_margin{0.0};
  /// Mean of the domains' mean periods (performance proxy).
  double mean_period{0.0};
  /// Worst relative adaptive period across domains.
  double worst_relative_period{0.0};
  std::vector<DomainResult> per_domain;
};

/// Runs one partitioning against a variation environment with IIR loops in
/// every domain.  `fixed_period` normalises the relative periods (same
/// reference for all partitionings so they are comparable).
[[nodiscard]] MultiDomainResult run_partitioning(
    const MultiDomainConfig& config,
    const variation::VariationSource& environment, double fixed_period);

/// Sweeps partitionings (side = 1, 2, 4, ...) for the bench.
[[nodiscard]] std::vector<MultiDomainResult> partitioning_sweep(
    const MultiDomainConfig& base,
    const variation::VariationSource& environment, double fixed_period,
    std::span<const std::size_t> sides);

}  // namespace roclk::analysis
