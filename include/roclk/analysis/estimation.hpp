// Black-box estimation of loop properties from traces.
//
// A silicon bring-up engineer sees traces, not block diagrams: this module
// recovers the loop's effective transport delay and its perturbation
// attenuation *from measurements alone*, which both validates the model
// (tests compare estimates against configured ground truth) and gives the
// library a post-silicon characterisation story.
//
//  * effective delay: the free-running RO's residual under a perturbation
//    nu(t) is nu(t) - nu(t - d_eff); cross-correlating the timing error
//    against the perturbation recovers d_eff (= t_clk + RO/TDC registers).
//  * attenuation: ratio of residual to injected tone amplitude at the
//    perturbation frequency (Goertzel), the measured |H| of eq. 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::analysis {

/// Normalised cross-correlation of x and y at integer lag k (y delayed by
/// k samples relative to x); both series mean-removed.
[[nodiscard]] double cross_correlation_at_lag(std::span<const double> x,
                                              std::span<const double> y,
                                              std::ptrdiff_t lag);

/// Lag in [min_lag, max_lag] maximising the cross-correlation.
[[nodiscard]] std::ptrdiff_t best_lag(std::span<const double> x,
                                      std::span<const double> y,
                                      std::ptrdiff_t min_lag,
                                      std::ptrdiff_t max_lag);

struct LoopDelayEstimate {
  /// Effective transport delay in samples (cycles).
  std::ptrdiff_t delay_cycles{0};
  /// Peak correlation achieved at that delay (quality indicator, ~1 good).
  double correlation{0.0};
};

/// Estimates the effective loop transport delay from a *free-running RO*
/// trace: its timing error is e[n - d] - e[n - 1], so correlating
/// (error + e[n-1]) against e and searching lags recovers d.
/// `perturbation` must hold e[n] (stages) for the same cycles as `error`
/// holds tau[n] - c.
[[nodiscard]] Result<LoopDelayEstimate> estimate_loop_delay(
    std::span<const double> timing_error,
    std::span<const double> perturbation, std::ptrdiff_t max_delay = 64);

/// Measured attenuation of the perturbation tone: residual amplitude at
/// the tone frequency over injected amplitude.  `period_samples` is the
/// tone period in cycles.
[[nodiscard]] double measured_attenuation(std::span<const double> timing_error,
                                          std::span<const double> perturbation,
                                          double period_samples);

}  // namespace roclk::analysis
