// Process-wide memoisation of measure_system results.
//
// The figure sweeps (Fig. 8's two axes, Fig. 9's 3x3 grid, ablations, and
// the integration tests that re-run them) repeatedly simulate identical
// (system, operating-point) cells.  A run is fully determined by the
// parameters below, so the memo stores the fixed-period-independent run
// metrics keyed on them and lets callers skip the re-simulation; the
// relative adaptive period is recomputed from the caller's T_fixed on
// every hit, which is why T_fixed is *not* part of the key.
//
// The memo only covers measure_system's harmonic-HoDV + static-mu runs;
// simulations driven by custom LoopConfigs or variation sources bypass it
// (their inputs are not captured by the key).  It can also be switched off
// globally (set_enabled(false)) for timing studies that must re-simulate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "roclk/analysis/metrics.hpp"
#include "roclk/cdn/cdn.hpp"
#include "roclk/common/status.hpp"

namespace roclk::analysis {

/// Everything that determines a measure_system simulation (see
/// experiments.hpp).  Doubles are compared bitwise: sweep grids pass the
/// same representable values on every visit, which is exactly the reuse
/// the memo targets.
struct SweepKey {
  int kind{0};  // SystemKind
  double setpoint_c{0.0};
  double tclk_stages{0.0};
  double amplitude_stages{0.0};
  double period_stages{0.0};
  double mu_stages{0.0};
  std::size_t cycles{0};
  std::size_t skip{0};
  double free_ro_margin{0.0};
  int quantization{0};  // cdn::DelayQuantization

  [[nodiscard]] bool operator==(const SweepKey& other) const = default;
};

struct SweepMemoStats {
  std::size_t hits{0};
  std::size_t misses{0};
  std::size_t entries{0};
  std::size_t evictions{0};
};

/// Thread-safe memo; safe to use from parallel_for workers.
class SweepMemo {
 public:
  /// The process-wide instance all sweeps share.
  static SweepMemo& global();

  SweepMemo();
  ~SweepMemo();
  SweepMemo(const SweepMemo&) = delete;
  SweepMemo& operator=(const SweepMemo&) = delete;

  /// Returns true and fills `metrics` (sans relative_adaptive_period,
  /// which the caller renormalises) on a hit.  Counts a hit/miss either
  /// way.  Always misses while disabled.
  bool lookup(const SweepKey& key, RunMetrics& metrics);

  /// Records a finished run.  No-op while disabled.
  void store(const SweepKey& key, const RunMetrics& metrics);

  [[nodiscard]] SweepMemoStats stats() const;

  /// Drops all entries and zeroes the counters.
  void clear();

  /// Persists every entry to `path` (binary, checksummed).  Entries only;
  /// hit/miss counters and the enabled flag are session state.
  [[nodiscard]] Status save_file(const std::string& path) const;

  /// Replaces the memo's entries with the ones persisted at `path`.
  /// Robustness contract: a missing, truncated (torn write), or corrupt
  /// file can only DEGRADE the memo — entries become empty, a non-ok
  /// Status describes the problem, and nothing throws.  A stale or broken
  /// cache must never break a sweep; it just stops saving time.
  [[nodiscard]] Status load_file(const std::string& path);

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Bounds the memo to `capacity` entries, evicting least-recently-used
  /// ones (lookup hits and stores both refresh recency).  0 restores the
  /// historical unbounded behaviour.  Shrinking below the current size
  /// evicts immediately; load_file also respects the bound.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // out-of-line dtor: Impl is incomplete here
};

}  // namespace roclk::analysis
