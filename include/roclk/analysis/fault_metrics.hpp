// Robustness figures of merit for fault-injection runs.
//
// A fault experiment asks three questions the standard RunMetrics cannot
// answer:
//
//  1. How many timing errors did the fault actually cause, and when —
//     before, during, or after the fault window?  (A hardened loop is
//     allowed a handful of errors while the watchdog counts toward its
//     trip, but must incur ZERO true errors once degraded to the safe
//     period.)
//  2. How long did the loop take to re-lock after the fault cleared
//     (time-to-relock, in cycles)?
//  3. Did the type-1 loop actually re-converge — zero steady-state
//     adaptation error at the tail of the run — or is it limping along at
//     an offset?  (Eq. 8 guarantees zero steady-state error only for the
//     healthy loop; re-convergence after a transient fault is the property
//     the watchdog's re-acquire path must restore.)
//
// evaluate_fault_recovery answers all three from a SimulationTrace plus
// the fault window; schedule_span derives that window from a
// FaultSchedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "roclk/common/status.hpp"
#include "roclk/core/trace.hpp"
#include "roclk/fault/fault.hpp"

namespace roclk::analysis {

/// Cycle span covered by a schedule's events: [start, end).  `end` is
/// nullopt when a permanent event never clears.  Empty schedules span
/// [0, 0).
struct FaultSpan {
  std::uint64_t start{0};
  std::optional<std::uint64_t> end{0};
};

[[nodiscard]] FaultSpan schedule_span(const fault::FaultSchedule& schedule);

struct FaultRecoveryConfig {
  /// |delta| <= lock_bound for lock_cycles consecutive cycles declares
  /// relock (same convention as control::Watchdog).
  double lock_bound{2.0};
  std::size_t lock_cycles{8};
  /// Tail window checked for re-convergence; every tail sample must have
  /// |delta| <= reconverge_bound (0.5 = "rounds to zero", the type-1
  /// zero-steady-state-error criterion under integer quantisation).
  std::size_t tail_cycles{32};
  double reconverge_bound{0.5};
};

struct FaultRecoveryMetrics {
  /// True timing errors (tau < c judged on the unfaulted reading) split by
  /// position relative to the fault window.
  std::size_t violations_before{0};
  std::size_t violations_during{0};
  std::size_t violations_after{0};
  /// Relock found after the fault window?
  bool relocked{false};
  /// Cycles from the end of the fault window to the first cycle of the
  /// relock streak (0 when never relocked or the fault never clears).
  std::size_t relock_latency{0};
  /// Zero steady-state adaptation error over the tail window.
  bool reconverged{false};
  /// Largest |delta| over the tail window (diagnostic).
  double tail_max_abs_delta{0.0};
};

/// Scores one finished run against its fault window [fault_start,
/// fault_end).  A permanent fault (no end) reports all post-start cycles
/// as "during" and never relocks.  Requires a non-empty trace.
[[nodiscard]] FaultRecoveryMetrics evaluate_fault_recovery(
    const core::SimulationTrace& trace, std::uint64_t fault_start,
    std::optional<std::uint64_t> fault_end,
    const FaultRecoveryConfig& config = {});

/// Convenience: evaluate_fault_recovery with the window derived from the
/// schedule that was injected.
[[nodiscard]] FaultRecoveryMetrics evaluate_fault_recovery(
    const core::SimulationTrace& trace, const fault::FaultSchedule& schedule,
    const FaultRecoveryConfig& config = {});

/// Guarded-vs-baseline verdict for one fault scenario: the hardened loop
/// must incur no more post-fault timing errors than the unguarded one and
/// must re-converge.
struct HardeningVerdict {
  FaultRecoveryMetrics guarded;
  FaultRecoveryMetrics baseline;
  [[nodiscard]] bool guarded_no_worse() const {
    return guarded.violations_during + guarded.violations_after <=
           baseline.violations_during + baseline.violations_after;
  }
  [[nodiscard]] bool guarded_recovers() const {
    return guarded.relocked && guarded.reconverged;
  }
};

[[nodiscard]] HardeningVerdict compare_hardening(
    const core::SimulationTrace& guarded, const core::SimulationTrace& baseline,
    const fault::FaultSchedule& schedule,
    const FaultRecoveryConfig& config = {});

}  // namespace roclk::analysis
