// Parametric yield under process variation: the economics behind the paper.
//
// The introduction's argument: PVTA uncertainty forces safety margins, and
// "the more margin added, the more unlikely to fail the chip is" — margin
// buys yield at the cost of performance, and more critical paths demand
// more margin for the same yield (Bowman et al., the paper's refs [1][3]).
// This module makes that quantitative with a Monte-Carlo over fabricated
// chips (D2D offset + WID map + RND device noise on every path):
//
//  * fixed clock: a chip yields at margin m if every path fits into the
//    period c + m on that die;
//  * adaptive clock: a chip yields if the RO has enough length range to
//    stretch the period over the slowest path (margins become per-chip
//    *measured* periods instead of a worst-case tax).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "roclk/chip/floorplan.hpp"
#include "roclk/common/status.hpp"
#include "roclk/common/thread_pool.hpp"

namespace roclk::analysis {

struct YieldConfig {
  std::size_t chips{500};         // Monte-Carlo sample size
  std::size_t paths{64};          // critical-path candidates per chip
  double nominal_depth{64.0};     // stages per path at nominal
  double d2d_sigma{0.05};
  double wid_sigma{0.04};
  double rnd_sigma{0.02};
  double setpoint_c{64.0};
  std::int64_t ro_max_length{128};  // adaptive clock's stretch range
  std::uint64_t seed{1234};
};

struct YieldPoint {
  double margin_stages{0.0};
  double fixed_yield{0.0};     // fraction of chips meeting timing
  double adaptive_yield{0.0};  // fraction the adaptive clock can serve
};

struct YieldCurve {
  std::vector<YieldPoint> points;
  /// Mean over chips of the slowest-path delay (stages).
  double mean_worst_path{0.0};
  /// Mean adaptive period (per-chip period that exactly fits the die).
  double mean_adaptive_period{0.0};
  /// p99 over chips of the slowest-path delay: the fixed margin needed for
  /// ~99% yield.
  double p99_worst_path{0.0};
};

/// Samples the per-chip slowest-path delays for `config` (index order:
/// chip i at slot i).  Each chip draws from the indexed substream
/// StreamKey{seed}.split("analysis.yield").split("chip").at(i), so the
/// result is a pure function of the config — bitwise identical whether
/// `pool` is null (sequential single-stream order), the shared pool, or
/// any explicitly sized pool.  yield_curve / compare_margins memoise this
/// sampling; call it directly to shard a study or to gate scheduling
/// invariance.
[[nodiscard]] std::vector<double> sample_worst_paths(
    const YieldConfig& config, ThreadPool* pool = nullptr);

/// Sweeps the fixed clock's safety margin over `margins` and reports both
/// yields.  Deterministic in config.seed.
[[nodiscard]] YieldCurve yield_curve(std::span<const double> margins,
                                     const YieldConfig& config = {});

/// Same, running any un-memoised chip sampling on an explicit pool
/// (nullptr = strictly sequential).  The curve is bitwise identical for
/// every choice of pool — the sampling is scheduling-invariant (§13).
[[nodiscard]] YieldCurve yield_curve(std::span<const double> margins,
                                     const YieldConfig& config,
                                     ThreadPool* pool);

/// The margin (stages) the fixed clock needs for a target yield, found on
/// the worst-path distribution; and the performance the adaptive clock
/// gives up instead (its mean period minus c).
struct MarginComparison {
  double fixed_margin_needed{0.0};
  double adaptive_mean_extra_period{0.0};
  double margin_saved{0.0};  // fixed - adaptive (stages)
};
[[nodiscard]] MarginComparison compare_margins(double target_yield,
                                               const YieldConfig& config =
                                                   {});

}  // namespace roclk::analysis
