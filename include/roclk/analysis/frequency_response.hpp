// Loop frequency response: how much of a perturbation tone survives.
//
// Eq. 5's H_delta(z) = D/(D + N z^{-M-2}) is the loop's error-rejection
// transfer function: |H_delta(e^{jw})| < 1 means the closed loop attenuates
// a perturbation at normalized frequency w, > 1 means it amplifies it (the
// regime behind Fig. 8's above-1.0 plateaus).  This module evaluates the
// analytic curve and measures the same quantity from time-domain runs via
// Goertzel tone extraction, tying the z-domain design story to simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "roclk/analysis/experiments.hpp"
#include "roclk/signal/polynomial.hpp"

namespace roclk::analysis {

struct FrequencyResponsePoint {
  double te_over_c{0.0};    // perturbation period in nominal periods
  double analytic_gain{0.0};  // |H_delta| from eq. 5 at w = 2*pi/Te
  double measured_gain{0.0};  // residual tone / injected tone, simulated
};

/// |H_delta(e^{jw})| for a controller N/D and CDN sample delay M, where the
/// perturbation input is the eq. 5 combination p(z) = e(z)(z^-1 - z^{-M-2})
/// (the homogeneous-variation path), i.e. the gain from the *raw* tone e to
/// the timing error delta.
[[nodiscard]] double analytic_error_gain(const signal::Polynomial& numerator,
                                         const signal::Polynomial&
                                             denominator,
                                         std::size_t cdn_delay_m,
                                         double te_over_c);

/// Measures the residual timing-error tone of a running system relative to
/// the injected perturbation amplitude.
[[nodiscard]] double measured_error_gain(SystemKind kind, double setpoint_c,
                                         double tclk_stages,
                                         double amplitude_stages,
                                         double te_over_c,
                                         std::size_t cycles = 0);

/// Full curve for the paper IIR controller at CDN delay M = t_clk/c.
[[nodiscard]] std::vector<FrequencyResponsePoint> error_rejection_curve(
    std::span<const double> te_over_c_grid, double tclk_over_c = 1.0,
    double setpoint_c = 64.0, double amplitude_stages = 2.0);

}  // namespace roclk::analysis
