// Streaming RunMetrics reduction for ensemble runs.
//
// MetricsReducer folds EnsembleSimulator's per-cycle lane slices straight
// into the four figures of merit of evaluate_run — required safety margin,
// mean delivered period, violation count, tau ripple — without ever
// materialising a per-lane SimulationTrace.  A W-lane Monte-Carlo
// therefore allocates O(W) accumulator state instead of O(W * cycles)
// trace memory.
//
// The accumulators use the *same* definitions, in the *same* fold order,
// as SimulationTrace + evaluate_run: the margin folds delta[n] = c -
// tau[n], which the kernel computes with the identical subtraction; the
// period mean performs RunningStats::add's Welford update (without the m2
// term the metrics never read); the tau ripple keeps the running extrema.
// The resulting RunMetrics are therefore bit-for-bit equal to running each
// lane through run_batch + evaluate_run.
// tests/core/test_ensemble_simulator enforces this.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "roclk/analysis/metrics.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/signal/waveform.hpp"

namespace roclk::analysis {

/// Streaming per-lane RunMetrics accumulator.  `skip` drops the initial
/// transient, counted per lane (like evaluate_run's skip).  Thread-safe
/// under EnsembleSimulator::run(parallel=true): each lane's state is
/// touched only by the chunk that owns the lane.
class MetricsReducer final : public core::StreamingReducer {
 public:
  /// One shared fixed-clock reference period for every lane.
  MetricsReducer(std::size_t lanes, double fixed_period, std::size_t skip);
  /// Per-lane fixed-clock reference periods.
  MetricsReducer(std::vector<double> fixed_periods, std::size_t skip);

  void accumulate(const core::LaneSlice& slice) override;
  /// The metrics never read l_RO or T_gen, so the kernel may skip staging
  /// them.
  [[nodiscard]] bool wants_full_slice() const override { return false; }

  [[nodiscard]] std::size_t lanes() const { return accumulators_.size(); }
  [[nodiscard]] std::size_t cycles_seen(std::size_t lane) const;

  /// Finished-run metrics for one lane; requires that more than `skip`
  /// cycles have been accumulated (same precondition as evaluate_run).
  [[nodiscard]] RunMetrics metrics(std::size_t lane) const;
  /// metrics() for every lane.
  [[nodiscard]] std::vector<RunMetrics> all() const;

 private:
  struct LaneAccumulator {
    double worst_margin{0.0};  // max(0, max(c - tau)), folded from delta
    double period_mean{0.0};   // Welford mean of t_dlv after skip
    std::size_t period_n{0};
    double tau_min{std::numeric_limits<double>::infinity()};
    double tau_max{-std::numeric_limits<double>::infinity()};
    std::size_t violations{0};
    std::size_t seen{0};       // cycles observed, including skipped ones
  };

  std::vector<LaneAccumulator> accumulators_;
  std::vector<double> fixed_periods_;
  std::size_t skip_;
};

/// Convenience wrapper: reset the ensemble, run `block`, return one
/// RunMetrics per lane.  `fixed_periods` must either hold one shared value
/// or one per lane.
[[nodiscard]] std::vector<RunMetrics> evaluate_ensemble(
    core::EnsembleSimulator& ensemble, const core::EnsembleInputBlock& block,
    std::vector<double> fixed_periods, std::size_t skip,
    bool parallel = false);

/// Same, on an explicit pool (nullptr = strictly sequential).  Per-lane
/// results are bitwise identical for every choice of pool.
[[nodiscard]] std::vector<RunMetrics> evaluate_ensemble(
    core::EnsembleSimulator& ensemble, const core::EnsembleInputBlock& block,
    std::vector<double> fixed_periods, std::size_t skip, ThreadPool* pool);

/// The homogeneous Monte-Carlo fast path: equivalent to
/// sample_homogeneous_ensemble + evaluate_ensemble over `cycles` cycles
/// sampled at `dt`, but sampling and simulating in cache-resident cycle
/// tiles (sample a tile, run it, refill) so a long study never
/// materialises cycles * lanes * 3 doubles at once.  Per-lane results are
/// bit-identical to the whole-block path — and therefore to per-lane
/// run_batch + evaluate_run.  `tile_cycles` = 0 picks a tile sized to
/// ~256 KiB of samples.
[[nodiscard]] std::vector<RunMetrics> evaluate_homogeneous_mc(
    core::EnsembleSimulator& ensemble, const signal::Waveform& waveform,
    std::span<const double> static_mu_stages, std::size_t cycles, double dt,
    std::vector<double> fixed_periods, std::size_t skip,
    bool parallel = false, std::size_t tile_cycles = 0);

/// Same, on an explicit pool (nullptr = strictly sequential).  Per-lane
/// results are bitwise identical for every choice of pool — the
/// scheduling-invariance contract the MC gating tests enforce.
[[nodiscard]] std::vector<RunMetrics> evaluate_homogeneous_mc(
    core::EnsembleSimulator& ensemble, const signal::Waveform& waveform,
    std::span<const double> static_mu_stages, std::size_t cycles, double dt,
    std::vector<double> fixed_periods, std::size_t skip, ThreadPool* pool,
    std::size_t tile_cycles = 0);

}  // namespace roclk::analysis
