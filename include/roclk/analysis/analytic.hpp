// Closed-form results of paper section II-A (eqs. 1-3 and the benefit
// boundaries around Fig. 2).
//
// Under a homogeneous dynamic variation nu(t), a free-running RO clock
// delivered through a CDN of delay t_clk mismatches the critical paths by
//   dnu(t, t_clk) = nu(t) - nu(t - t_clk)                       (eq. 1)
// whose worst case is, for the harmonic perturbation nu0 sin(2 pi t/T):
//   dnu_wc = 2 nu0 |sin(pi t_clk / T)|                          (eq. 2)
// and for a single triangular event of duration T and amplitude nu0:
//   dnu_wc = 2 nu0 t_clk / T   (t_clk/T <= 1/2),  nu0 otherwise (eq. 3)
#pragma once

#include "roclk/signal/waveform.hpp"

namespace roclk::analysis {

/// eq. 1 evaluated pointwise on an arbitrary perturbation waveform.
[[nodiscard]] double cdn_mismatch(const signal::Waveform& nu, double t,
                                  double t_clk);

/// eq. 2: worst-case mismatch for a harmonic HoDV.
[[nodiscard]] double harmonic_worst_mismatch(double t_clk, double period,
                                             double amplitude);

/// eq. 3: worst-case mismatch for a single triangular event.
[[nodiscard]] double single_event_worst_mismatch(double t_clk,
                                                 double duration,
                                                 double amplitude);

/// Paper section II-A.1 boundary: does a free-running RO *reduce* the
/// safety margin under a harmonic HoDV for this t_clk?  True when
/// t_clk < T/6 or (n - 1/6) T < t_clk < (n + 1/6) T for integer n >= 1
/// (equivalently: 2|sin(pi t_clk/T)| < 1).
[[nodiscard]] bool harmonic_ro_beneficial(double t_clk, double period);

/// Largest CDN delay below `period` for which the RO is beneficial
/// (the first boundary T/6).
[[nodiscard]] double harmonic_benefit_limit(double period);

/// Numerical worst case of eq. 1 over a full period of an arbitrary
/// periodic waveform (grid search with `samples` points); validates eq. 2.
[[nodiscard]] double numeric_worst_mismatch(const signal::Waveform& nu,
                                            double period, double t_clk,
                                            std::size_t samples = 4096);

}  // namespace roclk::analysis
