// Automated IIR control-block design space exploration.
//
// The paper picked k = {2, 1, 1/2, 1/4, 1/8, 1/8} by hand to "achieve a
// balance between filter adaptation velocity and low output ripple".  This
// header systematises that choice: enumerate every coefficient set of
// power-of-two taps that satisfies eq. 10 (k* = 1/sum(k_i) must itself be
// a power of two), score each candidate on
//   * settling time after a mismatch step (velocity),
//   * steady-state tau ripple under the paper's HoDV (smoothness),
//   * delay margin: the largest CDN sample delay M that keeps the closed
//     loop stable (robustness),
// and return the Pareto-efficient designs.  The paper's set should appear
// on (or next to) the frontier — the ablation bench checks.
#pragma once

#include <cstddef>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/control/iir_control.hpp"

namespace roclk::analysis {

struct DesignSpaceOptions {
  /// Tap magnitudes are 2^e for e in [min_exponent, max_exponent].
  int min_exponent{-3};
  int max_exponent{1};
  /// Number of taps in the candidates.
  std::size_t min_taps{1};
  std::size_t max_taps{6};
  /// Taps must be non-increasing (canonical form; avoids permuted
  /// duplicates and matches hardware practice of tapering feedback).
  bool monotone_taps{true};
  /// Simulation scenario for the velocity/ripple scores.
  double setpoint_c{64.0};
  double cdn_delay_stages{64.0};
  double hodv_amplitude{12.8};
  double hodv_period{3200.0};  // 50 c
  std::size_t cycles{4000};
  std::size_t skip{1500};
  double mismatch_step{8.0};
};

struct IirCandidate {
  control::IirConfig config;
  std::size_t settling_cycles{0};  // velocity (lower better)
  double tau_ripple{0.0};          // smoothness (lower better)
  std::size_t max_stable_m{0};     // robustness (higher better)
  bool pareto{false};
};

/// All eq.-10-valid candidates in the option space, scored.  Deterministic.
[[nodiscard]] std::vector<IirCandidate> enumerate_candidates(
    const DesignSpaceOptions& options = {});

/// Marks (and returns only) the Pareto-efficient candidates under
/// (settling down, ripple down, max_stable_m up).
[[nodiscard]] std::vector<IirCandidate> pareto_front(
    std::vector<IirCandidate> candidates);

/// Scores one configuration (exposed for tests and the bench).
[[nodiscard]] IirCandidate score_candidate(const control::IirConfig& config,
                                           const DesignSpaceOptions& options =
                                               {});

}  // namespace roclk::analysis
