// Clock-stability metrics: Allan deviation of the delivered period.
//
// An adaptive clock deliberately *moves* its period — which is exactly
// what classical clock-stability metrics penalise.  The Allan deviation
// quantifies the trade: white period jitter averages down as 1/sqrt(m)
// with the observation window m, random-walk (flicker-like) noise grows,
// and the adaptation itself shows up as excess deviation at windows near
// the perturbation period.  The ext_stability bench uses this to show
// where an adaptive clock is *less* stable than a fixed one and why that
// is the price of the recovered margin.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::analysis {

/// Overlapping Allan deviation of a fractional-deviation series y[i]
/// (e.g. (T_i - T_nom)/T_nom) at averaging factor m (in samples).
/// Requires at least 2m + 1 samples.
[[nodiscard]] Result<double> allan_deviation(std::span<const double> y,
                                             std::size_t m);

/// ADEV over a ladder of averaging factors (powers of two up to n/3).
struct AllanPoint {
  std::size_t m{0};
  double adev{0.0};
};
[[nodiscard]] std::vector<AllanPoint> allan_curve(std::span<const double> y);

/// Convenience: fractional period deviations from a period trace.
[[nodiscard]] std::vector<double> fractional_deviation(
    std::span<const double> periods, double nominal);

}  // namespace roclk::analysis
