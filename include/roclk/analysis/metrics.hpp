// Figures of merit for adaptive clock runs (paper section IV).
//
// The paper's comparison metric is the *relative adaptive period*
// <T_clk>/T_fixed: the mean period the adaptive system needs for an
// error-free run, normalised by the fixed clock period that guarantees the
// same under worst-case design assumptions.  Values below 1 mean the
// adaptive clock recovered part of the fixed clock's safety margin.
#pragma once

#include <cstddef>

#include "roclk/core/trace.hpp"

namespace roclk::analysis {

struct RunMetrics {
  /// Extra stages the run needed to be error-free: max(0, max(c - tau)).
  double safety_margin{0.0};
  /// Mean delivered period at set-point c (before adding the margin).
  double mean_period{0.0};
  /// (mean_period + safety_margin) / fixed_period.
  double relative_adaptive_period{0.0};
  /// Timing violations observed at set-point c (before adding the margin).
  std::size_t violations{0};
  /// Steady-state tau peak-to-peak ripple.
  double tau_ripple{0.0};
};

/// Evaluates a finished run.  `skip` drops the initial transient.
[[nodiscard]] RunMetrics evaluate_run(const core::SimulationTrace& trace,
                                      double setpoint_c, double fixed_period,
                                      std::size_t skip);

/// Design-time fixed-clock period covering a homogeneous amplitude and a
/// mismatch bound, both in stages: T_fixed = c + nu0 [+ |mu|_max]
/// (the paper's worked examples: 1.2c for HoDV, 1.4c for HoDV+HeDV).
[[nodiscard]] double fixed_clock_period(double setpoint_c,
                                        double hodv_amplitude_stages,
                                        double mu_bound_stages = 0.0);

/// Safety-margin reduction achieved by an adaptive system, as the paper's
/// worked examples compute it: the fixed clock spends
/// `fixed_period - c` stages of margin; the adaptive system spends
/// `relative * fixed_period - c`; the reduction is the saved fraction.
[[nodiscard]] double safety_margin_reduction(double relative_adaptive_period,
                                             double fixed_period,
                                             double setpoint_c);

}  // namespace roclk::analysis
