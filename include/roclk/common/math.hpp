// Small math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace roclk {

/// Three-valued sign: -1, 0 or +1.
template <class T>
[[nodiscard]] constexpr int signum(T x) {
  return (T{0} < x) - (x < T{0});
}

/// Two-valued sign used by dithering TEAtime variants: never returns 0.
template <class T>
[[nodiscard]] constexpr int signum_dither(T x) {
  return x < T{0} ? -1 : 1;
}

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)) for v >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t v) {
  int r = -1;
  while (v != 0) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// Arithmetic shift that also supports negative shift counts (shift the
/// other way).  Used by the power-of-two gain blocks of the IIR filter.
[[nodiscard]] constexpr std::int64_t shift_signed(std::int64_t v, int sh) {
  if (sh >= 0) return v << sh;
  // Arithmetic right shift of a negative value rounds toward -inf, which is
  // exactly the hardware behaviour of a shifter on two's-complement data.
  return v >> (-sh);
}

/// std::round without the libm call: round-half-away-from-zero, bit-exact
/// for every finite and non-finite double (x - trunc(x) is exact below
/// 2^52, and trunc inlines on every target).  round/llround cannot inline
/// through SSE4's roundsd (it has no ties-away mode), so the hot loops use
/// these; tests/common/test_math sweeps them against libm.
[[nodiscard]] inline double round_ties_away(double x) {
  const double t = std::trunc(x);
  const double diff = x - t;
  const double up = diff >= 0.5 ? 1.0 : 0.0;
  const double down = diff <= -0.5 ? 1.0 : 0.0;
  // copysign restores the sign of a -0.0 result (t + up - down yields
  // +0.0 for x in (-0.5, -0.0]); the result's sign always equals x's.
  return std::copysign(t + up - down, x);
}

/// std::llround without the libm call; same contract as round_ties_away.
[[nodiscard]] inline std::int64_t llround_ties_away(double x) {
  return static_cast<std::int64_t>(round_ties_away(x));
}

/// True if |a - b| <= tol (absolute comparison for simulation traces).
[[nodiscard]] inline bool near(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Relative closeness with an absolute floor; robust around zero.
[[nodiscard]] inline bool near_rel(double a, double b, double rel = 1e-9,
                                   double abs_floor = 1e-12) {
  return std::fabs(a - b) <=
         std::max(abs_floor, rel * std::max(std::fabs(a), std::fabs(b)));
}

/// Positive modulo: result in [0, m) for m > 0.
[[nodiscard]] inline double positive_fmod(double x, double m) {
  double r = std::fmod(x, m);
  return r < 0.0 ? r + m : r;
}

/// Linear interpolation.
[[nodiscard]] constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Smoothstep used by the value-noise spatial variation maps.
[[nodiscard]] constexpr double smoothstep(double t) {
  return t * t * (3.0 - 2.0 * t);
}

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace roclk
