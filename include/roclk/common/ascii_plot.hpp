// Terminal line plots for benches: the paper's figures are line charts, and
// the benches render an ASCII approximation next to the CSV data so the
// shape (who wins, where crossovers fall) is visible without plotting tools.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace roclk {

/// One named series of (x, y) points.
struct PlotSeries {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph{'*'};
};

struct PlotOptions {
  int width{72};         // plot area columns
  int height{20};        // plot area rows
  bool log_x{false};     // logarithmic x axis
  std::string title{};
  std::string x_label{};
  std::string y_label{};
  // Optional fixed y range; when lo >= hi the range is auto-computed.
  double y_lo{0.0};
  double y_hi{0.0};
};

/// Multi-series scatter/line chart rendered to a string.
class AsciiPlot {
 public:
  explicit AsciiPlot(PlotOptions options = {});

  AsciiPlot& add_series(PlotSeries series);
  AsciiPlot& add_series(std::string name, std::span<const double> x,
                        std::span<const double> y, char glyph);

  [[nodiscard]] std::string render() const;

 private:
  PlotOptions options_;
  std::vector<PlotSeries> series_;
};

/// Compact sparkline of a single series (one text row), for trace summaries.
[[nodiscard]] std::string sparkline(std::span<const double> ys, int width = 64);

}  // namespace roclk
