// Sharded Monte-Carlo driver over splittable stream keys.
//
// The contract (DESIGN.md §13): a keyed Monte-Carlo is a pure function of
// its StreamKey, *independent of how it is scheduled*.  Every item i of a
// study draws from its own substream key.at(i), so a shard that owns items
// [b, e) regenerates exactly its slice of the study from the key alone —
// no draw-order coupling with any other shard.  Results are written into
// per-item slots and merged in index order, so the outcome is bit-identical
// at 1 thread, N threads, or across processes each running one shard.
//
// keyed_for(pool=nullptr) is the reference "single-stream" execution: the
// same per-item work run strictly sequentially.  The scheduling-invariance
// tests (tests/analysis/test_mc_sharding.cpp) gate that every pool size
// reproduces it bitwise.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "roclk/common/stream_key.hpp"
#include "roclk/common/thread_pool.hpp"

namespace roclk::mc {

/// Contiguous slice of the item space owned by one shard.
struct ShardRange {
  std::size_t begin{0};
  std::size_t end{0};
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool operator==(const ShardRange&) const = default;
};

/// Splits [0, items) into at most `shards` contiguous ranges of
/// near-equal size (never empty; fewer ranges than requested when items <
/// shards).  The split depends only on (items, shards), so a distributed
/// run can compute its own range without coordination.
[[nodiscard]] std::vector<ShardRange> shard_ranges(std::size_t items,
                                                   std::size_t shards);

/// Runs fn(i, key.at(i)) for every i in [0, items).  `pool` == nullptr
/// runs strictly sequentially (the single-stream reference order); a pool
/// distributes items across its workers.  fn must write any output into
/// its own per-item slot; under that discipline the results are identical
/// for every pool size.
void keyed_for(std::size_t items, StreamKey key, ThreadPool* pool,
               const std::function<void(std::size_t, StreamKey)>& fn);

/// keyed_for collecting one double per item, in index order — the
/// deterministic-merge pattern used by the yield Monte-Carlo.
[[nodiscard]] std::vector<double> keyed_map(
    std::size_t items, StreamKey key, ThreadPool* pool,
    const std::function<double(std::size_t, StreamKey)>& fn);

}  // namespace roclk::mc
