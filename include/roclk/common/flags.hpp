// Minimal command-line flag parsing for the roclk tools.
//
// Supports `--name value`, `--name=value`, bare boolean `--name`, and an
// auto-generated `--help`.  Values are typed (string / double / int64 /
// bool) with defaults; unknown flags and malformed values are reported as
// Status errors so tools can exit cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  FlagParser& add_string(const std::string& name, std::string default_value,
                         std::string help);
  FlagParser& add_double(const std::string& name, double default_value,
                         std::string help);
  FlagParser& add_int(const std::string& name, std::int64_t default_value,
                      std::string help);
  FlagParser& add_bool(const std::string& name, bool default_value,
                       std::string help);

  /// Parses argv (excluding argv[0]).  On `--help` sets help_requested().
  Status parse(int argc, const char* const* argv);
  Status parse(const std::vector<std::string>& args);

  /// Parses a config file of `name = value` lines (# starts a comment;
  /// blank lines ignored).  Values set later — by a later file or by
  /// parse() — override earlier ones, so load files before argv.
  Status parse_file(const std::string& path);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help_text() const;

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments encountered during parse.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    double double_value{0.0};
    std::int64_t int_value{0};
    bool bool_value{false};
    std::string default_text;
  };

  Status set_value(Flag& flag, const std::string& name,
                   const std::string& text);
  const Flag& require(const std::string& name, Type type) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_{false};
};

}  // namespace roclk
