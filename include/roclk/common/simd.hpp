// SIMD dispatch shim + cache-aligned lane storage for roclk's lane kernels.
//
// The ensemble engine (core::EnsembleSimulator) runs W independent loop
// instances in SoA lockstep; its per-cycle arithmetic is pure lane-wise
// IEEE-754, so it vectorizes across lanes without changing a single bit of
// any lane's result.  This header is the ONE place in the tree allowed to
// include vendor intrinsics (enforced by roclk_lint's simd-include rule):
//
//  * Backend — which lane-kernel implementation runs: kScalar (portable
//    fixed-width pack, always available), kAvx2 (x86, 4 doubles/vector),
//    kNeon (aarch64, 2 doubles/vector).  active_backend() resolves, in
//    order: the programmatic override (set_backend_override), the
//    ROCLK_SIMD environment variable (scalar | avx2 | neon | native), and
//    runtime CPU detection of the best compiled-in backend.  Requesting a
//    backend that is not compiled in or not supported by this CPU falls
//    back to kScalar with a one-time stderr warning — never a crash.
//
//  * Traits (ScalarTraits<N> / Avx2Traits / NeonTraits) — a uniform
//    vector-of-doubles + vector-of-int64 operation set the generic kernel
//    template is instantiated over.  Every operation is defined to match
//    the scalar reference EXACTLY, bit for bit, on the kernel's domain
//    (finite inputs; integral magnitudes below 2^51 for the int<->double
//    conversions — see to_int_exact):
//      - add/sub/mul/div are lane-wise IEEE-754 ops, identical to scalar;
//      - min/max/clamp are NOT provided as fused ops: kernels compose them
//        from cmp_* + select so -0.0/NaN selection matches std::min /
//        std::max / std::clamp exactly;
//      - round_ties_away composes trunc/cmp/copysign with the same
//        operation sequence as roclk::round_ties_away (common/math.hpp).
//
//  * CacheAlignedAllocator / aligned_vector — lane arrays aligned to (and
//    padded to a multiple of) the cache line, so vector loads never split
//    lines and concurrently-run chunks never false-share a line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <optional>
#include <string_view>
#include <vector>

#include "roclk/common/math.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace roclk::simd {

// ------------------------------------------------ cache-aligned storage

/// Cache-line size the lane arrays are aligned and padded to.  64 bytes
/// covers every x86-64 and mainstream aarch64 part; on 128-byte-line CPUs
/// the padding is merely half as effective, never wrong.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocator that over-aligns every allocation to kCacheLineBytes and pads
/// its size up to a whole number of lines.  Two vectors using it can never
/// share a cache line, so per-chunk lane state touched by different worker
/// threads cannot false-share; vector loads at lane-group offsets never
/// straddle a line.
template <class T>
class CacheAlignedAllocator {
 public:
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <class U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    const std::size_t padded =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    return static_cast<T*>(
        ::operator new(padded, std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  friend bool operator==(const CacheAlignedAllocator&,
                         const CacheAlignedAllocator&) {
    return true;
  }
};

/// Lane-array vector type used by the ensemble engine's chunk state.
template <class T>
using aligned_vector = std::vector<T, CacheAlignedAllocator<T>>;

// -------------------------------------------------- backend dispatch

enum class Backend { kScalar, kAvx2, kNeon };

[[nodiscard]] constexpr const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

/// Parses a backend name ("scalar" / "avx2" / "neon", case-insensitive).
/// "native" and "auto" mean "use the detected best" and parse to nullopt,
/// as does any unknown string (the caller distinguishes via the bool).
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// True when the named backend was compiled into this binary.
[[nodiscard]] bool backend_compiled(Backend backend);

/// True when this CPU can execute the named backend (kScalar: always).
[[nodiscard]] bool backend_cpu_supported(Backend backend);

/// Best backend that is both compiled in and supported by this CPU.
[[nodiscard]] Backend native_backend();

/// Backend the lane kernels will dispatch to: programmatic override if
/// set, else the ROCLK_SIMD environment variable (read once per process),
/// else native_backend().  An unusable request degrades to kScalar with a
/// one-time stderr warning.
[[nodiscard]] Backend active_backend();

/// Programmatic override with highest precedence (tests, benches).
/// nullopt restores env/native resolution.
void set_backend_override(std::optional<Backend> backend);
[[nodiscard]] std::optional<Backend> backend_override();

// ------------------------------------------------ portable scalar pack
//
// N independent lanes computed with the exact scalar operations of the
// reference kernel — the portable fallback backend (N = 4) and the masked
// scalar tail (N = 1) of the vector backends.  Compilers are free to
// auto-vectorize these loops; every op is lane-wise IEEE-754, so the
// result is bit-identical either way.

template <std::size_t N>
struct ScalarTraits {
  static constexpr std::size_t kWidth = N;

  struct D {
    double v[N];
  };
  struct I {
    std::int64_t v[N];
  };
  using M = I;  // lane mask: 0 = false, all-ones = true

  static D load(const double* p) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(double* p, D a) {
    for (std::size_t i = 0; i < N; ++i) p[i] = a.v[i];
  }
  static D broadcast(double x) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = x;
    return r;
  }
  static D add(D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static D sub(D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static D mul(D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static D div(D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  static D floor(D a) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = std::floor(a.v[i]);
    return r;
  }
  static D round_ties_away(D a) {
    D r;
    for (std::size_t i = 0; i < N; ++i) {
      r.v[i] = ::roclk::round_ties_away(a.v[i]);
    }
    return r;
  }
  static M cmp_lt(D a, D b) {
    M r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
  }
  static unsigned mask_bits(M m) {
    unsigned bits = 0;
    for (std::size_t i = 0; i < N; ++i) {
      bits |= (m.v[i] != 0 ? 1u : 0u) << i;
    }
    return bits;
  }
  static D select(M m, D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }

  static I iload(const std::int64_t* p) {
    I r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = p[i];
    return r;
  }
  static void istore(std::int64_t* p, I a) {
    for (std::size_t i = 0; i < N; ++i) p[i] = a.v[i];
  }
  static I ibroadcast(std::int64_t x) {
    I r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = x;
    return r;
  }
  static I iadd(I a, I b) {
    I r;
    for (std::size_t i = 0; i < N; ++i) {
      // Two's-complement wraparound, like the vector adds.
      r.v[i] = static_cast<std::int64_t>(static_cast<std::uint64_t>(a.v[i]) +
                                         static_cast<std::uint64_t>(b.v[i]));
    }
    return r;
  }
  static I ineg(I a) {
    I r;
    for (std::size_t i = 0; i < N; ++i) {
      r.v[i] = static_cast<std::int64_t>(-static_cast<std::uint64_t>(a.v[i]));
    }
    return r;
  }
  /// shift_signed (common/math.hpp) lane-wise: left for sh >= 0, arithmetic
  /// right for sh < 0.
  static I ishift_signed(I a, int sh) {
    I r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = shift_signed(a.v[i], sh);
    return r;
  }
  static M icmp_lt(I a, I b) {
    M r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] < b.v[i] ? -1 : 0;
    return r;
  }
  static M icmp_eq(I a, I b) {
    M r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = a.v[i] == b.v[i] ? -1 : 0;
    return r;
  }
  static I iselect(M m, I a, I b) {
    I r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  static unsigned imask_bits(M m) { return mask_bits(m); }
  static D dselect(M m, D a, D b) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = m.v[i] != 0 ? a.v[i] : b.v[i];
    return r;
  }
  /// static_cast<std::int64_t>(x): the scalar reference conversion.  The
  /// vector backends implement this exactly for integral |x| < 2^51 (the
  /// kernel's guarded domain); the scalar pack has no such restriction.
  static I to_int_exact(D a) {
    I r;
    for (std::size_t i = 0; i < N; ++i) {
      r.v[i] = static_cast<std::int64_t>(a.v[i]);
    }
    return r;
  }
  static D to_double_exact(I a) {
    D r;
    for (std::size_t i = 0; i < N; ++i) r.v[i] = static_cast<double>(a.v[i]);
    return r;
  }
};

// ------------------------------------------------------- AVX2 backend

#if defined(__AVX2__)

/// 4 double lanes / 4 int64 lanes per vector.  No FMA is ever emitted for
/// the lane arithmetic: every op maps to the plain IEEE-754 instruction
/// the scalar kernel uses, so results are bit-identical per lane.
struct Avx2Traits {
  static constexpr std::size_t kWidth = 4;

  using D = __m256d;
  using I = __m256i;
  using M = __m256d;  // doubles compare to a double mask; ints to an I mask

  static D load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, D a) { _mm256_storeu_pd(p, a); }
  static D broadcast(double x) { return _mm256_set1_pd(x); }
  static D add(D a, D b) { return _mm256_add_pd(a, b); }
  static D sub(D a, D b) { return _mm256_sub_pd(a, b); }
  static D mul(D a, D b) { return _mm256_mul_pd(a, b); }
  static D div(D a, D b) { return _mm256_div_pd(a, b); }
  static D floor(D a) { return _mm256_floor_pd(a); }
  static D trunc(D a) {
    return _mm256_round_pd(a, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  }
  static D copysign(D mag, D sgn) {
    const D sign_bit = _mm256_set1_pd(-0.0);
    return _mm256_or_pd(_mm256_andnot_pd(sign_bit, mag),
                        _mm256_and_pd(sign_bit, sgn));
  }
  /// Same operation sequence as roclk::round_ties_away, vector-wide.
  static D round_ties_away(D x) {
    const D t = trunc(x);
    const D diff = sub(x, t);
    const D one = broadcast(1.0);
    const D up =
        _mm256_and_pd(_mm256_cmp_pd(diff, broadcast(0.5), _CMP_GE_OQ), one);
    const D down =
        _mm256_and_pd(_mm256_cmp_pd(diff, broadcast(-0.5), _CMP_LE_OQ), one);
    return copysign(sub(add(t, up), down), x);
  }
  static M cmp_lt(D a, D b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static unsigned mask_bits(M m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  static D select(M m, D a, D b) { return _mm256_blendv_pd(b, a, m); }

  static I iload(const std::int64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void istore(std::int64_t* p, I a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a);
  }
  static I ibroadcast(std::int64_t x) { return _mm256_set1_epi64x(x); }
  static I iadd(I a, I b) { return _mm256_add_epi64(a, b); }
  static I ineg(I a) { return _mm256_sub_epi64(_mm256_setzero_si256(), a); }
  static I ishift_signed(I a, int sh) {
    if (sh >= 0) return _mm256_slli_epi64(a, sh);
    const int right = -sh;
    // AVX2 has no 64-bit arithmetic right shift; rebuild it from the
    // logical shift plus a sign fill (right is in [1, 63] here: the gain
    // exponents are far smaller, and shift_signed shares the limit).
    const I sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), a);
    if (right >= 64) return sign;
    return _mm256_or_si256(_mm256_srli_epi64(a, right),
                           _mm256_slli_epi64(sign, 64 - right));
  }
  static I icmp_lt(I a, I b) { return _mm256_cmpgt_epi64(b, a); }
  static I icmp_eq(I a, I b) { return _mm256_cmpeq_epi64(a, b); }
  static I iselect(I m, I a, I b) { return _mm256_blendv_epi8(b, a, m); }
  static unsigned imask_bits(I m) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(m)));
  }
  static D dselect(I m, D a, D b) {
    return _mm256_blendv_pd(b, a, _mm256_castsi256_pd(m));
  }
  /// Exact double -> int64 for integral |x| < 2^51 via the 2^52 + 2^51
  /// magic constant: x + magic lands in [2^52, 2^53) where doubles count
  /// integers, so the payload bits ARE the biased integer.
  static I to_int_exact(D x) {
    const D magic = broadcast(0x1.8p52);
    return _mm256_sub_epi64(_mm256_castpd_si256(add(x, magic)),
                            _mm256_castpd_si256(magic));
  }
  static D to_double_exact(I x) {
    const D magic = broadcast(0x1.8p52);
    const I biased = _mm256_add_epi64(x, _mm256_castpd_si256(magic));
    return sub(_mm256_castsi256_pd(biased), magic);
  }
};

#endif  // __AVX2__

// ------------------------------------------------------- NEON backend

#if defined(__ARM_NEON) && defined(__aarch64__)

/// 2 double lanes / 2 int64 lanes per vector.  min/max are composed from
/// cmp + select by the kernels (never vminq/vmaxq, whose NaN semantics
/// differ from std::min/std::max); conversions use the AArch64 exact
/// convert instructions, which match the scalar casts on the full range.
struct NeonTraits {
  static constexpr std::size_t kWidth = 2;

  using D = float64x2_t;
  using I = int64x2_t;
  using M = uint64x2_t;

  static D load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, D a) { vst1q_f64(p, a); }
  static D broadcast(double x) { return vdupq_n_f64(x); }
  static D add(D a, D b) { return vaddq_f64(a, b); }
  static D sub(D a, D b) { return vsubq_f64(a, b); }
  static D mul(D a, D b) { return vmulq_f64(a, b); }
  static D div(D a, D b) { return vdivq_f64(a, b); }
  static D floor(D a) { return vrndmq_f64(a); }
  static D trunc(D a) { return vrndq_f64(a); }
  static D copysign(D mag, D sgn) {
    return vbslq_f64(vdupq_n_u64(0x8000000000000000ull), sgn, mag);
  }
  static D round_ties_away(D x) {
    const D t = trunc(x);
    const D diff = sub(x, t);
    const D one = broadcast(1.0);
    const D zero = broadcast(0.0);
    const D up = vbslq_f64(vcgeq_f64(diff, broadcast(0.5)), one, zero);
    const D down = vbslq_f64(vcleq_f64(diff, broadcast(-0.5)), one, zero);
    return copysign(sub(add(t, up), down), x);
  }
  static M cmp_lt(D a, D b) { return vcltq_f64(a, b); }
  static unsigned mask_bits(M m) {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1u) |
           (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1u) << 1);
  }
  static D select(M m, D a, D b) { return vbslq_f64(m, a, b); }

  static I iload(const std::int64_t* p) { return vld1q_s64(p); }
  static void istore(std::int64_t* p, I a) { vst1q_s64(p, a); }
  static I ibroadcast(std::int64_t x) { return vdupq_n_s64(x); }
  static I iadd(I a, I b) { return vaddq_s64(a, b); }
  static I ineg(I a) { return vnegq_s64(a); }
  static I ishift_signed(I a, int sh) {
    // NEON's signed shift takes a signed count: negative = arithmetic
    // right, exactly shift_signed's contract.
    return vshlq_s64(a, vdupq_n_s64(sh));
  }
  static M icmp_lt(I a, I b) { return vcltq_s64(a, b); }
  static M icmp_eq(I a, I b) { return vceqq_s64(a, b); }
  static I iselect(M m, I a, I b) { return vbslq_s64(m, a, b); }
  static unsigned imask_bits(M m) { return mask_bits(m); }
  static D dselect(M m, D a, D b) { return vbslq_f64(m, a, b); }
  static I to_int_exact(D x) { return vcvtq_s64_f64(x); }
  static D to_double_exact(I x) { return vcvtq_f64_s64(x); }
};

#endif  // __ARM_NEON && __aarch64__

}  // namespace roclk::simd
