// Plain-text table and CSV rendering for experiment reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace roclk {

/// Column-aligned plain-text table, printed the way the paper's tables are
/// read: a header row plus data rows, padded to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  TextTable& add_row_values(const std::vector<double>& values, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;
  /// Writes the same data as CSV (RFC-4180 quoting).
  void write_csv(std::ostream& os) const;
  /// Writes CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (no trailing-zero trimming).
[[nodiscard]] std::string format_double(double v, int precision = 4);

/// RFC-4180 escape a CSV field.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace roclk
