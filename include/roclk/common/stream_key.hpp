// Splittable, counter-based pseudo-random streams.
//
// Xoshiro256 (roclk/common/rng.hpp) is reproducible, but only *serially*:
// draw k depends on having made draws 0..k-1 on the same object, so a
// Monte-Carlo that threads one generator through its trials cannot be
// split across threads, shards or processes without changing its results.
// Historically the repo worked around that with ad-hoc xor-tags
// (`hash64(seed ^ 0x11)`), which are collision-prone across call sites and
// leave the derivation hierarchy implicit.
//
// This header replaces both idioms:
//
//  * StreamKey — a hierarchical stream *identity*.  A key is a 64-bit hash
//    state derived from a master seed by an ordered chain of named
//    `split(tag)` and indexed `at(index)` steps, e.g.
//
//        StreamKey{master}.split("analysis.yield").at(chip).split("wid")
//
//    Each derivation step is salted by its kind (root / named split /
//    integer split / index), so `k.split(5)`, `k.at(5)` and the raw state
//    can never collide, and tags registered at different call sites are
//    independent by construction instead of by xor-constant discipline.
//
//  * CounterRng — a generator whose draw i is a pure stateless hash of
//    (key, i): the splitmix64 output function over state
//    key + (i+1) * golden-gamma.  No draw depends on any other draw, so
//    any shard of a sweep regenerates exactly its own substream from the
//    key alone — the property that makes a Monte-Carlo bit-identical at
//    1 thread, N threads, or N processes (DESIGN.md §13).
//
// Distribution mappings (uniform / uniform_int / normal / exponential) are
// draw-stable: the values depend only on the key and on how many draws the
// *instance* has made — there is no cache shared across instances or
// splits, so two CounterRngs built from equal keys always agree.
#pragma once

#include <cstdint>
#include <string_view>

#include "roclk/common/rng.hpp"

namespace roclk {

namespace detail {

/// One extra splitmix64-style finalisation round over two mixed words.
/// Distinct `salt` values keep the derivation kinds in disjoint families.
[[nodiscard]] constexpr std::uint64_t key_mix(std::uint64_t state,
                                              std::uint64_t salt,
                                              std::uint64_t word) {
  std::uint64_t s = state ^ salt;
  s += (word + 1) * 0x9E3779B97F4A7C15ULL;
  return hash64(hash64(s) ^ word);
}

/// FNV-1a over the tag name; stable across platforms and constexpr so tag
/// registries can live in headers.
[[nodiscard]] constexpr std::uint64_t name_hash(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace detail

/// Identity of one pseudo-random stream: a 64-bit state plus the ordered
/// derivation algebra that produced it.  Keys are values — copy freely;
/// derivation never mutates the parent.
class StreamKey {
 public:
  /// Root key of a reproducibility domain (a whole experiment / sweep).
  constexpr explicit StreamKey(std::uint64_t master_seed)
      : state_{detail::key_mix(0, kRootSalt, master_seed)} {}

  /// Child stream for a named subsystem or purpose.  Order-sensitive:
  /// split("a").split("b") != split("b").split("a") by design (the chain
  /// *is* the hierarchy).
  [[nodiscard]] constexpr StreamKey split(std::string_view name) const {
    return StreamKey{detail::key_mix(state_, kNameSalt,
                                     detail::name_hash(name)),
                     Raw{}};
  }

  /// Child stream for an integer tag (enum values, fault kinds, ...).
  /// Lives in a different salt family than at(): split(i) != at(i).
  [[nodiscard]] constexpr StreamKey split(std::uint64_t tag) const {
    return StreamKey{detail::key_mix(state_, kTagSalt, tag), Raw{}};
  }

  /// Child stream for element `index` of a collection (trial, chip, lane,
  /// path, slot...).  Siblings at(i) and at(j) are independent streams.
  [[nodiscard]] constexpr StreamKey at(std::uint64_t index) const {
    return StreamKey{detail::key_mix(state_, kIndexSalt, index), Raw{}};
  }

  /// The derived 64-bit state.  Also usable as a seed for legacy APIs that
  /// still take a raw std::uint64_t (e.g. Xoshiro256-backed components).
  [[nodiscard]] constexpr std::uint64_t state() const { return state_; }

  [[nodiscard]] constexpr bool operator==(const StreamKey&) const = default;

 private:
  struct Raw {};
  constexpr StreamKey(std::uint64_t state, Raw) : state_{state} {}

  static constexpr std::uint64_t kRootSalt = 0x43A5D1F30E9C2B87ULL;
  static constexpr std::uint64_t kNameSalt = 0x8D2E1A7F5B9C6E03ULL;
  static constexpr std::uint64_t kTagSalt = 0x2F6B8C1D9A4E7350ULL;
  static constexpr std::uint64_t kIndexSalt = 0xB1E69C25D8F4A07BULL;

  std::uint64_t state_;
};

/// Counter-based generator over a StreamKey: draw i is the pure hash
/// word_at(i), so the stream can be entered at any offset and regenerated
/// by any shard.  Satisfies UniformRandomBitGenerator.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit CounterRng(StreamKey key) : key_{key} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Draw `index` of this key's stream, independent of instance state.
  /// This is the splitmix64 output function over the key's gamma sequence.
  [[nodiscard]] constexpr result_type word_at(std::uint64_t index) const {
    std::uint64_t z = key_.state() + (index + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Sequential draw: word_at(counter), then advance the counter.
  constexpr result_type operator()() { return word_at(counter_++); }

  [[nodiscard]] constexpr StreamKey key() const { return key_; }
  [[nodiscard]] constexpr std::uint64_t counter() const { return counter_; }
  /// Repositions the stream (draws are pure, so any offset is valid).
  constexpr void seek(std::uint64_t counter) {
    counter_ = counter;
    have_spare_ = false;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness (the same output
  /// mapping as Xoshiro256::uniform).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.  Lemire's unbiased bounded
  /// generation; the (rare) rejection loop advances the counter, which is
  /// deterministic per instance and therefore draw-stable.
  std::uint64_t uniform_int(std::uint64_t n) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller: exactly two uniforms per pair, no
  /// rejection, so the counter advance per normal is fixed.  The spare is
  /// per-instance state (never shared across splits), which keeps equal
  /// keys producing equal sequences.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

 private:
  StreamKey key_;
  std::uint64_t counter_{0};
  bool have_spare_{false};
  double spare_{0.0};
};

}  // namespace roclk
