// Streaming and batch statistics for simulation traces.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace roclk {

/// Single-pass running statistics (Welford's algorithm): mean, variance,
/// min, max of a stream of doubles without storing it.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset() { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  [[nodiscard]] double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divide by n-1); 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double range() const { return n_ ? max_ - min_ : 0.0; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Batch helpers over a span of samples.
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);
/// p in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> xs, double p);
/// Root-mean-square of the samples.
[[nodiscard]] double rms(std::span<const double> xs);
/// Peak-to-peak amplitude (max - min).
[[nodiscard]] double peak_to_peak(std::span<const double> xs);

/// Fixed-width histogram for distribution inspection in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
  std::size_t underflow_{0};
  std::size_t overflow_{0};
};

}  // namespace roclk
