// Lightweight error handling: Status + Result<T>.
//
// roclk is a simulation library; most failures are configuration errors
// detected up front (bad filter coefficients, non-positive periods, empty
// sensor arrays).  We report them with value-semantics Status/Result rather
// than exceptions so call sites can handle them locally, and reserve
// exceptions for programming errors (contract violations) via the
// ROCLK_CHECK family in common/check.hpp.
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "roclk/common/check.hpp"

namespace roclk {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_{code}, message_{std::move(message)} {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status out_of_range(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status failed_precondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::ostringstream os;
    os << roclk::to_string(code_) << ": " << message_;
    return os.str();
  }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_{};
};

/// Either a value or an error Status.  Minimal std::expected stand-in.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_{std::move(value)} {}       // NOLINT(implicit)
  Result(Status status) : data_{std::move(status)} {  // NOLINT(implicit)
    if (std::get<Status>(data_).is_ok()) {
      data_ = Status::internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::runtime_error("Result::value() on error: " +
                               std::get<Status>(data_).to_string());
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace roclk

/// Enforces that a Status-returning validation passed; throws
/// ContractViolation carrying the status message otherwise.  The idiom for
/// constructors that reuse a `static Status validate(...)`:
///     ROCLK_CHECK_OK(validate(config));
#define ROCLK_CHECK_OK(status_expr)                                   \
  do {                                                                \
    const ::roclk::Status roclk_check_status_ = (status_expr);        \
    ROCLK_CHECK(roclk_check_status_.is_ok(),                          \
                roclk_check_status_.to_string());                     \
  } while (false)
