// Minimal work-stealing-free thread pool used by the sweep runner.
//
// Parameter sweeps (Fig. 8 and Fig. 9 reproductions) run hundreds of
// independent simulations; parallel_for_index distributes them over
// hardware threads while keeping results deterministically ordered.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace roclk {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use wait_idle to join logically).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_{0};
  bool stop_{false};
};

/// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
/// fn must be safe to call concurrently for distinct i.
void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn);

/// Convenience: one-shot pool sized to hardware concurrency.
void parallel_for_index(std::size_t n,
                        const std::function<void(std::size_t)>& fn);

}  // namespace roclk
