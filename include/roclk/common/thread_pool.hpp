// Persistent worker pool + chunked parallel-for used by the sweep runner.
//
// Parameter sweeps (Fig. 8 / Fig. 9 reproductions, yield Monte-Carlo) run
// thousands of independent simulations.  parallel_for distributes them over
// hardware threads while keeping results deterministically ordered (each
// index writes its own output slot).
//
// Scheduling model:
//  * One process-wide pool (ThreadPool::shared()), lazily created on first
//    use, sized to hardware concurrency.  Sweeps no longer pay thread
//    creation/teardown per call.
//  * parallel_for splits [0, n) into contiguous ranges and submits at most
//    one range task per worker; the calling thread participates by claiming
//    ranges itself, so the call is safe to nest (an inner parallel_for on a
//    fully busy pool is completed by its own caller) and never deadlocks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace roclk {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lazily initialised process-wide pool shared by every sweep.
  static ThreadPool& shared();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use wait_idle to join logically).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Joins the workers and rejects further submits.  Idempotent; the
  /// destructor calls it implicitly.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_{0};
  bool stop_{false};
};

/// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
/// fn must be safe to call concurrently for distinct i.  The caller helps
/// execute ranges, so nesting parallel_for inside fn is safe.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Same, on the shared process-wide pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Back-compat aliases for the pre-batching API.
inline void parallel_for_index(ThreadPool& pool, std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  parallel_for(pool, n, fn);
}
inline void parallel_for_index(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  parallel_for(n, fn);
}

}  // namespace roclk
