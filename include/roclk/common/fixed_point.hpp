// Signed fixed-point arithmetic with power-of-two scaling.
//
// The paper's IIR control block "operates over the integers" with gains
// "constrained to powers of two in order to simplify multiplication
// operations", and scales the internal signal by k_exp to limit rounding
// error.  FixedPoint<Frac> models exactly that hardware datapath: a 64-bit
// two's-complement integer interpreted with `Frac` fractional bits, where
// multiplication by 2^k is a shift and right shifts round toward -infinity
// (true arithmetic-shift behaviour).
#pragma once

#include <cstdint>
#include <ostream>

#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"

namespace roclk {

template <int Frac>
class FixedPoint {
  static_assert(Frac >= 0 && Frac < 62, "fractional bits out of range");

 public:
  using raw_type = std::int64_t;
  static constexpr int kFracBits = Frac;
  static constexpr raw_type kOne = raw_type{1} << Frac;

  constexpr FixedPoint() = default;

  [[nodiscard]] static constexpr FixedPoint from_raw(raw_type raw) {
    FixedPoint fp;
    fp.raw_ = raw;
    return fp;
  }
  [[nodiscard]] static constexpr FixedPoint from_int(std::int64_t v) {
    return from_raw(v << Frac);
  }
  /// Rounds to nearest (ties toward +infinity), like a hardware rounder.
  [[nodiscard]] static FixedPoint from_double(double v) {
    const double scaled = v * static_cast<double>(kOne);
    const auto rounded = static_cast<raw_type>(
        scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
    return from_raw(rounded);
  }

  [[nodiscard]] constexpr raw_type raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }
  /// Truncation toward -infinity (arithmetic shift), the hardware default.
  [[nodiscard]] constexpr std::int64_t floor_to_int() const {
    return raw_ >> Frac;
  }

  friend constexpr FixedPoint operator+(FixedPoint a, FixedPoint b) {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr FixedPoint operator-(FixedPoint a, FixedPoint b) {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr FixedPoint operator-(FixedPoint a) {
    return from_raw(-a.raw_);
  }
  constexpr FixedPoint& operator+=(FixedPoint b) {
    raw_ += b.raw_;
    return *this;
  }
  constexpr FixedPoint& operator-=(FixedPoint b) {
    raw_ -= b.raw_;
    return *this;
  }

  /// Multiply by 2^k (k may be negative).  The only multiplication the
  /// paper's datapath needs.
  [[nodiscard]] constexpr FixedPoint scaled_pow2(int k) const {
    return from_raw(shift_signed(raw_, k));
  }

  constexpr auto operator<=>(const FixedPoint&) const = default;

  friend std::ostream& operator<<(std::ostream& os, FixedPoint fp) {
    return os << fp.to_double();
  }

 private:
  raw_type raw_{0};
};

/// A gain restricted to +/- 2^k, as required by the paper's control block.
/// Encodes the exponent and applies itself by shifting.
class PowerOfTwoGain {
 public:
  constexpr PowerOfTwoGain() = default;
  constexpr PowerOfTwoGain(int exponent, bool negative = false)
      : exponent_{exponent}, negative_{negative} {}

  /// Builds from a real value; fails unless |v| is exactly a power of two.
  static Result<PowerOfTwoGain> from_value(double v);

  [[nodiscard]] constexpr int exponent() const { return exponent_; }
  [[nodiscard]] constexpr bool negative() const { return negative_; }
  [[nodiscard]] constexpr double value() const {
    double mag = exponent_ >= 0
                     ? static_cast<double>(std::int64_t{1} << exponent_)
                     : 1.0 / static_cast<double>(std::int64_t{1} << -exponent_);
    return negative_ ? -mag : mag;
  }

  template <int Frac>
  [[nodiscard]] constexpr FixedPoint<Frac> apply(FixedPoint<Frac> x) const {
    auto y = x.scaled_pow2(exponent_);
    return negative_ ? -y : y;
  }

  [[nodiscard]] constexpr std::int64_t apply(std::int64_t x) const {
    auto y = shift_signed(x, exponent_);
    return negative_ ? -y : y;
  }

 private:
  int exponent_{0};
  bool negative_{false};
};

}  // namespace roclk
