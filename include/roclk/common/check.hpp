// Contract layer: ROCLK_CHECK / ROCLK_DCHECK.
//
// The simulation stack is only trustworthy if its invariants are enforced,
// not documented: the paper's type-1 loop constraints (N(1) != 0, D(1) = 0,
// eq. 8), Jury stability, power-of-two CDN ring depth and l_RO saturation
// ranges are all *checkable* properties, and a violated one must stop the
// run instead of silently corrupting a sweep.
//
//  * ROCLK_CHECK(cond, msg)  — always on, in every build type.  Simulation
//    correctness beats the nanoseconds saved by stripping checks; a failed
//    check throws roclk::ContractViolation with the expression, location
//    and a caller-formatted context message.  `msg` is a stream expression,
//    so the violated quantity travels with the error:
//        ROCLK_CHECK(period > 0.0, "period=" << period << " stages");
//  * ROCLK_DCHECK(cond, msg) — compiled in for Debug and sanitizer builds
//    (ROCLK_ENABLE_DCHECKS, set by the asan-ubsan/tsan presets, or any
//    !NDEBUG build); expands to dead code otherwise, but the condition and
//    message still type-check in every configuration.
//
// ContractViolation derives from std::logic_error: contract breaches are
// programming errors, and existing handlers/tests that catch logic_error
// keep working.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace roclk {

/// Thrown by ROCLK_CHECK / ROCLK_DCHECK.  what() carries the full
/// formatted context; expression/file/line are exposed for tooling.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const std::string& what, const char* expression,
                    const char* file, int line)
      : std::logic_error{what},
        expression_{expression},
        file_{file},
        line_{line} {}

  [[nodiscard]] const char* expression() const { return expression_; }
  [[nodiscard]] const char* file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }

 private:
  const char* expression_;
  const char* file_;
  int line_;
};

namespace detail {

[[noreturn]] inline void throw_contract_violation(const char* expr,
                                                  const char* file, int line,
                                                  const std::string& context) {
  std::ostringstream os;
  os << "contract violated at " << file << ":" << line << ": (" << expr
     << ")";
  if (!context.empty()) os << " — " << context;
  throw ContractViolation{os.str(), expr, file, line};
}

}  // namespace detail
}  // namespace roclk

/// Always-on contract check.  `msg` is a stream expression evaluated only
/// on failure; include the violated quantity in it.
#define ROCLK_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream roclk_check_os_;                               \
      roclk_check_os_ << msg;  /* NOLINT(bugprone-macro-parentheses) */ \
      ::roclk::detail::throw_contract_violation(                        \
          #cond, __FILE__, __LINE__, roclk_check_os_.str());            \
    }                                                                   \
  } while (false)

/// Debug/sanitizer-build contract check.  Free in release builds; the
/// condition and message still compile everywhere (dead branch).
#if defined(ROCLK_ENABLE_DCHECKS) || !defined(NDEBUG)
#define ROCLK_DCHECK(cond, msg) ROCLK_CHECK(cond, msg)
#define ROCLK_DCHECKS_ENABLED 1
#else
#define ROCLK_DCHECK(cond, msg)           \
  do {                                    \
    if (false) {                          \
      ROCLK_CHECK(cond, msg);             \
    }                                     \
  } while (false)
#define ROCLK_DCHECKS_ENABLED 0
#endif
