// Strong unit types used throughout roclk.
//
// The paper expresses every timing quantity in *stages* (elementary gate
// delays): the set-point c, the ring-oscillator length l_RO, the TDC
// reading tau, the CDN delay t_clk and the perturbation amplitudes are all
// stage counts.  Mixing a stage count with a cycle index is a unit error we
// want the compiler to catch, hence the strong wrappers below.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace roclk {

/// CRTP-free strong numeric wrapper.  `Tag` makes instantiations distinct;
/// `Rep` is the underlying representation.  Arithmetic between equal unit
/// types is allowed; scaling by a raw scalar is allowed; cross-unit
/// arithmetic is a compile error.
template <class Tag, class Rep>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_{value} {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep scale) {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(Rep scale) {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{static_cast<Rep>(a.value_ + b.value_)};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{static_cast<Rep>(a.value_ - b.value_)};
  }
  friend constexpr Quantity operator-(Quantity a) {
    return Quantity{static_cast<Rep>(-a.value_)};
  }
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity{static_cast<Rep>(a.value_ * s)};
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity{static_cast<Rep>(s * a.value_)};
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity{static_cast<Rep>(a.value_ / s)};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << q.value_;
  }

 private:
  Rep value_{};
};

/// A (possibly fractional) number of elementary gate delays.  The natural
/// unit of delay, period and perturbation amplitude in the paper.
using Stages = Quantity<struct StagesTag, double>;

/// Discrete clock-cycle index / count (one sample of the control loop).
using Cycles = Quantity<struct CyclesTag, std::int64_t>;

/// Physical time in seconds, used only when translating results into the
/// paper's worked examples (c = 64 stages <=> 1 ns nominal period).
using Seconds = Quantity<struct SecondsTag, double>;

namespace literals {
constexpr Stages operator""_stages(long double v) {
  return Stages{static_cast<double>(v)};
}
constexpr Stages operator""_stages(unsigned long long v) {
  return Stages{static_cast<double>(v)};
}
constexpr Cycles operator""_cycles(unsigned long long v) {
  return Cycles{static_cast<std::int64_t>(v)};
}
}  // namespace literals

/// Convert a stage count to seconds given the delay of one stage.
[[nodiscard]] constexpr Seconds to_seconds(Stages s, Seconds stage_delay) {
  return Seconds{s.value() * stage_delay.value()};
}

/// Convert physical time to stages given the delay of one stage.
[[nodiscard]] constexpr Stages to_stages(Seconds t, Seconds stage_delay) {
  return Stages{t.value() / stage_delay.value()};
}

}  // namespace roclk
