// Deterministic, fast pseudo-random number generation.
//
// Simulations must be exactly reproducible across runs and platforms, so we
// implement xoshiro256** (public-domain algorithm by Blackman & Vigna) from
// scratch rather than depending on the unspecified distributions of
// <random>.  All distribution mappings (uniform, normal, exponential) are
// implemented here with fixed algorithms.
#pragma once

#include <array>
#include <cstdint>

namespace roclk {

/// splitmix64: seed expander used to initialise xoshiro state from a single
/// 64-bit seed.  Also usable as a cheap stateless hash for value-noise.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value; used to hash lattice coordinates.
[[nodiscard]] constexpr std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: advances the state by 2^128 steps.  Used to derive
  /// independent streams for parallel sweeps from one master seed.
  constexpr void jump() {
    constexpr std::array<std::uint64_t, 4> kJump{
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (deterministic given seed).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_{false};
  double spare_{0.0};

  friend class XoshiroTestPeer;
};

}  // namespace roclk
