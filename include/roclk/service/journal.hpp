// Crash-safe persistence for the content-addressed result cache.
//
// The journal is an append-only file of checksummed, length-prefixed
// records in the service's 64-bit wire-word format (wire.hpp — the same
// wire_mix chain the frame protocol and content hashes use):
//
//   header   word 0  magic      0x524F434C4B4A4C31 ("ROCLKJL1")
//            word 1  version    1
//            word 2  checksum   wire_mix chain over words 0..1
//   record   word 0  magic      0x524F434C4B4A4531 ("ROCLKJE1")
//            word 1  payload word count N (<= kMaxPayloadWords)
//            word 2  content hash of the cached request
//            word 3..2+N-1      encode_response words (OK responses only)
//            word 3+N-1+1       checksum over words 0..2+N-1
//
// Crash-safety contract (the SweepMemo torn-write discipline, applied
// to an append-only log):
//
//   * every append is one buffered write + flush of a whole record, so
//     a crash — kill -9 included — can only tear the LAST record;
//   * load() keeps every intact prefix record and drops the first
//     structurally-broken record AND everything after it (a corrupt
//     length prefix poisons all later framing, exactly like a malformed
//     frame on a socket);
//   * a missing / empty / corrupt-header file loads zero entries with a
//     non-ok Status — a broken journal can only DEGRADE a warm start,
//     never fail it;
//   * compaction writes a fresh snapshot to `path.tmp`, flushes, then
//     renames over the journal — readers see the old file or the new
//     one, never a half-written hybrid.
//
// The service appends one record per cache store and compacts once the
// file holds `compact_every` records more than the cache holds entries
// (evicted and re-stored hashes make the log grow past the live set).
// `roclk_sweepd --journal` replays the journal into the cache on boot,
// so a restarted daemon answers everything it had already simulated
// from the cache, bitwise-identically, with zero re-simulations
// (tools/journal_smoke.sh proves this across a kill -9).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/service/protocol.hpp"

namespace roclk::service {

inline constexpr std::uint64_t kJournalMagic = 0x524F434C4B4A4C31ULL;
inline constexpr std::uint64_t kJournalRecordMagic = 0x524F434C4B4A4531ULL;
inline constexpr std::uint64_t kJournalVersion = 1;

/// One recovered cache entry.
struct JournalEntry {
  std::uint64_t hash{0};
  Response response;
};

/// What load() found; `dropped_tail_words` > 0 means the file ended in
/// a torn or corrupt record that recovery truncated away.
struct JournalLoadResult {
  std::vector<JournalEntry> entries;
  std::uint64_t records_loaded{0};
  std::uint64_t dropped_tail_words{0};
  bool header_ok{false};
};

class CacheJournal {
 public:
  CacheJournal() = default;
  ~CacheJournal();
  CacheJournal(const CacheJournal&) = delete;
  CacheJournal& operator=(const CacheJournal&) = delete;

  /// Parses the journal at `path`, keeping every intact prefix record.
  /// Missing or corrupt files yield an empty/partial result plus a
  /// non-ok Status describing why — callers warm-start with whatever
  /// survived.
  [[nodiscard]] static JournalLoadResult load(const std::string& path,
                                              Status* status = nullptr);

  /// Opens `path` for appending, creating it (with a header) if absent.
  [[nodiscard]] Status open_for_append(const std::string& path);

  /// Appends one record and flushes it to the OS.  Whole-record
  /// buffering keeps a crash from tearing anything but the tail.
  [[nodiscard]] Status append(std::uint64_t hash, const Response& response);

  /// Atomically replaces the journal with a snapshot of `entries`
  /// (written in the given order) and re-opens it for appending.
  [[nodiscard]] Status compact(
      const std::vector<JournalEntry>& entries);

  [[nodiscard]] bool open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records appended since open_for_append()/compact() — the
  /// service's compaction trigger input.
  [[nodiscard]] std::uint64_t appended_records() const {
    return appended_records_;
  }

  void close();

  /// Serializes one record to words (exposed for tests that build
  /// corrupt journals byte-surgically).
  [[nodiscard]] static std::vector<std::uint64_t> encode_record(
      std::uint64_t hash, const Response& response);

 private:
  std::FILE* file_{nullptr};
  std::string path_;
  std::uint64_t appended_records_{0};
};

}  // namespace roclk::service
