// Deterministic transport fault injection.
//
// FaultyStream decorates any ByteStream (a real socket fd, one end of a
// socketpair) and perturbs its operations according to a schedule that is
// a pure function of a StreamKey: draw j of operation i is
// CounterRng{key.split(direction).at(i)}'s draw j, so the same key
// produces the same short reads, the same EINTR storms, the same
// bit-flips and the same connection reset on every run — the PR 4
// fault-schedule philosophy (replay a failure bit-for-bit, then assert
// on the recovery) applied to the service transport.
//
// Fault kinds, mapped to the failure paths they exercise:
//
//   short ops     read_some/write_some transfer a prefix of the buffer —
//                 exercises the read_exact/write_all resume loops.
//   EINTR storms  a run of kInterrupted results before the operation
//                 proceeds — exercises the retry-on-interrupt paths.
//   bit flips     one bit of the transferred bytes is inverted —
//                 exercises checksum rejection (kBadChecksum) and the
//                 malformed-frame session teardown.
//   resets        after a byte budget the stream dies: reads see EOF,
//                 writes fail — exercises mid-frame truncation, client
//                 reconnect, and session kTransportError ends.
//   stalls        a caller-provided hook runs before the operation —
//                 tests block in it to trip deadlines deterministically.
//                 FaultyStream itself never sleeps (the roclk_lint
//                 `sleep` rule keeps wall-clock waits out of this TU).
//
// The decorator is intentionally one-sided: wrap the client end to test
// client resilience, the server end to test session hardening, or both
// with independent keys.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "roclk/common/stream_key.hpp"
#include "roclk/service/transport.hpp"

namespace roclk::service {

/// Fault rates are per *operation* (one read_some/write_some call), in
/// [0, 1].  All-zero rates make FaultyStream a transparent pass-through.
struct TransportFaultConfig {
  double short_op_rate{0.0};   // transfer only a prefix of the buffer
  double eintr_rate{0.0};      // inject a storm of kInterrupted results
  double bitflip_rate{0.0};    // invert one bit of the transferred bytes
  double stall_rate{0.0};      // run stall_hook before the operation
  /// Connection reset: once this many bytes have crossed the stream (in
  /// both directions combined) it dies — reads EOF, writes error.
  /// 0 disables the reset.
  std::uint64_t reset_after_bytes{0};
  /// Longest injected EINTR storm (uniform in [1, max]).
  std::uint32_t max_eintr_storm{3};
  /// Runs on the calling thread when a stall fires.  Tests install a
  /// hook that blocks past a deadline; default is a no-op.
  std::function<void()> stall_hook;
};

/// Injected-fault counters; every increment is schedule-driven and
/// therefore identical across runs with the same key.
struct FaultStats {
  std::uint64_t reads{0};
  std::uint64_t writes{0};
  std::uint64_t short_reads{0};
  std::uint64_t short_writes{0};
  std::uint64_t eintr_storms{0};
  std::uint64_t eintr_injected{0};
  std::uint64_t bit_flips{0};
  std::uint64_t stalls{0};
  std::uint64_t resets{0};  // operations refused after the byte budget

  [[nodiscard]] bool operator==(const FaultStats&) const = default;
};

/// Deterministic fault-injecting ByteStream decorator.  Owns the inner
/// stream.  Not internally synchronized: use one FaultyStream per
/// stream end, like the fd it wraps.
class FaultyStream final : public ByteStream {
 public:
  FaultyStream(std::unique_ptr<ByteStream> inner, StreamKey key,
               TransportFaultConfig config);

  [[nodiscard]] IoResult read_some(void* buffer,
                                   std::size_t bytes) override;
  [[nodiscard]] IoResult write_some(const void* buffer,
                                    std::size_t bytes) override;
  void close() override;
  [[nodiscard]] bool valid() const override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const TransportFaultConfig& config() const {
    return config_;
  }

 private:
  /// Per-operation fault decisions, all drawn from one CounterRng so the
  /// schedule depends only on (key, direction, operation index).
  struct OpPlan {
    std::uint32_t eintr_storm{0};
    bool stall{false};
    std::size_t clamped_bytes{0};  // 0 = full buffer
    bool bitflip{false};
    std::uint64_t flip_byte{0};    // modulo transferred bytes
    std::uint32_t flip_bit{0};
  };
  [[nodiscard]] OpPlan plan_op(const StreamKey& direction_key,
                               std::uint64_t op_index,
                               std::size_t bytes) const;
  [[nodiscard]] bool reset_tripped() const;

  std::unique_ptr<ByteStream> inner_;
  StreamKey read_key_;
  StreamKey write_key_;
  TransportFaultConfig config_;
  FaultStats stats_;
  std::uint64_t read_ops_{0};
  std::uint64_t write_ops_{0};
  std::uint64_t total_bytes_{0};
  std::uint32_t pending_eintr_{0};  // remaining storm for the current op
};

/// Convenience: wraps an owned fd stream end in a FaultyStream — the
/// soak bench and tests compose `faulty(std::move(end), key, cfg)` with
/// Client's ByteStream constructor.
[[nodiscard]] std::unique_ptr<FaultyStream> make_faulty_stream(
    FdStream stream, StreamKey key, TransportFaultConfig config);

}  // namespace roclk::service
