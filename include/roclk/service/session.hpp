// Server-side frame session: the glue between a connected stream and
// SweepService.
//
// One session = one client connection.  Frames are served in order:
// request frames run through SweepService::handle, ping frames ack, a
// shutdown frame acks and reports the daemon should drain.  A malformed
// frame is answered with its typed status (kMalformedFrame /
// kUnsupportedVersion) and ends the session — length framing cannot be
// resynced after a bad frame, so continuing would misparse everything
// after it.
#pragma once

#include "roclk/service/server.hpp"
#include "roclk/service/transport.hpp"

namespace roclk::service {

enum class SessionEnd : std::uint32_t {
  kClientClosed = 0,   // clean EOF
  kShutdownRequested,  // client sent a shutdown frame (acked)
  kMalformed,          // bad frame answered and stream closed
  kTransportError,     // read/write failure mid-session
};

/// Serves frames from a stream until the session ends.  Blocking; run
/// one thread (or one sequential turn) per connection.  The ByteStream
/// overload is the real implementation — wrap the stream in a
/// FaultyStream (fault_injector.hpp) to replay transport failures
/// against the server side deterministically.
[[nodiscard]] SessionEnd run_server_session(ByteStream& stream,
                                            SweepService& service);
[[nodiscard]] SessionEnd run_server_session(int fd, SweepService& service);

}  // namespace roclk::service
