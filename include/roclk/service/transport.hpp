// Frame transport: length-prefixed frames over file descriptors, plus the
// Unix-domain-socket plumbing the daemon and client share.
//
// This header and transport.cpp are the ONLY files in the repo allowed to
// use raw socket APIs — the roclk_lint `socket-include` rule confines
// <sys/socket.h> and friends here, so every other layer (server, client
// logic, tools) speaks Frame values and can be tested over socketpairs or
// in memory.
//
// Reading is incremental and bounded: the fixed 3-word header is read and
// validated first (magic, version, type, payload count <=
// kMaxPayloadWords), THEN payload + checksum — a hostile length can never
// drive an unbounded allocation or read.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "roclk/common/status.hpp"
#include "roclk/service/protocol.hpp"

namespace roclk::service {

/// Outcome of one low-level stream operation.  The typed kinds replace
/// errno inspection so decorators (fault_injector.hpp) can inject EINTR
/// storms and resets without touching OS state, and so callers retry the
/// same way over a real fd and over an in-test fault schedule.
struct IoResult {
  enum class Kind : std::uint32_t {
    kOk = 0,           // `bytes` were transferred (may be fewer than asked)
    kEof = 1,          // peer closed (reads only)
    kInterrupted = 2,  // EINTR-equivalent; retry the operation
    kError = 3,        // unrecoverable stream failure
  };
  Kind kind{Kind::kError};
  std::size_t bytes{0};  // valid when kind == kOk

  static IoResult ok(std::size_t bytes) { return {Kind::kOk, bytes}; }
  static IoResult eof() { return {Kind::kEof, 0}; }
  static IoResult interrupted() { return {Kind::kInterrupted, 0}; }
  static IoResult error() { return {Kind::kError, 0}; }
};

/// Minimal byte-stream interface the frame layer reads and writes
/// through.  Implementations: FdByteStream (a real fd) and FaultyStream
/// (a deterministic fault-injecting decorator, fault_injector.hpp).
/// Operations may transfer fewer bytes than asked; callers loop.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  [[nodiscard]] virtual IoResult read_some(void* buffer,
                                           std::size_t bytes) = 0;
  [[nodiscard]] virtual IoResult write_some(const void* buffer,
                                            std::size_t bytes) = 0;
  /// Releases the underlying resource; reads/writes fail afterwards.
  virtual void close() = 0;
  [[nodiscard]] virtual bool valid() const = 0;
};

/// Owns one stream file descriptor (socket or pipe end); closes on
/// destruction.  Move-only.
class FdStream {
 public:
  FdStream() = default;
  explicit FdStream(int fd) : fd_{fd} {}
  ~FdStream();
  FdStream(FdStream&& other) noexcept;
  FdStream& operator=(FdStream&& other) noexcept;
  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Releases ownership without closing.
  int release();
  void close();

 private:
  int fd_{-1};
};

/// ByteStream over a file descriptor.  Either owns the fd (FdStream
/// constructor) or borrows one owned elsewhere (int constructor — the
/// server session path, where the accept loop keeps ownership).
class FdByteStream final : public ByteStream {
 public:
  explicit FdByteStream(FdStream stream)
      : owned_{std::move(stream)}, fd_{owned_.fd()} {}
  explicit FdByteStream(int fd) : fd_{fd} {}

  [[nodiscard]] IoResult read_some(void* buffer,
                                   std::size_t bytes) override;
  [[nodiscard]] IoResult write_some(const void* buffer,
                                    std::size_t bytes) override;
  void close() override;
  [[nodiscard]] bool valid() const override { return fd_ >= 0; }

 private:
  FdStream owned_;
  int fd_{-1};
};

/// Outcome of reading one frame from a stream.
enum class ReadFrameResult : std::uint32_t {
  kFrame = 0,     // `frame` holds a valid frame
  kClosed = 1,    // clean EOF at a frame boundary
  kMalformed = 2, // structural failure; see `error` (stream unusable)
  kIoError = 3,   // read(2) failed
};

struct FrameReadOutcome {
  ReadFrameResult result{ReadFrameResult::kIoError};
  DecodeError error{DecodeError::kOk};  // set when result == kMalformed
  Frame frame;
};

/// Blocking read of one frame.  EOF mid-frame reports kMalformed
/// (truncated), EOF before any byte reports kClosed.  Interrupted
/// operations (EINTR storms included) are retried transparently.
[[nodiscard]] FrameReadOutcome read_frame(ByteStream& stream);
[[nodiscard]] FrameReadOutcome read_frame(int fd);

/// Blocking write of one encoded frame; false on a short write or error.
[[nodiscard]] bool write_frame(ByteStream& stream, const Frame& frame);
[[nodiscard]] bool write_frame(int fd, const Frame& frame);

/// Blocking write of raw words with no framing — the malformed-frame
/// smoke path uses it to ship deliberately broken bytes.
[[nodiscard]] bool write_words(ByteStream& stream,
                               const std::vector<std::uint64_t>& words);
[[nodiscard]] bool write_words(int fd,
                               const std::vector<std::uint64_t>& words);

/// Creates a connected pair of local stream sockets (socketpair) — the
/// in-process loopback tests and the soak bench use it to exercise the
/// exact bytes the daemon ships.
[[nodiscard]] Status make_stream_pair(FdStream& a, FdStream& b);

/// Listening Unix-domain socket bound to `path` (unlinked first, and
/// unlinked again on destruction).
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  [[nodiscard]] Status listen(const std::string& path, int backlog = 16);

  /// Blocks for the next connection.  Returns an invalid stream after
  /// wake() or on listener teardown.
  [[nodiscard]] FdStream accept();

  /// Unblocks a pending accept() (shutdown(2) on the listening socket) —
  /// the daemon's clean-exit path.
  void wake();

  [[nodiscard]] bool listening() const { return fd_.valid(); }

 private:
  FdStream fd_;
  std::string path_;
};

/// Connects to a daemon's Unix socket.
[[nodiscard]] Result<FdStream> connect_unix(const std::string& path);

}  // namespace roclk::service
