// Frame transport: length-prefixed frames over file descriptors, plus the
// Unix-domain-socket plumbing the daemon and client share.
//
// This header and transport.cpp are the ONLY files in the repo allowed to
// use raw socket APIs — the roclk_lint `socket-include` rule confines
// <sys/socket.h> and friends here, so every other layer (server, client
// logic, tools) speaks Frame values and can be tested over socketpairs or
// in memory.
//
// Reading is incremental and bounded: the fixed 3-word header is read and
// validated first (magic, version, type, payload count <=
// kMaxPayloadWords), THEN payload + checksum — a hostile length can never
// drive an unbounded allocation or read.
#pragma once

#include <cstdint>
#include <string>

#include "roclk/common/status.hpp"
#include "roclk/service/protocol.hpp"

namespace roclk::service {

/// Owns one stream file descriptor (socket or pipe end); closes on
/// destruction.  Move-only.
class FdStream {
 public:
  FdStream() = default;
  explicit FdStream(int fd) : fd_{fd} {}
  ~FdStream();
  FdStream(FdStream&& other) noexcept;
  FdStream& operator=(FdStream&& other) noexcept;
  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Releases ownership without closing.
  int release();
  void close();

 private:
  int fd_{-1};
};

/// Outcome of reading one frame from a stream.
enum class ReadFrameResult : std::uint32_t {
  kFrame = 0,     // `frame` holds a valid frame
  kClosed = 1,    // clean EOF at a frame boundary
  kMalformed = 2, // structural failure; see `error` (stream unusable)
  kIoError = 3,   // read(2) failed
};

struct FrameReadOutcome {
  ReadFrameResult result{ReadFrameResult::kIoError};
  DecodeError error{DecodeError::kOk};  // set when result == kMalformed
  Frame frame;
};

/// Blocking read of one frame.  EOF mid-frame reports kMalformed
/// (truncated), EOF before any byte reports kClosed.
[[nodiscard]] FrameReadOutcome read_frame(int fd);

/// Blocking write of one encoded frame; false on a short write or error.
[[nodiscard]] bool write_frame(int fd, const Frame& frame);

/// Blocking write of raw words with no framing — the malformed-frame
/// smoke path uses it to ship deliberately broken bytes.
[[nodiscard]] bool write_words(int fd,
                               const std::vector<std::uint64_t>& words);

/// Creates a connected pair of local stream sockets (socketpair) — the
/// in-process loopback tests and the soak bench use it to exercise the
/// exact bytes the daemon ships.
[[nodiscard]] Status make_stream_pair(FdStream& a, FdStream& b);

/// Listening Unix-domain socket bound to `path` (unlinked first, and
/// unlinked again on destruction).
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  [[nodiscard]] Status listen(const std::string& path, int backlog = 16);

  /// Blocks for the next connection.  Returns an invalid stream after
  /// wake() or on listener teardown.
  [[nodiscard]] FdStream accept();

  /// Unblocks a pending accept() (shutdown(2) on the listening socket) —
  /// the daemon's clean-exit path.
  void wake();

  [[nodiscard]] bool listening() const { return fd_.valid(); }

 private:
  FdStream fd_;
  std::string path_;
};

/// Connects to a daemon's Unix socket.
[[nodiscard]] Result<FdStream> connect_unix(const std::string& path);

}  // namespace roclk::service
