// Word-level codec shared by the service's request schema and frame
// protocol.
//
// Everything the sweep service puts on a wire is a sequence of 64-bit
// words: doubles travel as their IEEE-754 bit patterns, counts and enums
// widen to u64.  A splitmix-style checksum chains over every word as it is
// written/read, so framing (protocol.hpp) and content hashing
// (request.hpp) share one mixing function and a torn or bit-flipped frame
// is rejected instead of decoded into garbage.  The reader is fail-soft:
// reading past the end latches ok() = false and yields zeros, so decoders
// can parse first and check once at the end.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace roclk::service {

/// Chain seed shared by checksums and content hashes (FNV-1a offset
/// basis, the same constant the SweepMemo file format chains from).
inline constexpr std::uint64_t kWireSeed = 0x6C62272E07BB0142ULL;

/// splitmix64-style combiner: absorbs one word into a running hash.
[[nodiscard]] constexpr std::uint64_t wire_mix(std::uint64_t h,
                                               std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  return h ^ (h >> 33);
}

/// Accumulates words plus their running checksum.
struct WireWriter {
  std::vector<std::uint64_t> words;
  std::uint64_t checksum{kWireSeed};

  void put(std::uint64_t v) {
    words.push_back(v);
    checksum = wire_mix(checksum, v);
  }
  void put_double(double v) { put(std::bit_cast<std::uint64_t>(v)); }
};

/// Reads words back, chaining the same checksum.  Out-of-bounds reads
/// latch ok() false and return 0 rather than indexing past the buffer.
class WireReader {
 public:
  WireReader(const std::uint64_t* words, std::size_t count)
      : words_{words}, count_{count} {}

  [[nodiscard]] std::uint64_t take() {
    if (next_ >= count_) {
      ok_ = false;
      return 0;
    }
    const std::uint64_t v = words_[next_++];
    checksum_ = wire_mix(checksum_, v);
    return v;
  }
  [[nodiscard]] double take_double() {
    return std::bit_cast<double>(take());
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return count_ - next_; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

 private:
  const std::uint64_t* words_;
  std::size_t count_;
  std::size_t next_{0};
  std::uint64_t checksum_{kWireSeed};
  bool ok_{true};
};

}  // namespace roclk::service
