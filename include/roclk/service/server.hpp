// The sweep service: scenario queries with caching, request coalescing,
// and admission control.
//
// SweepService::handle() is the whole service in one blocking,
// thread-safe call — the daemon (tools/roclk_sweepd) wraps it in frame
// transport, the soak bench and tests drive it in-process.  The request
// path:
//
//   normalize  -> kInvalidRequest on a malformed scenario
//   cache      -> content-addressed LRU hit returns immediately
//                 (cache hits bypass admission control: serving a cached
//                 answer is cheaper than deciding to shed it)
//   admission  -> at most `max_in_flight` requests may be simulating or
//                 waiting; one more is *shed* with kOverloaded instead of
//                 queueing without bound (load-shedding keeps tail
//                 latency bounded under overload)
//   coalesce   -> an identical in-flight scenario absorbs this request:
//                 the first arrival simulates, the rest wait for its
//                 result — N identical concurrent queries cost exactly
//                 one simulation
//   execute    -> the winner simulates on `sim_pool`, stores the result,
//                 and publishes it to every waiter
//
// Deadlines: a request carrying deadline_ms (or inheriting
// default_deadline_ms) fails with kDeadlineExceeded once the deadline
// passes — checked at admission and while waiting on a coalesced
// simulation.  An in-progress simulation is never cancelled; its result
// still lands in the cache for the next asker.
//
// docs/service.md §operations documents the knobs; DESIGN.md §14 the
// architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "roclk/common/thread_pool.hpp"
#include "roclk/service/protocol.hpp"
#include "roclk/service/request.hpp"

namespace roclk::service {

struct ServiceConfig {
  /// Admission bound: requests simulating or waiting on a coalesced
  /// simulation.  One more is shed with kOverloaded.
  std::size_t max_in_flight{64};
  /// Result-cache entries (LRU-evicted); 0 disables caching.
  std::size_t cache_capacity{1024};
  /// Deadline applied to requests that carry none (0 = none).
  std::uint32_t default_deadline_ms{0};
  /// Pool simulations run on (nullptr = strictly sequential).  Results
  /// are bitwise identical for every choice (DESIGN.md §13).
  ThreadPool* sim_pool{nullptr};
  /// Crash-safe cache persistence (journal.hpp).  Non-empty enables it:
  /// the constructor replays every intact record into the cache (warm
  /// start), compacts the file, and every subsequent cache store appends
  /// one record.  A corrupt or missing journal only degrades the warm
  /// start — the service always comes up.
  std::string journal_path;
  /// Appends between compactions.  Evictions and re-stores make the log
  /// outgrow the live cache; periodic compaction rewrites it to exactly
  /// the live entries.  0 keeps the default.
  std::uint64_t journal_compact_every{4096};
  /// Test hook: run on the owning thread after admission, before the
  /// simulation.  Lets tests hold a simulation "in flight" long enough to
  /// exercise coalescing, shedding, and deadline timeouts
  /// deterministically on a single-core host.  Leave empty in production.
  std::function<void()> before_execute;
};

struct ServiceStats {
  std::uint64_t accepted{0};      // requests past validation
  std::uint64_t invalid{0};       // rejected by normalize()
  std::uint64_t cache_hits{0};
  std::uint64_t coalesced{0};     // absorbed by an in-flight simulation
  std::uint64_t simulations{0};   // scenario executions actually run
  std::uint64_t shed{0};          // kOverloaded responses
  std::uint64_t deadline_exceeded{0};
  std::uint64_t completed{0};     // kOk responses served
  std::uint64_t journal_recovered{0};      // entries replayed on warm start
  std::uint64_t journal_dropped_words{0};  // torn tail discarded on load
  std::uint64_t journal_appends{0};
  std::uint64_t journal_compactions{0};
  std::uint64_t journal_errors{0};  // failed appends/compactions (service
                                    // keeps running; persistence degrades)
};

class SweepService {
 public:
  explicit SweepService(ServiceConfig config = {});
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Serves one scenario query.  Blocking; safe to call from any number
  /// of threads concurrently.
  [[nodiscard]] Response handle(const Request& request);

  /// Starts draining: every subsequent handle() answers kShuttingDown.
  /// In-flight simulations finish and their waiters are served.
  void begin_shutdown();
  [[nodiscard]] bool shutting_down() const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace roclk::service
