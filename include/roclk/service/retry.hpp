// Resilient client layer: retry policy, deterministic backoff, circuit
// breaker, and a reconnecting ResilientClient.
//
// The raw Client (client.hpp) is one connection in lockstep: any
// transport failure spends the stream and surfaces as a Status error,
// and a typed OVERLOADED / SHUTTING_DOWN answer is the caller's problem.
// ResilientClient turns those into what the status comments promise —
// "retry elsewhere/later" — under an explicit budget:
//
//   retry        only idempotent-safe outcomes are retried: transport
//                errors (the scenario query is idempotent and content-
//                addressed, so a lost response costs at most a cache
//                hit), OVERLOADED (the service shed us) and
//                SHUTTING_DOWN (this daemon is draining; another — or
//                the same one restarted from its journal — can answer).
//                INVALID_REQUEST / MALFORMED_FRAME mean the *request*
//                is wrong and retrying would loop forever; DEADLINE_
//                EXCEEDED means the caller's patience, not the server,
//                ran out.  Neither is retried.
//   backoff      capped exponential with deterministic jitter: the
//                delay for attempt k is a pure function of (jitter key,
//                query index, k) via CounterRng, so a recovery trace
//                replays bit-for-bit.  The actual wait goes through an
//                injectable sleep hook — tests pass a recorder and
//                never block (the roclk_lint `sleep` rule confines real
//                sleeping to this module's TU and the transport TU).
//   reconnect    transport failures drop the spent connection and dial
//                a fresh one through the caller's connector.
//   breaker      a small circuit breaker sheds queries locally after
//                `failure_threshold` consecutive failures, then
//                half-opens after `open_ms` (injectable clock) to probe
//                with a single query — a drained or dead daemon costs
//                one probe per window instead of a retry storm.
//
// docs/service.md §6 is the operational runbook for these knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "roclk/common/stream_key.hpp"
#include "roclk/service/client.hpp"

namespace roclk::service {

/// Capped exponential backoff with deterministic jitter.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  std::uint32_t max_attempts{4};
  std::uint32_t initial_backoff_ms{10};
  double backoff_multiplier{2.0};
  std::uint32_t max_backoff_ms{2000};
  /// Backoff is scaled by a factor uniform in [1 - jitter, 1 + jitter).
  double jitter_frac{0.5};
  /// Cumulative scheduled-backoff budget; once the next wait would
  /// exceed it the client stops retrying.  0 = unlimited.
  std::uint32_t total_backoff_budget_ms{0};
  /// Deadline stamped onto attempts whose request carries none (0 =
  /// leave the request's own deadline, which may be "none").
  std::uint32_t per_attempt_deadline_ms{0};
};

/// True for response statuses that are idempotent-safe to retry:
/// OVERLOADED and SHUTTING_DOWN.  Malformed-request rejections
/// (INVALID_REQUEST, MALFORMED_FRAME, UNSUPPORTED_VERSION), deadline
/// expiry and internal simulation errors are not.
[[nodiscard]] bool retryable_status(ResponseStatus status);

/// Backoff before attempt `attempt` (1-based: the wait after the first
/// failure is attempt 1).  Pure function of (key, attempt) — callers
/// derive `key` per query so independent queries jitter independently.
[[nodiscard]] std::uint32_t backoff_ms(const RetryPolicy& policy,
                                       std::uint32_t attempt,
                                       const StreamKey& key);

/// Circuit breaker state machine (closed -> open -> half-open).
struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open.  0 disables it.
  std::uint32_t failure_threshold{8};
  /// How long the breaker stays open before half-opening for a probe.
  std::uint32_t open_ms{1000};
  /// Millisecond clock; injectable so tests advance time explicitly.
  /// Defaults (in retry.cpp) to steady_clock.
  std::function<std::uint64_t()> now_ms;
};

enum class BreakerState : std::uint32_t { kClosed, kOpen, kHalfOpen };

[[nodiscard]] constexpr const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config);

  /// True if a call may proceed.  While open, flips to half-open once
  /// `open_ms` has elapsed and admits exactly one probe.
  [[nodiscard]] bool allow();
  void record_success();
  void record_failure();

  [[nodiscard]] BreakerState state() const { return state_; }
  [[nodiscard]] std::uint32_t consecutive_failures() const {
    return consecutive_failures_;
  }

 private:
  CircuitBreakerConfig config_;
  BreakerState state_{BreakerState::kClosed};
  std::uint32_t consecutive_failures_{0};
  std::uint64_t opened_at_ms_{0};
  bool probe_in_flight_{false};
};

/// Counters a resilient client accumulates; the soak bench records them
/// into BENCH_sweeps.json and tests assert exact values.
struct RetryStats {
  std::uint64_t queries{0};
  std::uint64_t attempts{0};
  std::uint64_t retries{0};
  std::uint64_t reconnects{0};
  std::uint64_t transport_errors{0};
  std::uint64_t retryable_statuses{0};  // OVERLOADED / SHUTTING_DOWN seen
  std::uint64_t backoff_ms_total{0};    // scheduled, not measured
  std::uint64_t breaker_rejections{0};
  std::uint64_t exhausted{0};  // queries that ran out of retry budget
};

struct ResilientClientConfig {
  RetryPolicy retry;
  CircuitBreakerConfig breaker;
  /// Root of the jitter derivation; query q / attempt k draws from
  /// jitter_key.at(q).at(k).
  StreamKey jitter_key{0};
  /// Dials a fresh connection; required.  Called for the first attempt
  /// and after every transport failure.
  std::function<Result<Client>()> connect;
  /// Waits between attempts.  Defaults to a real sleep; tests inject a
  /// recorder to keep the suite wall-clock free.
  std::function<void(std::uint32_t)> sleep_ms;
};

/// A Client wrapper that retries, reconnects, backs off and sheds.
/// Not internally synchronized — one per thread, like Client.
class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientConfig config);

  /// Runs one scenario query with retry/backoff/reconnect.  Returns the
  /// final Response (which may be a typed non-OK if the budget ran out)
  /// or a Status when the transport never yielded a decodable response
  /// or the breaker refused the query.
  [[nodiscard]] Result<Response> query(const Request& request);

  [[nodiscard]] const RetryStats& stats() const { return stats_; }
  [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }

 private:
  ResilientClientConfig config_;
  CircuitBreaker breaker_;
  std::optional<Client> client_;
  RetryStats stats_;
  bool dialed_once_{false};
};

}  // namespace roclk::service
