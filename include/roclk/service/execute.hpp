// Executes one normalized scenario query against the analysis layer.
//
// This is the service's only bridge into the simulation library; the
// server wraps it with caching, coalescing, and admission control, and
// the soak bench calls it directly to price a cache miss.  Value layout
// per query kind (also documented in docs/service.md):
//
//   kCornerMargin  [safety_margin, mean_period, relative_adaptive_period,
//                   violations, tau_ripple]                    (5 values)
//   kGridSweep     per point: [x, relative_adaptive_period,
//                   safety_margin]                          (3 x points)
//   kYieldCurve    [mean_worst_path, mean_adaptive_period,
//                   p99_worst_path] then per margin point:
//                   [margin, fixed_yield, adaptive_yield]  (3 + 3 x points)
#pragma once

#include "roclk/common/thread_pool.hpp"
#include "roclk/service/protocol.hpp"
#include "roclk/service/request.hpp"

namespace roclk::service {

/// Runs the simulation for a request already canonicalised by
/// normalize().  Deterministic: the response values are a pure function
/// of the normalized request, bitwise identical for every `pool`
/// (nullptr = strictly sequential) — the property that lets the service
/// serve cached and coalesced responses interchangeably with fresh ones.
/// Exceptions from the simulation layer surface as kInternalError.
[[nodiscard]] Response execute(const Request& normalized,
                               ThreadPool* pool = nullptr);

}  // namespace roclk::service
