// Length-prefixed frame protocol and response schema for the sweep
// service.
//
// Wire layout (all 64-bit words, native byte order — the protocol is
// same-machine IPC over a Unix socket or a pipe, never a network format):
//
//   word 0   magic       0x524F434C4B465231 ("ROCLKFR1")
//   word 1   (version << 32) | frame type
//   word 2   payload word count  (<= kMaxPayloadWords)
//   word 3+  payload words
//   last     checksum    wire_mix chain over words 0..n-1
//
// The receiver rejects a frame on bad magic, unsupported version, unknown
// type, oversized payload, truncation, or checksum mismatch — each maps to
// a typed ResponseStatus so clients see *why* instead of a dropped
// connection.  After a malformed frame the stream cannot be resynced
// (length framing is gone), so servers answer kMalformedFrame and close.
//
// docs/service.md is the normative protocol description.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/service/wire.hpp"

namespace roclk::service {

inline constexpr std::uint64_t kFrameMagic = 0x524F434C4B465231ULL;
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Bounds decode-side allocation: 1 MiW = 8 MiB per frame.
inline constexpr std::uint64_t kMaxPayloadWords = 1ULL << 20;

enum class FrameType : std::uint32_t {
  kRequest = 1,   // payload: encode_request words
  kResponse = 2,  // payload: encode_response words
  kShutdown = 3,  // payload: empty; server acks with an OK response frame
  kPing = 4,      // payload: empty; server acks with an OK response frame
};

/// Typed outcome of a scenario query.  Every code is observable by
/// clients and exercised by at least one test (docs/service.md).
enum class ResponseStatus : std::uint32_t {
  kOk = 0,
  kInvalidRequest = 1,      // normalize() rejected the scenario
  kOverloaded = 2,          // admission control shed the request
  kDeadlineExceeded = 3,    // deadline elapsed before a result was ready
  kShuttingDown = 4,        // server is draining; retry elsewhere/later
  kMalformedFrame = 5,      // frame failed structural validation
  kUnsupportedVersion = 6,  // protocol version mismatch
  kInternalError = 7,       // simulation failed after admission
};

[[nodiscard]] constexpr const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "OK";
    case ResponseStatus::kInvalidRequest:
      return "INVALID_REQUEST";
    case ResponseStatus::kOverloaded:
      return "OVERLOADED";
    case ResponseStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ResponseStatus::kShuttingDown:
      return "SHUTTING_DOWN";
    case ResponseStatus::kMalformedFrame:
      return "MALFORMED_FRAME";
    case ResponseStatus::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case ResponseStatus::kInternalError:
      return "INTERNAL_ERROR";
  }
  return "?";
}

/// Result of one scenario query.  `values` is the flat payload whose
/// layout depends on the query kind (see execute.hpp / docs/service.md).
struct Response {
  ResponseStatus status{ResponseStatus::kOk};
  bool from_cache{false};
  bool coalesced{false};
  std::uint64_t content_hash{0};
  std::string message;  // human-readable detail for non-OK statuses
  std::vector<double> values;

  [[nodiscard]] bool ok() const { return status == ResponseStatus::kOk; }
  [[nodiscard]] bool operator==(const Response&) const = default;

  static Response error(ResponseStatus status, std::string message) {
    Response r;
    r.status = status;
    r.message = std::move(message);
    return r;
  }
};

void encode_response(const Response& response, WireWriter& out);
[[nodiscard]] Result<Response> decode_response(WireReader& in);

/// One decoded frame.
struct Frame {
  FrameType type{FrameType::kRequest};
  std::vector<std::uint64_t> payload;
};

/// Serializes a frame (header + payload + checksum) into raw words ready
/// for a single write.
[[nodiscard]] std::vector<std::uint64_t> encode_frame(const Frame& frame);

/// Structural decode outcome; kOk means `frame` is valid.
enum class DecodeError : std::uint32_t {
  kOk = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,
  kTruncated,
  kBadChecksum,
};

/// Maps a structural decode failure to the response status a server
/// should answer with before closing the stream.
[[nodiscard]] constexpr ResponseStatus to_response_status(DecodeError err) {
  return err == DecodeError::kBadVersion
             ? ResponseStatus::kUnsupportedVersion
             : ResponseStatus::kMalformedFrame;
}

/// Validates and decodes a whole frame held in memory.  Transports use
/// the incremental header/payload split (see transport.hpp) to avoid
/// unbounded reads; this entry point backs tests and in-memory loopback.
[[nodiscard]] DecodeError decode_frame(const std::uint64_t* words,
                                       std::size_t count, Frame& frame);

/// Header-only validation for incremental transports: checks words 0..2
/// and extracts type + payload count without touching the payload.
[[nodiscard]] DecodeError validate_header(const std::uint64_t header[3],
                                          FrameType& type,
                                          std::uint64_t& payload_words);

}  // namespace roclk::service
