// Client side of the sweep-service protocol.
//
// A Client owns one connected stream (Unix socket or one end of a
// socketpair) and runs the request/response lockstep: every call writes
// one frame and reads one response frame.  Transport failures surface as
// Status errors; protocol-level failures (overload, deadline, malformed)
// arrive as ordinary Response values with their typed status, so callers
// distinguish "the wire broke" from "the service said no".
#pragma once

#include <memory>
#include <string>

#include "roclk/service/request.hpp"
#include "roclk/service/transport.hpp"

namespace roclk::service {

class Client {
 public:
  Client() = default;
  explicit Client(FdStream stream)
      : stream_{std::make_unique<FdByteStream>(std::move(stream))} {}
  /// Speaks through any ByteStream — tests and the soak bench hand in a
  /// FaultyStream to exercise client recovery deterministically.
  explicit Client(std::unique_ptr<ByteStream> stream)
      : stream_{std::move(stream)} {}

  /// Connects to a daemon's Unix socket.
  [[nodiscard]] static Result<Client> connect(const std::string& path);

  [[nodiscard]] bool connected() const {
    return stream_ != nullptr && stream_->valid();
  }

  /// Runs one scenario query end to end.
  [[nodiscard]] Result<Response> query(const Request& request);

  /// Liveness probe; the response message reports "ready" or "draining".
  [[nodiscard]] Result<Response> ping();

  /// Asks the daemon to drain and exit.  The connection is spent
  /// afterwards (the server closes its end after acking).
  [[nodiscard]] Result<Response> shutdown_server();

  /// Writes `words` verbatim — NOT framed — then reads the server's
  /// reply.  Exists so smoke tests can prove malformed bytes get a typed
  /// kMalformedFrame answer instead of a hang or a dropped connection.
  [[nodiscard]] Result<Response> send_raw(
      const std::vector<std::uint64_t>& words);

 private:
  [[nodiscard]] Result<Response> round_trip(const Frame& frame);

  std::unique_ptr<ByteStream> stream_;
};

}  // namespace roclk::service
