// Content-addressed result cache with bounded-size LRU eviction.
//
// The service addresses finished responses by the request's content hash
// (request.hpp): a million identical "margin for this corner?" queries
// cost one simulation and N-1 cache hits.  The cache is bounded —
// `capacity` entries, least-recently-used evicted first — so a daemon
// that has seen millions of *distinct* scenarios holds its working set
// instead of growing without limit.
//
// Deliberately NOT internally synchronized: SweepService consults the
// cache under the same lock that guards its in-flight table, which is
// what closes the lookup-miss / publish race that would otherwise let a
// straggler re-simulate a just-finished scenario.  Standalone users must
// provide their own locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roclk/service/protocol.hpp"

namespace roclk::service {

struct ResultCacheStats {
  std::size_t hits{0};
  std::size_t misses{0};
  std::size_t evictions{0};
  std::size_t entries{0};
};

class ResultCache {
 public:
  /// `capacity` == 0 disables caching entirely (every lookup misses,
  /// every store is dropped) — the knob for measuring uncached service
  /// throughput.
  explicit ResultCache(std::size_t capacity) : capacity_{capacity} {}

  /// On a hit fills `response` (sans from_cache, which the service
  /// stamps) and refreshes the entry's recency.
  [[nodiscard]] bool lookup(std::uint64_t hash, Response& response);

  /// Inserts or refreshes an entry, evicting least-recently-used entries
  /// while over capacity.  Only OK responses are worth caching; callers
  /// enforce that policy.
  void store(std::uint64_t hash, const Response& response);

  [[nodiscard]] ResultCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Live entries in least- to most-recently-used order — the order a
  /// journal snapshot replays them so recency survives a compaction
  /// round trip (journal.hpp).  Does not refresh recency.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, const Response*>>
  snapshot_lru_to_mru() const;

  void clear();

 private:
  struct Entry {
    Response response;
    std::list<std::uint64_t>::iterator lru_slot;
  };

  std::size_t capacity_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::size_t hits_{0};
  std::size_t misses_{0};
  std::size_t evictions_{0};
};

}  // namespace roclk::service
