// Canonical scenario-query schema for the sweep service.
//
// A request names one simulation scenario in the paper's units (fractions
// of the set-point c).  Identity matters more than convenience here: two
// requests that mean the same simulation must serialize to the same words
// and hash to the same 64-bit content hash, because the service coalesces
// identical in-flight requests onto one simulation and addresses its
// result cache by that hash.  The rules that make this hold (normalize()):
//
//  * every double is canonicalised: -0.0 becomes +0.0; NaN/inf are
//    rejected up front, never hashed;
//  * defaulted fields are resolved to their explicit values before
//    hashing (cycles == 0 resolves via analysis::cycles_for), so "default
//    cycles" and the spelled-out equivalent are the same request;
//  * the deadline is NOT part of the identity — two clients asking the
//    same question with different patience share one simulation.
//
// docs/service.md documents the schema and normalization contract.
#pragma once

#include <cstdint>
#include <string>

#include "roclk/common/status.hpp"
#include "roclk/service/wire.hpp"

namespace roclk::service {

enum class QueryKind : std::uint32_t {
  kCornerMargin = 1,  // one what-if PVTA corner -> RunMetrics
  kGridSweep = 2,     // 1-D sweep of one corner axis -> metric per point
  kYieldCurve = 3,    // fixed-margin grid -> fixed/adaptive yield
};

[[nodiscard]] constexpr const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kCornerMargin:
      return "corner";
    case QueryKind::kGridSweep:
      return "grid";
    case QueryKind::kYieldCurve:
      return "yield";
  }
  return "?";
}

/// "What margin does this corner need?" — one measure_system run.  All
/// lengths are fractions of the set-point c, mirroring the paper's axes.
struct CornerQuery {
  std::uint32_t system{0};       // analysis::SystemKind
  double setpoint_c{64.0};
  double tclk_over_c{1.0};
  double amplitude_frac{0.2};    // harmonic HoDV amplitude / c
  double te_over_c{50.0};        // HoDV period / c
  double mu_over_c{0.0};         // static HeDV mismatch / c
  std::uint64_t cycles{0};       // 0 -> resolved by normalize()
  std::uint64_t skip{1000};      // transient cycles dropped from metrics
  double free_ro_margin_frac{0.0};
  std::uint32_t quantization{2};  // cdn::DelayQuantization (default interp)

  [[nodiscard]] bool operator==(const CornerQuery&) const = default;
};

enum class GridAxis : std::uint32_t {
  kTclkOverC = 1,  // Fig. 8 upper axis
  kTeOverC = 2,    // Fig. 8 lower axis
  kMuOverC = 3,    // Fig. 9 rows
};

enum class GridScale : std::uint32_t { kLinear = 1, kLog = 2 };

/// A figure-grid query: sweep one axis of `base` over [lo, hi].
struct GridQuery {
  CornerQuery base;
  GridAxis axis{GridAxis::kTclkOverC};
  GridScale scale{GridScale::kLinear};
  double lo{0.0};
  double hi{0.0};
  std::uint64_t points{0};

  [[nodiscard]] bool operator==(const GridQuery&) const = default;
};

/// A yield-economics query: analysis::yield_curve over a margin grid.
struct YieldQuery {
  std::uint64_t chips{500};
  std::uint64_t paths{64};
  double nominal_depth{64.0};
  double d2d_sigma{0.05};
  double wid_sigma{0.04};
  double rnd_sigma{0.02};
  double setpoint_c{64.0};
  std::int64_t ro_max_length{128};
  std::uint64_t seed{1234};
  double margin_lo{0.0};
  double margin_hi{16.0};
  std::uint64_t margin_points{9};

  [[nodiscard]] bool operator==(const YieldQuery&) const = default;
};

/// One scenario query.  Exactly the member named by `kind` is meaningful;
/// the others stay default-constructed (and are not serialized).
struct Request {
  QueryKind kind{QueryKind::kCornerMargin};
  /// Per-request deadline in milliseconds from admission; 0 = none.  Not
  /// part of the content hash.
  std::uint32_t deadline_ms{0};
  CornerQuery corner{};
  GridQuery grid{};
  YieldQuery yield{};

  [[nodiscard]] bool operator==(const Request&) const = default;
};

/// Validates `request` and returns its canonical form (defaults resolved,
/// -0.0 flattened).  Non-finite values, unknown enums, empty or inverted
/// grids, and log scales with non-positive bounds are rejected.
[[nodiscard]] Result<Request> normalize(const Request& request);

/// Content hash of a *normalized* request: the wire_mix chain over
/// [kind, scenario words...], excluding the deadline.  Two requests
/// coalesce / share a cache entry iff their hashes (and thus their
/// normalized scenario words) are equal.
[[nodiscard]] std::uint64_t content_hash(const Request& normalized);

/// Serializes a request as [deadline_ms, kind, scenario words...].
void encode_request(const Request& request, WireWriter& out);

/// Decodes a request from `in`.  Structural failures (short payload,
/// unknown kind) return a Status; semantic validation is normalize()'s
/// job so the server can answer with a typed response instead.
[[nodiscard]] Result<Request> decode_request(WireReader& in);

}  // namespace roclk::service
