// PVTA variation modelling (paper Table I).
//
// The paper classifies variability sources along two axes:
//   temporal: static (fixed after fabrication / power-up) vs dynamic
//   spatial : homogeneous (whole die moves together) vs heterogeneous
// A VariationSource is a function v(t, p) giving the *fractional* gate
// delay variation at time t (stages) and die position p: an affected gate
// has delay d = d0 * (1 + v).  Positive v = slower gates.
//
// The discrete-time loop simulator consumes variations converted to
// *stages of delay per clock period* (the paper's additive linearisation:
// a period of c stages under variation v costs ~ c*v extra stages), while
// the event-driven simulator uses v(t, p) directly and multiplicatively.
#pragma once

#include <memory>
#include <string>

namespace roclk::variation {

enum class TemporalClass { kStatic, kDynamic };
enum class SpatialClass { kHomogeneous, kHeterogeneous };

[[nodiscard]] constexpr const char* to_string(TemporalClass c) {
  return c == TemporalClass::kStatic ? "static" : "dynamic";
}
[[nodiscard]] constexpr const char* to_string(SpatialClass c) {
  return c == SpatialClass::kHomogeneous ? "homogeneous" : "heterogeneous";
}

/// Normalized die coordinates in [0, 1] x [0, 1].
struct DiePoint {
  double x{0.5};
  double y{0.5};
};

class VariationSource {
 public:
  virtual ~VariationSource() = default;

  /// Fractional delay variation at time t (stages) and position p.
  [[nodiscard]] virtual double at(double t, DiePoint p) const = 0;

  /// Design-intent classification (what Table I declares).
  [[nodiscard]] virtual TemporalClass temporal_class() const = 0;
  [[nodiscard]] virtual SpatialClass spatial_class() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<VariationSource> clone() const = 0;
};

/// Empirical classification of an arbitrary source by sampling: computes
/// the observed temporal and spatial standard deviations and thresholds
/// them.  The Table I bench uses this to *measure* that each model lands in
/// its declared cell.
struct MeasuredClassification {
  double temporal_stddev{0.0};  // std over time of the spatial mean
  double spatial_stddev{0.0};   // time-average of the std over positions
  TemporalClass temporal{TemporalClass::kStatic};
  SpatialClass spatial{SpatialClass::kHomogeneous};
};

struct ClassificationOptions {
  double t_begin{0.0};
  double t_end{64.0 * 2000.0};  // ~2000 nominal periods at c = 64
  std::size_t time_samples{256};
  std::size_t grid{8};           // grid x grid die positions
  double threshold{1e-6};        // stddev above this counts as varying
};

[[nodiscard]] MeasuredClassification classify(const VariationSource& source,
                                              const ClassificationOptions&
                                                  options = {});

}  // namespace roclk::variation
