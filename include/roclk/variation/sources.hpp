// Concrete variation sources: one model per Table I cell.
//
//                 |  static                |  dynamic
//  ---------------+------------------------+---------------------------
//  homogeneous    |  die-to-die process    |  VRM ripple, room-temp
//                 |                        |  drift, off-chip droop
//  heterogeneous  |  within-die process,   |  SSN, IR drop, hotspots,
//                 |  random device (RND)   |  aging
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "roclk/common/stream_key.hpp"
#include "roclk/signal/waveform.hpp"
#include "roclk/variation/spatial_map.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::variation {

// ---------------------------------------------------------------- static /
// homogeneous

/// Die-to-die (D2D) process variation: one constant offset for the whole
/// die, drawn from N(0, sigma) at construction (seeded).
class DieToDieProcess final : public VariationSource {
 public:
  /// Offset drawn from the "d2d" child of `key`.
  DieToDieProcess(double sigma, StreamKey key);
  /// Raw-seed convenience: key = StreamKey{seed}.split("variation.d2d").
  DieToDieProcess(double sigma, std::uint64_t seed);
  /// Fixed, known offset (for tests and corner studies).
  static DieToDieProcess with_offset(double offset);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kStatic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "D2D process variation";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;
  [[nodiscard]] double offset() const { return offset_; }

 private:
  explicit DieToDieProcess(double offset) : offset_{offset} {}
  double offset_;
};

// ---------------------------------------------------------------- static /
// heterogeneous

/// Within-die (WID) process variation: smooth spatially correlated field.
class WithinDieProcess final : public VariationSource {
 public:
  WithinDieProcess(double sigma, StreamKey key, int cells = 4,
                   int octaves = 2);
  /// Raw-seed convenience: key = StreamKey{seed}.split("variation.wid").
  WithinDieProcess(double sigma, std::uint64_t seed, int cells = 4,
                   int octaves = 2);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kStatic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "WID process variation";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  SpatialMap map_;
};

/// Device-to-device random (RND) process variation: spatially white,
/// uncorrelated from one position hash-bucket to the next.
class RandomDeviceProcess final : public VariationSource {
 public:
  /// Bucket (bx, by) draws from key.at(packed bucket index).
  RandomDeviceProcess(double sigma, StreamKey key, int buckets = 256);
  /// Raw-seed convenience: key = StreamKey{seed}.split("variation.rnd").
  RandomDeviceProcess(double sigma, std::uint64_t seed, int buckets = 256);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kStatic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "RND process variation";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  double sigma_;
  StreamKey key_;
  int buckets_;
};

// --------------------------------------------------------------- dynamic /
// homogeneous

/// Voltage-regulator-module ripple: a die-wide sinusoid.  This is the
/// paper's harmonic HoDV.
class VrmRipple final : public VariationSource {
 public:
  /// amplitude: fractional delay swing; period in stages.
  VrmRipple(double amplitude, double period, double phase = 0.0);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override { return "VRM ripple"; }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;
  [[nodiscard]] double amplitude() const { return amplitude_; }
  [[nodiscard]] double period() const { return period_; }

 private:
  signal::SineWaveform wave_;
  double amplitude_;
  double period_;
};

/// Room-temperature drift: very slow die-wide sinusoidal wander.
class RoomTemperatureDrift final : public VariationSource {
 public:
  RoomTemperatureDrift(double amplitude, double period);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "room temperature drift";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  signal::SineWaveform wave_;
};

/// Off-chip voltage drop: a single die-wide triangular droop event.  This
/// is the paper's single-event HoDV.
class OffChipVoltageDrop final : public VariationSource {
 public:
  /// amplitude: peak fractional slowdown; start/duration in stages.
  OffChipVoltageDrop(double amplitude, double start, double duration);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "off-chip voltage drop";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  signal::TrianglePulseWaveform wave_;
};

// --------------------------------------------------------------- dynamic /
// heterogeneous

/// Simultaneous switching noise: broadband noise whose amplitude follows a
/// spatial activity profile.
class SimultaneousSwitchingNoise final : public VariationSource {
 public:
  /// Noise stream = key.split("noise"), activity profile =
  /// key.split("profile").
  SimultaneousSwitchingNoise(double sigma, double hold, StreamKey key);
  /// Raw-seed convenience: key = StreamKey{seed}.split("variation.ssn").
  SimultaneousSwitchingNoise(double sigma, double hold, std::uint64_t seed);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override { return "SSN"; }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  signal::HoldNoiseWaveform noise_;
  SpatialMap profile_;
};

/// IR drop: static spatial gradient (distance from the supply pads)
/// modulated by workload activity (square wave).
class IrDrop final : public VariationSource {
 public:
  IrDrop(double peak, double activity_period, DiePoint hot_corner,
         std::uint64_t seed);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override { return "IR drop"; }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  GaussianBump bump_;
  signal::SquareWaveform activity_;
};

/// Temperature hotspot: gaussian spatial bump with a slow thermal rise /
/// decay envelope (first-order thermal time constant).
class TemperatureHotspot final : public VariationSource {
 public:
  TemperatureHotspot(double peak, DiePoint centre, double sigma,
                     double onset, double time_constant);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "temperature hotspot";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  GaussianBump bump_;
  double onset_;
  double time_constant_;
};

/// Aging (NBTI/HCI-style): monotonic slowdown saturating at `saturation`,
/// with a spatially varying stress rate.
class Aging final : public VariationSource {
 public:
  /// Stress map = key.split("stress").
  Aging(double saturation, double time_constant, StreamKey key);
  /// Raw-seed convenience: key = StreamKey{seed}.split("variation.aging").
  Aging(double saturation, double time_constant, std::uint64_t seed);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHeterogeneous;
  }
  [[nodiscard]] std::string name() const override { return "aging"; }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  double saturation_;
  double time_constant_;
  SpatialMap stress_;
};

/// A train of off-chip droop events with Poisson arrivals: each event is a
/// triangular dip of random amplitude and duration.  Models a supply rail
/// shared with bursty loads.  Stateless in evaluation (events are derived
/// from the seed), so clones replay identically.
class DroopTrain final : public VariationSource {
 public:
  /// `rate` = expected events per `interval_stages`; amplitudes uniform in
  /// [0, peak]; durations uniform in [min_duration, max_duration].
  /// Slot `s` draws its event from key.at(s).
  DroopTrain(double peak, double mean_spacing_stages, double min_duration,
             double max_duration, StreamKey key);
  /// Raw-seed convenience:
  /// key = StreamKey{seed}.split("variation.droop_train").
  DroopTrain(double peak, double mean_spacing_stages, double min_duration,
             double max_duration, std::uint64_t seed);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override {
    return "off-chip droop train";
  }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

  /// Event parameters inside the window slot containing time t (for tests).
  struct Event {
    bool present{false};
    double start{0.0};
    double amplitude{0.0};
    double duration{0.0};
  };
  [[nodiscard]] Event event_in_slot(std::int64_t slot) const;

 private:
  double peak_;
  double spacing_;
  double min_duration_;
  double max_duration_;
  StreamKey key_;
};

// -------------------------------------------------------------- composite

/// Sum of sources.  Classified dynamic if any part is dynamic,
/// heterogeneous if any part is heterogeneous.
class CompositeVariation final : public VariationSource {
 public:
  CompositeVariation() = default;
  CompositeVariation(const CompositeVariation& other);
  CompositeVariation& operator=(const CompositeVariation& other);
  CompositeVariation(CompositeVariation&&) noexcept = default;
  CompositeVariation& operator=(CompositeVariation&&) noexcept = default;

  CompositeVariation& add(std::unique_ptr<VariationSource> source);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override;
  [[nodiscard]] SpatialClass spatial_class() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;
  [[nodiscard]] std::size_t size() const { return parts_.size(); }

 private:
  std::vector<std::unique_ptr<VariationSource>> parts_;
};

/// Wraps any Waveform as a homogeneous dynamic source (used to inject the
/// paper's exact perturbation shapes into the full-chip simulator).
class WaveformVariation final : public VariationSource {
 public:
  explicit WaveformVariation(std::unique_ptr<signal::Waveform> wave,
                             std::string label = "waveform HoDV");
  WaveformVariation(const WaveformVariation& other);

  [[nodiscard]] double at(double t, DiePoint p) const override;
  [[nodiscard]] TemporalClass temporal_class() const override {
    return TemporalClass::kDynamic;
  }
  [[nodiscard]] SpatialClass spatial_class() const override {
    return SpatialClass::kHomogeneous;
  }
  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] std::unique_ptr<VariationSource> clone() const override;

 private:
  std::unique_ptr<signal::Waveform> wave_;
  std::string label_;
};

}  // namespace roclk::variation
