// Spatially correlated random fields over the die.
//
// Within-die (WID) process variation and thermal maps are smooth random
// functions of position.  SpatialMap implements seeded value-noise: random
// values on a lattice, smoothstep-interpolated, summed over octaves.  It is
// stateless (lattice values are hashes of their coordinates), so evaluation
// order does not matter and clones are exact.
#pragma once

#include <cstdint>

#include "roclk/common/stream_key.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::variation {

class SpatialMap {
 public:
  /// `cells` lattice cells across the unit die; `octaves` layers of detail,
  /// each doubling frequency and halving amplitude; `stddev` approximate
  /// standard deviation of the resulting field.  Lattice values draw from
  /// key.at(octave).at(packed coordinate) — pure per-site substreams.
  SpatialMap(StreamKey key, double stddev, int cells = 4, int octaves = 2);

  /// Raw-seed convenience: derives the field's stream as
  /// StreamKey{seed}.split("variation.spatial_map").
  SpatialMap(std::uint64_t seed, double stddev, int cells = 4,
             int octaves = 2);

  /// Field value at a die position (zero-mean, ~stddev spread).
  [[nodiscard]] double at(DiePoint p) const;

  [[nodiscard]] double stddev() const { return stddev_; }

 private:
  [[nodiscard]] double lattice_value(int octave, int ix, int iy) const;
  [[nodiscard]] double octave_value(int octave, DiePoint p) const;

  StreamKey key_;
  double stddev_;
  int cells_;
  int octaves_;
};

/// Radial gaussian bump centred at `centre`: the canonical hotspot /
/// IR-drop-gradient spatial profile.
class GaussianBump {
 public:
  GaussianBump(DiePoint centre, double sigma, double peak);
  [[nodiscard]] double at(DiePoint p) const;

 private:
  DiePoint centre_;
  double sigma_;
  double peak_;
};

}  // namespace roclk::variation
