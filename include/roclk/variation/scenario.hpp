// Scenario factories: the exact perturbation environments of the paper's
// evaluation plus richer demo scenarios for the examples.
#pragma once

#include <cstdint>
#include <memory>

#include "roclk/variation/sources.hpp"

namespace roclk::variation {

/// Paper section IV-A: homogeneous dynamic variation — a die-wide sinusoid
/// of amplitude `amplitude_stages / c` and period `period_stages`.
/// Amplitudes in the paper are expressed in stages (0.2 * c); this factory
/// takes the *fractional* amplitude directly.
[[nodiscard]] std::unique_ptr<VariationSource> make_harmonic_hodv(
    double fractional_amplitude, double period_stages, double phase = 0.0);

/// Paper section II-A.2: single-event HoDV — triangular droop.
[[nodiscard]] std::unique_ptr<VariationSource> make_single_event_hodv(
    double fractional_amplitude, double start_stages, double duration_stages);

/// A realistic "busy SoC" environment combining several Table I sources;
/// used by examples and robustness tests.  All magnitudes are fractional.
struct SocEnvironmentConfig {
  double d2d_sigma{0.03};
  double wid_sigma{0.02};
  double rnd_sigma{0.005};
  double vrm_amplitude{0.05};
  double vrm_period{6400.0};       // stages
  double ssn_sigma{0.01};
  double ssn_hold{64.0};           // stages
  double hotspot_peak{0.08};
  double hotspot_onset{64000.0};   // stages
  double hotspot_tau{128000.0};    // stages
  double aging_saturation{0.04};
  double aging_tau{1e7};           // stages
  std::uint64_t seed{42};
};

[[nodiscard]] std::unique_ptr<VariationSource> make_soc_environment(
    const SocEnvironmentConfig& config = {});

}  // namespace roclk::variation
