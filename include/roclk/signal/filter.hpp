// Runtime evaluation of linear difference equations.
//
// LinearFilter executes an arbitrary H(z) = N(z)/D(z) sample-by-sample in
// direct form II transposed.  It is the floating-point *reference*
// implementation against which the integer hardware model of the paper's
// IIR control block is validated.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/signal/transfer_function.hpp"

namespace roclk::signal {

class LinearFilter {
 public:
  /// b: numerator coefficients {b0..bM} of z^-k, a: denominator {a0..aN};
  /// a0 must be non-zero (it is divided out).
  LinearFilter(std::vector<double> b, std::vector<double> a);
  explicit LinearFilter(const TransferFunction& tf);

  /// Processes one input sample, returns one output sample.
  double step(double x);

  /// Processes a whole sequence.
  [[nodiscard]] std::vector<double> process(std::span<const double> xs);

  /// Clears the internal state (zero initial conditions).
  void reset();

  [[nodiscard]] const std::vector<double>& numerator() const { return b_; }
  [[nodiscard]] const std::vector<double>& denominator() const { return a_; }

 private:
  std::vector<double> b_;  // normalized so a_[0] == 1
  std::vector<double> a_;
  std::vector<double> state_;  // DF2T delay registers
};

/// First-order exponential smoother y[n] = alpha x[n] + (1-alpha) y[n-1];
/// used by runtime set-point governors in the examples.
class ExponentialSmoother {
 public:
  explicit ExponentialSmoother(double alpha);
  double step(double x);
  void reset(double initial = 0.0);
  [[nodiscard]] double value() const { return y_; }

 private:
  double alpha_;
  double y_{0.0};
  bool primed_{false};
};

/// Sliding-window minimum over the last `window` samples in O(1) amortized
/// per step (monotonic deque).  Used to track the worst TDC reading over a
/// time window, as the paper's set-point governor sketch requires.
class SlidingMinimum {
 public:
  explicit SlidingMinimum(std::size_t window);
  double step(double x);
  void reset();
  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  struct Entry {
    std::size_t index;
    double value;
  };
  std::size_t window_;
  std::size_t next_index_{0};
  std::vector<Entry> deque_;  // indices increasing, values increasing
  std::size_t head_{0};
};

}  // namespace roclk::signal
