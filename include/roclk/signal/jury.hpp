// Jury stability criterion for discrete-time characteristic polynomials.
//
// Complements the root-finder: the Jury table decides whether all roots of
// a real polynomial lie strictly inside the unit circle without computing
// them.  Used by the ablation bench that maps the stability boundary of the
// paper's closed loop D(z) + N(z) z^{-M-2} as the CDN delay M grows.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::signal {

struct JuryResult {
  bool stable{false};          // all roots strictly inside the unit circle
  std::string failed_condition;  // empty when stable
  // The full Jury table rows (first row of each pair), for diagnostics.
  std::vector<std::vector<double>> table;
};

/// Applies the Jury test to
///   P(z) = a[0] z^n + a[1] z^(n-1) + ... + a[n]
/// (coefficients highest power first, a[0] != 0).
Result<JuryResult> jury_test(std::span<const double> coefficients_high_first);

/// Convenience for marginally-stable loops: divides out a known root at
/// z = 1 (synthetic division) before testing.  The paper's type-1 loops
/// place an integrator pole exactly at z = 1 by design (eq. 8), so the
/// interesting question is whether the *remaining* dynamics are stable.
Result<JuryResult> jury_test_without_unit_root(
    std::span<const double> coefficients_high_first, double tol = 1e-9);

}  // namespace roclk::signal
