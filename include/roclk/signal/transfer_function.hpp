// Rational discrete-time transfer functions H(z) = N(z)/D(z) in z^-1.
//
// Provides the z-domain algebra of paper section III-A: closed-loop
// assembly with the z^{-M-2} loop delay (eqs. 4-5), the final value theorem
// used to derive the control constraints N(1) != 0, D(1) = 0 (eq. 8), pole
// extraction and stability classification.
#pragma once

#include <complex>
#include <optional>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/signal/polynomial.hpp"

namespace roclk::signal {

enum class Stability {
  kStable,              // all poles strictly inside the unit circle
  kMarginallyStable,    // simple poles on the unit circle, rest inside
  kUnstable,            // any pole outside (or repeated on) the unit circle
};

[[nodiscard]] constexpr const char* to_string(Stability s) {
  switch (s) {
    case Stability::kStable:
      return "stable";
    case Stability::kMarginallyStable:
      return "marginally-stable";
    case Stability::kUnstable:
      return "unstable";
  }
  return "?";
}

class TransferFunction {
 public:
  /// D must not be identically zero.
  TransferFunction(Polynomial numerator, Polynomial denominator);

  [[nodiscard]] static TransferFunction identity() {
    return {Polynomial::one(), Polynomial::one()};
  }
  /// Pure delay z^-k.
  [[nodiscard]] static TransferFunction delay(std::size_t k) {
    return {Polynomial::delay(k), Polynomial::one()};
  }

  [[nodiscard]] const Polynomial& numerator() const { return num_; }
  [[nodiscard]] const Polynomial& denominator() const { return den_; }

  [[nodiscard]] std::complex<double> evaluate(std::complex<double> z) const;

  /// Frequency response at normalized angular frequency w (rad/sample):
  /// H(e^{jw}).
  [[nodiscard]] std::complex<double> frequency_response(double w) const;

  /// DC gain H(1); infinite if D(1) = 0 while N(1) != 0 (returned as
  /// nullopt).
  [[nodiscard]] std::optional<double> dc_gain() const;

  /// Final value of the response to a unit step, via the final value
  /// theorem lim_{z->1} (1 - z^-1) * H(z) * 1/(1 - z^-1) = H(1).  Requires
  /// the closed-loop system to be (marginally) stable to be meaningful;
  /// this function only performs the limit algebraically.
  [[nodiscard]] std::optional<double> step_final_value() const;

  /// Series, parallel and feedback composition.
  [[nodiscard]] TransferFunction series(const TransferFunction& other) const;
  [[nodiscard]] TransferFunction parallel(const TransferFunction& other) const;
  /// Negative-feedback closed loop: H / (1 + H*G), G in the feedback path.
  [[nodiscard]] TransferFunction feedback(const TransferFunction& loop) const;

  /// Poles (roots of D in z) and zeros (roots of N in z).
  [[nodiscard]] Result<std::vector<std::complex<double>>> poles() const;
  [[nodiscard]] Result<std::vector<std::complex<double>>> zeros() const;

  /// Stability classification from pole locations.  `unit_circle_tol`
  /// decides how close to |z| = 1 counts as "on" the circle.
  [[nodiscard]] Result<Stability> stability(double unit_circle_tol = 1e-7) const;

  /// First `n` samples of the impulse response (long division of N by D).
  [[nodiscard]] std::vector<double> impulse_response(std::size_t n) const;
  /// First `n` samples of the unit-step response.
  [[nodiscard]] std::vector<double> step_response(std::size_t n) const;

  /// Removes common leading z^-1 factors from N and D (a shared pure delay
  /// cancels in the ratio) and normalizes D's first nonzero coefficient
  /// to 1.
  TransferFunction& normalize();

  [[nodiscard]] std::string to_string() const;

 private:
  Polynomial num_;
  Polynomial den_;
};

/// Builds the paper's closed-loop transfer functions (eqs. 4 and 5) from a
/// controller H(z) = N(z)/D(z) and the CDN delay M:
///   H_lRO(z) = N / (D + N z^{-M-2})
///   H_delta(z) = D / (D + N z^{-M-2})
struct PaperClosedLoop {
  TransferFunction to_ro_length;  // H_lRO
  TransferFunction to_error;      // H_delta
};
[[nodiscard]] PaperClosedLoop make_paper_closed_loop(
    const Polynomial& controller_numerator,
    const Polynomial& controller_denominator, std::size_t cdn_delay_m);

/// The combined input of eq. (5):
///   p(z) = c(z) + e(z) (1 - z^{-M-1}) z^{-1} - mu(z) z^{-M-2}
/// evaluated sample-by-sample in the time domain for given input sequences.
[[nodiscard]] std::vector<double> paper_combined_input(
    std::span<const double> setpoint, std::span<const double> homogeneous,
    std::span<const double> mismatch, std::size_t cdn_delay_m);

}  // namespace roclk::signal
