// Complex root finding for real-coefficient polynomials.
//
// Used to locate the poles of the closed-loop transfer functions
// D(z) + N(z) z^{-M-2} (paper eqs. 4-5) when analysing stability vs the CDN
// delay M.  Implements the Aberth-Ehrlich simultaneous iteration, which
// converges for the modest degrees (< 100) we encounter.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::signal {

struct RootFindOptions {
  int max_iterations{200};
  double tolerance{1e-12};
};

/// Finds all complex roots of the polynomial
///   p(x) = c[0] x^n + c[1] x^(n-1) + ... + c[n]
/// (coefficients highest power first).  Leading zeros are stripped; a
/// constant polynomial yields no roots.  Returns an error if the iteration
/// fails to converge.
Result<std::vector<std::complex<double>>> find_roots(
    std::span<const double> coefficients_high_first,
    RootFindOptions options = {});

/// Largest root magnitude, 0 if there are no roots.
[[nodiscard]] double spectral_radius(
    std::span<const std::complex<double>> roots);

}  // namespace roclk::signal
