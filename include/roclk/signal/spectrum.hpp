// Frequency-domain helpers: DFT, Goertzel single-bin, spectrum summaries.
//
// Used by the analysis module to verify that an adaptive clock attenuates
// the perturbation tone (the residual timing error spectrum at the HoDV
// frequency) and by extension benches that characterise loop bandwidth.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::signal {

/// Radix-2 in-place FFT; size must be a power of two.
Result<std::vector<std::complex<double>>> fft(std::span<const double> xs);

/// Full DFT via direct evaluation (any size; O(n^2), fine for traces).
[[nodiscard]] std::vector<std::complex<double>> dft(std::span<const double> xs);

/// Goertzel algorithm: the DFT coefficient at one normalized frequency
/// f (cycles/sample, in [0, 0.5]).
[[nodiscard]] std::complex<double> goertzel(std::span<const double> xs,
                                            double frequency);

/// Amplitude of the tone at normalized frequency f, i.e. 2|X(f)|/N (exact
/// for a pure sinusoid away from DC/Nyquist).
[[nodiscard]] double tone_amplitude(std::span<const double> xs,
                                    double frequency);

/// Index of the largest-magnitude non-DC bin of the FFT of xs (size need
/// not be a power of two; uses the direct DFT).
[[nodiscard]] std::size_t dominant_bin(std::span<const double> xs);

}  // namespace roclk::signal
