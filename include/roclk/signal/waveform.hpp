// Continuous-time waveform primitives used as perturbation shapes.
//
// The paper drives its evaluation with two canonical homogeneous dynamic
// variations: a harmonic (sine) perturbation nu(t) = nu0 sin(2 pi t / T + phi)
// and a single triangular event of duration T and amplitude nu0 (section
// II-A).  Waveform models both, plus the auxiliary shapes the variation
// library composes (steps, ramps, square waves, PRBS, band-limited noise).
//
// Waveforms are functions of continuous time measured in *stages* so they
// can be sampled both by the discrete-time loop simulator (once per clock
// period) and by the event-driven edge simulator (at arbitrary instants).
#pragma once

#include <memory>
#include <vector>

#include "roclk/common/status.hpp"
#include "roclk/common/stream_key.hpp"

namespace roclk::signal {

/// Interface: value of the waveform at absolute time t (in stages).
class Waveform {
 public:
  virtual ~Waveform() = default;
  [[nodiscard]] virtual double at(double t) const = 0;
  [[nodiscard]] virtual std::unique_ptr<Waveform> clone() const = 0;

  /// Samples the waveform at t = offset + k*step for k in [0, n).
  [[nodiscard]] std::vector<double> sample(std::size_t n, double step,
                                           double offset = 0.0) const;
};

/// Identically zero.
class ZeroWaveform final : public Waveform {
 public:
  [[nodiscard]] double at(double) const override { return 0.0; }
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<ZeroWaveform>(*this);
  }
};

/// Constant value.
class ConstantWaveform final : public Waveform {
 public:
  explicit ConstantWaveform(double value) : value_{value} {}
  [[nodiscard]] double at(double) const override { return value_; }
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<ConstantWaveform>(*this);
  }

 private:
  double value_;
};

/// amplitude * sin(2 pi t / period + phase): the paper's periodic HoDV.
class SineWaveform final : public Waveform {
 public:
  SineWaveform(double amplitude, double period, double phase = 0.0);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<SineWaveform>(*this);
  }
  [[nodiscard]] double amplitude() const { return amplitude_; }
  [[nodiscard]] double period() const { return period_; }

 private:
  double amplitude_;
  double period_;
  double phase_;
};

/// Single triangular event starting at `start`, duration `duration`, peak
/// `amplitude` at the midpoint, zero elsewhere: the paper's single-event
/// HoDV (fast supply droop).
class TrianglePulseWaveform final : public Waveform {
 public:
  TrianglePulseWaveform(double amplitude, double start, double duration);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<TrianglePulseWaveform>(*this);
  }

 private:
  double amplitude_;
  double start_;
  double duration_;
};

/// Heaviside step of given amplitude at `start`.
class StepWaveform final : public Waveform {
 public:
  StepWaveform(double amplitude, double start);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<StepWaveform>(*this);
  }

 private:
  double amplitude_;
  double start_;
};

/// Linear ramp from 0 at `start` with the given slope, optionally clamped
/// at `saturation` (used for aging models: monotonic slow drift).
class RampWaveform final : public Waveform {
 public:
  RampWaveform(double slope, double start, double saturation);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<RampWaveform>(*this);
  }

 private:
  double slope_;
  double start_;
  double saturation_;
};

/// Square wave (50% duty): models on/off workload power steps.
class SquareWaveform final : public Waveform {
 public:
  SquareWaveform(double amplitude, double period, double phase = 0.0);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<SquareWaveform>(*this);
  }

 private:
  double amplitude_;
  double period_;
  double phase_;
};

/// Sample-and-hold Gaussian noise: a new normal value every `hold` stages,
/// deterministic in the seed.  Models broadband supply noise (SSN).
class HoldNoiseWaveform final : public Waveform {
 public:
  /// Hold-slot `s` draws from key.at(s) — a pure per-slot substream, so
  /// evaluation order is irrelevant.
  HoldNoiseWaveform(double stddev, double hold, StreamKey key);
  /// Raw-seed convenience:
  /// key = StreamKey{seed}.split("signal.hold_noise").
  HoldNoiseWaveform(double stddev, double hold, std::uint64_t seed);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override {
    return std::make_unique<HoldNoiseWaveform>(*this);
  }

 private:
  double stddev_;
  double hold_;
  StreamKey key_;
};

/// Sum of component waveforms, each with a scale factor.
class CompositeWaveform final : public Waveform {
 public:
  CompositeWaveform() = default;
  CompositeWaveform(const CompositeWaveform& other);
  CompositeWaveform& operator=(const CompositeWaveform& other);
  CompositeWaveform(CompositeWaveform&&) noexcept = default;
  CompositeWaveform& operator=(CompositeWaveform&&) noexcept = default;

  CompositeWaveform& add(std::unique_ptr<Waveform> w, double scale = 1.0);
  [[nodiscard]] double at(double t) const override;
  [[nodiscard]] std::unique_ptr<Waveform> clone() const override;
  [[nodiscard]] std::size_t size() const { return parts_.size(); }

 private:
  struct Part {
    std::unique_ptr<Waveform> waveform;
    double scale;
  };
  std::vector<Part> parts_;
};

}  // namespace roclk::signal
