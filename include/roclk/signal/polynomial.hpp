// Polynomials in z^-1 for discrete-time transfer functions.
//
// A Polynomial stores coefficients {a0, a1, ..., aN} and represents
//   a(z) = a0 + a1*z^-1 + ... + aN*z^-N .
// This is the natural form for the paper's z-domain algebra (eqs. 4, 5, 9):
// delays compose by multiplying with z^-k, i.e. shifting coefficients.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace roclk::signal {

class Polynomial {
 public:
  Polynomial() : coeffs_{0.0} {}
  Polynomial(std::initializer_list<double> coeffs);
  explicit Polynomial(std::vector<double> coeffs);

  /// The monomial z^-k (k >= 0).
  [[nodiscard]] static Polynomial delay(std::size_t k);
  /// The constant polynomial c.
  [[nodiscard]] static Polynomial constant(double c);
  /// One, i.e. z^0.
  [[nodiscard]] static Polynomial one() { return constant(1.0); }

  /// Degree in z^-1 (index of last non-negligible coefficient).
  [[nodiscard]] std::size_t degree() const;
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeffs_;
  }
  /// Coefficient of z^-k; zero beyond stored range.
  [[nodiscard]] double coefficient(std::size_t k) const;

  /// Evaluates a(z) at a complex point z (|z| > 0 required for negative
  /// powers; z = 0 is invalid for nonconstant polynomials).
  [[nodiscard]] std::complex<double> evaluate(std::complex<double> z) const;
  /// Evaluates at a real z.
  [[nodiscard]] double evaluate(double z) const;
  /// a(1): the DC value.
  [[nodiscard]] double at_one() const { return evaluate(1.0); }

  /// Coefficients of the equivalent polynomial in positive powers of z,
  /// i.e. z^degree * a(z), highest power first: for root finding.
  [[nodiscard]] std::vector<double> ascending_in_z() const;

  /// Removes trailing coefficients below `tol` in magnitude.
  Polynomial& trim(double tol = 1e-12);

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double scale) const;
  Polynomial operator-() const { return *this * -1.0; }
  /// Multiplication by z^-k (delay by k samples).
  [[nodiscard]] Polynomial delayed(std::size_t k) const;

  bool operator==(const Polynomial& other) const;

  /// Human-readable form like "1 - 0.5 z^-1 + 0.25 z^-3".
  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
    return os << p.to_string();
  }

 private:
  std::vector<double> coeffs_;  // coeffs_[k] multiplies z^-k
};

}  // namespace roclk::signal
