// Die floorplan: critical paths and sensor sites on the die.
//
// The paper's architecture (its Fig. 3) disseminates TDC sensors over the
// clock domain so heterogeneous variations near any critical path are
// observed by a nearby sensor.  Floorplan models that geometry: a set of
// critical paths (position + logic depth in stages) and a grid of TDC
// sites; given a VariationSource it evaluates every path's instantaneous
// delay, the worst path, and the mismatch between a path and its nearest
// sensor — the quantity that ultimately bounds how well the closed loop
// can protect the path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "roclk/common/stream_key.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::chip {

/// One candidate critical path.
struct CriticalPath {
  variation::DiePoint location{};
  double depth_stages{64.0};  // logic depth in elementary gate delays
  std::string name{};
};

/// One delay-sensor (TDC) site.
struct SensorSite {
  variation::DiePoint location{};
  std::string name{};
};

class Floorplan {
 public:
  Floorplan() = default;

  /// n paths uniformly placed at random; depth jitters +/-10% around
  /// `nominal_depth`.  Path i draws from key.at(i), so any prefix of the
  /// floorplan is stable as n grows.
  static Floorplan random_paths(std::size_t n, double nominal_depth,
                                StreamKey key);
  /// Raw-seed convenience: key = StreamKey{seed}.split("chip.floorplan").
  static Floorplan random_paths(std::size_t n, double nominal_depth,
                                std::uint64_t seed);

  Floorplan& add_path(CriticalPath path);
  Floorplan& add_sensor(SensorSite site);
  /// Adds a grid x grid array of sensors covering the die.
  Floorplan& add_sensor_grid(std::size_t grid);

  [[nodiscard]] std::span<const CriticalPath> paths() const { return paths_; }
  [[nodiscard]] std::span<const SensorSite> sensors() const {
    return sensors_;
  }

  /// Instantaneous delay of one path under `source` at time t (stages):
  /// depth * (1 + v(t, p)).
  [[nodiscard]] double path_delay(const CriticalPath& path,
                                  const variation::VariationSource& source,
                                  double t) const;

  /// Largest instantaneous path delay across the floorplan.
  [[nodiscard]] double worst_path_delay(
      const variation::VariationSource& source, double t) const;
  /// Index of the currently slowest path.
  [[nodiscard]] std::size_t worst_path_index(
      const variation::VariationSource& source, double t) const;

  /// Index of the sensor nearest to a die position.
  [[nodiscard]] std::size_t nearest_sensor(variation::DiePoint p) const;

  /// The residual the closed loop cannot see: for each path, the difference
  /// between the fractional variation at the path and at its nearest
  /// sensor, at time t.  Returns the worst (most positive: path slower
  /// than its sensor believes) residual.
  [[nodiscard]] double worst_sensor_blind_spot(
      const variation::VariationSource& source, double t) const;

 private:
  std::vector<CriticalPath> paths_;
  std::vector<SensorSite> sensors_;
};

}  // namespace roclk::chip
