// Clock-domain geometry: domain size <-> clock distribution delay.
//
// Paper section II-A concludes that the CDN delay t_clk bounds the dynamic
// variation frequency an adaptive clock can track, and that t_clk "is
// directly related with clock domain size".  ClockDomainGeometry makes that
// relation concrete with a simple buffered-H-tree model so benches and
// examples can sweep *physical* domain sizes instead of abstract delays.
#pragma once

#include <cstddef>

namespace roclk::chip {

struct ClockDomainConfig {
  double size_mm{2.0};               // side length of the square domain
  double buffer_delay_stages{2.0};   // insertion delay of one tree buffer
  double wire_delay_stages_per_mm{20.0};  // RC-dominated wire delay
  double max_unbuffered_mm{0.5};     // segment length before rebuffering
};

class ClockDomainGeometry {
 public:
  explicit ClockDomainGeometry(ClockDomainConfig config = {});

  /// Number of H-tree levels needed to reach every corner of the domain.
  [[nodiscard]] std::size_t tree_levels() const;

  /// Total insertion delay from the clock source to the leaves, in stages:
  /// the paper's t_clk.
  [[nodiscard]] double cdn_delay_stages() const;

  /// Largest domain size (mm) whose CDN delay keeps the harmonic-HoDV
  /// mismatch bounded: t_clk < T_nu / 6 (paper section II-A.1).
  [[nodiscard]] static double max_domain_size_mm(
      double perturbation_period_stages, const ClockDomainConfig& config = {});

  [[nodiscard]] const ClockDomainConfig& config() const { return config_; }

 private:
  ClockDomainConfig config_;
};

}  // namespace roclk::chip
