// roclk — variation-tolerant self-adaptive clock generation based on a ring
// oscillator.  C++20 reproduction of Pérez-Puigdemont, Calomarde & Moll,
// IEEE SOCC 2012.
//
// Umbrella header: pulls in the whole public API.  Prefer including the
// per-module headers in code that cares about compile times.
#pragma once

// Foundations.
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/fixed_point.hpp"
#include "roclk/common/flags.hpp"
#include "roclk/common/math.hpp"
#include "roclk/common/rng.hpp"
#include "roclk/common/stats.hpp"
#include "roclk/common/status.hpp"
#include "roclk/common/table.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/common/units.hpp"

// Discrete-time signal processing.
#include "roclk/signal/filter.hpp"
#include "roclk/signal/jury.hpp"
#include "roclk/signal/polynomial.hpp"
#include "roclk/signal/roots.hpp"
#include "roclk/signal/spectrum.hpp"
#include "roclk/signal/transfer_function.hpp"
#include "roclk/signal/waveform.hpp"

// PVTA variation models and die geometry.
#include "roclk/chip/clock_domain.hpp"
#include "roclk/chip/floorplan.hpp"
#include "roclk/variation/scenario.hpp"
#include "roclk/variation/sources.hpp"
#include "roclk/variation/spatial_map.hpp"
#include "roclk/variation/variation.hpp"

// Hardware blocks.
#include "roclk/cdn/cdn.hpp"
#include "roclk/osc/jitter.hpp"
#include "roclk/osc/ring_oscillator.hpp"
#include "roclk/osc/stage_chain.hpp"
#include "roclk/power/voltage_model.hpp"
#include "roclk/sensor/tdc.hpp"
#include "roclk/sensor/thermometer.hpp"

// Fault injection.
#include "roclk/fault/fault.hpp"
#include "roclk/fault/injector.hpp"

// Controllers.
#include "roclk/control/calibration.hpp"
#include "roclk/control/constraints.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/control/hardened_control.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/sensor_guard.hpp"
#include "roclk/control/setpoint_governor.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/control/watchdog.hpp"

// The adaptive clock systems and simulators.
#include "roclk/core/edge_simulator.hpp"
#include "roclk/core/gate_level_simulator.hpp"
#include "roclk/core/inputs.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/core/throughput_model.hpp"
#include "roclk/core/trace.hpp"

// Metrics, analytics and the paper's experiments.
#include "roclk/analysis/analytic.hpp"
#include "roclk/analysis/estimation.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/analysis/fault_metrics.hpp"
#include "roclk/analysis/frequency_response.hpp"
#include "roclk/analysis/iir_design.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/analysis/multi_domain.hpp"
#include "roclk/analysis/stability_metrics.hpp"
#include "roclk/analysis/yield.hpp"
