// Lane-parallel ensemble execution of the paper's control loop.
//
// Ensemble studies (Monte-Carlo over PVTA scenarios, mismatch grids,
// multi-domain partitionings) run many *independent* instances of the
// Fig. 4 loop.  LoopSimulator executes one instance per call and
// materializes a full SimulationTrace even when the caller only wants four
// RunMetrics numbers.  EnsembleSimulator instead runs W lanes in
// structure-of-arrays lockstep:
//
//  * the z^-1 delay registers (prev_lro / prev_t_dlv / prev_e_*) are lane
//    vectors, so the per-cycle inner loop over lanes is branch-light and
//    exposes W independent dependency chains to the core;
//  * the CDN rings are interleaved per lane chunk ([slot][lane], power of
//    two slots, mask indexing) and stay L1-resident;
//  * the IIR control hardware is devirtualized once per ensemble into a
//    lane-strided integer bank ([tap][lane]), mirroring run_batch's fast
//    path; other controllers fall back to one cloned ControlBlock per lane.
//
// Per-cycle results stream into a StreamingReducer instead of a trace, so
// a 1k-lane study allocates O(W) accumulator state, not O(W * cycles)
// trace memory.
//
// Equivalence guarantee (enforced by tests/core/test_ensemble_simulator):
// lane w of run() performs exactly the arithmetic, in exactly the order,
// of a scalar LoopSimulator::run_batch over the same per-lane inputs —
// every tau/delta/lro/t_gen/t_dlv it streams is bit-for-bit identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "roclk/common/fixed_point.hpp"
#include "roclk/common/simd.hpp"
#include "roclk/common/status.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/core/inputs.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/core/trace.hpp"
#include "roclk/sensor/tdc.hpp"

namespace roclk::core {

/// One simulated cycle's results for a contiguous range of lanes.  The
/// arrays are indexed [0, width) and belong to lanes
/// [first_lane, first_lane + width).
struct LaneSlice {
  std::size_t first_lane{0};
  std::size_t width{0};
  std::size_t cycle{0};  // cycle index within the current run() call
  const double* tau{nullptr};
  const double* delta{nullptr};
  const double* lro{nullptr};
  const double* t_gen{nullptr};
  const double* t_dlv{nullptr};
  const std::uint8_t* violation{nullptr};
  /// Per-lane isolation mask, or nullptr on a fault-free run.  An isolated
  /// lane's slice entries repeat its last good cycle (never NaN); reducers
  /// that aggregate across lanes should skip flagged lanes.
  const std::uint8_t* isolated{nullptr};
};

/// Streaming consumer of ensemble results.  accumulate() is called once
/// per cycle per lane chunk, with cycles strictly increasing within a
/// chunk.  When run(..., parallel=true) is used, chunks covering disjoint
/// lane ranges may call accumulate() concurrently — implementations must
/// only touch per-lane state (as MetricsReducer and TraceReducer do).
class StreamingReducer {
 public:
  virtual ~StreamingReducer() = default;
  virtual void accumulate(const LaneSlice& slice) = 0;
  /// Reducers that never read slice.lro / slice.t_gen may return false;
  /// the kernel then skips staging those two arrays and their slice
  /// pointers may reference stale values.  Defaults to the full slice.
  [[nodiscard]] virtual bool wants_full_slice() const { return true; }
};

/// Reducer that materializes one full SimulationTrace per lane — the
/// compatibility/debug path, and the witness for the bit-for-bit
/// equivalence tests against LoopSimulator::run_batch.
class TraceReducer final : public StreamingReducer {
 public:
  explicit TraceReducer(std::size_t lanes, std::size_t reserve_cycles = 0);

  void accumulate(const LaneSlice& slice) override;

  [[nodiscard]] std::size_t lanes() const { return traces_.size(); }
  [[nodiscard]] const SimulationTrace& trace(std::size_t lane) const;
  /// Moves the traces out (the reducer is spent afterwards).
  [[nodiscard]] std::vector<SimulationTrace> take();

 private:
  std::vector<SimulationTrace> traces_;
};

class EnsembleSimulator {
 public:
  /// One LoopConfig per lane.  All lanes must agree on mode, quantize_lro
  /// and the TDC/CDN quantization (the kernel hoists those branches);
  /// scalar fields — set-point, CDN delay, open-loop period, length range —
  /// may vary per lane.  In controlled mode `controllers` supplies one
  /// ControlBlock per lane; in the open-loop modes it must be empty.
  EnsembleSimulator(
      std::vector<LoopConfig> lane_configs,
      std::vector<std::unique_ptr<control::ControlBlock>> controllers);

  /// W lanes of one scalar configuration; `prototype` (may be null for the
  /// open-loop modes) is cloned per lane.
  [[nodiscard]] static EnsembleSimulator uniform(
      const LoopConfig& config, const control::ControlBlock* prototype,
      std::size_t width);

  [[nodiscard]] static Status validate(
      std::span<const LoopConfig> lane_configs, std::size_t controller_count);

  /// Restores every lane to its error-free equilibrium (same semantics as
  /// LoopSimulator::reset per lane).
  void reset();

  [[nodiscard]] std::size_t width() const { return configs_.size(); }
  [[nodiscard]] const LoopConfig& lane_config(std::size_t lane) const {
    return configs_.at(lane);
  }
  /// True when every lane runs the devirtualized integer-IIR bank.
  [[nodiscard]] bool uses_iir_fast_path() const { return iir_bank_active_; }

  /// Runs block.cycles cycles on every lane, streaming per-cycle lane
  /// slices into `reducer`.  block.width must equal width().  `parallel`
  /// distributes lane chunks over ThreadPool::shared(); per-lane results
  /// are schedule-independent.  Like run_batch, successive calls continue
  /// from the current loop state; call reset() to start a fresh run.
  void run(const EnsembleInputBlock& block, StreamingReducer& reducer,
           bool parallel = false);

  /// Same, on an explicit pool (nullptr = strictly sequential).  Used by
  /// the thread-scaling benchmarks and the scheduling-invariance gates;
  /// per-lane results are bitwise identical for every choice of pool.
  void run(const EnsembleInputBlock& block, StreamingReducer& reducer,
           ThreadPool* pool);

  /// Arms one FaultSchedule per lane (an empty schedule leaves its lane
  /// fault-free), replayed against each lane's absolute cycle counter just
  /// like LoopSimulator::attach_faults.  Lane w of a faulted ensemble run
  /// stays bit-for-bit identical to a scalar LoopSimulator running the
  /// same schedule.  The fault-free kernel is compiled separately, so runs
  /// without faults are untouched.
  void attach_faults(std::vector<fault::FaultSchedule> schedules);
  void clear_faults();
  [[nodiscard]] bool has_faults() const { return faults_active_; }

  /// True when `lane` has been isolated (non-physical faulted signal; the
  /// lane froze at its last good cycle).  Cleared by reset().
  [[nodiscard]] bool isolated(std::size_t lane) const;
  /// Number of isolated lanes.
  [[nodiscard]] std::size_t isolated_count() const;

 private:
  // Lanes are processed in chunks of kChunkLanes: the chunk's interleaved
  // CDN ring plus its delay registers fit in L1, and chunks are the unit
  // of thread parallelism.  32 lanes = 8 AVX2 vectors per per-cycle array
  // pass — wide enough to amortize the per-cycle reducer call, small
  // enough that the ring stays L1-resident.
  static constexpr std::size_t kChunkLanes = 32;

  // All lane arrays use simd::aligned_vector: every array starts on its
  // own cache line and is padded to whole lines, so vector loads never
  // split a line and two chunks running on different worker threads can
  // never false-share.
  struct Chunk {
    std::size_t first{0};
    std::size_t width{0};

    // z^-1 delay registers, one slot per lane.
    simd::aligned_vector<double> prev_lro;
    simd::aligned_vector<double> prev_t_dlv;
    simd::aligned_vector<double> prev_e_ro;
    simd::aligned_vector<double> prev_e_local;  // previous e_tdc - mu

    // Per-lane loop constants.
    simd::aligned_vector<double> setpoint;
    simd::aligned_vector<double> open_loop;  // resolved open-loop period
    simd::aligned_vector<std::int64_t> min_len;
    simd::aligned_vector<std::int64_t> max_len;
    simd::aligned_vector<double> min_len_d;
    simd::aligned_vector<double> max_len_d;

    // Interleaved CDN ring: slot s of lane w at ring[s * width + w].
    // slots is a power of two covering the largest per-lane history;
    // per-lane history/initial values keep the boundary conditions (and
    // the d-clamp) bit-identical to each lane's own QuantizedTimeCdn.
    simd::aligned_vector<double> ring;
    std::size_t ring_slots{0};
    std::size_t slot_mask{0};
    std::uint64_t pushes{0};
    simd::aligned_vector<double> cdn_delay;
    simd::aligned_vector<double> cdn_history_d;  // history - 2, as double
    simd::aligned_vector<std::uint64_t> cdn_history;
    simd::aligned_vector<double> cdn_initial;

    // Devirtualized IIR bank: state W[n-i] interleaved [tap * width + w].
    // The tap rows form a ring rotated once per cycle (iir_head is the
    // physical row holding the newest state), so advancing the shift
    // register is one pointer rotation per chunk instead of a per-lane
    // register move.
    simd::aligned_vector<std::int64_t> iir_state;
    simd::aligned_vector<std::int64_t> iir_prev_input;
    std::size_t iir_head{0};

    // Per-cycle output staging handed to the reducer.
    simd::aligned_vector<double> tau;
    simd::aligned_vector<double> delta;
    simd::aligned_vector<double> lro;
    simd::aligned_vector<double> t_gen;
    simd::aligned_vector<double> t_dlv;
    simd::aligned_vector<std::uint8_t> violation;

    // True when every lane's set-point is exactly integral (precomputed;
    // feeds the IIR bank's integral-input deduction).
    bool integral_setpoints{true};

    // Fault replay state (populated only by attach_faults).  An isolated
    // lane is skipped by the kernel, so its staging entries keep repeating
    // the last good cycle — the exact analogue of LoopSimulator's frozen
    // record.  has_fault_events marks a chunk with at least one non-empty
    // schedule: only those chunks leave the SIMD path, so arming faults on
    // a few lanes keeps every other chunk vectorized.
    std::vector<fault::FaultInjector> injectors;
    simd::aligned_vector<std::uint8_t> isolated;
    bool has_fault_events{false};
  };

  // kIntegralCommand marks controllers whose commanded length is already
  // an exact integer (the IIR bank emits double(int64)), letting the
  // quantize-l_RO step cast instead of rounding.  The TDC and CDN
  // quantization modes are template parameters so the per-lane-cycle
  // switches compile away; `Control` provides step(lane, delta) plus an
  // end_cycle() hook called once per simulated cycle.
  // kFaults compiles the fault-replay sites into the lane body; the
  // fault-free instantiation is the exact pre-fault kernel.
  template <bool kIntegralCommand, bool kFaults, sensor::Quantization TdcQ,
            cdn::DelayQuantization CdnQ, typename Control>
  void run_chunk(Chunk& chunk, const EnsembleInputBlock& block,
                 StreamingReducer& reducer, Control& control);

  // Runtime-to-compile-time dispatch of the quantization modes.
  template <bool kIntegralCommand, bool kFaults, sensor::Quantization TdcQ,
            typename Control>
  void dispatch_cdn(Chunk& chunk, const EnsembleInputBlock& block,
                    StreamingReducer& reducer, Control& control);
  template <bool kIntegralCommand, bool kFaults, typename Control>
  void dispatch_tdc(Chunk& chunk, const EnsembleInputBlock& block,
                    StreamingReducer& reducer, Control& control);
  template <bool kIntegralCommand, typename Control>
  void dispatch_chunk(Chunk& chunk, const EnsembleInputBlock& block,
                      StreamingReducer& reducer, Control& control);

  void run_one_chunk(Chunk& chunk, const EnsembleInputBlock& block,
                     StreamingReducer& reducer, simd::Backend backend);

  /// True when `chunk` may run the vectorized kernel on this call: the
  /// controller is the devirtualized IIR bank (or the mode is open-loop),
  /// no lane of the chunk has fault events armed, and the ensemble's
  /// static magnitudes fit the exact int64<->double conversion window.
  [[nodiscard]] bool chunk_simd_eligible(const Chunk& chunk) const;

  /// Dispatches `chunk` to a vector backend's kernel entry point.
  void run_chunk_simd(Chunk& chunk, const EnsembleInputBlock& block,
                      StreamingReducer& reducer, simd::Backend backend);

  std::vector<LoopConfig> configs_;
  std::vector<std::unique_ptr<control::ControlBlock>> controllers_;
  sensor::Tdc tdc_;  // quantization shared by all lanes (validated)
  GeneratorMode mode_;
  bool quantize_lro_;
  cdn::DelayQuantization cdn_quantization_;

  // IIR fast path (all controllers are IirControlHardware with one shared
  // config): the power-of-two gains, devirtualized once per ensemble.
  bool iir_bank_active_{false};
  std::vector<PowerOfTwoGain> iir_tap_gains_;
  PowerOfTwoGain iir_k_exp_gain_;
  PowerOfTwoGain iir_k_star_gain_;
  double iir_k_exp_{1.0};
  bool iir_aw_enabled_{false};
  std::int64_t iir_aw_min_{0};
  std::int64_t iir_aw_max_{0};

  bool faults_active_{false};
  // Static magnitudes (set-points, TDC range, length bounds) small enough
  // that every int64<->double conversion in the vector kernel is exact;
  // checked once at construction (see kSimdMaxMagnitude in the .cpp).
  bool simd_domain_ok_{false};
  std::vector<Chunk> chunks_;
};

}  // namespace roclk::core
