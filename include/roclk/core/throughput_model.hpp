// Pipeline throughput under error detection and replay.
//
// The paper's architecture assumes the pipeline has "at least, error
// detection capacities": a period that comes in shorter than the logic
// depth L does not corrupt state, it triggers a detected error and a
// replay (Razor-style), costing `replay_penalty_cycles` of useful work.
// That turns clocking into an optimisation problem — run close to L and
// pay replays, or back off and pay period — which the set-point governor
// navigates at runtime.  evaluate_throughput scores a finished run;
// run_with_governor closes the outer loop.
#pragma once

#include <cstddef>

#include "roclk/common/status.hpp"
#include "roclk/control/setpoint_governor.hpp"
#include "roclk/core/inputs.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/core/trace.hpp"

namespace roclk::core {

struct ThroughputConfig {
  /// Stages of logic the pipeline must fit into one period.
  double logic_depth{64.0};
  /// Useful cycles lost per detected timing error (flush + replay).
  double replay_penalty_cycles{8.0};
};

struct ThroughputReport {
  std::size_t cycles{0};
  std::size_t errors{0};          // cycles with tau < logic depth
  double useful_cycles{0.0};      // cycles - penalty * errors (floored at 0)
  double total_time_stages{0.0};  // sum of delivered periods
  /// Useful operations per stage of wall-clock time.
  double throughput_ops_per_stage{0.0};
  /// Normalised to the ideal machine (error-free at period == logic depth):
  /// 1.0 means zero overhead.
  double efficiency{0.0};
};

/// Scores a finished run against the error/replay model.  `skip` drops the
/// initial transient.
[[nodiscard]] ThroughputReport evaluate_throughput(
    const SimulationTrace& trace, const ThroughputConfig& config,
    std::size_t skip = 0);

/// Runs a closed-loop simulator for `n` cycles with the set-point governor
/// in the outer loop: each cycle's worst TDC reading feeds the governor,
/// whose decision becomes the loop's set-point for the next cycle.
SimulationTrace run_with_governor(LoopSimulator& simulator,
                                  control::SetpointGovernor& governor,
                                  const SimulationInputs& inputs,
                                  std::size_t n);

}  // namespace roclk::core
