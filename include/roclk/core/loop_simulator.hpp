// The paper's discrete-time clock-generation loop (Fig. 4), executable.
//
// One step = one delivered clock period n.  All signals in stages.
//
//   tau[n]   = quantise( T_dlv[n-1] - e_tdc[n-1] + mu[n-1] )   (TDC, z^-1)
//   delta[n] = c - tau[n]
//   l_RO[n]  = H(delta)[n]          clamped to the RO's length range
//   T_gen[n] = l_RO[n-1] + e_ro[n-1]                           (RO,  z^-1)
//   T_dlv[n] = T_gen[n - M[n]],  M[n] = round(t_clk / T_gen[n]) (CDN)
//
// Setting the generator mode selects the three systems the paper compares:
//   kControlledRo  — closed loop through a ControlBlock (IIR / TEAtime /...)
//   kFreeRunningRo — l_RO frozen at `open_loop_period`; the RO still senses
//                    e_ro (it is a point sensor of its own environment)
//   kFixedClock    — T_gen frozen at `open_loop_period`; a PLL-style source
//                    that does not react to on-die variations at all
//
// The pre-simulation state is the error-free equilibrium: the clock has
// been running at l_RO = c with zero perturbation, so every delay element
// holds c.  This mirrors the paper's plots, which begin in steady state.
#pragma once

#include <memory>
#include <optional>

#include "roclk/cdn/cdn.hpp"
#include "roclk/common/status.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/core/inputs.hpp"
#include "roclk/core/trace.hpp"
#include "roclk/fault/injector.hpp"
#include "roclk/osc/ring_oscillator.hpp"
#include "roclk/sensor/tdc.hpp"

namespace roclk::core {

enum class GeneratorMode { kControlledRo, kFreeRunningRo, kFixedClock };

[[nodiscard]] constexpr const char* to_string(GeneratorMode mode) {
  switch (mode) {
    case GeneratorMode::kControlledRo:
      return "controlled RO";
    case GeneratorMode::kFreeRunningRo:
      return "free RO";
    case GeneratorMode::kFixedClock:
      return "fixed clock";
  }
  return "?";
}

struct LoopConfig {
  double setpoint_c{64.0};
  GeneratorMode mode{GeneratorMode::kControlledRo};
  /// CDN insertion delay t_clk in stages (the paper sweeps this as
  /// multiples of c).
  double cdn_delay_stages{64.0};
  /// l_RO for kFreeRunningRo / T_gen for kFixedClock.  Defaults to the
  /// set-point when unset.
  std::optional<double> open_loop_period{};
  /// RO length saturation range.
  std::int64_t min_length{8};
  std::int64_t max_length{1024};
  /// Integer l_RO (hardware) or fractional (linear-model checks).
  bool quantize_lro{true};
  /// TDC reading quantisation.
  sensor::Quantization tdc_quantization{sensor::Quantization::kNearest};
  /// CDN sample-delay quantisation (see cdn::DelayQuantization).  kRound is
  /// the literal z^-M reading of the paper's Fig. 4; kLinearInterp resolves
  /// fractional t_clk/T ratios, which the Fig. 8/9 sweeps need.
  cdn::DelayQuantization cdn_quantization{cdn::DelayQuantization::kRound};
  /// Sampling period of the perturbation signals; defaults to setpoint_c
  /// (one sample per nominal period, as in the paper's model).
  std::optional<double> sample_period{};
  /// TDC chain length (readings saturate here); defaults to 1 << 20.  The
  /// simulators check max_reading >= c wherever a set-point is compared —
  /// a chain shorter than the set-point could never report "period OK" and
  /// the mis-sizing must fail loudly, not lock the loop at the rail.
  std::optional<std::int64_t> tdc_max_reading{};
};

class LoopSimulator {
 public:
  /// `controller` may be null for the open-loop modes.
  LoopSimulator(LoopConfig config,
                std::unique_ptr<control::ControlBlock> controller);

  static Status validate(const LoopConfig& config, bool has_controller);

  /// Restores the error-free equilibrium.
  void reset();

  /// Advances one period with explicit perturbation samples (stages).
  StepRecord step(double e_ro, double e_tdc, double mu);

  /// Runs n cycles, sampling `inputs` at t = n * sample_period.
  SimulationTrace run(const SimulationInputs& inputs, std::size_t n);

  /// Batched hot loop: runs block.size() cycles over pre-evaluated SoA
  /// samples (see SimulationInputs::sample), with no per-cycle signal
  /// indirections.  Bit-for-bit equivalent to run() on the same inputs
  /// when the block was sampled at this simulator's sample period.
  SimulationTrace run_batch(const InputBlock& block);

  [[nodiscard]] const LoopConfig& config() const { return config_; }
  [[nodiscard]] const control::ControlBlock* controller() const {
    return controller_.get();
  }

  /// Changes the set-point at runtime (the paper's section V set-point
  /// governor needs this knob).  Takes effect from the next step; the loop
  /// state is deliberately NOT reset — the controller slews to the new c.
  void set_setpoint(double setpoint_c);

  /// Attaches a fault schedule, replayed against the simulator's absolute
  /// cycle counter (cycle 0 = first step after the last reset()).  Replaces
  /// any previous schedule; the loop state is NOT reset, so a schedule can
  /// be armed mid-run.  The no-fault path is bit-for-bit unchanged.
  void attach_faults(const fault::FaultSchedule& schedule);
  void clear_faults();
  [[nodiscard]] bool has_faults() const { return injector_.has_value(); }

  /// True once the loop has been isolated: a faulted cycle produced a
  /// non-physical signal (non-finite tau or delivered period) and the
  /// simulator froze at the last good record instead of letting the poison
  /// propagate into metrics.  Cleared by reset().
  [[nodiscard]] bool isolated() const { return isolated_; }

  /// Absolute cycle index of the next step (diagnostics).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  // Shared per-cycle body of step()/run_batch().  `control_step` computes
  // the commanded RO length from delta; run_batch instantiates it with the
  // concrete (devirtualised) controller, step() with the virtual call.
  // Defined in loop_simulator.cpp — both users live in that TU.
  template <typename ControlFn>
  StepRecord step_impl(double e_ro, double e_tdc, double mu,
                       ControlFn&& control_step);

  LoopConfig config_;
  std::unique_ptr<control::ControlBlock> controller_;
  osc::RingOscillator ro_;
  cdn::QuantizedTimeCdn cdn_;
  sensor::Tdc tdc_;

  // One-cycle delay registers (the z^-1 boxes of Fig. 4).
  double prev_lro_{0.0};
  double prev_t_dlv_{0.0};
  double prev_e_ro_{0.0};
  double prev_e_tdc_{0.0};
  double prev_mu_{0.0};

  // Fault replay state.
  std::optional<fault::FaultInjector> injector_{};
  std::uint64_t cycle_{0};
  bool isolated_{false};
  StepRecord frozen_{};  // last good record, repeated while isolated
};

namespace detail {
/// Construction parameters shared between LoopSimulator and
/// EnsembleSimulator, factored so the two engines derive bit-identical
/// CDN history, TDC configuration and reset equilibrium from a LoopConfig.
[[nodiscard]] std::size_t cdn_history_for(const LoopConfig& config);
[[nodiscard]] sensor::TdcConfig tdc_config_for(const LoopConfig& config);
[[nodiscard]] double equilibrium_for(const LoopConfig& config);
}  // namespace detail

/// Convenience factories for the paper's four systems, preconfigured at
/// set-point c and CDN delay t_clk (both in stages).
[[nodiscard]] LoopSimulator make_iir_system(double setpoint_c,
                                            double cdn_delay_stages);
/// The hardened counterpart of make_iir_system: the same IIR datapath with
/// anti-windup wired to the l_RO clamps, wrapped in SensorGuard + Watchdog
/// (see control/hardened_control.hpp).  Guard and watchdog bounds scale
/// with the set-point.
[[nodiscard]] LoopSimulator make_hardened_iir_system(double setpoint_c,
                                                     double cdn_delay_stages);
[[nodiscard]] LoopSimulator make_teatime_system(double setpoint_c,
                                                double cdn_delay_stages);
/// `safety_margin_stages` is the design-time margin added to l_RO.
[[nodiscard]] LoopSimulator make_free_ro_system(double setpoint_c,
                                                double cdn_delay_stages,
                                                double safety_margin_stages =
                                                    0.0);
[[nodiscard]] LoopSimulator make_fixed_clock_system(
    double setpoint_c, double cdn_delay_stages,
    double safety_margin_stages = 0.0);

}  // namespace roclk::core
