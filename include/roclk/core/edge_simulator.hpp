// Continuous-time, event-driven clock-edge simulator.
//
// The discrete model of Fig. 4 imposes the CDN delay as a re-quantised
// integer number of samples, M[n] = t_clk / T_clk[n].  This simulator makes
// no such approximation: the ring oscillator emits edges in continuous
// time, each edge is delivered exactly t_clk later, the TDC measures the
// real delivered period under the variation *at the delivery instant*, and
// the controller's new length reaches the RO only for generation edges
// after the control update.  The gate-delay model is multiplicative
// (T = l_RO * (1 + v)), not linearised.
//
// Ablation A5 compares this simulator against the discrete one to show the
// paper's sample-domain model is faithful for the regimes it evaluates.
#pragma once

#include <functional>
#include <memory>

#include "roclk/common/status.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/core/trace.hpp"

namespace roclk::core {

struct EdgeSimConfig {
  double setpoint_c{64.0};
  GeneratorMode mode{GeneratorMode::kControlledRo};
  double cdn_delay_stages{64.0};
  std::optional<double> open_loop_period{};
  std::int64_t min_length{8};
  std::int64_t max_length{1024};
  /// TDC stage mismatch as a *fraction* (the additive mu ~ -c * r).
  double tdc_relative_mismatch{0.0};
};

/// Fractional variation signals in continuous time (dimensionless).
struct EdgeSimInputs {
  using Signal = std::function<double(double t_stages)>;
  Signal v_ro{[](double) { return 0.0; }};
  Signal v_tdc{[](double) { return 0.0; }};

  /// Homogeneous fractional variation common to RO and TDC.
  [[nodiscard]] static EdgeSimInputs homogeneous(
      std::shared_ptr<const signal::Waveform> waveform);
};

class EdgeSimulator {
 public:
  EdgeSimulator(EdgeSimConfig config,
                std::unique_ptr<control::ControlBlock> controller);

  /// Simulates until `n_delivered` delivered periods have been measured.
  /// Trace fields: tau (quantised reading), delta, lro (length in force at
  /// each delivered period's generation), t_gen / t_dlv (the generated and
  /// delivered period durations in stages).
  SimulationTrace run(const EdgeSimInputs& inputs, std::size_t n_delivered);

  [[nodiscard]] const EdgeSimConfig& config() const { return config_; }

 private:
  EdgeSimConfig config_;
  std::unique_ptr<control::ControlBlock> controller_;
};

}  // namespace roclk::core
