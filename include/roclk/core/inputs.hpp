// Perturbation inputs for a discrete-time loop simulation.
//
// The discrete simulator consumes, each cycle n, three stage-valued
// signals sampled at nominal time t_n = n * c (the paper's Simulink model
// runs one sample per nominal period):
//   e_ro[n]  — homogeneous variation at the ring oscillator (stages),
//   e_tdc[n] — homogeneous variation at the TDCs (stages),
//   mu[n]    — RO<->TDC heterogeneous mismatch (stages).
// For the paper's HoDV experiments e_ro == e_tdc == e and mu is constant.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "roclk/signal/waveform.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::core {

/// Structure-of-arrays block of pre-evaluated perturbation samples: the
/// batched counterpart of SimulationInputs.  Sampling once up front moves
/// the waveform / variation-source evaluation (sin, spatial-map lookups,
/// three std::function indirections per cycle) out of the simulation hot
/// loop; LoopSimulator::run_batch then streams straight over the arrays.
struct InputBlock {
  double dt{0.0};  // sampling period the block was evaluated at (stages)
  std::vector<double> e_ro;
  std::vector<double> e_tdc;
  std::vector<double> mu;

  [[nodiscard]] std::size_t size() const { return e_ro.size(); }
  [[nodiscard]] bool empty() const { return e_ro.empty(); }
};

/// Lane-interleaved perturbation samples for an ensemble of W independent
/// loop instances: sample k of lane w lives at index k * width + w, so the
/// ensemble kernel's inner loop over lanes reads one contiguous row per
/// cycle.  Filled in one pass by the batched samplers below; per lane the
/// values are identical to InputBlock's (same signal evaluated at the same
/// t), which keeps EnsembleSimulator bit-for-bit equal to per-lane
/// run_batch.
struct EnsembleInputBlock {
  double dt{0.0};          // sampling period all lanes were evaluated at
  std::size_t width{0};    // number of lanes W
  std::size_t cycles{0};   // samples per lane
  std::vector<double> e_ro;
  std::vector<double> e_tdc;
  std::vector<double> mu;

  [[nodiscard]] bool empty() const { return width == 0 || cycles == 0; }

  /// De-interleaves one lane back into a scalar InputBlock (tests, debug,
  /// feeding a single lane through LoopSimulator::run_batch).
  [[nodiscard]] InputBlock lane(std::size_t w) const;

  /// Interleaves per-lane blocks (all the same length and dt).
  [[nodiscard]] static EnsembleInputBlock from_blocks(
      std::span<const InputBlock> blocks);
};

struct SimulationInputs {
  using Signal = std::function<double(double t_stages)>;

  Signal e_ro{[](double) { return 0.0; }};
  Signal e_tdc{[](double) { return 0.0; }};
  Signal mu{[](double) { return 0.0; }};

  /// Quiet environment.
  [[nodiscard]] static SimulationInputs none();

  /// The paper's HoDV setup: the same waveform (amplitude in stages)
  /// drives RO and TDCs; optional static mismatch mu (stages).
  [[nodiscard]] static SimulationInputs homogeneous(
      std::shared_ptr<const signal::Waveform> waveform,
      double static_mu_stages = 0.0);

  /// Convenience: harmonic HoDV with amplitude and period in stages.
  [[nodiscard]] static SimulationInputs harmonic(double amplitude_stages,
                                                 double period_stages,
                                                 double static_mu_stages = 0.0,
                                                 double phase = 0.0);

  /// Full-chip environment: samples a VariationSource at the RO location
  /// and at the *worst* TDC location each cycle, converting fractional
  /// variation to stages via the set-point c (e = c * v).  `tdc_grid` TDCs
  /// are consulted; the minimum reading wins, matching TdcArray semantics.
  [[nodiscard]] static SimulationInputs from_variation_source(
      std::shared_ptr<const variation::VariationSource> source,
      double setpoint_c, variation::DiePoint ro_location = {0.5, 0.5},
      std::size_t tdc_grid = 3);

  /// Evaluates the three signals at t = k * dt for k in [0, n), exactly as
  /// LoopSimulator::run samples them, into an SoA block for run_batch.
  [[nodiscard]] InputBlock sample(std::size_t n, double dt) const;
};

/// Samples one SimulationInputs per lane into an interleaved ensemble
/// block in a single pass (cycle-major).  `parallel` distributes lane
/// groups over ThreadPool::shared(); per-lane results are independent of
/// the schedule.
[[nodiscard]] EnsembleInputBlock sample_ensemble(
    std::span<const SimulationInputs> lanes, std::size_t n, double dt,
    bool parallel = false);

/// The Monte-Carlo fast path: every lane sees the same homogeneous
/// waveform (e_ro == e_tdc, the paper's HoDV setup) plus its own static
/// mismatch mu.  The waveform is evaluated once per cycle and broadcast,
/// so W lanes cost one signal evaluation per sample instead of W —
/// bit-for-bit identical to sampling SimulationInputs::homogeneous(wave,
/// mu[w]) per lane.
[[nodiscard]] EnsembleInputBlock sample_homogeneous_ensemble(
    const signal::Waveform& waveform, std::span<const double> static_mu_stages,
    std::size_t n, double dt);

/// Tile-refill variant of sample_homogeneous_ensemble: (re)fills `block`
/// with cycles [start_cycle, start_cycle + n) of the same signals, reusing
/// its storage when the shape matches.  Long ensembles stream through a
/// cache-resident tile (sample a tile, run it, resample) instead of
/// materialising cycles * width * 3 doubles at once; sample k of the tile
/// equals sample start_cycle + k of the whole-run block exactly.
void sample_homogeneous_into(EnsembleInputBlock& block,
                             const signal::Waveform& waveform,
                             std::span<const double> static_mu_stages,
                             std::size_t n, double dt,
                             std::size_t start_cycle);

}  // namespace roclk::core
