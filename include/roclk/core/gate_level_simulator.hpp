// Gate-level closed-loop simulator.
//
// Where LoopSimulator runs the paper's *linearised* block diagram (additive
// perturbations in stages), this simulator assembles the loop from the
// detailed hardware models:
//   * TappedRingOscillator — physical stage chain, odd-length tap mux,
//     per-stage delays from the variation source at each stage's location;
//   * DetailedTdc array — thermometer-code readout chains at their own die
//     locations, optional metastability, worst-of aggregation;
//   * any ControlBlock;
//   * CDN as the paper's M[n] delay on generated periods plus optional
//     generator jitter.
// It exists to answer "does the high-level model's story survive contact
// with the microarchitecture?" — the gate-level integration tests and the
// ablation bench drive behavioural and gate-level loops through the same
// scenarios.
#pragma once

#include <memory>
#include <vector>

#include "roclk/cdn/cdn.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/core/trace.hpp"
#include "roclk/osc/jitter.hpp"
#include "roclk/osc/stage_chain.hpp"
#include "roclk/sensor/thermometer.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::core {

struct GateLevelConfig {
  double setpoint_c{64.0};
  double cdn_delay_stages{64.0};
  cdn::DelayQuantization cdn_quantization{cdn::DelayQuantization::kRound};

  /// RO microarchitecture.
  osc::StageChainConfig ro_chain{
      /*stages=*/257, /*start=*/{0.48, 0.50}, /*end=*/{0.52, 0.50},
      /*nominal_stage_delay=*/1.0};
  std::int64_t ro_min_length{9};
  std::int64_t ro_max_length{255};

  /// TDC sites; defaults to one readout chain near die centre.  The worst
  /// (minimum) reading feeds the controller, as in the paper's Fig. 3.
  std::vector<sensor::DetailedTdcConfig> tdcs{sensor::DetailedTdcConfig{}};

  /// Optional generator period jitter.
  osc::JitterConfig jitter{};
};

class GateLevelSimulator {
 public:
  GateLevelSimulator(GateLevelConfig config,
                     std::unique_ptr<control::ControlBlock> controller);

  static Status validate(const GateLevelConfig& config);

  void reset();

  /// Advances one delivered period under the variation source; `t` is
  /// maintained internally (one nominal period per cycle).
  StepRecord step(const variation::VariationSource& source);

  SimulationTrace run(const variation::VariationSource& source,
                      std::size_t cycles);

  [[nodiscard]] const GateLevelConfig& config() const { return config_; }
  [[nodiscard]] const osc::TappedRingOscillator& oscillator() const {
    return ro_;
  }

 private:
  GateLevelConfig config_;
  std::unique_ptr<control::ControlBlock> controller_;
  osc::TappedRingOscillator ro_;
  std::vector<sensor::DetailedTdc> tdcs_;
  cdn::QuantizedTimeCdn cdn_;
  osc::JitterModel jitter_;

  double time_{0.0};
  double prev_t_dlv_{0.0};
  std::int64_t prev_lro_{0};
};

}  // namespace roclk::core
