// TEAtime-style increment/decrement control (paper section III-B, Fig. 6;
// Uht, IEEE Computer 2004 / IEEE ToC 2005 — paper refs. [8], [9]).
//
// TEAtime (Timing-Error-Avoidance) nudges the clock by a fixed step each
// cycle based only on the *sign* of the tracking error:
//   l_RO[n] = l_RO[n-1] + step * sign(delta[n])
// — a nonlinear bang-bang integrator.  We read Fig. 6's z^-1 as the
// counter register itself (the accumulator that provides the mandatory
// pole at z = 1), so the sign of the *current* error drives the update;
// this reading reproduces the paper's Fig. 9 result that TEAtime overtakes
// the IIR RO at the fastest perturbations.  Set `delayed_sign` for the
// alternative reading with one extra cycle of compute latency
// (l_RO[n] = l_RO[n-1] + step * sign(delta[n-1])).
//
// Having no parameters to tune is TEAtime's selling point; the price is a
// +/-step limit cycle in steady state and a slew-rate limit of `step`
// stages/cycle when chasing fast perturbations.
#pragma once

#include "roclk/control/control_block.hpp"

namespace roclk::control {

enum class SignZeroPolicy {
  kHold,    // sign(0) = 0: stay put when the error is exactly zero
  kDither,  // sign(0) = +1: always move, like the original TEAtime counter
};

struct TeaTimeConfig {
  double step_stages{1.0};
  SignZeroPolicy zero_policy{SignZeroPolicy::kHold};
  /// One extra cycle of control latency (see header comment).
  bool delayed_sign{false};
};

class TeaTimeControl final : public ControlBlock {
 public:
  explicit TeaTimeControl(TeaTimeConfig config = {});

  double step(double delta) override;
  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override { return "TEAtime RO"; }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;
  [[nodiscard]] const TeaTimeConfig& config() const { return config_; }

 private:
  TeaTimeConfig config_;
  double accumulator_{0.0};
  double prev_delta_{0.0};
};

}  // namespace roclk::control
