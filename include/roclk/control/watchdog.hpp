// Loss-of-lock watchdog with graceful degradation.
//
// The paper's type-1 loop (eq. 8) guarantees zero steady-state error —
// when every component is healthy.  A persistent sensor fault or a step
// the controller cannot track leaves |delta| = |c - tau| pinned beyond any
// plausible transient.  The watchdog detects that condition and degrades
// gracefully instead of letting the IIR walk l_RO into a wall:
//
//            sustained |delta| > delta_bound for trip_cycles
//   kLocked ------------------------------------------------> kDegraded
//
//   kDegraded: the loop snaps to the safe maximum l_RO (slow but
//              guaranteed to meet timing) and holds for hold_cycles.
//
//   kDegraded --(hold elapsed)--> kReacquiring: closed-loop control
//              resumes from the safe point; the type-1 integrator slews
//              l_RO back toward the set-point.
//
//   kReacquiring --(|delta| <= relock_bound for relock_cycles)--> kLocked
//   kReacquiring --(stalled for stall_cycles, or reacquire_timeout
//              elapsed)--> kDegraded.
//              Re-acquisition legitimately starts far out of bound (the
//              loop descends from the safe park toward the set-point), so
//              a large |delta| alone must not re-trip.  What distinguishes
//              a still-active fault is *lack of progress*: |delta| not
//              shrinking cycle over cycle.  A stalled descent — or one
//              that exhausts the timeout without relocking — bounces back
//              to the safe hold, so a stuck sensor parks the loop at the
//              safe period instead of fighting it.
//
// The watchdog is a pure observer state machine: it consumes one delta per
// cycle and reports the state; HardenedControl maps states onto commands.
#pragma once

#include <cstddef>
#include <cstdint>

#include "roclk/common/status.hpp"

namespace roclk::control {

enum class WatchdogState : std::uint8_t { kLocked, kDegraded, kReacquiring };

[[nodiscard]] constexpr const char* to_string(WatchdogState state) {
  switch (state) {
    case WatchdogState::kLocked:
      return "locked";
    case WatchdogState::kDegraded:
      return "degraded";
    case WatchdogState::kReacquiring:
      return "reacquiring";
  }
  return "?";
}

struct WatchdogConfig {
  /// |delta| beyond this counts toward a trip (stages).
  double delta_bound{8.0};
  /// Consecutive out-of-bound cycles before degrading.
  std::size_t trip_cycles{4};
  /// Cycles to hold at the safe command before re-acquiring.
  std::size_t hold_cycles{16};
  /// |delta| within this counts toward relock (stages).
  double relock_bound{2.0};
  /// Consecutive in-bound cycles to declare lock again.
  std::size_t relock_cycles{8};
  /// Consecutive out-of-bound re-acquisition cycles with no |delta|
  /// improvement before bouncing back to kDegraded.
  std::size_t stall_cycles{6};
  /// Hard cap on cycles spent in kReacquiring before bouncing back
  /// (catches oscillating faults that neither stall nor relock).
  std::size_t reacquire_timeout{256};
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config = {});

  [[nodiscard]] static Status validate(const WatchdogConfig& config);

  /// Back to kLocked with cleared counters (trip statistics survive).
  void reset();

  /// Feeds one cycle's adaptation error; returns the state that governs
  /// THIS cycle's command (transitions take effect immediately).
  WatchdogState observe(double delta);

  [[nodiscard]] WatchdogState state() const { return state_; }
  /// Number of kLocked/kReacquiring -> kDegraded transitions ever taken.
  [[nodiscard]] std::size_t trips() const { return trips_; }
  /// Cycles spent in the current state.
  [[nodiscard]] std::size_t cycles_in_state() const { return in_state_; }
  /// Cycles from the most recent degradation to the most recent relock
  /// (0 until the first complete degrade->relock round trip).
  [[nodiscard]] std::size_t last_relock_latency() const {
    return last_relock_latency_;
  }
  [[nodiscard]] const WatchdogConfig& config() const { return config_; }

 private:
  void enter(WatchdogState next);

  WatchdogConfig config_;
  WatchdogState state_{WatchdogState::kLocked};
  std::size_t out_of_bound_{0};  // consecutive |delta| > delta_bound
  std::size_t in_bound_{0};      // consecutive |delta| <= relock_bound
  std::size_t stalled_{0};       // consecutive non-improving reacquire cycles
  double last_magnitude_{0.0};   // previous |delta| seen while reacquiring
  std::size_t in_state_{0};
  std::size_t trips_{0};
  std::size_t since_degrade_{0};  // cycles since the last trip
  std::size_t last_relock_latency_{0};
};

}  // namespace roclk::control
