// One-shot post-silicon set-point calibration.
//
// Paper section III: "Once the chip is produced and it is running, we only
// need to choose the correct set-point c that allows the system to run
// without any error and/or maximizes the computation throughput."  The
// SetpointGovernor tracks that point continuously; this header is the
// bring-up alternative — a bounded binary search that probes candidate
// set-points against the error detector and returns the smallest safe c
// (plus a guard band), after which the governor can be disabled.
#pragma once

#include <cstddef>
#include <functional>

#include "roclk/common/status.hpp"

namespace roclk::control {

struct CalibrationConfig {
  double logic_depth{64.0};   // L: error threshold on tau
  double min_setpoint{32.0};
  double max_setpoint{128.0};
  std::size_t probe_cycles{512};   // cycles per candidate set-point
  std::size_t settle_cycles{64};   // cycles ignored after each change
  double guard_band{1.0};          // stages added to the found minimum
  double resolution{1.0};          // stop when the bracket is this tight
};

struct CalibrationResult {
  double setpoint{0.0};        // recommended c (minimum safe + guard band)
  double minimum_safe{0.0};    // smallest probed c with zero errors
  std::size_t probes{0};       // candidate set-points evaluated
  std::size_t total_cycles{0};  // simulated cycles spent calibrating
};

/// The probe interface: run the *real system* for `cycles` cycles at
/// set-point `c` and report how many detected timing errors (tau < L)
/// occurred after the settle window.  Implementations wrap LoopSimulator,
/// GateLevelSimulator or silicon.
using SetpointProbe =
    std::function<std::size_t(double setpoint, std::size_t settle_cycles,
                              std::size_t probe_cycles)>;

/// Binary-searches the smallest error-free set-point.  Assumes error count
/// is monotone non-increasing in c (more period, fewer errors), which
/// holds for every system in this library.  Fails if even max_setpoint
/// shows errors.
[[nodiscard]] Result<CalibrationResult> calibrate_setpoint(
    const SetpointProbe& probe, const CalibrationConfig& config = {});

}  // namespace roclk::control
