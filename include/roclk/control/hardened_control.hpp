// Hardened control decorator: SensorGuard + Watchdog around any ControlBlock.
//
// The paper's loop computes delta = c - tau and feeds it straight into the
// controller, so a faulted tau owns l_RO.  HardenedControl wraps an inner
// controller (normally the IIR hardware block) with the two defence layers
// and maps watchdog states onto commands:
//
//   kLocked       tau is reconstructed from delta (tau = c - delta), passed
//                 through the SensorGuard, and the guarded delta drives the
//                 inner controller.  A guard that holds too long resyncs to
//                 raw, which is what lets a persistent fault reach (and
//                 trip) the watchdog instead of being masked forever.
//
//   kDegraded     graceful degradation: on entry the inner controller is
//                 reset to safe_lro (the slow-but-safe maximum length) and
//                 the command is pinned there for the hold window.  The
//                 inner state cannot wind up while pinned.
//
//   kReacquiring  closed-loop control resumes from the safe point with the
//                 guard BYPASSED: during re-acquisition tau legitimately
//                 sweeps across the whole range the guard would reject, and
//                 only the raw stream can prove the fault has cleared.  A
//                 still-active fault re-trips the watchdog back to
//                 kDegraded, parking the loop at the safe period.  The
//                 command is floored at the last healthy locked command
//                 (with the inner state back-calculated onto the floor):
//                 the descent from the safe park is a large-signal
//                 transient whose integrator momentum would otherwise
//                 undershoot the operating point and commit timing
//                 violations during recovery.  A re-acquisition that
//                 fails while pinned at the floor releases it: that
//                 stall means the remembered operating point is stale
//                 (a long fault let the loop lock onto a corrupted
//                 reading), and the next descent runs unconstrained.
//
//   relock        on the kReacquiring -> kLocked edge the guard is resync'd
//                 to the current tau so hold-last-good restarts from the
//                 true operating point.
//
// The decorator satisfies the ControlBlock contract, so it drops into
// LoopSimulator / EnsembleSimulator unchanged and the type-1 property of
// the inner loop (zero steady-state error) is preserved whenever the
// watchdog reports kLocked.
#pragma once

#include <memory>
#include <string>

#include "roclk/common/status.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/sensor_guard.hpp"
#include "roclk/control/watchdog.hpp"

namespace roclk::control {

struct HardenedConfig {
  /// Loop set-point c in TDC stages (needed to reconstruct tau = c - delta
  /// for the guard's plausibility checks).
  double setpoint_c{64.0};
  /// Command pinned while degraded: the safe maximum l_RO (slowest clock,
  /// guaranteed to meet timing).
  double safe_lro{1024.0};
  SensorGuardConfig guard{};
  WatchdogConfig watchdog{};
};

[[nodiscard]] Status validate_hardened_config(const HardenedConfig& config);

class HardenedControl final : public ControlBlock {
 public:
  HardenedControl(std::unique_ptr<ControlBlock> inner,
                  HardenedConfig config);
  HardenedControl(const HardenedControl& other);
  HardenedControl& operator=(const HardenedControl&) = delete;

  double step(double delta) override;
  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override {
    return "hardened(" + inner_->name() + ")";
  }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;

  [[nodiscard]] const HardenedConfig& config() const { return config_; }
  [[nodiscard]] const ControlBlock& inner() const { return *inner_; }
  [[nodiscard]] const SensorGuard& guard() const { return guard_; }
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }

 private:
  HardenedConfig config_;
  std::unique_ptr<ControlBlock> inner_;
  SensorGuard guard_;
  Watchdog watchdog_;
  /// Last command issued while locked; the re-acquisition descent never
  /// commands below it (0 = inactive until the first locked step).
  /// Released when a re-acquisition fails while pinned at it — a long
  /// fault can let the loop lock onto a corrupted reading and poison
  /// this memory, and only the stalled-at-floor descent reveals that.
  double locked_command_{0.0};
  /// Did the last re-acquisition step clamp at locked_command_?
  bool floor_clamped_{false};
};

/// Convenience factory for the acceptance scenario: an IIR hardware block
/// with anti-windup wired to the loop's [min_length, max_length] l_RO
/// clamps, wrapped in a HardenedControl whose safe command is max_length.
[[nodiscard]] std::unique_ptr<HardenedControl> make_hardened_iir(
    IirConfig iir, HardenedConfig config, double min_length,
    double max_length);

}  // namespace roclk::control
