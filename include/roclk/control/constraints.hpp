// Control design constraints and closed-loop analysis (paper section III-A).
//
// For the loop of Fig. 4 with controller H(z) = N(z)/D(z) and CDN delay M,
// the closed-loop responses are
//   H_lRO(z)   = N / (D + N z^{-M-2})     (eq. 4)
//   H_delta(z) = D / (D + N z^{-M-2})     (eq. 5)
// and demanding (via the final value theorem) that a step perturbation is
// eventually cancelled yields
//   N(1) != 0  and  D(1) = 0 .            (eq. 8)
// This header checks that constraint for arbitrary controllers and maps
// the closed-loop stability boundary as a function of M.
#pragma once

#include <cstddef>
#include <optional>

#include "roclk/common/status.hpp"
#include "roclk/signal/jury.hpp"
#include "roclk/signal/polynomial.hpp"
#include "roclk/signal/transfer_function.hpp"

namespace roclk::control {

struct ConstraintReport {
  bool numerator_ok{false};    // N(1) != 0
  bool denominator_ok{false};  // D(1) = 0
  double n_at_one{0.0};
  double d_at_one{0.0};
  [[nodiscard]] bool satisfied() const {
    return numerator_ok && denominator_ok;
  }
};

/// Checks eq. 8 on a controller given as N(z), D(z).
[[nodiscard]] ConstraintReport check_paper_constraints(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    double tol = 1e-9);

/// Closed-loop characteristic polynomial D(z) + N(z) z^{-M-2}, returned in
/// positive powers of z (highest first) for Jury analysis.
[[nodiscard]] std::vector<double> closed_loop_characteristic(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t cdn_delay_m);

/// Stability of the closed loop for a given M.  The loop is type-1 by
/// construction (D(1) = 0 puts a closed... an open-loop pole at z = 1); we
/// report the stability of the closed-loop characteristic directly.
struct ClosedLoopStability {
  bool stable{false};
  double spectral_radius{0.0};  // largest closed-loop pole magnitude
};
[[nodiscard]] Result<ClosedLoopStability> closed_loop_stability(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t cdn_delay_m);

/// Largest M (searching 0..max_m) for which the closed loop is stable;
/// nullopt if unstable already at M = 0.
[[nodiscard]] std::optional<std::size_t> max_stable_cdn_delay(
    const signal::Polynomial& numerator, const signal::Polynomial& denominator,
    std::size_t max_m = 256);

}  // namespace roclk::control
