// The paper's IIR control block (section III-B, Fig. 5, eqs. 9-10).
//
// Transfer function:
//   H_IIR(z) = z^-1 * ( 1/k* - sum_i k_i z^-i )^(-1)          (eq. 9)
// with the type-1 constraint
//   k* = ( sum_i k_i )^(-1)                                    (eq. 10)
// equivalent to the recursion
//   y[n] = k* * ( x[n-1] + sum_i k_i y[n-i] ) .
//
// The hardware realisation "operates over the integers", restricts every
// gain to a power of two (shift), and scales the internal signal by k_exp
// so a minimum-size error (|delta| = 1) still propagates through the
// low-gain branches: the internal state W = k_exp * y, updated as
//   W[n] = (k_exp * x[n-1] + sum_i k_i W[n-i]) * k*        [all shifts]
//   y[n] = W[n] / k_exp                                     [shift]
// with arithmetic right shifts (round toward -infinity), exactly what a
// two's-complement barrel shifter does.
//
// IirControlReference implements the recursion in double precision (the
// design intent); IirControlHardware implements the integer datapath.  The
// pair quantifies the rounding cost of the hardware (ablation A1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "roclk/common/fixed_point.hpp"
#include "roclk/common/math.hpp"
#include "roclk/common/status.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/signal/transfer_function.hpp"

namespace roclk::control {

/// Output saturation range the anti-windup logic back-calculates against
/// (normally the loop's [min_length, max_length] l_RO clamps).
struct IirOutputClamp {
  double min_output{0.0};
  double max_output{0.0};
  [[nodiscard]] bool operator==(const IirOutputClamp&) const = default;
};

struct IirConfig {
  /// Feedback tap gains k_1..k_N; every |k_i| must be a power of two.
  std::vector<double> taps{2.0, 1.0, 0.5, 0.25, 0.125, 0.125};
  /// Scaling gain; must be a power of two.
  double k_exp{8.0};
  /// k*; must be a power of two and equal 1 / sum(taps) (eq. 10).
  double k_star{0.25};
  /// Conditional anti-windup (disengaged by default, leaving the paper's
  /// published datapath untouched): when set, a step whose output y lands
  /// beyond the clamp back-calculates the newest internal state to the
  /// clamp value, so the integrator cannot wind past the range the loop's
  /// l_RO saturation can actually deliver.  The step's *return* value is
  /// unchanged (the loop applies its own clamp); only the stored state is
  /// bounded, which is what keeps post-saturation recovery overshoot-free.
  std::optional<IirOutputClamp> anti_windup{};
};

/// The published parameterisation (section IV): k_exp = 8, k* = 1/4,
/// k = {2, 1, 1/2, 1/4, 1/8, 1/8}.
[[nodiscard]] IirConfig paper_iir_config();

/// Validates an IirConfig against the paper's constraints:
/// power-of-two gains, eq. 10, non-empty taps.
[[nodiscard]] Status validate_iir_config(const IirConfig& config);

/// N(z) and D(z) of eq. 9 for this configuration:
///   N(z) = z^-1,  D(z) = 1/k* - sum_i k_i z^-i .
struct IirPolynomials {
  signal::Polynomial numerator;
  signal::Polynomial denominator;
};
[[nodiscard]] IirPolynomials iir_polynomials(const IirConfig& config);

/// H_IIR(z) as a TransferFunction.
[[nodiscard]] signal::TransferFunction iir_transfer_function(
    const IirConfig& config);

/// Floating-point reference implementation of the recursion.
class IirControlReference final : public ControlBlock {
 public:
  explicit IirControlReference(IirConfig config = paper_iir_config());

  double step(double delta) override;
  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override {
    return "IIR RO (reference)";
  }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;
  [[nodiscard]] const IirConfig& config() const { return config_; }

 private:
  IirConfig config_;
  double prev_input_{0.0};
  std::vector<double> outputs_;  // y[n-1], y[n-2], ... (most recent first)
};

/// Integer shift-based hardware model.
class IirControlHardware final : public ControlBlock {
 public:
  explicit IirControlHardware(IirConfig config = paper_iir_config());

  // Per-simulated-cycle hot path; inline so the batched simulation loop
  // can fuse the datapath (the class is final, enabling devirtualisation
  // when called through the concrete type).
  double step(double delta) override {
    // Datapath of Fig. 5 on integers scaled by k_exp:
    //   A    = k_exp * x[n-1] + sum_i k_i W[n-i]   (adder)
    //   W[n] = k* * A                              (shift, then z^-1)
    //   y[n] = W[n] / k_exp                        (shift)
    std::int64_t feedback = 0;
    for (std::size_t i = 0; i < tap_gains_.size(); ++i) {
      feedback += tap_gains_[i].apply(state_[i]);
    }
    const std::int64_t a = k_exp_gain_.apply(prev_input_) + feedback;
    const std::int64_t w = k_star_gain_.apply(a);
    for (std::size_t i = state_.size(); i-- > 1;) {
      state_[i] = state_[i - 1];
    }
    state_[0] = w;
    prev_input_ = static_cast<std::int64_t>(llround_ties_away(delta));
    // Output divider: arithmetic right shift by log2(k_exp).
    const std::int64_t y = shift_signed(w, -k_exp_gain_.exponent());
    if (aw_enabled_) {
      // Conditional anti-windup: while the command is beyond the l_RO
      // clamps the loop will saturate anyway, so back-calculate the newly
      // stored state to the clamp instead of letting W integrate past it.
      const std::int64_t bounded = std::clamp(y, aw_min_, aw_max_);
      if (bounded != y) state_[0] = k_exp_gain_.apply(bounded);
    }
    return static_cast<double>(y);
  }

  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override { return "IIR RO"; }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;
  [[nodiscard]] const IirConfig& config() const { return config_; }

  /// Internal scaled state (diagnostics / tests).
  [[nodiscard]] const std::vector<std::int64_t>& state() const {
    return state_;
  }

 private:
  IirConfig config_;
  PowerOfTwoGain k_exp_gain_;
  PowerOfTwoGain k_star_gain_;
  std::vector<PowerOfTwoGain> tap_gains_;
  bool aw_enabled_{false};   // anti-windup clamp, pre-resolved to int64
  std::int64_t aw_min_{0};
  std::int64_t aw_max_{0};
  std::int64_t prev_input_{0};
  std::vector<std::int64_t> state_;  // W[n-1], W[n-2], ... scaled by k_exp
};

}  // namespace roclk::control
