// Plausibility filter for the worst-reading TDC mux.
//
// The control loop trusts one number per cycle: the minimum tau over every
// TDC.  A single glitching sensor therefore owns the loop — a metastable
// outlier or a dropped capture (tau = 0) feeds straight into the IIR and
// walks l_RO away from the operating point.  SensorGuard sits between the
// mux and the controller and sanitizes the reading with three
// hardware-realistic stages:
//
//  1. optional median-of-K debounce — a K-deep shift register whose
//     median masks isolated outliers entirely (K odd, typically 3 or 5);
//  2. range plausibility — readings outside [tau_min, tau_max] are
//     physically impossible at this operating point and are rejected;
//  3. rate-of-change plausibility — the die's thermal/voltage time
//     constants bound how fast tau can legitimately move; a jump beyond
//     max_step per cycle is rejected.
//
// A rejected reading is replaced by the last accepted one (hold-last-good)
// so the controller sees a frozen, not a poisoned, error.  Holding forever
// would mask genuine operating-point shifts, so after hold_limit
// consecutive rejections the guard resynchronises: it accepts the raw
// reading and hands the decision to the Watchdog above it (a real shift
// relocks; a persistent sensor fault trips the watchdog).
#pragma once

#include <cstddef>
#include <vector>

#include "roclk/common/status.hpp"

namespace roclk::control {

struct SensorGuardConfig {
  /// Plausible reading range in stages (range stage).  Both inclusive.
  double tau_min{0.0};
  double tau_max{1e12};
  /// Max plausible |tau - last_good| per cycle (rate stage); 0 disables.
  double max_step{0.0};
  /// Consecutive rejections before the guard resynchronises to raw.
  std::size_t hold_limit{4};
  /// Median-of-K debounce depth; 0 or 1 disables; otherwise odd.
  std::size_t median_window{0};
};

/// Counters for reporting how hard the guard is working (a healthy locked
/// loop should show all zeros in steady state).
struct SensorGuardStats {
  std::size_t range_rejects{0};
  std::size_t rate_rejects{0};
  std::size_t resyncs{0};  // holds exhausted, raw accepted
};

class SensorGuard {
 public:
  explicit SensorGuard(SensorGuardConfig config = {});

  [[nodiscard]] static Status validate(const SensorGuardConfig& config);

  /// Establishes the pre-run equilibrium: last-good = initial_tau, median
  /// window pre-filled with it, counters preserved (use a fresh guard for
  /// fresh counters).
  void reset(double initial_tau);

  /// Sanitizes one mux reading; returns the tau the controller should see.
  [[nodiscard]] double filter(double raw_tau);

  /// True when the previous filter() call rejected its input.
  [[nodiscard]] bool holding() const { return holds_ > 0; }
  [[nodiscard]] std::size_t consecutive_holds() const { return holds_; }
  [[nodiscard]] double last_good() const { return last_good_; }
  [[nodiscard]] const SensorGuardStats& stats() const { return stats_; }
  [[nodiscard]] const SensorGuardConfig& config() const { return config_; }

 private:
  [[nodiscard]] double debounced(double raw_tau);

  SensorGuardConfig config_;
  double last_good_{0.0};
  std::size_t holds_{0};
  SensorGuardStats stats_;
  std::vector<double> window_;   // median ring, oldest overwritten
  std::size_t window_head_{0};
  std::vector<double> scratch_;  // median workspace (no per-cycle alloc)
};

}  // namespace roclk::control
