// Control block interface (the H(z) box of paper Fig. 4).
//
// A ControlBlock maps the adaptation error delta[n] = c - tau[n] to the
// ring-oscillator length l_RO[n], one sample per delivered clock period.
// Implementations must include their own compute latency (the paper's
// controllers all have at least one cycle: N(z) carries a z^-1 factor).
//
// reset(initial_output) establishes the pre-simulation equilibrium: the
// loop is assumed to have been running error-free at l_RO = initial_output
// (normally the set-point c) before the window of interest.
#pragma once

#include <memory>
#include <string>

namespace roclk::control {

class ControlBlock {
 public:
  virtual ~ControlBlock() = default;

  /// Consumes delta[n], returns l_RO[n] (stages, already quantised the way
  /// the hardware would).
  virtual double step(double delta) = 0;

  /// Restores power-on equilibrium at the given output value.
  virtual void reset(double initial_output) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<ControlBlock> clone() const = 0;
};

/// Pure proportional controller l_RO[n] = bias + kp * delta[n-1].
///
/// Deliberately violates the paper's constraint D(1) = 0 (eq. 8): it has no
/// integrator, so a step perturbation leaves a permanent adaptation error.
/// Included to demonstrate the constraint empirically (tests + ablation).
class ProportionalControl final : public ControlBlock {
 public:
  explicit ProportionalControl(double kp);

  double step(double delta) override;
  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override { return "P control"; }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;

 private:
  double kp_;
  double bias_{0.0};
  double prev_delta_{0.0};
};

/// Discrete PI controller
///   l_RO[n] = bias + kp * delta[n-1] + ki * sum_{m<n} delta[m] .
/// Satisfies eq. 8 (integrator pole at z = 1); an extension beyond the
/// paper's two controllers, used in ablation benches.
class PiControl final : public ControlBlock {
 public:
  PiControl(double kp, double ki);

  double step(double delta) override;
  void reset(double initial_output) override;
  [[nodiscard]] std::string name() const override { return "PI control"; }
  [[nodiscard]] std::unique_ptr<ControlBlock> clone() const override;

 private:
  double kp_;
  double ki_;
  double bias_{0.0};
  double integral_{0.0};
  double prev_delta_{0.0};
};

}  // namespace roclk::control
