// Runtime set-point tuning (paper section V):
//   "The set-point value could be varied as function of the timing errors
//    during a time window and/or the performance necessities."
//
// The closed loop pins the TDC reading tau at the set-point c, but the
// *correct* c is unknown at design time: the pipeline fails when tau drops
// below its logic depth L (in stages), so c must sit at L plus enough
// headroom for the loop's ripple — and no more, since every extra stage of
// c is lost performance.  The paper therefore requires the pipeline to have
// "at least, error detection capacities" (Razor-style): real timing errors
// are observable, recoverable events.
//
// SetpointGovernor implements the sketched policy as an
// additive-increase / additive-decrease window controller:
//   * any real error in the window   -> raise c by `step_up` (back off)
//   * error-free window with at least `headroom` + `step_down` of slack
//     above L at the *worst* observed reading -> lower c by `step_down`
//   * otherwise hold.
#pragma once

#include <cstddef>
#include <cstdint>

#include "roclk/common/status.hpp"

namespace roclk::control {

struct GovernorConfig {
  double initial_setpoint{70.0};
  double logic_depth{64.0};   // L: stages the pipeline needs per period
  double min_setpoint{8.0};
  double max_setpoint{512.0};
  std::size_t window{256};    // cycles per decision epoch
  double step_up{2.0};        // back-off on error
  double step_down{1.0};      // creep toward performance
  double headroom{2.0};       // slack (stages) to keep above L
};

class SetpointGovernor {
 public:
  explicit SetpointGovernor(GovernorConfig config = {});

  static Status validate(const GovernorConfig& config);

  /// Feeds one cycle's TDC reading; returns the set-point to use for the
  /// *next* cycle.  A reading below the logic depth counts as a real,
  /// detected-and-replayed timing error.
  double observe(double tau);

  [[nodiscard]] double setpoint() const { return setpoint_; }
  [[nodiscard]] std::size_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t total_errors() const { return total_errors_; }
  [[nodiscard]] const GovernorConfig& config() const { return config_; }

  void reset();

 private:
  GovernorConfig config_;
  double setpoint_;
  std::size_t cycles_in_window_{0};
  std::size_t errors_in_window_{0};
  double worst_tau_in_window_{0.0};
  std::size_t epochs_{0};
  std::uint64_t total_errors_{0};
};

}  // namespace roclk::control
