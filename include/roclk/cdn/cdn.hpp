// Clock distribution network (CDN) models.
//
// The CDN carries the generated clock from the (controlled) ring oscillator
// to the registers.  Its insertion delay t_clk means the delivered clock
// period observed at the leaves *now* was generated t_clk ago — the central
// mechanism by which dynamic variations defeat adaptive clocking (paper
// section II-A and Fig. 4).
//
// Three models, by fidelity:
//  * FixedSampleCdn   — a constant M-sample delay line: the linear model of
//                       eqs. 4-5, used for transfer-function equivalence.
//  * QuantizedTimeCdn — the paper's simulation model: the delay in samples
//                       is re-quantised every cycle, M[n] = t_clk/T_clk[n].
//  * EdgeDelayCdn     — continuous time: every edge is delivered exactly
//                       t_clk (stages) after generation; used by the
//                       event-driven simulator where M is emergent.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <vector>

#include "roclk/common/check.hpp"
#include "roclk/common/math.hpp"

namespace roclk::cdn {

/// Sample-domain CDN interface: push the generated period of cycle n,
/// receive the period delivered at the leaves during cycle n.
class DiscreteCdn {
 public:
  virtual ~DiscreteCdn() = default;

  /// `generated_period` in stages; returns the delivered period in stages.
  virtual double push(double generated_period) = 0;

  /// Restores power-on state; `initial_period` pre-fills the pipeline (the
  /// clock was already running at that period before the simulation
  /// window).
  virtual void reset(double initial_period) = 0;

  /// Current delay in samples (diagnostic).
  [[nodiscard]] virtual std::size_t current_delay_samples() const = 0;
};

/// Constant integer sample delay M.
class FixedSampleCdn final : public DiscreteCdn {
 public:
  explicit FixedSampleCdn(std::size_t delay_samples);

  double push(double generated_period) override;
  void reset(double initial_period) override;
  [[nodiscard]] std::size_t current_delay_samples() const override {
    return delay_;
  }

 private:
  std::size_t delay_;
  std::deque<double> pipeline_;
};

/// How the real-valued sample delay t_clk / T_clk[n] is mapped onto the
/// discrete history:
///  * kRound  — M[n] = round(t_clk / T_clk[n]): the literal reading of the
///              paper's "z^-M" (integer sample delay, re-quantised).
///  * kFloor  — M[n] = floor(t_clk / T_clk[n]).
///  * kLinearInterp — fractional delay by linear interpolation between the
///              floor(D) and floor(D)+1 look-backs.  Needed to resolve
///              sub-period CDN differences (the paper's Fig. 9 compares
///              t_clk = 0.75c / 1c / 1.25c, which integer quantisation
///              would partly collapse onto the same M).
enum class DelayQuantization { kRound, kFloor, kLinearInterp };

/// The paper's model: M[n] = t_clk / T_clk[n] is re-computed every cycle
/// from the period currently entering the CDN; the delivered period is the
/// one generated M[n] cycles ago.
class QuantizedTimeCdn final : public DiscreteCdn {
 public:
  /// `delay_stages` is t_clk; `history` bounds the look-back window and
  /// must exceed every M that can occur (t_clk / min-period).
  /// `ring_depth` is the physical circular-buffer depth: 0 (the default)
  /// sizes it to the smallest power of two covering `history`; an explicit
  /// value must itself be a power of two >= history (mask indexing is a
  /// load-bearing invariant of the hot loop) or construction throws.
  explicit QuantizedTimeCdn(double delay_stages, std::size_t history = 4096,
                            DelayQuantization quantization =
                                DelayQuantization::kRound,
                            std::size_t ring_depth = 0);

  // push() is the per-simulated-cycle hot path of every sweep; it is
  // defined inline (class is final, so calls through the concrete type
  // devirtualise and fuse into the simulation loop).
  double push(double generated_period) override {
    ROCLK_CHECK(generated_period > 0.0,
                "generated period must be positive, got "
                    << generated_period << " stages");
    ring_[next_] = generated_period;
    next_ = (next_ + 1) & mask_;
    count_ = std::min(count_ + 1, history_);

    // Real-valued sample delay D[n] = t_clk / T_clk[n], bounded by the
    // history we actually keep.
    const double d = std::min(delay_stages_ / generated_period,
                              static_cast<double>(history_ - 2));
    last_m_ = static_cast<std::size_t>(llround_ties_away(d));

    switch (quantization_) {
      case DelayQuantization::kRound:
        return look_back(last_m_);
      case DelayQuantization::kFloor:
        return look_back(static_cast<std::size_t>(std::floor(d)));
      case DelayQuantization::kLinearInterp: {
        const auto m0 = static_cast<std::size_t>(std::floor(d));
        const double frac = d - std::floor(d);
        const double v0 = look_back(m0);
        if (frac == 0.0) return v0;
        const double v1 = look_back(m0 + 1);
        return v0 * (1.0 - frac) + v1 * frac;
      }
    }
    ROCLK_CHECK(false, "unknown quantization mode");
    return generated_period;
  }

  void reset(double initial_period) override;
  [[nodiscard]] std::size_t current_delay_samples() const override {
    return last_m_;
  }
  [[nodiscard]] double delay_stages() const { return delay_stages_; }
  [[nodiscard]] DelayQuantization quantization() const {
    return quantization_;
  }

  /// Diagnostic look-back: period generated `m` cycles before the most
  /// recent push.  Cycles before the simulation started (m past the pushed
  /// count, including the freshly reset state) read the initial period.
  [[nodiscard]] double peek_back(std::size_t m) const { return look_back(m); }

 private:
  /// Period generated `m` cycles before the most recent push.
  [[nodiscard]] double look_back(std::size_t m) const {
    if (m >= history_ || m >= count_) {
      // Looking back before the simulation started (or past the retained
      // window): the clock ran at the initial period.
      return initial_period_;
    }
    // Most recent entry sits just behind the write cursor.  The ring is a
    // power of two, so the wrap is a mask; m < history_ <= ring size keeps
    // the subtraction in range.
    const std::size_t newest = (next_ + mask_) & mask_;
    const std::size_t idx = (newest + ring_.size() - m) & mask_;
    return ring_[idx];
  }

  double delay_stages_;
  std::size_t history_;
  DelayQuantization quantization_{DelayQuantization::kRound};
  // Circular buffer of generated periods, sized to the power of two at or
  // above `history` so the cursor arithmetic is mask-based (the hot loop
  // otherwise pays three integer divisions per simulated cycle).
  std::vector<double> ring_;
  std::size_t mask_{0};        // ring_.size() - 1
  std::size_t next_{0};        // write cursor
  std::size_t count_{0};       // number of valid entries (capped at history)
  std::size_t last_m_{0};
  double initial_period_{0.0};
};

/// Continuous-time CDN: edges queued and released after exactly t_clk.
class EdgeDelayCdn {
 public:
  explicit EdgeDelayCdn(double delay_stages);

  /// An edge generated at absolute time t (stages) arrives at the leaves
  /// at t + t_clk.
  [[nodiscard]] double deliver_time(double generation_time) const {
    return generation_time + delay_stages_;
  }

  [[nodiscard]] double delay_stages() const { return delay_stages_; }

 private:
  double delay_stages_;
};

}  // namespace roclk::cdn
