// Voltage / delay / energy modelling for the margin trade-off.
//
// Paper introduction: "Alternatively, SM can be added to the supply
// voltage instead of to the clock period.  In this case the yield is
// increased but at the price of more power consumption."  This module
// quantifies that sentence with the standard alpha-power-law MOSFET model
// (Sakurai-Newton):
//
//   delay(V)  ~  V / (V - Vth)^alpha
//   E_dyn/op  ~  C V^2
//   P_leak    ~  super-linear in V (modelled as V^3)
//
// and compares three ways to absorb a delay uncertainty u:
//   1. period margin  — fixed clock at T = Tn (1+u), nominal V;
//   2. voltage margin — fixed clock at T = Tn, V raised until worst-case
//      gates are fast enough;
//   3. adaptive clock — nominal V, per-chip measured period (the paper's
//      proposal; its mean extra period comes from the simulations or the
//      yield analysis).
#pragma once

#include <string>

#include "roclk/common/status.hpp"

namespace roclk::power {

struct ProcessParams {
  double vdd_nominal{1.0};   // volts
  double vth{0.30};          // threshold voltage
  double alpha{1.3};         // velocity-saturation exponent
  double vdd_max{1.4};       // reliability ceiling for overdrive
  /// Fraction of total power that is leakage at nominal V and period.
  double leakage_share{0.25};
};

[[nodiscard]] Status validate(const ProcessParams& params);

/// Gate delay at `vdd` relative to the delay at nominal vdd (1.0 at
/// nominal; > 1 below nominal, < 1 when overdriven).
[[nodiscard]] double delay_factor(double vdd, const ProcessParams& params =
                                                  {});

/// Supply voltage achieving a target relative delay (bisection on the
/// monotone alpha-power curve).  target <= 1 requires overdrive; fails if
/// the required voltage exceeds vdd_max.
[[nodiscard]] Result<double> vdd_for_delay_factor(
    double target, const ProcessParams& params = {});

/// Energy per operation relative to nominal (V = Vn, T = Tn):
/// dynamic CV^2 share plus leakage share scaled by V^3 and the period the
/// leakage integrates over.
[[nodiscard]] double energy_per_op_factor(double vdd_factor,
                                          double period_factor,
                                          const ProcessParams& params = {});

/// One clocking strategy's operating point, all relative to nominal.
struct OperatingPoint {
  std::string name;
  double vdd_factor{1.0};        // V / Vn
  double period_factor{1.0};     // T / Tn
  double throughput_factor{1.0};  // ops/s vs nominal = 1 / period_factor
  double energy_factor{1.0};      // energy per op vs nominal
};

/// Strategy 1: absorb uncertainty u in the period.
[[nodiscard]] OperatingPoint period_margin_strategy(
    double delay_uncertainty, const ProcessParams& params = {});

/// Strategy 2: absorb it in the supply (worst-case gates sped back up to
/// the nominal period).  Fails if vdd_max cannot cover u.
[[nodiscard]] Result<OperatingPoint> voltage_margin_strategy(
    double delay_uncertainty, const ProcessParams& params = {});

/// Strategy 3: adaptive clock at nominal V; `mean_extra_period` is the
/// measured average slowdown actually paid (e.g. from the yield module's
/// adaptive_mean_extra_period, or a relative-period measurement).
[[nodiscard]] OperatingPoint adaptive_clock_strategy(
    double mean_extra_period_fraction, const ProcessParams& params = {});

}  // namespace roclk::power
