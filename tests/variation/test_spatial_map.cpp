#include "roclk/variation/spatial_map.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "roclk/common/stats.hpp"

namespace roclk::variation {
namespace {

TEST(SpatialMap, DeterministicInSeed) {
  SpatialMap a{42, 0.1};
  SpatialMap b{42, 0.1};
  for (double x : {0.1, 0.3, 0.77}) {
    for (double y : {0.2, 0.9}) {
      EXPECT_DOUBLE_EQ(a.at({x, y}), b.at({x, y}));
    }
  }
}

TEST(SpatialMap, DifferentSeedsProduceDifferentFields) {
  SpatialMap a{1, 0.1};
  SpatialMap b{2, 0.1};
  int distinct = 0;
  for (int i = 0; i < 16; ++i) {
    const DiePoint p{(i % 4) * 0.25 + 0.1, (i / 4) * 0.25 + 0.1};
    if (std::fabs(a.at(p) - b.at(p)) > 1e-12) ++distinct;
  }
  EXPECT_GT(distinct, 12);
}

TEST(SpatialMap, ApproximatelyZeroMeanUnitScaledSpread) {
  SpatialMap map{7, 0.05, 4, 2};
  RunningStats stats;
  for (int ix = 0; ix < 64; ++ix) {
    for (int iy = 0; iy < 64; ++iy) {
      stats.add(map.at({ix / 64.0, iy / 64.0}));
    }
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  // Interpolation shrinks variance a bit; just require the right scale.
  EXPECT_GT(stats.stddev(), 0.015);
  EXPECT_LT(stats.stddev(), 0.1);
}

TEST(SpatialMap, SpatiallySmooth) {
  // Neighbouring points must be far more similar than distant ones.
  SpatialMap map{11, 1.0, 3, 1};
  double near_diff = 0.0;
  double far_diff = 0.0;
  int n = 0;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.01 + 0.019 * i;
    near_diff += std::fabs(map.at({x, 0.5}) - map.at({x + 0.005, 0.5}));
    far_diff += std::fabs(map.at({x, 0.5}) - map.at({x, 0.02}));
    ++n;
  }
  EXPECT_LT(near_diff / n, 0.3 * (far_diff / n + 0.05));
}

TEST(SpatialMap, InvalidConfigRejected) {
  EXPECT_THROW((SpatialMap{1, 0.1, 0, 1}), std::logic_error);
  EXPECT_THROW((SpatialMap{1, 0.1, 4, 0}), std::logic_error);
}

TEST(GaussianBump, PeakAtCentreDecaysOutward) {
  GaussianBump bump{{0.5, 0.5}, 0.2, 3.0};
  EXPECT_DOUBLE_EQ(bump.at({0.5, 0.5}), 3.0);
  const double mid = bump.at({0.7, 0.5});
  const double far = bump.at({0.95, 0.5});
  EXPECT_GT(mid, far);
  EXPECT_GT(3.0, mid);
  EXPECT_NEAR(bump.at({0.5 + 0.2, 0.5}), 3.0 * std::exp(-0.5), 1e-12);
}

TEST(GaussianBump, ZeroSigmaRejected) {
  EXPECT_THROW((GaussianBump{{0.5, 0.5}, 0.0, 1.0}), std::logic_error);
}

}  // namespace
}  // namespace roclk::variation
