// Empirical verification of Table I: every model must *measure* into the
// temporal/spatial cell the paper assigns it.
#include <gtest/gtest.h>

#include <memory>

#include "roclk/variation/sources.hpp"
#include "roclk/variation/variation.hpp"

namespace roclk::variation {
namespace {

struct Case {
  const char* label;
  TemporalClass temporal;
  SpatialClass spatial;
  std::unique_ptr<VariationSource> (*make)();
};

std::unique_ptr<VariationSource> make_d2d() {
  return std::make_unique<DieToDieProcess>(0.05, 1);
}
std::unique_ptr<VariationSource> make_wid() {
  return std::make_unique<WithinDieProcess>(0.05, 2);
}
std::unique_ptr<VariationSource> make_rnd() {
  return std::make_unique<RandomDeviceProcess>(0.02, 3);
}
std::unique_ptr<VariationSource> make_vrm() {
  return std::make_unique<VrmRipple>(0.1, 6400.0);
}
std::unique_ptr<VariationSource> make_room() {
  return std::make_unique<RoomTemperatureDrift>(0.05, 50000.0);
}
std::unique_ptr<VariationSource> make_droop() {
  return std::make_unique<OffChipVoltageDrop>(0.2, 30000.0, 20000.0);
}
std::unique_ptr<VariationSource> make_ssn() {
  return std::make_unique<SimultaneousSwitchingNoise>(0.02, 64.0, 4);
}
std::unique_ptr<VariationSource> make_ir() {
  return std::make_unique<IrDrop>(0.1, 9000.0, DiePoint{0.8, 0.2}, 5);
}
std::unique_ptr<VariationSource> make_hotspot() {
  return std::make_unique<TemperatureHotspot>(0.08, DiePoint{0.3, 0.7}, 0.2,
                                              10000.0, 30000.0);
}
std::unique_ptr<VariationSource> make_aging() {
  return std::make_unique<Aging>(0.05, 60000.0, 6);
}

class TableOneCell : public ::testing::TestWithParam<Case> {};

TEST_P(TableOneCell, DeclaredClassificationMatchesDesign) {
  const auto& c = GetParam();
  const auto source = c.make();
  EXPECT_EQ(source->temporal_class(), c.temporal) << c.label;
  EXPECT_EQ(source->spatial_class(), c.spatial) << c.label;
}

TEST_P(TableOneCell, MeasuredClassificationMatchesDeclared) {
  const auto& c = GetParam();
  const auto source = c.make();
  ClassificationOptions options;
  options.threshold = 1e-5;
  const auto measured = classify(*source, options);
  EXPECT_EQ(measured.temporal, c.temporal)
      << c.label << " temporal stddev " << measured.temporal_stddev;
  EXPECT_EQ(measured.spatial, c.spatial)
      << c.label << " spatial stddev " << measured.spatial_stddev;
}

TEST_P(TableOneCell, CloneIsBehaviourallyIdentical) {
  const auto& c = GetParam();
  const auto source = c.make();
  const auto clone = source->clone();
  for (double t : {0.0, 12345.0, 9.9e4}) {
    for (const DiePoint p : {DiePoint{0.1, 0.9}, DiePoint{0.66, 0.33}}) {
      EXPECT_DOUBLE_EQ(clone->at(t, p), source->at(t, p)) << c.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, TableOneCell,
    ::testing::Values(
        Case{"D2D", TemporalClass::kStatic, SpatialClass::kHomogeneous,
             &make_d2d},
        Case{"WID", TemporalClass::kStatic, SpatialClass::kHeterogeneous,
             &make_wid},
        Case{"RND", TemporalClass::kStatic, SpatialClass::kHeterogeneous,
             &make_rnd},
        Case{"VRM ripple", TemporalClass::kDynamic,
             SpatialClass::kHomogeneous, &make_vrm},
        Case{"room temperature", TemporalClass::kDynamic,
             SpatialClass::kHomogeneous, &make_room},
        Case{"off-chip droop", TemporalClass::kDynamic,
             SpatialClass::kHomogeneous, &make_droop},
        Case{"SSN", TemporalClass::kDynamic, SpatialClass::kHeterogeneous,
             &make_ssn},
        Case{"IR drop", TemporalClass::kDynamic,
             SpatialClass::kHeterogeneous, &make_ir},
        Case{"hotspot", TemporalClass::kDynamic,
             SpatialClass::kHeterogeneous, &make_hotspot},
        Case{"aging", TemporalClass::kDynamic,
             SpatialClass::kHeterogeneous, &make_aging}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Classify, RespectsExplicitOptions) {
  DieToDieProcess d2d{0.0, 0};  // zero-sigma: exactly zero everywhere
  const auto m = classify(d2d);
  EXPECT_EQ(m.temporal, TemporalClass::kStatic);
  EXPECT_EQ(m.spatial, SpatialClass::kHomogeneous);
  EXPECT_DOUBLE_EQ(m.temporal_stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.spatial_stddev, 0.0);
}

TEST(Classify, RejectsDegenerateOptions) {
  DieToDieProcess d2d{0.01, 0};
  ClassificationOptions bad;
  bad.time_samples = 1;
  EXPECT_THROW((void)classify(d2d, bad), std::logic_error);
  ClassificationOptions bad2;
  bad2.grid = 1;
  EXPECT_THROW((void)classify(d2d, bad2), std::logic_error);
}

}  // namespace
}  // namespace roclk::variation
