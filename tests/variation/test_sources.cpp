#include "roclk/variation/sources.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "roclk/variation/scenario.hpp"

namespace roclk::variation {
namespace {

constexpr DiePoint kCentre{0.5, 0.5};
constexpr DiePoint kCorner{0.05, 0.05};

TEST(DieToDieProcess, ConstantEverywhereForever) {
  DieToDieProcess d2d{0.05, 123};
  const double v = d2d.at(0.0, kCentre);
  EXPECT_DOUBLE_EQ(d2d.at(1e9, kCorner), v);
  EXPECT_DOUBLE_EQ(d2d.at(-50.0, {0.9, 0.1}), v);
}

TEST(DieToDieProcess, WithOffsetIsExact) {
  const auto d2d = DieToDieProcess::with_offset(0.07);
  EXPECT_DOUBLE_EQ(d2d.offset(), 0.07);
  EXPECT_DOUBLE_EQ(d2d.at(5.0, kCentre), 0.07);
}

TEST(WithinDieProcess, VariesInSpaceNotTime) {
  WithinDieProcess wid{0.05, 99};
  EXPECT_DOUBLE_EQ(wid.at(0.0, kCentre), wid.at(1e8, kCentre));
  EXPECT_NE(wid.at(0.0, kCentre), wid.at(0.0, kCorner));
}

TEST(RandomDeviceProcess, SpatiallyWhite) {
  RandomDeviceProcess rnd{0.01, 7, 256};
  // Two adjacent buckets should (almost surely) differ.
  EXPECT_NE(rnd.at(0.0, {0.1, 0.1}), rnd.at(0.0, {0.11, 0.1}));
  // Same bucket: identical.
  EXPECT_DOUBLE_EQ(rnd.at(0.0, {0.1001, 0.1}), rnd.at(5.0, {0.1002, 0.1}));
}

TEST(VrmRipple, HomogeneousSinusoid) {
  VrmRipple vrm{0.1, 1000.0};
  EXPECT_DOUBLE_EQ(vrm.at(123.0, kCentre), vrm.at(123.0, kCorner));
  EXPECT_NEAR(vrm.at(250.0, kCentre), 0.1, 1e-12);
  EXPECT_NEAR(vrm.at(0.0, kCentre), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(vrm.amplitude(), 0.1);
  EXPECT_DOUBLE_EQ(vrm.period(), 1000.0);
}

TEST(OffChipVoltageDrop, TriangularSingleEvent) {
  OffChipVoltageDrop droop{0.2, 100.0, 50.0};
  EXPECT_DOUBLE_EQ(droop.at(99.0, kCentre), 0.0);
  EXPECT_NEAR(droop.at(125.0, kCentre), 0.2, 1e-12);  // apex
  EXPECT_DOUBLE_EQ(droop.at(151.0, kCentre), 0.0);
  EXPECT_DOUBLE_EQ(droop.at(125.0, kCentre), droop.at(125.0, kCorner));
}

TEST(RoomTemperatureDrift, SlowAndHomogeneous) {
  RoomTemperatureDrift drift{0.03, 1e6};
  EXPECT_DOUBLE_EQ(drift.at(10.0, kCentre), drift.at(10.0, kCorner));
  EXPECT_NEAR(drift.at(2.5e5, kCentre), 0.03, 1e-12);
}

TEST(SimultaneousSwitchingNoise, HeterogeneousAndDynamic) {
  SimultaneousSwitchingNoise ssn{0.02, 64.0, 3};
  // Same hold slot, different locations: amplitudes differ via profile.
  EXPECT_NE(ssn.at(10.0, kCentre), ssn.at(10.0, kCorner));
  // Different hold slots: time variation.
  EXPECT_NE(ssn.at(10.0, kCentre), ssn.at(200.0, kCentre));
}

TEST(IrDrop, ActivityGatedSpatialGradient) {
  IrDrop ir{0.1, 1000.0, {0.8, 0.8}, 5};
  // Active half-cycle: full drop near the hot corner, less far away.
  const double active_hot = ir.at(100.0, {0.8, 0.8});
  const double active_cold = ir.at(100.0, {0.1, 0.1});
  EXPECT_GT(active_hot, active_cold);
  EXPECT_NEAR(active_hot, 0.1, 1e-9);
  // Idle half-cycle: no drop anywhere.
  EXPECT_NEAR(ir.at(600.0, {0.8, 0.8}), 0.0, 1e-12);
}

TEST(TemperatureHotspot, RisesWithThermalTimeConstant) {
  TemperatureHotspot hot{0.08, kCentre, 0.2, 1000.0, 5000.0};
  EXPECT_DOUBLE_EQ(hot.at(999.0, kCentre), 0.0);
  const double early = hot.at(1500.0, kCentre);
  const double late = hot.at(50000.0, kCentre);
  EXPECT_GT(early, 0.0);
  EXPECT_GT(late, early);
  EXPECT_NEAR(late, 0.08, 1e-3);  // saturated
  // Heterogeneous: weaker away from the hotspot.
  EXPECT_GT(hot.at(50000.0, kCentre), hot.at(50000.0, kCorner));
}

TEST(Aging, MonotonicSaturatingSlowdown) {
  Aging aging{0.05, 1e6, 11};
  EXPECT_DOUBLE_EQ(aging.at(0.0, kCentre), 0.0);
  double prev = 0.0;
  for (double t : {1e5, 3e5, 1e6, 3e6, 3e7}) {
    const double v = aging.at(t, kCentre);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(prev, 0.05, 1e-3);
  // Spatially varying stress rate.
  EXPECT_NE(aging.at(3e5, kCentre), aging.at(3e5, kCorner));
}

TEST(DroopTrain, DeterministicAndBounded) {
  DroopTrain train{0.15, 5000.0, 200.0, 1000.0, 42};
  DroopTrain same{0.15, 5000.0, 200.0, 1000.0, 42};
  double peak_seen = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double t = i * 12.5;
    const double v = train.at(t, kCentre);
    ASSERT_DOUBLE_EQ(v, same.at(t, kCentre));
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 0.15 + 1e-12);
    peak_seen = std::max(peak_seen, v);
  }
  // With ~63% slot occupancy some event should have fired near peak.
  EXPECT_GT(peak_seen, 0.05);
}

TEST(DroopTrain, HomogeneousAcrossDie) {
  DroopTrain train{0.2, 4000.0, 100.0, 500.0, 7};
  for (double t : {100.0, 5000.0, 12345.0}) {
    EXPECT_DOUBLE_EQ(train.at(t, kCentre), train.at(t, kCorner));
  }
}

TEST(DroopTrain, EventsConfinedToTheirSlots) {
  DroopTrain train{0.2, 1000.0, 100.0, 400.0, 3};
  for (std::int64_t slot = 0; slot < 50; ++slot) {
    const auto event = train.event_in_slot(slot);
    if (!event.present) continue;
    EXPECT_GE(event.start, slot * 1000.0);
    EXPECT_LE(event.start + event.duration, (slot + 1) * 1000.0 + 1e-9);
    EXPECT_GE(event.duration, 100.0);
    EXPECT_LE(event.duration, 400.0);
    EXPECT_LE(event.amplitude, 0.2);
  }
}

TEST(DroopTrain, MostlyQuietBetweenEvents) {
  DroopTrain train{0.2, 10000.0, 100.0, 200.0, 9};
  int quiet = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (train.at(i * 10.0, kCentre) == 0.0) ++quiet;
  }
  // Events cover at most ~2% of the timeline at this spacing.
  EXPECT_GT(quiet, n * 9 / 10);
}

TEST(DroopTrain, RejectsBadConfig) {
  EXPECT_THROW((DroopTrain{0.1, 0.0, 1.0, 2.0, 1}), std::logic_error);
  EXPECT_THROW((DroopTrain{0.1, 100.0, 5.0, 2.0, 1}), std::logic_error);
  EXPECT_THROW((DroopTrain{0.1, 100.0, 10.0, 200.0, 1}), std::logic_error);
}

TEST(CompositeVariation, SumsAndClassifies) {
  CompositeVariation comp;
  comp.add(std::make_unique<DieToDieProcess>(
      DieToDieProcess::with_offset(0.05)));
  EXPECT_EQ(comp.temporal_class(), TemporalClass::kStatic);
  EXPECT_EQ(comp.spatial_class(), SpatialClass::kHomogeneous);
  EXPECT_DOUBLE_EQ(comp.at(0.0, kCentre), 0.05);

  comp.add(std::make_unique<VrmRipple>(0.1, 1000.0));
  EXPECT_EQ(comp.temporal_class(), TemporalClass::kDynamic);
  EXPECT_EQ(comp.spatial_class(), SpatialClass::kHomogeneous);
  EXPECT_NEAR(comp.at(250.0, kCentre), 0.15, 1e-12);

  comp.add(std::make_unique<WithinDieProcess>(0.02, 5));
  EXPECT_EQ(comp.spatial_class(), SpatialClass::kHeterogeneous);
  EXPECT_EQ(comp.size(), 3u);
  EXPECT_NE(comp.name().find("VRM"), std::string::npos);
}

TEST(CompositeVariation, DeepCopy) {
  CompositeVariation comp;
  comp.add(std::make_unique<VrmRipple>(0.1, 100.0));
  CompositeVariation copy{comp};
  EXPECT_DOUBLE_EQ(copy.at(25.0, kCentre), comp.at(25.0, kCentre));
  auto clone = comp.clone();
  EXPECT_DOUBLE_EQ(clone->at(25.0, kCentre), comp.at(25.0, kCentre));
}

TEST(WaveformVariation, WrapsWaveformHomogeneously) {
  WaveformVariation wv{std::make_unique<signal::SineWaveform>(0.2, 100.0),
                       "test HoDV"};
  EXPECT_NEAR(wv.at(25.0, kCentre), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(wv.at(25.0, kCentre), wv.at(25.0, kCorner));
  EXPECT_EQ(wv.name(), "test HoDV");
  auto clone = wv.clone();
  EXPECT_DOUBLE_EQ(clone->at(10.0, kCentre), wv.at(10.0, kCentre));
}

TEST(Scenario, HarmonicHodvFactory) {
  auto hodv = make_harmonic_hodv(0.2, 1600.0);
  EXPECT_EQ(hodv->temporal_class(), TemporalClass::kDynamic);
  EXPECT_EQ(hodv->spatial_class(), SpatialClass::kHomogeneous);
  EXPECT_NEAR(hodv->at(400.0, kCentre), 0.2, 1e-12);
}

TEST(Scenario, SingleEventFactory) {
  auto droop = make_single_event_hodv(0.15, 100.0, 64.0);
  EXPECT_NEAR(droop->at(132.0, kCentre), 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(droop->at(0.0, kCentre), 0.0);
}

TEST(Scenario, SocEnvironmentComposesEverything) {
  auto env = make_soc_environment();
  EXPECT_EQ(env->temporal_class(), TemporalClass::kDynamic);
  EXPECT_EQ(env->spatial_class(), SpatialClass::kHeterogeneous);
  // Deterministic in the seed.
  auto env2 = make_soc_environment();
  EXPECT_DOUBLE_EQ(env->at(12345.0, kCorner), env2->at(12345.0, kCorner));
}

}  // namespace
}  // namespace roclk::variation
