#include "roclk/analysis/yield.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace roclk::analysis {
namespace {

YieldConfig small_config() {
  YieldConfig cfg;
  cfg.chips = 200;
  cfg.paths = 32;
  cfg.seed = 99;
  return cfg;
}

TEST(Yield, DeterministicInSeed) {
  const std::vector<double> margins{0.0, 5.0, 10.0};
  const auto a = yield_curve(margins, small_config());
  const auto b = yield_curve(margins, small_config());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].fixed_yield, b.points[i].fixed_yield);
    EXPECT_DOUBLE_EQ(a.points[i].adaptive_yield, b.points[i].adaptive_yield);
  }
  EXPECT_DOUBLE_EQ(a.mean_worst_path, b.mean_worst_path);
}

TEST(Yield, FixedYieldMonotoneInMargin) {
  const std::vector<double> margins{0.0, 2.0, 5.0, 10.0, 20.0, 40.0};
  const auto curve = yield_curve(margins, small_config());
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].fixed_yield,
              curve.points[i - 1].fixed_yield);
  }
  // Enough margin buys full yield.
  EXPECT_DOUBLE_EQ(curve.points.back().fixed_yield, 1.0);
  // Zero margin cannot cover the (positively skewed) worst-path spread.
  EXPECT_LT(curve.points.front().fixed_yield, 1.0);
}

TEST(Yield, AdaptiveYieldIsMarginIndependentAndHigh) {
  const std::vector<double> margins{0.0, 10.0, 30.0};
  const auto curve = yield_curve(margins, small_config());
  for (const auto& p : curve.points) {
    EXPECT_DOUBLE_EQ(p.adaptive_yield, curve.points[0].adaptive_yield);
  }
  // With a generous RO range the adaptive clock serves essentially all
  // chips without any design-time margin.
  EXPECT_GT(curve.points[0].adaptive_yield, 0.99);
  EXPECT_GT(curve.points[0].adaptive_yield,
            curve.points[0].fixed_yield);  // at margin 0
}

TEST(Yield, TightRoRangeLimitsAdaptiveYield) {
  YieldConfig cfg = small_config();
  cfg.ro_max_length = 66;  // barely above nominal: cannot stretch
  const std::vector<double> margins{0.0};
  const auto curve = yield_curve(margins, cfg);
  EXPECT_LT(curve.points[0].adaptive_yield, 1.0);
}

TEST(Yield, WorstPathStatisticsAreConsistent) {
  const auto curve = yield_curve(std::vector<double>{0.0}, small_config());
  EXPECT_GT(curve.mean_worst_path, 64.0);  // max of many paths skews up
  EXPECT_GT(curve.p99_worst_path, curve.mean_worst_path);
  EXPECT_GE(curve.mean_adaptive_period, 64.0);
  EXPECT_LT(curve.mean_adaptive_period, curve.p99_worst_path);
}

TEST(Yield, MoreVariabilityNeedsMoreMargin) {
  YieldConfig calm = small_config();
  calm.d2d_sigma = 0.02;
  calm.wid_sigma = 0.02;
  YieldConfig noisy = small_config();
  noisy.d2d_sigma = 0.08;
  noisy.wid_sigma = 0.06;
  const auto m_calm = compare_margins(0.99, calm);
  const auto m_noisy = compare_margins(0.99, noisy);
  EXPECT_GT(m_noisy.fixed_margin_needed, m_calm.fixed_margin_needed);
}

TEST(Yield, MorePathsNeedMoreMargin) {
  // Bowman's effect (paper refs [1][3]): more CP candidates push the
  // max-statistics tail out.
  YieldConfig few = small_config();
  few.paths = 4;
  YieldConfig many = small_config();
  many.paths = 256;
  const auto m_few = compare_margins(0.99, few);
  const auto m_many = compare_margins(0.99, many);
  EXPECT_GT(m_many.fixed_margin_needed, m_few.fixed_margin_needed);
}

TEST(Yield, AdaptiveSavesMarginOnAverage) {
  const auto cmp = compare_margins(0.99, small_config());
  // The per-chip adaptive period only pays each die's own slowdown; the
  // fixed margin pays the 99th percentile of the population.
  EXPECT_GT(cmp.fixed_margin_needed, cmp.adaptive_mean_extra_period);
  EXPECT_GT(cmp.margin_saved, 0.0);
}

TEST(Yield, SortedScanMatchesSingleMarginQueries) {
  // The one-sort + upper_bound prefix scan must count exactly what a
  // per-margin pass would: querying each margin on its own (its own sort,
  // its own scan) has to reproduce the batched sweep, regardless of the
  // sweep's ordering or duplicates.
  const std::vector<double> margins{20.0, 0.0, 7.5, 0.0, 40.0, 3.25};
  const auto batched = yield_curve(margins, small_config());
  ASSERT_EQ(batched.points.size(), margins.size());
  for (std::size_t i = 0; i < margins.size(); ++i) {
    const auto single =
        yield_curve(std::vector<double>{margins[i]}, small_config());
    EXPECT_DOUBLE_EQ(batched.points[i].fixed_yield,
                     single.points[0].fixed_yield)
        << "margin " << margins[i];
    EXPECT_DOUBLE_EQ(batched.points[i].margin_stages, margins[i]);
  }
  // The prefix count agrees with the reported percentile: at the p99
  // margin at least 99% of chips fall inside the prefix.
  const double p99_margin =
      batched.p99_worst_path - small_config().setpoint_c;
  const auto at_p99 =
      yield_curve(std::vector<double>{p99_margin}, small_config());
  EXPECT_GE(at_p99.points[0].fixed_yield, 0.99);
}

TEST(Yield, SharedSamplingKeepsEntryPointsConsistent) {
  // yield_curve and compare_margins memoise one worst-path sample set per
  // config, so statistics they both derive from it must agree exactly.
  const YieldConfig cfg = small_config();
  const auto curve = yield_curve(std::vector<double>{0.0}, cfg);
  const auto cmp = compare_margins(0.99, cfg);

  // Both sides compute percentile(worst_paths, 0.99) on the same samples.
  EXPECT_DOUBLE_EQ(cmp.fixed_margin_needed,
                   std::max(0.0, curve.p99_worst_path - cfg.setpoint_c));

  // With the default generous RO range every chip is adaptive-served, so
  // the curve's mean adaptive period and the comparison's mean extra
  // period describe the same per-chip values, offset by c.
  ASSERT_DOUBLE_EQ(curve.points[0].adaptive_yield, 1.0);
  EXPECT_NEAR(curve.mean_adaptive_period - cfg.setpoint_c,
              cmp.adaptive_mean_extra_period, 1e-9);

  // And the margin compare_margins asks for is enough on the curve.
  const auto at_needed = yield_curve(
      std::vector<double>{cmp.fixed_margin_needed}, cfg);
  EXPECT_GE(at_needed.points[0].fixed_yield, 0.99);
}

TEST(Yield, Preconditions) {
  EXPECT_THROW((void)yield_curve(std::vector<double>{}, small_config()),
               std::logic_error);
  YieldConfig bad = small_config();
  bad.chips = 0;
  EXPECT_THROW((void)yield_curve(std::vector<double>{0.0}, bad),
               std::logic_error);
  EXPECT_THROW((void)compare_margins(0.0, small_config()), std::logic_error);
  EXPECT_THROW((void)compare_margins(1.5, small_config()), std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
