#include "roclk/analysis/stability_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "roclk/osc/jitter.hpp"

namespace roclk::analysis {
namespace {

TEST(Allan, RejectsDegenerateInputs) {
  std::vector<double> y(10, 0.0);
  EXPECT_FALSE(allan_deviation(y, 0).is_ok());
  EXPECT_FALSE(allan_deviation(y, 5).is_ok());  // needs 11 samples
  EXPECT_TRUE(allan_deviation(y, 4).is_ok());
}

TEST(Allan, ZeroForPerfectClock) {
  std::vector<double> y(1000, 0.0);
  for (std::size_t m : {1u, 4u, 16u}) {
    auto adev = allan_deviation(y, m);
    ASSERT_TRUE(adev.is_ok());
    EXPECT_DOUBLE_EQ(adev.value(), 0.0);
  }
  // Constant offset is also "perfectly stable" (up to prefix-sum epsilon).
  std::vector<double> offset(1000, 0.01);
  EXPECT_NEAR(allan_deviation(offset, 8).value(), 0.0, 1e-12);
}

TEST(Allan, AlternatingSequenceKnownValue) {
  // y = +a, -a, +a, ... at m = 1: every adjacent pair differs by 2a, so
  // sigma = sqrt((2a)^2 / 2) = a sqrt(2).
  const double a = 0.5;
  std::vector<double> y(512);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = (i % 2 == 0) ? a : -a;
  EXPECT_NEAR(allan_deviation(y, 1).value(), a * std::sqrt(2.0), 1e-12);
}

TEST(Allan, WhiteNoiseAveragesDownAsSqrtM) {
  osc::JitterConfig cfg;
  cfg.white_sigma = 1.0;
  osc::JitterModel jitter{cfg};
  std::vector<double> y(200000);
  for (auto& v : y) v = jitter.sample();
  const double adev1 = allan_deviation(y, 1).value();
  const double adev16 = allan_deviation(y, 16).value();
  const double adev64 = allan_deviation(y, 64).value();
  // White FM: ADEV(m) ~ m^{-1/2}.
  EXPECT_NEAR(adev16 / adev1, 1.0 / 4.0, 0.05);
  EXPECT_NEAR(adev64 / adev16, 1.0 / 2.0, 0.1);
}

TEST(Allan, RandomWalkGrowsWithM) {
  osc::JitterConfig cfg;
  cfg.walk_sigma = 0.1;
  cfg.walk_leak = 1.0;  // pure random walk
  osc::JitterModel jitter{cfg};
  std::vector<double> y(100000);
  for (auto& v : y) v = jitter.sample();
  const double adev1 = allan_deviation(y, 1).value();
  const double adev64 = allan_deviation(y, 64).value();
  // Random-walk FM: ADEV(m) ~ m^{+1/2}: clearly growing.
  EXPECT_GT(adev64, 3.0 * adev1);
}

TEST(Allan, CurveLadderIsPowersOfTwo) {
  std::vector<double> y(1000, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(0.01 * static_cast<double>(i));
  }
  const auto curve = allan_curve(y);
  ASSERT_GE(curve.size(), 5u);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].m, std::size_t{1} << i);
    EXPECT_GE(curve[i].adev, 0.0);
  }
  EXPECT_LE(3 * curve.back().m, y.size());
}

TEST(Allan, FractionalDeviationHelper) {
  const std::vector<double> periods{64.0, 67.2, 60.8};
  const auto y = fractional_deviation(periods, 64.0);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_NEAR(y[1], 0.05, 1e-12);
  EXPECT_NEAR(y[2], -0.05, 1e-12);
  EXPECT_THROW((void)fractional_deviation(periods, 0.0), std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
