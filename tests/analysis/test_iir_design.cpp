#include "roclk/analysis/iir_design.hpp"

#include <gtest/gtest.h>

#include "roclk/control/constraints.hpp"

namespace roclk::analysis {
namespace {

DesignSpaceOptions fast_options() {
  DesignSpaceOptions o;
  o.max_taps = 3;  // keep the unit-test space small
  o.cycles = 2500;
  o.skip = 1000;
  return o;
}

TEST(IirDesign, EnumeratesOnlyEq10ValidSets) {
  const auto candidates = enumerate_candidates(fast_options());
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    const auto status = control::validate_iir_config(c.config);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    // Every candidate satisfies eq. 8 by construction.
    const auto [n, d] = control::iir_polynomials(c.config);
    const auto report = control::check_paper_constraints(n, d);
    EXPECT_TRUE(report.satisfied());
  }
}

TEST(IirDesign, MonotoneTapsAreCanonical) {
  const auto candidates = enumerate_candidates(fast_options());
  for (const auto& c : candidates) {
    for (std::size_t i = 1; i < c.config.taps.size(); ++i) {
      EXPECT_LE(c.config.taps[i], c.config.taps[i - 1]);
    }
  }
}

TEST(IirDesign, ScoresAreMeaningful) {
  const auto candidates = enumerate_candidates(fast_options());
  for (const auto& c : candidates) {
    EXPECT_GT(c.max_stable_m, 0u);
    EXPECT_GE(c.tau_ripple, 0.0);
    // Stable loops settle within the simulated horizon.
    EXPECT_LT(c.settling_cycles, fast_options().cycles);
  }
}

TEST(IirDesign, PureUnitIntegratorIsInfeasibleAtOnePeriodCdn) {
  // The naive choice k = {1} (H = z^-1/(1 - z^-1), unit-gain integrator)
  // cannot stabilise the loop once the CDN costs a full period: the
  // characteristic 1 - z^-1 + z^-3 has roots outside the unit circle.
  // This is exactly why the paper spreads gain over tapered taps — and why
  // TEAtime gets away with a unit integrator only thanks to its bounded
  // (sign) nonlinearity.
  control::IirConfig unit;
  unit.taps = {1.0};
  unit.k_star = 1.0;
  ASSERT_TRUE(control::validate_iir_config(unit).is_ok());
  const auto [n, d] = control::iir_polynomials(unit);
  const auto stab = control::closed_loop_stability(n, d, 1);
  ASSERT_TRUE(stab.is_ok());
  EXPECT_FALSE(stab.value().stable);

  // Consequently the enumerated feasible set (scenario M = 1) excludes it.
  const auto candidates = enumerate_candidates(fast_options());
  for (const auto& c : candidates) {
    EXPECT_FALSE(c.config.taps.size() == 1 && c.config.taps[0] == 1.0);
  }
}

TEST(IirDesign, VelocityRobustnessTradeoffIsReal) {
  // Across the feasible set, the fastest settler must not also hold the
  // largest delay margin (otherwise there is no trade-off to balance).
  const auto candidates = enumerate_candidates(fast_options());
  ASSERT_GE(candidates.size(), 2u);
  const IirCandidate* fastest = &candidates.front();
  std::size_t best_margin = 0;
  for (const auto& c : candidates) {
    if (c.settling_cycles < fastest->settling_cycles) fastest = &c;
    best_margin = std::max(best_margin, c.max_stable_m);
  }
  EXPECT_LT(fastest->max_stable_m, best_margin);
}

TEST(IirDesign, ParetoFrontIsNonEmptyAndConsistent) {
  auto candidates = enumerate_candidates(fast_options());
  const auto front = pareto_front(candidates);
  ASSERT_FALSE(front.empty());
  ASSERT_LE(front.size(), candidates.size());
  // No front member dominates another front member.
  for (const auto& a : front) {
    for (const auto& b : front) {
      const bool dominates = a.settling_cycles <= b.settling_cycles &&
                             a.tau_ripple <= b.tau_ripple &&
                             a.max_stable_m >= b.max_stable_m &&
                             (a.settling_cycles < b.settling_cycles ||
                              a.tau_ripple < b.tau_ripple ||
                              a.max_stable_m > b.max_stable_m);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(IirDesign, PaperSetScoresCompetitively) {
  // Score the paper's 6-tap set in the same scenario and check it is not
  // dominated by miles: its ripple must be within 2 stages of the best
  // ripple and its delay margin at least the median.
  const auto options = fast_options();
  const auto paper = score_candidate(control::paper_iir_config(), options);
  const auto candidates = enumerate_candidates(options);
  double best_ripple = 1e9;
  for (const auto& c : candidates) {
    best_ripple = std::min(best_ripple, c.tau_ripple);
  }
  EXPECT_LE(paper.tau_ripple, best_ripple + 2.0);
  EXPECT_GE(paper.max_stable_m, 8u);
}

TEST(IirDesign, InvalidOptionsRejected) {
  DesignSpaceOptions bad = fast_options();
  bad.min_taps = 0;
  EXPECT_THROW((void)enumerate_candidates(bad), std::logic_error);
  DesignSpaceOptions swapped = fast_options();
  swapped.min_exponent = 2;
  swapped.max_exponent = -2;
  EXPECT_THROW((void)enumerate_candidates(swapped), std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
