#include "roclk/analysis/sweep_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "roclk/analysis/experiments.hpp"
#include "roclk/common/thread_pool.hpp"

namespace roclk::analysis {
namespace {

SweepKey key_of(double mu) {
  SweepKey key;
  key.kind = static_cast<int>(SystemKind::kIir);
  key.setpoint_c = 64.0;
  key.tclk_stages = 64.0;
  key.amplitude_stages = 12.8;
  key.period_stages = 1600.0;
  key.mu_stages = mu;
  key.cycles = 5000;
  key.skip = 1000;
  key.quantization = static_cast<int>(cdn::DelayQuantization::kLinearInterp);
  return key;
}

TEST(SweepMemo, StoreThenLookupRoundTrips) {
  SweepMemo memo;
  RunMetrics metrics;
  metrics.safety_margin = 3.5;
  metrics.mean_period = 66.0;
  metrics.violations = 7;
  metrics.tau_ripple = 1.25;
  memo.store(key_of(0.0), metrics);

  RunMetrics out;
  EXPECT_TRUE(memo.lookup(key_of(0.0), out));
  EXPECT_DOUBLE_EQ(out.safety_margin, 3.5);
  EXPECT_DOUBLE_EQ(out.mean_period, 66.0);
  EXPECT_EQ(out.violations, 7u);
  EXPECT_DOUBLE_EQ(out.tau_ripple, 1.25);

  EXPECT_FALSE(memo.lookup(key_of(1.0), out));
  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SweepMemo, DisabledMemoAlwaysMisses) {
  SweepMemo memo;
  memo.store(key_of(0.0), RunMetrics{});
  memo.set_enabled(false);
  EXPECT_FALSE(memo.enabled());
  RunMetrics out;
  EXPECT_FALSE(memo.lookup(key_of(0.0), out));
  memo.store(key_of(2.0), RunMetrics{});  // dropped while disabled
  memo.set_enabled(true);
  EXPECT_TRUE(memo.lookup(key_of(0.0), out));
  EXPECT_FALSE(memo.lookup(key_of(2.0), out));
}

TEST(SweepMemo, ClearDropsEntriesAndCounters) {
  SweepMemo memo;
  memo.store(key_of(0.0), RunMetrics{});
  RunMetrics out;
  (void)memo.lookup(key_of(0.0), out);
  memo.clear();
  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_FALSE(memo.lookup(key_of(0.0), out));
}

TEST(SweepMemo, CapacityBoundEvictsLeastRecentlyUsed) {
  SweepMemo memo;
  memo.set_capacity(2);
  EXPECT_EQ(memo.capacity(), 2u);
  memo.store(key_of(0.0), RunMetrics{});
  memo.store(key_of(1.0), RunMetrics{});

  // Touch 0.0 so 1.0 becomes least recently used, then overflow.
  RunMetrics out;
  EXPECT_TRUE(memo.lookup(key_of(0.0), out));
  memo.store(key_of(2.0), RunMetrics{});

  EXPECT_TRUE(memo.lookup(key_of(0.0), out));
  EXPECT_FALSE(memo.lookup(key_of(1.0), out));
  EXPECT_TRUE(memo.lookup(key_of(2.0), out));
  const auto stats = memo.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(SweepMemo, StoreRefreshesRecency) {
  SweepMemo memo;
  memo.set_capacity(2);
  memo.store(key_of(0.0), RunMetrics{});
  memo.store(key_of(1.0), RunMetrics{});
  memo.store(key_of(0.0), RunMetrics{});  // refresh: 1.0 is now LRU
  memo.store(key_of(2.0), RunMetrics{});  // evicts 1.0
  RunMetrics out;
  EXPECT_TRUE(memo.lookup(key_of(0.0), out));
  EXPECT_FALSE(memo.lookup(key_of(1.0), out));
}

TEST(SweepMemo, ShrinkingCapacityEvictsImmediately) {
  SweepMemo memo;
  memo.store(key_of(0.0), RunMetrics{});
  memo.store(key_of(1.0), RunMetrics{});
  memo.store(key_of(2.0), RunMetrics{});
  EXPECT_EQ(memo.stats().entries, 3u);
  memo.set_capacity(1);
  EXPECT_EQ(memo.stats().entries, 1u);
  EXPECT_EQ(memo.stats().evictions, 2u);
  // The survivor is the most recently stored key.
  RunMetrics out;
  EXPECT_TRUE(memo.lookup(key_of(2.0), out));
}

TEST(SweepMemo, ZeroCapacityRestoresUnboundedGrowth) {
  SweepMemo memo;
  memo.set_capacity(1);
  memo.set_capacity(0);
  for (double mu = 0.0; mu < 8.0; mu += 1.0) {
    memo.store(key_of(mu), RunMetrics{});
  }
  EXPECT_EQ(memo.stats().entries, 8u);
  EXPECT_EQ(memo.stats().evictions, 0u);
}

TEST(SweepMemo, LoadFileRespectsTheCapacityBound) {
  const std::string path = "sweep_memo_capacity_test.bin";
  {
    SweepMemo memo;
    for (double mu = 0.0; mu < 4.0; mu += 1.0) {
      memo.store(key_of(mu), RunMetrics{});
    }
    ASSERT_TRUE(memo.save_file(path).is_ok());
  }
  SweepMemo bounded;
  bounded.set_capacity(2);
  ASSERT_TRUE(bounded.load_file(path).is_ok());
  EXPECT_EQ(bounded.stats().entries, 2u);
  std::filesystem::remove(path);
}

TEST(SweepMemo, MeasureSystemHitsOnRepeatAndRenormalises) {
  auto& memo = SweepMemo::global();
  memo.clear();
  const auto first =
      measure_system(SystemKind::kIir, 64.0, 64.0, 12.8, 1600.0, 0.0,
                     /*fixed_period=*/76.8, 5000, 1000);
  const auto before = memo.stats();
  EXPECT_GE(before.misses, 1u);
  EXPECT_GE(before.entries, 1u);

  // Identical parameters: served from the memo.
  const auto again =
      measure_system(SystemKind::kIir, 64.0, 64.0, 12.8, 1600.0, 0.0,
                     76.8, 5000, 1000);
  const auto after = memo.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(again.relative_adaptive_period, first.relative_adaptive_period);
  EXPECT_EQ(again.mean_period, first.mean_period);
  EXPECT_EQ(again.safety_margin, first.safety_margin);
  EXPECT_EQ(again.violations, first.violations);

  // A different T_fixed reuses the simulation but renormalises the
  // relative period (T_fixed is not part of the key).
  const auto renorm =
      measure_system(SystemKind::kIir, 64.0, 64.0, 12.8, 1600.0, 0.0,
                     89.6, 5000, 1000);
  EXPECT_EQ(memo.stats().hits, before.hits + 2);
  EXPECT_DOUBLE_EQ(
      renorm.relative_adaptive_period,
      (first.mean_period + first.safety_margin) / 89.6);
}

TEST(SweepMemo, ThreadSafeUnderConcurrentSweep) {
  auto& memo = SweepMemo::global();
  memo.clear();
  std::atomic<int> mismatches{0};
  // Hammer the same small key set from many parallel workers; every result
  // must be internally consistent regardless of hit/miss interleaving.
  parallel_for(64, [&](std::size_t i) {
    const double mu = static_cast<double>(i % 4);
    const auto m =
        measure_system(SystemKind::kTeaTime, 64.0, 64.0, 12.8, 400.0, mu,
                       76.8, 3000, 600);
    if (m.mean_period <= 0.0) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = memo.stats();
  EXPECT_EQ(stats.hits + stats.misses, 64u);
  // Only 4 distinct cells exist; everything else is served from the memo.
  // Workers racing on a cold key can each miss it once, so the bound is
  // one miss per key per concurrent thread (pool workers + the caller).
  const std::size_t worst_misses = 4 * (ThreadPool::shared().size() + 1);
  EXPECT_GE(stats.hits + worst_misses, 64u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 4u);
}

// ---------------------------------------------------------- persistence

namespace fs = std::filesystem;

class SweepMemoFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("roclk_sweep_memo_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".bin"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  static SweepMemo& filled_memo(SweepMemo& memo) {
    memo.clear();
    for (int i = 0; i < 5; ++i) {
      RunMetrics metrics;
      metrics.safety_margin = 1.0 + i;
      metrics.mean_period = 64.0 + 0.25 * i;
      metrics.violations = static_cast<std::size_t>(3 * i);
      metrics.tau_ripple = 0.5 * i;
      memo.store(key_of(static_cast<double>(i)), metrics);
    }
    return memo;
  }

  std::string path_;
};

TEST_F(SweepMemoFileTest, SaveThenLoadRoundTripsEveryEntry) {
  SweepMemo a;
  ASSERT_TRUE(filled_memo(a).save_file(path_).is_ok());

  SweepMemo b;
  b.store(key_of(99.0), RunMetrics{});  // replaced by the load
  ASSERT_TRUE(b.load_file(path_).is_ok());
  EXPECT_EQ(b.stats().entries, 5u);
  RunMetrics out;
  EXPECT_FALSE(b.lookup(key_of(99.0), out));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b.lookup(key_of(static_cast<double>(i)), out)) << i;
    EXPECT_DOUBLE_EQ(out.safety_margin, 1.0 + i);
    EXPECT_DOUBLE_EQ(out.mean_period, 64.0 + 0.25 * i);
    EXPECT_EQ(out.violations, static_cast<std::size_t>(3 * i));
    EXPECT_DOUBLE_EQ(out.tau_ripple, 0.5 * i);
  }
}

TEST_F(SweepMemoFileTest, MissingFileDegradesToEmptyMemo) {
  SweepMemo memo;
  filled_memo(memo);
  const Status status = memo.load_file(path_ + ".does-not-exist");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(memo.stats().entries, 0u);  // degraded, not preserved
}

TEST_F(SweepMemoFileTest, TornWriteDegradesToEmptyMemoWithoutThrowing) {
  SweepMemo a;
  ASSERT_TRUE(filled_memo(a).save_file(path_).is_ok());
  std::string bytes;
  {
    std::ifstream in{path_, std::ios::binary};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 32u);

  // Simulate a torn write at several truncation points: whatever prefix
  // survived, the load must degrade to an empty memo, not throw.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, bytes.size() / 2,
        bytes.size() - 8, bytes.size() - 1}) {
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " bytes");
    {
      std::ofstream out{path_, std::ios::binary | std::ios::trunc};
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    SweepMemo memo;
    filled_memo(memo);
    const Status status = memo.load_file(path_);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(memo.stats().entries, 0u);
  }
}

TEST_F(SweepMemoFileTest, CorruptPayloadFailsTheChecksum) {
  SweepMemo a;
  ASSERT_TRUE(filled_memo(a).save_file(path_).is_ok());
  // Flip one byte in the middle of the payload.
  {
    std::fstream file{path_, std::ios::binary | std::ios::in | std::ios::out};
    file.seekp(static_cast<std::streamoff>(fs::file_size(path_) / 2));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    file.write(&byte, 1);
  }
  SweepMemo memo;
  const Status status = memo.load_file(path_);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(memo.stats().entries, 0u);
}

TEST_F(SweepMemoFileTest, WrongMagicIsRejected) {
  {
    std::ofstream out{path_, std::ios::binary};
    const std::string garbage(64, 'x');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  SweepMemo memo;
  filled_memo(memo);
  EXPECT_FALSE(memo.load_file(path_).is_ok());
  EXPECT_EQ(memo.stats().entries, 0u);
}

}  // namespace
}  // namespace roclk::analysis
