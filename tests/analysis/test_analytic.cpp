#include "roclk/analysis/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::analysis {
namespace {

TEST(Analytic, Equation1PointwiseMismatch) {
  signal::SineWaveform nu{1.0, 100.0};
  // dnu(t) = nu(t) - nu(t - t_clk).
  EXPECT_NEAR(cdn_mismatch(nu, 30.0, 10.0), nu.at(30.0) - nu.at(20.0), 1e-12);
  EXPECT_NEAR(cdn_mismatch(nu, 0.0, 0.0), 0.0, 1e-12);
}

TEST(Analytic, Equation2KnownValues) {
  // 2 nu0 |sin(pi t/T)|.
  EXPECT_NEAR(harmonic_worst_mismatch(0.0, 100.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(harmonic_worst_mismatch(50.0, 100.0, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(harmonic_worst_mismatch(100.0, 100.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(harmonic_worst_mismatch(25.0, 100.0, 1.0), std::sqrt(2.0),
              1e-12);
  // Amplitude scales linearly; sign of amplitude irrelevant.
  EXPECT_NEAR(harmonic_worst_mismatch(50.0, 100.0, -0.2), 0.4, 1e-12);
}

TEST(Analytic, Equation3PiecewiseShape) {
  // Rising branch: 2 nu0 t/T up to 1/2, then flat at nu0.
  EXPECT_NEAR(single_event_worst_mismatch(0.0, 100.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(single_event_worst_mismatch(25.0, 100.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(single_event_worst_mismatch(50.0, 100.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(single_event_worst_mismatch(75.0, 100.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(single_event_worst_mismatch(1000.0, 100.0, 1.0), 1.0, 1e-12);
}

TEST(Analytic, BenefitBoundaryAtSixthOfPeriod) {
  const double period = 600.0;
  EXPECT_DOUBLE_EQ(harmonic_benefit_limit(period), 100.0);
  // Inside the first benefit window.
  EXPECT_TRUE(harmonic_ro_beneficial(99.0, period));
  // Outside: the RO *adds* mismatch (2|sin| > 1).
  EXPECT_FALSE(harmonic_ro_beneficial(101.0, period));
  EXPECT_FALSE(harmonic_ro_beneficial(300.0, period));  // half period: worst
  // Islands around integer multiples of the period: (n - 1/6, n + 1/6) T.
  EXPECT_TRUE(harmonic_ro_beneficial(599.0, period));
  EXPECT_TRUE(harmonic_ro_beneficial(601.0, period));
  EXPECT_TRUE(harmonic_ro_beneficial(2.0 * period + 50.0, period));
  EXPECT_FALSE(harmonic_ro_beneficial(1.5 * period, period));
}

TEST(Analytic, NumericWorstMatchesEquation2) {
  // Property check of eq. 2 against direct grid search over eq. 1.
  signal::SineWaveform nu{0.2, 640.0};
  for (double t_clk : {10.0, 64.0, 160.0, 320.0, 500.0, 640.0}) {
    const double analytic = harmonic_worst_mismatch(t_clk, 640.0, 0.2);
    const double numeric = numeric_worst_mismatch(nu, 640.0, t_clk);
    EXPECT_NEAR(numeric, analytic, 2e-3) << "t_clk " << t_clk;
  }
}

TEST(Analytic, NumericWorstMatchesEquation3ForTriangle) {
  // For the triangular single event the worst mismatch over a window
  // containing the pulse must match eq. 3.
  const double duration = 200.0;
  signal::TrianglePulseWaveform pulse{0.3, 300.0, duration};
  for (double t_clk : {20.0, 60.0, 100.0, 150.0, 400.0}) {
    const double analytic = single_event_worst_mismatch(t_clk, duration, 0.3);
    // Search a window covering pulse +/- t_clk.
    double worst = 0.0;
    for (int i = 0; i <= 20000; ++i) {
      const double t = i * 0.05;
      worst = std::max(worst, std::fabs(cdn_mismatch(pulse, t, t_clk)));
    }
    EXPECT_NEAR(worst, analytic, 2e-3) << "t_clk " << t_clk;
  }
}

// Parameterised reproduction of the Fig. 2 axes: for every sampled
// t_clk/T_nu, harmonic mismatch is bounded by 2 nu0 and periodic in t_clk.
class Fig2Property : public ::testing::TestWithParam<double> {};

TEST_P(Fig2Property, HarmonicCurveBoundedAndPeriodic) {
  const double ratio = GetParam();
  const double period = 512.0;
  const double m = harmonic_worst_mismatch(ratio * period, period, 1.0);
  EXPECT_GE(m, 0.0);
  EXPECT_LE(m, 2.0 + 1e-12);
  const double m_shift =
      harmonic_worst_mismatch((ratio + 1.0) * period, period, 1.0);
  EXPECT_NEAR(m, m_shift, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ratios, Fig2Property,
                         ::testing::Values(0.05, 1.0 / 6.0, 0.25, 0.5, 0.75,
                                           0.9, 1.0, 1.4, 2.3, 3.5));

}  // namespace
}  // namespace roclk::analysis
