#include "roclk/analysis/metrics.hpp"

#include <gtest/gtest.h>

namespace roclk::analysis {
namespace {

core::SimulationTrace toy_trace() {
  core::SimulationTrace trace;
  for (double tau : {60.0, 64.0, 62.0, 66.0}) {
    core::StepRecord r;
    r.tau = tau;
    r.delta = 64.0 - tau;
    r.t_dlv = 64.0;
    r.violation = tau < 64.0;
    trace.push(r);
  }
  return trace;
}

TEST(Metrics, EvaluateRunComputesMarginMeanAndRatio) {
  const auto trace = toy_trace();
  const auto m = evaluate_run(trace, 64.0, 76.8, 0);
  EXPECT_DOUBLE_EQ(m.safety_margin, 4.0);  // worst tau = 60
  EXPECT_DOUBLE_EQ(m.mean_period, 64.0);
  EXPECT_DOUBLE_EQ(m.relative_adaptive_period, 68.0 / 76.8);
  EXPECT_EQ(m.violations, 2u);
  EXPECT_DOUBLE_EQ(m.tau_ripple, 6.0);
}

TEST(Metrics, SkipDropsTransient) {
  const auto trace = toy_trace();
  const auto m = evaluate_run(trace, 64.0, 76.8, 1);
  EXPECT_DOUBLE_EQ(m.safety_margin, 2.0);  // worst after skip: 62
  EXPECT_EQ(m.violations, 1u);
}

TEST(Metrics, EvaluateRunPreconditions) {
  const auto trace = toy_trace();
  EXPECT_THROW((void)evaluate_run(trace, 64.0, 0.0, 0), std::logic_error);
  EXPECT_THROW((void)evaluate_run(trace, 64.0, 76.8, 99), std::logic_error);
}

TEST(Metrics, FixedClockPeriodMatchesPaperWorkedExamples) {
  // Section IV-A: 20% HoDV -> 1.2 ns at c = 64 <-> T_fixed = 76.8 stages.
  EXPECT_DOUBLE_EQ(fixed_clock_period(64.0, 12.8), 76.8);
  // Section IV-B: + 20% mismatch -> 1.4 ns <-> 89.6 stages (paper: c=90).
  EXPECT_DOUBLE_EQ(fixed_clock_period(64.0, 12.8, 12.8), 89.6);
}

TEST(Metrics, SafetyMarginReductionPaperArithmetic) {
  // Paper IV-A: adaptive clock allows 10% reduction of the needed c:
  // adaptive period = 1.08 ns vs fixed 1.2 ns -> 60% of the 0.2 ns margin.
  const double t_fixed = 76.8;
  const double adaptive_period = 0.9 * t_fixed;  // c reduced by 10%: 69.12
  const double relative = adaptive_period / t_fixed;
  const double reduction = safety_margin_reduction(relative, t_fixed, 64.0);
  EXPECT_NEAR(reduction, 0.6, 1e-9);

  // Paper IV-B: 20% reduction of the needed c at T_fixed = 1.4 ns -> 70%.
  const double t_fixed2 = 89.6;
  const double relative2 = 0.8 * t_fixed2 / t_fixed2;
  const double reduction2 =
      safety_margin_reduction(relative2, t_fixed2, 64.0);
  EXPECT_NEAR(reduction2, (89.6 - 64.0 - (0.8 * 89.6 - 64.0)) / 25.6, 1e-9);
  EXPECT_NEAR(reduction2, 0.7, 0.001);
}

TEST(Metrics, NoReductionWhenAdaptiveEqualsFixed) {
  EXPECT_NEAR(safety_margin_reduction(1.0, 76.8, 64.0), 0.0, 1e-12);
}

TEST(Metrics, NegativeReductionWhenAdaptiveWorse) {
  EXPECT_LT(safety_margin_reduction(1.1, 76.8, 64.0), 0.0);
}

TEST(Metrics, ReductionRejectsZeroMargin) {
  EXPECT_THROW((void)safety_margin_reduction(1.0, 64.0, 64.0),
               std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
