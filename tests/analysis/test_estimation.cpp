#include "roclk/analysis/estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "roclk/analysis/experiments.hpp"
#include "roclk/common/math.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace roclk::analysis {
namespace {

TEST(CrossCorrelation, PerfectAtTrueLag) {
  std::vector<double> x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.13 * static_cast<double>(i)) +
           0.3 * std::sin(0.041 * static_cast<double>(i));
  }
  std::vector<double> y(x.size(), 0.0);
  const std::ptrdiff_t true_lag = 7;
  for (std::size_t i = 7; i < y.size(); ++i) y[i] = x[i - 7];
  // Near-perfect (y's zero-padded head shifts the global means slightly).
  EXPECT_NEAR(cross_correlation_at_lag(x, y, true_lag), 1.0, 1e-2);
  EXPECT_LT(cross_correlation_at_lag(x, y, 0), 0.9);
  EXPECT_EQ(best_lag(x, y, 0, 20), true_lag);
}

TEST(CrossCorrelation, MeanInvariance) {
  std::vector<double> x{1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 2.0};
  std::vector<double> shifted(x);
  for (double& v : shifted) v += 100.0;
  EXPECT_NEAR(cross_correlation_at_lag(x, shifted, 0), 1.0, 1e-12);
}

TEST(CrossCorrelation, Preconditions) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{1.0};
  EXPECT_THROW((void)cross_correlation_at_lag(x, y, 0), std::logic_error);
  EXPECT_THROW((void)best_lag(x, x, 3, 1), std::logic_error);
}

class LoopDelayRecovery : public ::testing::TestWithParam<int> {};

TEST_P(LoopDelayRecovery, FreeRoTraceRevealsEffectiveDelay) {
  // Ground truth: the free-RO loop's transport is M + 2 cycles with
  // M = t_clk / c.
  const int m = GetParam();
  const double c = 64.0;
  auto sim = make_system(SystemKind::kFreeRo, c, static_cast<double>(m) * c,
                         0.0, cdn::DelayQuantization::kRound);
  // Broadband-ish perturbation: two incommensurate tones.
  core::SimulationInputs inputs;
  const std::function<double(double)> e_of = [c](double t) {
    return 4.0 * std::sin(kTwoPi * t / (17.3 * c)) +
           2.5 * std::sin(kTwoPi * t / (41.7 * c));
  };
  inputs.e_ro = e_of;
  inputs.e_tdc = e_of;
  const auto trace = sim.run(inputs, 2000);

  std::vector<double> e(2000);
  for (std::size_t n = 0; n < e.size(); ++n) {
    e[n] = e_of(static_cast<double>(n) * c);
  }
  // Skip the fill-in transient.
  const std::size_t skip = 64;
  const auto err_full = trace.timing_error(c);
  const std::vector<double> err(err_full.begin() + skip, err_full.end());
  const std::vector<double> pert(e.begin() + skip, e.end());

  const auto estimate = estimate_loop_delay(err, pert);
  ASSERT_TRUE(estimate.is_ok()) << estimate.status().to_string();
  EXPECT_EQ(estimate.value().delay_cycles, m + 2);
  EXPECT_GT(estimate.value().correlation, 0.95);
}

INSTANTIATE_TEST_SUITE_P(CdnDelays, LoopDelayRecovery,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(LoopDelay, RejectsIncoherentTraces) {
  std::vector<double> noise(512);
  std::vector<double> tone(512);
  std::uint64_t s = 5;
  for (std::size_t i = 0; i < noise.size(); ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    noise[i] = static_cast<double>(s >> 40) / 1e6;
    tone[i] = std::sin(0.2 * static_cast<double>(i));
  }
  const auto estimate = estimate_loop_delay(noise, tone);
  EXPECT_FALSE(estimate.is_ok());
}

TEST(LoopDelay, RejectsShortTraces) {
  std::vector<double> x(16, 1.0);
  EXPECT_FALSE(estimate_loop_delay(x, x, 64).is_ok());
}

TEST(Attenuation, MatchesKnownRatios) {
  const double period = 40.0;
  std::vector<double> pert(4000);
  std::vector<double> err(4000);
  for (std::size_t n = 0; n < pert.size(); ++n) {
    const double phase = kTwoPi * static_cast<double>(n) / period;
    pert[n] = 8.0 * std::sin(phase);
    err[n] = 2.0 * std::sin(phase + 0.7);  // attenuated + phase-shifted
  }
  EXPECT_NEAR(measured_attenuation(err, pert, period), 0.25, 1e-6);
}

TEST(Attenuation, IirLoopAttenuatesSlowTonesEndToEnd) {
  const double c = 64.0;
  const double te = 200.0;
  auto sim = make_system(SystemKind::kIir, c, c);
  const auto trace =
      sim.run(core::SimulationInputs::harmonic(6.0, te * c), 8000);
  std::vector<double> pert(8000);
  for (std::size_t n = 0; n < pert.size(); ++n) {
    pert[n] = 6.0 * std::sin(kTwoPi * static_cast<double>(n) / te);
  }
  const auto err_full = trace.timing_error(c);
  const std::vector<double> err(err_full.begin() + 2000, err_full.end());
  const std::vector<double> p(pert.begin() + 2000, pert.end());
  EXPECT_LT(measured_attenuation(err, p, te), 0.35);
}

}  // namespace
}  // namespace roclk::analysis
