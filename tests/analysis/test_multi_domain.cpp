#include "roclk/analysis/multi_domain.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/scenario.hpp"
#include "roclk/variation/sources.hpp"

namespace roclk::analysis {
namespace {

MultiDomainConfig small_config() {
  MultiDomainConfig cfg;
  cfg.die_size_mm = 8.0;
  cfg.cycles = 3000;
  cfg.transient_skip = 800;
  return cfg;
}

TEST(MultiDomain, GeometryScalesWithPartitioning) {
  const auto env = variation::make_harmonic_hodv(0.1, 50.0 * 64.0);
  auto cfg = small_config();
  cfg.side = 1;
  const auto whole = run_partitioning(cfg, *env, 76.8);
  cfg.side = 4;
  const auto split = run_partitioning(cfg, *env, 76.8);
  EXPECT_EQ(whole.domains, 1u);
  EXPECT_EQ(split.domains, 16u);
  EXPECT_DOUBLE_EQ(split.domain_size_mm, 2.0);
  EXPECT_LT(split.cdn_delay_stages, whole.cdn_delay_stages);
  EXPECT_EQ(split.per_domain.size(), 16u);
}

TEST(MultiDomain, PartitioningShrinksMarginUnderFastHoDV) {
  // Pick the HoDV period so the whole-die t_clk violates the T/6 budget
  // while quarter-die domains respect it.
  auto cfg = small_config();
  cfg.side = 1;
  const double whole_tclk =
      chip::ClockDomainGeometry{[&] {
        auto t = cfg.tree;
        t.size_mm = cfg.die_size_mm;
        return t;
      }()}.cdn_delay_stages();
  const double te = 4.0 * whole_tclk;  // t_clk = Te/4 > Te/6: bad for K=1
  const auto env = variation::make_harmonic_hodv(0.15, te);
  const double fixed = 64.0 * 1.15;

  const auto whole = run_partitioning(cfg, *env, fixed);
  cfg.side = 4;
  const auto split = run_partitioning(cfg, *env, fixed);
  EXPECT_LT(split.worst_safety_margin, whole.worst_safety_margin);
  EXPECT_LT(split.worst_relative_period, whole.worst_relative_period);
}

TEST(MultiDomain, QuietEnvironmentNeedsNoMarginAnywhere) {
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  auto cfg = small_config();
  cfg.side = 2;
  const auto result = run_partitioning(cfg, quiet, 76.8);
  EXPECT_DOUBLE_EQ(result.worst_safety_margin, 0.0);
  for (const auto& domain : result.per_domain) {
    EXPECT_EQ(domain.metrics.violations, 0u);
  }
}

TEST(MultiDomain, LocalHotspotOnlyStretchesItsOwnDomain) {
  // A hotspot in the north-east quadrant: with side = 2, exactly one
  // domain should pay for it.
  variation::TemperatureHotspot hotspot{0.15, {0.85, 0.85}, 0.08, 0.0, 1.0};
  auto cfg = small_config();
  cfg.side = 2;
  const auto result = run_partitioning(cfg, hotspot, 64.0 * 1.15);
  int stretched = 0;
  for (const auto& domain : result.per_domain) {
    if (domain.metrics.mean_period > 64.0 * 1.07) ++stretched;
  }
  EXPECT_EQ(stretched, 1);
  // And it is the NE domain.
  const auto& ne = result.per_domain[3];  // ix=1, iy=1
  EXPECT_GT(ne.centre.x, 0.5);
  EXPECT_GT(ne.centre.y, 0.5);
  EXPECT_GT(ne.metrics.mean_period, 64.0 * 1.07);
}

TEST(MultiDomain, SweepProducesOneResultPerSide) {
  const auto env = variation::make_harmonic_hodv(0.1, 100.0 * 64.0);
  const std::vector<std::size_t> sides{1, 2, 3};
  const auto results =
      partitioning_sweep(small_config(), *env, 76.8, sides);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].domains, 1u);
  EXPECT_EQ(results[1].domains, 4u);
  EXPECT_EQ(results[2].domains, 9u);
}

TEST(MultiDomain, Preconditions) {
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  auto bad = small_config();
  bad.side = 0;
  EXPECT_THROW((void)run_partitioning(bad, quiet, 76.8), std::logic_error);
  auto skip = small_config();
  skip.transient_skip = skip.cycles;
  EXPECT_THROW((void)run_partitioning(skip, quiet, 76.8), std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
