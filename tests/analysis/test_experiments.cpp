#include "roclk/analysis/experiments.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "roclk/common/stats.hpp"

namespace roclk::analysis {
namespace {

// Cheap parameters for unit-level checks; the benches use the defaults.
ExperimentParams fast_params() {
  ExperimentParams p;
  p.min_cycles = 2000;
  p.transient_skip = 500;
  p.periods_of_perturbation = 8.0;
  return p;
}

TEST(Experiments, MakeSystemBuildsAllKinds) {
  for (auto kind : kAllSystems) {
    auto sim = make_system(kind, 64.0, 64.0);
    const auto trace = sim.run(core::SimulationInputs::none(), 50);
    EXPECT_EQ(trace.violation_count(), 0u) << to_string(kind);
  }
}

TEST(Experiments, CyclesForScalesWithPerturbationPeriod) {
  const auto p = fast_params();
  EXPECT_LT(cycles_for(p, 10.0), cycles_for(p, 1000.0));
  EXPECT_LE(cycles_for(p, 1e9), p.max_cycles);
}

TEST(Experiments, LogSpaceEndpointsAndMonotonicity) {
  const auto xs = log_space(0.1, 10.0, 9);
  ASSERT_EQ(xs.size(), 9u);
  EXPECT_NEAR(xs.front(), 0.1, 1e-12);
  EXPECT_NEAR(xs.back(), 10.0, 1e-9);
  EXPECT_NEAR(xs[4], 1.0, 1e-9);  // geometric midpoint
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  EXPECT_THROW((void)log_space(0.0, 1.0, 4), std::logic_error);
  EXPECT_THROW((void)log_space(1.0, 10.0, 1), std::logic_error);
}

TEST(Experiments, MeasureSystemQuietEnvironmentIsPerfect) {
  const auto m = measure_system(SystemKind::kIir, 64.0, 64.0,
                                /*amplitude=*/0.0, /*period=*/1600.0,
                                /*mu=*/0.0, /*fixed=*/76.8,
                                /*cycles=*/2000, /*skip=*/500);
  EXPECT_DOUBLE_EQ(m.safety_margin, 0.0);
  EXPECT_EQ(m.violations, 0u);
  EXPECT_NEAR(m.relative_adaptive_period, 64.0 / 76.8, 1e-6);
}

TEST(Experiments, Fig7WindowAndSystems) {
  const auto result = fig7_timing_error(25.0, 1.0, 500, 600, fast_params());
  EXPECT_EQ(result.traces.size(), 4u);
  for (const auto& t : result.traces) {
    EXPECT_EQ(t.timing_error.size(), 101u);
  }
  // The fixed clock's error amplitude ~ the full perturbation (12.8).
  const auto& fixed = result.traces[3];
  EXPECT_EQ(fixed.system, SystemKind::kFixedClock);
  EXPECT_NEAR(peak_to_peak(fixed.timing_error), 2.0 * 12.8, 2.0);
}

TEST(Experiments, Fig7SlowerPerturbationShrinksAdaptiveError) {
  // The paper's Fig. 7 storyline: from Te = 25c to 50c the adaptive error
  // shrinks while the fixed clock's stays put.
  const auto fast = fig7_timing_error(25.0, 1.0, 500, 600, fast_params());
  const auto slow = fig7_timing_error(50.0, 1.0, 500, 600, fast_params());
  const auto amp = [](const Fig7Trace& t) {
    return peak_to_peak(t.timing_error);
  };
  // IIR trace (index 0) improves markedly.
  EXPECT_LT(amp(slow.traces[0]), 0.7 * amp(fast.traces[0]));
  // Fixed clock (index 3) does not care.
  EXPECT_NEAR(amp(slow.traces[3]), amp(fast.traces[3]), 1.5);
}

TEST(Experiments, Fig8RowStructure) {
  const std::vector<double> xs{0.5, 1.0};
  const auto rows = fig8_cdn_delay_sweep(xs, 100.0, fast_params());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.iir, 0.5);
    EXPECT_LT(row.iir, 1.4);
    EXPECT_GT(row.teatime, 0.5);
    EXPECT_GT(row.free_ro, 0.5);
  }
  EXPECT_DOUBLE_EQ(rows[0].x, 0.5);
}

TEST(Experiments, Fig8AdaptiveBeatsFixedAtSlowPerturbation) {
  // At T_e = 200c, t_clk = 1c all three adaptive systems must be below 1.
  const std::vector<double> xs{200.0};
  const auto rows = fig8_frequency_sweep(xs, 1.0, fast_params());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LT(rows[0].iir, 1.0);
  EXPECT_LT(rows[0].teatime, 1.0);
  EXPECT_LT(rows[0].free_ro, 1.0);
}

TEST(Experiments, Fig9CellStructureAndFreeRoFlat) {
  const std::vector<double> mu{-0.2, 0.0, 0.2};
  const auto cell = fig9_mismatch_sweep(1.0, 37.5, mu, fast_params());
  ASSERT_EQ(cell.mu_over_c.size(), 3u);
  ASSERT_EQ(cell.iir.size(), 3u);
  // The free RO cannot react to mu and its margin is design-fixed, so its
  // curve must be flat across the sweep.
  EXPECT_NEAR(cell.free_ro[0], cell.free_ro[2], 1e-9);
  // Closed-loop systems profit from positive mu (shorter period).
  EXPECT_LT(cell.iir[2], cell.iir[0]);
  EXPECT_LT(cell.teatime[2], cell.teatime[0]);
}

TEST(Experiments, WorkedExampleTranslatesToNanoseconds) {
  // relative = 0.9 at T_fixed = 76.8 stages (1.2 ns): adaptive = 1.08 ns.
  const auto ex = worked_example(0.9, 76.8, 64.0);
  EXPECT_NEAR(ex.fixed_period_ns, 1.2, 1e-12);
  EXPECT_NEAR(ex.adaptive_period_ns, 1.08, 1e-12);
  EXPECT_NEAR(ex.margin_saved_ns, 0.12, 1e-12);
  EXPECT_NEAR(ex.margin_reduction, 0.6, 1e-9);
}

}  // namespace
}  // namespace roclk::analysis
