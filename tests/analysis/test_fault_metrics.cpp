#include "roclk/analysis/fault_metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace roclk::analysis {
namespace {

using core::SimulationTrace;
using core::StepRecord;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultSchedule;

/// Trace with |delta| given per cycle; a cycle is a violation iff its
/// entry is negative (delta is stored as given either way).
SimulationTrace trace_of(const std::vector<double>& deltas,
                         const std::vector<std::size_t>& violations = {}) {
  SimulationTrace trace;
  for (std::size_t k = 0; k < deltas.size(); ++k) {
    StepRecord record;
    record.delta = deltas[k];
    record.tau = 64.0 - deltas[k];
    for (const std::size_t v : violations) {
      if (v == k) record.violation = true;
    }
    trace.push(record);
  }
  return trace;
}

TEST(ScheduleSpan, CoversAllEventsAndDetectsPermanence) {
  FaultSchedule schedule;
  EXPECT_EQ(schedule_span(schedule).start, 0u);
  ASSERT_TRUE(schedule_span(schedule).end.has_value());
  EXPECT_EQ(*schedule_span(schedule).end, 0u);

  schedule.add({FaultKind::kTdcGlitch, 40, 10, 1.0})
      .add({FaultKind::kVoltageDroop, 20, 5, 2.0});
  FaultSpan span = schedule_span(schedule);
  EXPECT_EQ(span.start, 20u);
  ASSERT_TRUE(span.end.has_value());
  EXPECT_EQ(*span.end, 50u);

  schedule.add({FaultKind::kTdcStuckAt, 30, FaultEvent::kPermanent, 5.0});
  span = schedule_span(schedule);
  EXPECT_EQ(span.start, 20u);
  EXPECT_FALSE(span.end.has_value());
}

TEST(FaultRecovery, SplitsViolationsByWindowPosition) {
  // 12 cycles, fault window [4, 8): violations at 1 (before), 5 (during),
  // 9 and 10 (after).
  const auto trace = trace_of(std::vector<double>(12, 0.0), {1, 5, 9, 10});
  const auto metrics = evaluate_fault_recovery(trace, 4, 8);
  EXPECT_EQ(metrics.violations_before, 1u);
  EXPECT_EQ(metrics.violations_during, 1u);
  EXPECT_EQ(metrics.violations_after, 2u);
}

TEST(FaultRecovery, PermanentFaultCountsEverythingAsDuringAndNeverRelocks) {
  const auto trace = trace_of(std::vector<double>(10, 0.0), {2, 7});
  const auto metrics = evaluate_fault_recovery(trace, 1, std::nullopt);
  EXPECT_EQ(metrics.violations_during, 2u);
  EXPECT_EQ(metrics.violations_after, 0u);
  EXPECT_FALSE(metrics.relocked);
  EXPECT_EQ(metrics.relock_latency, 0u);
}

TEST(FaultRecovery, RelockLatencyCountsToTheStreaksFirstCycle) {
  // Fault ends at cycle 4; deltas stay out of bound until cycle 7, then a
  // lock_cycles = 3 streak starts at cycle 7 => latency 3.
  FaultRecoveryConfig config;
  config.lock_bound = 2.0;
  config.lock_cycles = 3;
  config.tail_cycles = 2;
  config.reconverge_bound = 1.0;
  const auto trace =
      trace_of({0.0, 0.0, 50.0, 50.0, 50.0, 40.0, 30.0, 1.0, 1.0, 0.5});
  const auto metrics = evaluate_fault_recovery(trace, 2, 4, config);
  EXPECT_TRUE(metrics.relocked);
  EXPECT_EQ(metrics.relock_latency, 3u);
  EXPECT_TRUE(metrics.reconverged);
  EXPECT_DOUBLE_EQ(metrics.tail_max_abs_delta, 1.0);
}

TEST(FaultRecovery, ImmediateRelockHasZeroLatency) {
  FaultRecoveryConfig config;
  config.lock_cycles = 2;
  config.tail_cycles = 2;
  const auto trace = trace_of({0.0, 50.0, 0.0, 0.0, 0.0});
  const auto metrics = evaluate_fault_recovery(trace, 1, 2, config);
  EXPECT_TRUE(metrics.relocked);
  EXPECT_EQ(metrics.relock_latency, 0u);
}

TEST(FaultRecovery, BrokenStreaksDoNotRelock) {
  FaultRecoveryConfig config;
  config.lock_cycles = 3;
  config.tail_cycles = 1;
  config.reconverge_bound = 0.5;
  // In-bound pairs separated by excursions: never 3 in a row.
  const auto trace =
      trace_of({0.0, 9.0, 1.0, 1.0, 9.0, 1.0, 1.0, 9.0, 1.0, 1.0, 9.0});
  const auto metrics = evaluate_fault_recovery(trace, 1, 2, config);
  EXPECT_FALSE(metrics.relocked);
  EXPECT_FALSE(metrics.reconverged);  // tail sample is 9.0
  EXPECT_DOUBLE_EQ(metrics.tail_max_abs_delta, 9.0);
}

TEST(FaultRecovery, ScheduleOverloadDerivesTheWindow) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kTdcGlitch, 3, 2, 10.0});
  std::vector<double> deltas(20, 0.0);
  deltas[3] = 30.0;
  deltas[4] = 30.0;
  const auto trace = trace_of(deltas, {4});
  FaultRecoveryConfig config;
  config.tail_cycles = 8;  // keep the tail clear of the fault window
  const auto metrics = evaluate_fault_recovery(trace, schedule, config);
  EXPECT_EQ(metrics.violations_during, 1u);
  EXPECT_TRUE(metrics.relocked);
  EXPECT_EQ(metrics.relock_latency, 0u);
  EXPECT_TRUE(metrics.reconverged);
}

TEST(HardeningVerdict, ComparesGuardedAgainstBaseline) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kTdcStuckAt, 2, 3, 100.0});
  FaultRecoveryConfig config;
  config.lock_cycles = 2;
  config.tail_cycles = 4;

  // Guarded: one violation during, clean afterwards, reconverges.
  std::vector<double> guarded_deltas(24, 0.0);
  guarded_deltas[3] = 5.0;
  const auto guarded = trace_of(guarded_deltas, {3});
  // Baseline: violations bleed past the window and the tail never settles.
  std::vector<double> baseline_deltas(24, 4.0);
  const auto baseline = trace_of(baseline_deltas, {3, 6, 8, 11});

  const HardeningVerdict verdict =
      compare_hardening(guarded, baseline, schedule, config);
  EXPECT_EQ(verdict.guarded.violations_during, 1u);
  EXPECT_EQ(verdict.baseline.violations_after, 3u);
  EXPECT_TRUE(verdict.guarded_no_worse());
  EXPECT_TRUE(verdict.guarded_recovers());
  EXPECT_FALSE(verdict.baseline.reconverged);

  // Swapped, the baseline is strictly worse than the guarded loop.
  const HardeningVerdict swapped =
      compare_hardening(baseline, guarded, schedule, config);
  EXPECT_FALSE(swapped.guarded_no_worse());
  EXPECT_FALSE(swapped.guarded_recovers());
}

}  // namespace
}  // namespace roclk::analysis
