// Scheduling-invariance gates for the sharded Monte-Carlo drivers.
//
// The reproducibility contract (DESIGN.md §13): every keyed Monte-Carlo is
// a pure function of its StreamKey — *bitwise* identical whether it runs
// sequentially, on one worker, or across hardware_concurrency() workers.
// CI runs this suite with ROCLK_SIMD=scalar and relies on it to gate the
// threading work: a data race or draw-order coupling that slips into a
// shard shows up here as a bit diff, not as a flaky statistic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/analysis/yield.hpp"
#include "roclk/common/sharded_mc.hpp"
#include "roclk/common/stream_key.hpp"
#include "roclk/common/thread_pool.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/fault/fault.hpp"
#include "roclk/signal/waveform.hpp"

namespace roclk {
namespace {

std::size_t full_width() {
  return std::max<std::size_t>(2, std::thread::hardware_concurrency());
}

TEST(ShardRangesTest, PartitionIsExactContiguousAndBalanced) {
  for (std::size_t items : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u, 64u, 2000u}) {
      const auto ranges = mc::shard_ranges(items, shards);
      std::size_t covered = 0;
      std::size_t next = 0;
      std::size_t min_size = items + 1;
      std::size_t max_size = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.begin, next) << items << "/" << shards;
        EXPECT_GT(r.size(), 0u);
        covered += r.size();
        next = r.end;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(covered, items);
      EXPECT_LE(ranges.size(), std::min(shards, items) + (items == 0));
      if (!ranges.empty()) EXPECT_LE(max_size - min_size, 1u);
    }
  }
  EXPECT_TRUE(mc::shard_ranges(0, 4).empty());
}

TEST(McSchedulingTest, KeyedMapIsPoolInvariant) {
  const StreamKey key = StreamKey{404}.split("test.keyed_map");
  const std::size_t items = 257;  // deliberately not a multiple of anything
  const auto draw = [](std::size_t i, StreamKey item_key) {
    CounterRng rng{item_key};
    return rng.normal() + static_cast<double>(i) * 1e-9;
  };
  const auto sequential = mc::keyed_map(items, key, nullptr, draw);
  ASSERT_EQ(sequential.size(), items);

  ThreadPool one{1};
  EXPECT_EQ(mc::keyed_map(items, key, &one, draw), sequential);

  ThreadPool many{full_width()};
  EXPECT_EQ(mc::keyed_map(items, key, &many, draw), sequential);
}

// The headline gate: the yield Monte-Carlo's per-chip samples must be
// bitwise equal at 1 thread and hardware_concurrency() threads.
TEST(McSchedulingTest, YieldSamplingIsBitwiseThreadInvariant) {
  analysis::YieldConfig config;
  config.chips = 120;
  config.paths = 16;
  config.seed = 20260808;

  const auto sequential = analysis::sample_worst_paths(config, nullptr);
  ASSERT_EQ(sequential.size(), config.chips);

  ThreadPool one{1};
  const auto one_thread = analysis::sample_worst_paths(config, &one);
  ThreadPool many{full_width()};
  const auto many_threads = analysis::sample_worst_paths(config, &many);

  // EXPECT_EQ on the vectors compares every double bit-meaningfully (no
  // tolerance): scheduling must not change a single sample.
  EXPECT_EQ(one_thread, sequential);
  EXPECT_EQ(many_threads, sequential);

  // And the shared pool (whatever its size) agrees too.
  EXPECT_EQ(analysis::sample_worst_paths(config, &ThreadPool::shared()),
            sequential);
}

TEST(McSchedulingTest, EnsembleMcIsBitwiseThreadInvariant) {
  core::LoopConfig loop;
  loop.setpoint_c = 64.0;
  loop.cdn_delay_stages = 64.0;
  loop.mode = core::GeneratorMode::kControlledRo;
  const control::IirControlHardware prototype{control::paper_iir_config()};

  // Enough lanes for several 32-lane chunks, so the pool actually shards.
  const std::size_t lanes = 96;
  std::vector<double> mus(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    mus[w] = 64.0 * (-0.1 + 0.2 * static_cast<double>(w) /
                                static_cast<double>(lanes - 1));
  }
  const signal::SineWaveform hodv{12.8, 3200.0};
  const std::size_t cycles = 600;
  const std::size_t skip = 150;

  auto ensemble = core::EnsembleSimulator::uniform(loop, &prototype, lanes);
  const auto sequential = analysis::evaluate_homogeneous_mc(
      ensemble, hodv, mus, cycles, 64.0, {76.8}, skip,
      static_cast<ThreadPool*>(nullptr));

  ThreadPool many{full_width()};
  auto ensemble2 = core::EnsembleSimulator::uniform(loop, &prototype, lanes);
  const auto threaded = analysis::evaluate_homogeneous_mc(
      ensemble2, hodv, mus, cycles, 64.0, {76.8}, skip, &many);

  ASSERT_EQ(sequential.size(), threaded.size());
  for (std::size_t w = 0; w < lanes; ++w) {
    EXPECT_EQ(sequential[w].safety_margin, threaded[w].safety_margin);
    EXPECT_EQ(sequential[w].mean_period, threaded[w].mean_period);
    EXPECT_EQ(sequential[w].relative_adaptive_period,
              threaded[w].relative_adaptive_period);
    EXPECT_EQ(sequential[w].violations, threaded[w].violations);
    EXPECT_EQ(sequential[w].tau_ripple, threaded[w].tau_ripple);
  }
}

TEST(McSchedulingTest, FaultScheduleIsPureAndPrefixStable) {
  fault::RandomFaultSpec spec;
  spec.event_count = 8;
  const StreamKey key = StreamKey{7}.split("test.faults");

  // Purity: same (key, spec) => same schedule, call after call.
  const auto a = fault::FaultSchedule::random(key, spec);
  const auto b = fault::FaultSchedule::random(key, spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].start_cycle, b.events()[i].start_cycle);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }

  // Prefix stability: because event i draws from key.at(i), growing
  // event_count appends events without re-rolling the existing ones.
  fault::RandomFaultSpec bigger = spec;
  bigger.event_count = 12;
  const auto grown = fault::FaultSchedule::random(key, bigger);
  // Schedules are stored sorted by start; compare as multisets of tuples.
  const auto tuples = [](const fault::FaultSchedule& s) {
    std::vector<std::tuple<std::uint64_t, int, std::uint64_t, double>> v;
    for (const auto& e : s.events()) {
      v.emplace_back(e.start_cycle, static_cast<int>(e.kind), e.duration,
                     e.magnitude);
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  const auto small_set = tuples(a);
  const auto grown_set = tuples(grown);
  // Every event of the smaller schedule appears verbatim in the larger.
  EXPECT_TRUE(std::includes(grown_set.begin(), grown_set.end(),
                            small_set.begin(), small_set.end()));

  // The raw-seed overload is the documented derivation.
  const auto via_seed = fault::FaultSchedule::random(std::uint64_t{55}, spec);
  const auto via_key = fault::FaultSchedule::random(
      StreamKey{55}.split("fault.schedule"), spec);
  ASSERT_EQ(via_seed.size(), via_key.size());
  for (std::size_t i = 0; i < via_seed.size(); ++i) {
    EXPECT_EQ(via_seed.events()[i].magnitude, via_key.events()[i].magnitude);
    EXPECT_EQ(via_seed.events()[i].start_cycle,
              via_key.events()[i].start_cycle);
  }
}

}  // namespace
}  // namespace roclk
