#include "roclk/analysis/frequency_response.hpp"

#include <gtest/gtest.h>

#include "roclk/control/iir_control.hpp"

namespace roclk::analysis {
namespace {

TEST(FrequencyResponse, AnalyticGainVanishesAtDc) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  // Infinitely slow perturbation: type-1 loop rejects it completely.
  EXPECT_LT(analytic_error_gain(n, d, 1, 1e7), 1e-4);
}

TEST(FrequencyResponse, AnalyticGainGrowsTowardFastPerturbations) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  const double slow = analytic_error_gain(n, d, 1, 400.0);
  const double mid = analytic_error_gain(n, d, 1, 50.0);
  const double fast = analytic_error_gain(n, d, 1, 10.0);
  EXPECT_LT(slow, mid);
  EXPECT_LT(mid, fast);
}

TEST(FrequencyResponse, LongerCdnDelayHurtsRejection) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  // At a mid frequency, more loop delay means worse attenuation.
  EXPECT_LT(analytic_error_gain(n, d, 0, 60.0),
            analytic_error_gain(n, d, 4, 60.0));
}

TEST(FrequencyResponse, MeasuredMatchesAnalyticForLinearLoop) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  for (double te : {20.0, 40.0, 80.0, 160.0}) {
    const double analytic = analytic_error_gain(n, d, 1, te);
    const double measured =
        measured_error_gain(SystemKind::kIir, 64.0, 64.0, 1.0, te);
    EXPECT_NEAR(measured, analytic, 0.05 + 0.1 * analytic) << "Te/c " << te;
  }
}

TEST(FrequencyResponse, FixedClockPassesPerturbationStraightThrough) {
  // tau - c = -e[n-1] for the fixed clock: unit gain at every frequency.
  for (double te : {25.0, 100.0}) {
    const double g =
        measured_error_gain(SystemKind::kFixedClock, 64.0, 64.0, 2.0, te);
    EXPECT_NEAR(g, 1.0, 0.05) << "Te/c " << te;
  }
}

TEST(FrequencyResponse, FreeRoGainMatchesEquation2Form) {
  // The free RO's residual is e[n-1] - e[n-M-2]: gain
  // 2|sin(pi (M+1)/Te)| (eq. 2 at the loop's effective delay).
  const double te = 50.0;
  const double g =
      measured_error_gain(SystemKind::kFreeRo, 64.0, 64.0, 2.0, te);
  const double expected =
      2.0 * std::fabs(std::sin(3.14159265358979 * 2.0 / te));
  EXPECT_NEAR(g, expected, 0.03);
}

TEST(FrequencyResponse, CurveStructure) {
  const std::vector<double> grid{25.0, 100.0, 400.0};
  const auto curve = error_rejection_curve(grid, 1.0);
  ASSERT_EQ(curve.size(), 3u);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].te_over_c, grid[i]);
    EXPECT_GE(curve[i].analytic_gain, 0.0);
    EXPECT_GE(curve[i].measured_gain, 0.0);
  }
  // Rejection improves (gain falls) toward slow perturbations.
  EXPECT_GT(curve[0].analytic_gain, curve[2].analytic_gain);
}

TEST(FrequencyResponse, Preconditions) {
  const auto [n, d] = control::iir_polynomials(control::paper_iir_config());
  EXPECT_THROW((void)analytic_error_gain(n, d, 1, 0.0), std::logic_error);
  EXPECT_THROW(
      (void)measured_error_gain(SystemKind::kIir, 64.0, 64.0, 0.0, 50.0),
      std::logic_error);
}

}  // namespace
}  // namespace roclk::analysis
