#include "roclk/sensor/tdc.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::sensor {
namespace {

TEST(Tdc, AdditiveReadingIsPeriodMinusVariationPlusMismatch) {
  TdcConfig cfg;
  cfg.quantization = Quantization::kNone;
  cfg.mismatch_stages = 3.0;
  Tdc tdc{cfg};
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.0, 10.0), 57.0);
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.0, -5.0), 72.0);
}

TEST(Tdc, FloorQuantizationCountsCompletedStagesOnly) {
  TdcConfig cfg;
  cfg.quantization = Quantization::kFloor;
  Tdc tdc{cfg};
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.9, 0.0), 64.0);
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.0, 0.1), 63.0);
}

TEST(Tdc, NearestQuantization) {
  TdcConfig cfg;
  cfg.quantization = Quantization::kNearest;
  Tdc tdc{cfg};
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.4, 0.0), 64.0);
  EXPECT_DOUBLE_EQ(tdc.measure_additive(64.6, 0.0), 65.0);
}

TEST(Tdc, ReadingSaturatesAtChainLength) {
  TdcConfig cfg;
  cfg.max_reading = 100;
  Tdc tdc{cfg};
  EXPECT_DOUBLE_EQ(tdc.measure_additive(500.0, 0.0), 100.0);
  // And never goes negative.
  EXPECT_DOUBLE_EQ(tdc.measure_additive(10.0, 50.0), 0.0);
}

TEST(Tdc, ReadingIsClampedUnderEveryQuantizationMode) {
  // The chain physically cannot report below 0 or above max_reading, so
  // the [0, max_reading] clamp must apply regardless of how (or whether)
  // the reading is quantised.
  for (const Quantization q :
       {Quantization::kFloor, Quantization::kNearest, Quantization::kNone}) {
    TdcConfig cfg;
    cfg.quantization = q;
    cfg.max_reading = 100;
    Tdc tdc{cfg};
    EXPECT_DOUBLE_EQ(tdc.measure_additive(500.25, 0.0), 100.0)
        << "mode " << static_cast<int>(q);
    EXPECT_DOUBLE_EQ(tdc.measure_additive(10.5, 50.0), 0.0)
        << "mode " << static_cast<int>(q);
    // A fractional in-range reading survives kNone unquantised but still
    // clamped at the rails.
    if (q == Quantization::kNone) {
      EXPECT_DOUBLE_EQ(tdc.measure_additive(99.75, 0.0), 99.75);
      EXPECT_DOUBLE_EQ(tdc.measure_additive(100.25, 0.0), 100.0);
    }
  }
}

TEST(Tdc, PhysicalReadingDividesByLocalStageDelay) {
  TdcConfig cfg;
  cfg.quantization = Quantization::kNone;
  Tdc tdc{cfg};
  // 10% slower gates: fewer stages crossed.
  EXPECT_NEAR(tdc.measure_physical(66.0, 0.1), 60.0, 1e-12);
  EXPECT_NEAR(tdc.measure_physical(64.0, 0.0), 64.0, 1e-12);
}

TEST(Tdc, PhysicalMismatchActsAsSpeedScale) {
  TdcConfig cfg;
  cfg.quantization = Quantization::kNone;
  cfg.relative_mismatch = -0.2;  // TDC stages 20% faster -> reads higher
  Tdc tdc{cfg};
  EXPECT_NEAR(tdc.measure_physical(64.0, 0.0), 80.0, 1e-12);
}

TEST(Tdc, ValidateRejectsBadConfigs) {
  TdcConfig bad;
  bad.max_reading = 0;
  EXPECT_FALSE(Tdc::validate(bad).is_ok());
  TdcConfig impossible;
  impossible.relative_mismatch = -1.0;
  EXPECT_FALSE(Tdc::validate(impossible).is_ok());
  EXPECT_THROW(Tdc{bad}, std::logic_error);
}

TEST(Tdc, NonPositivePeriodRejected) {
  Tdc tdc;
  EXPECT_THROW((void)tdc.measure_additive(0.0, 0.0), std::logic_error);
  EXPECT_THROW((void)tdc.measure_physical(-1.0, 0.0), std::logic_error);
}

TEST(TdcArray, GridPlacesSensorsWithMismatch) {
  const auto array = TdcArray::make_grid(2, 1.5);
  EXPECT_EQ(array.size(), 4u);
  for (const auto& tdc : array.sensors()) {
    EXPECT_DOUBLE_EQ(tdc.config().mismatch_stages, 1.5);
  }
}

TEST(TdcArray, WorstAdditiveIsMinimum) {
  TdcArray array;
  TdcConfig a;
  a.quantization = Quantization::kNone;
  a.mismatch_stages = 0.0;
  TdcConfig b = a;
  b.mismatch_stages = -4.0;  // pessimistic sensor reads lower
  array.add(Tdc{a}).add(Tdc{b});
  EXPECT_DOUBLE_EQ(array.worst_additive(64.0, 0.0), 60.0);
}

TEST(TdcArray, WorstPhysicalFindsSlowestRegion) {
  auto array = TdcArray::make_grid(3);
  variation::TemperatureHotspot hotspot{0.2, {5.0 / 6.0, 5.0 / 6.0}, 0.1,
                                        0.0, 1.0};
  // Sensor on the hotspot reads fewest stages.
  const double worst = array.worst_physical(64.0, hotspot, 100.0);
  const auto all = array.readings_physical(64.0, hotspot, 100.0);
  for (double r : all) EXPECT_GE(r, worst);
  // The hotspot sensor reading ~ 64/1.2 = 53.33 -> floor 53.
  EXPECT_NEAR(worst, 53.0, 1.0);
}

TEST(TdcArray, EmptyArrayRejected) {
  TdcArray empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.worst_additive(64.0, 0.0), std::logic_error);
}

// Property: for any homogeneous variation level, worst_additive equals each
// individual reading when all sensors are identical.
class TdcHomogeneity : public ::testing::TestWithParam<double> {};

TEST_P(TdcHomogeneity, IdenticalSensorsAgree) {
  const double e = GetParam();
  const auto array = TdcArray::make_grid(3);
  const double worst = array.worst_additive(64.0, e);
  Tdc single;
  EXPECT_DOUBLE_EQ(worst, single.measure_additive(64.0, e));
}

INSTANTIATE_TEST_SUITE_P(Levels, TdcHomogeneity,
                         ::testing::Values(-12.8, -5.0, 0.0, 3.3, 12.8));

}  // namespace
}  // namespace roclk::sensor
