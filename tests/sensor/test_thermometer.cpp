#include "roclk/sensor/thermometer.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::sensor {
namespace {

TEST(ThermometerCode, IdealCodeIsClean) {
  const auto code = ThermometerCode::ideal(5, 8);
  EXPECT_TRUE(code.is_clean());
  EXPECT_EQ(code.bubble_count(), 0u);
  EXPECT_EQ(code.decode_priority(), 5u);
  EXPECT_EQ(code.decode_ones_count(), 5u);
  EXPECT_TRUE(code.bit(4));
  EXPECT_FALSE(code.bit(5));
}

TEST(ThermometerCode, EdgeCases) {
  const auto empty = ThermometerCode::ideal(0, 4);
  EXPECT_EQ(empty.decode_priority(), 0u);
  const auto full = ThermometerCode::ideal(4, 4);
  EXPECT_EQ(full.decode_priority(), 4u);
  EXPECT_EQ(full.decode_ones_count(), 4u);
  EXPECT_THROW((void)ThermometerCode::ideal(5, 4), std::logic_error);
}

TEST(ThermometerCode, BubbleBreaksPriorityNotOnesCount) {
  // 1 1 0 1 1 0 0 0: a bubble at index 2 (true boundary was 5).
  ThermometerCode code{{true, true, false, true, true, false, false, false}};
  EXPECT_FALSE(code.is_clean());
  EXPECT_EQ(code.decode_priority(), 2u);     // badly wrong
  EXPECT_EQ(code.decode_ones_count(), 4u);   // off by one only
  EXPECT_EQ(code.bubble_count(), 2u);
}

TEST(ThermometerCode, BalancedBubblesCancelInOnesCount) {
  // One 1 lost before the boundary, one gained after: count unchanged.
  ThermometerCode code{{true, false, true, true, true, false, true, false}};
  EXPECT_EQ(code.decode_ones_count(), 5u);
}

TEST(ThermometerCode, BoundaryNoiseOnlyTouchesBoundary) {
  auto code = ThermometerCode::ideal(10, 20);
  Xoshiro256 rng{7};
  code.inject_boundary_noise(rng, 1.0, 2);  // flip everything in radius
  // Bits far from the boundary are untouched.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(code.bit(i)) << i;
  for (std::size_t i = 12; i < 20; ++i) EXPECT_FALSE(code.bit(i)) << i;
  // Something near the boundary flipped.
  EXPECT_FALSE(code.is_clean());
}

TEST(ThermometerCode, ZeroProbabilityNoiseIsNoop) {
  auto code = ThermometerCode::ideal(10, 20);
  Xoshiro256 rng{7};
  code.inject_boundary_noise(rng, 0.0);
  EXPECT_TRUE(code.is_clean());
  EXPECT_EQ(code.decode_priority(), 10u);
}

TEST(DetailedTdc, CleanMeasurementMatchesBehaviouralTdc) {
  DetailedTdcConfig cfg;
  DetailedTdc tdc{cfg};
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  EXPECT_EQ(tdc.measure(64.0, quiet, 0.0), 64);
  EXPECT_TRUE(tdc.last_code().is_clean());

  const auto slow = variation::DieToDieProcess::with_offset(0.25);
  EXPECT_EQ(tdc.measure(64.0, slow, 0.0), 51);  // 64/1.25
}

TEST(DetailedTdc, SaturatesAtChainLength) {
  DetailedTdcConfig cfg;
  cfg.chain.stages = 65;
  DetailedTdc tdc{cfg};
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  EXPECT_EQ(tdc.measure(500.0, quiet, 0.0), 65);
}

TEST(DetailedTdc, OnesCountDecoderShrugsOffMetastability) {
  // With aggressive metastability the priority encoder's reading scatters
  // far below truth; the ones-counter stays within the bubble radius.
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);

  DetailedTdcConfig ones_cfg;
  ones_cfg.decoder = TdcDecoder::kOnesCount;
  ones_cfg.metastability_p = 0.4;
  DetailedTdc ones{ones_cfg};

  DetailedTdcConfig prio_cfg = ones_cfg;
  prio_cfg.decoder = TdcDecoder::kPriorityEncoder;
  DetailedTdc prio{prio_cfg};

  std::int64_t ones_worst = 0;
  std::int64_t prio_worst = 0;
  for (int i = 0; i < 200; ++i) {
    ones_worst = std::max<std::int64_t>(
        ones_worst, std::abs(ones.measure(64.0, quiet, 0.0) - 64));
    prio_worst = std::max<std::int64_t>(
        prio_worst, std::abs(prio.measure(64.0, quiet, 0.0) - 64));
  }
  EXPECT_LE(ones_worst, 2);   // bounded by the flip radius
  EXPECT_GE(prio_worst, 2);   // first-zero can jump to the bubble
  EXPECT_GE(prio_worst, ones_worst);
}

TEST(DetailedTdc, HotspotOverChainLowersReading) {
  DetailedTdcConfig cfg;
  cfg.chain.start = {0.8, 0.8};
  cfg.chain.end = {0.9, 0.9};
  DetailedTdc tdc{cfg};
  variation::TemperatureHotspot hotspot{0.2, {0.85, 0.85}, 0.1, 0.0, 1.0};
  EXPECT_LT(tdc.measure(64.0, hotspot, 100.0), 58);
}

TEST(DetailedTdc, RejectsBadConfig) {
  DetailedTdcConfig bad;
  bad.metastability_p = 1.5;
  EXPECT_THROW(DetailedTdc{bad}, std::logic_error);
  DetailedTdc ok;
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  EXPECT_THROW((void)ok.measure(0.0, quiet, 0.0), std::logic_error);
}

}  // namespace
}  // namespace roclk::sensor
