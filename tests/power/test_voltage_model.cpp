#include "roclk/power/voltage_model.hpp"

#include <gtest/gtest.h>

namespace roclk::power {
namespace {

TEST(VoltageModel, ValidateCatchesBadParams) {
  ProcessParams bad;
  bad.vth = 1.2;  // above nominal vdd
  EXPECT_FALSE(validate(bad).is_ok());
  ProcessParams alpha;
  alpha.alpha = 3.0;
  EXPECT_FALSE(validate(alpha).is_ok());
  ProcessParams ceiling;
  ceiling.vdd_max = 0.5;
  EXPECT_FALSE(validate(ceiling).is_ok());
  ProcessParams leak;
  leak.leakage_share = 1.0;
  EXPECT_FALSE(validate(leak).is_ok());
}

TEST(VoltageModel, DelayFactorIsOneAtNominal) {
  EXPECT_DOUBLE_EQ(delay_factor(1.0), 1.0);
}

TEST(VoltageModel, DelayMonotoneDecreasingInVdd) {
  double prev = 1e9;
  for (double v : {0.5, 0.7, 0.9, 1.0, 1.1, 1.3}) {
    const double d = delay_factor(v);
    EXPECT_LT(d, prev) << "v " << v;
    prev = d;
  }
}

TEST(VoltageModel, DelayDivergesTowardVth) {
  EXPECT_GT(delay_factor(0.32), 20.0);  // just above vth = 0.30
}

TEST(VoltageModel, DelayRequiresSwitchingHeadroom) {
  EXPECT_THROW((void)delay_factor(0.25), std::logic_error);
}

TEST(VoltageModel, InverseRoundTrips) {
  for (double target : {0.8, 0.9, 1.0, 1.2, 1.5}) {
    const auto vdd = vdd_for_delay_factor(target);
    ASSERT_TRUE(vdd.is_ok()) << target;
    EXPECT_NEAR(delay_factor(vdd.value()), target, 1e-6) << target;
  }
}

TEST(VoltageModel, InverseRespectsReliabilityCeiling) {
  // Asking for a 3x speed-up exceeds any sane overdrive.
  const auto vdd = vdd_for_delay_factor(1.0 / 3.0);
  EXPECT_FALSE(vdd.is_ok());
  EXPECT_EQ(vdd.status().code(), StatusCode::kOutOfRange);
}

TEST(VoltageModel, EnergyGrowsQuadraticallyPlusLeakage) {
  ProcessParams p;
  p.leakage_share = 0.0;  // pure dynamic
  EXPECT_DOUBLE_EQ(energy_per_op_factor(1.0, 1.0, p), 1.0);
  EXPECT_DOUBLE_EQ(energy_per_op_factor(1.2, 1.0, p), 1.44);
  // With leakage, a longer period costs energy even at nominal V.
  ProcessParams leaky;
  leaky.leakage_share = 0.25;
  EXPECT_GT(energy_per_op_factor(1.0, 1.2, leaky), 1.0);
}

TEST(VoltageModel, PeriodMarginStrategy) {
  const auto op = period_margin_strategy(0.2);
  EXPECT_DOUBLE_EQ(op.vdd_factor, 1.0);
  EXPECT_DOUBLE_EQ(op.period_factor, 1.2);
  EXPECT_NEAR(op.throughput_factor, 1.0 / 1.2, 1e-12);
  // Slight energy increase from leakage integrating over a longer period.
  EXPECT_GT(op.energy_factor, 1.0);
  EXPECT_LT(op.energy_factor, 1.1);
}

TEST(VoltageModel, VoltageMarginStrategyPaysEnergy) {
  const auto op = voltage_margin_strategy(0.2);
  ASSERT_TRUE(op.is_ok());
  EXPECT_GT(op.value().vdd_factor, 1.0);
  EXPECT_DOUBLE_EQ(op.value().throughput_factor, 1.0);
  EXPECT_GT(op.value().energy_factor, 1.1);  // V^2 bites
}

TEST(VoltageModel, VoltageMarginFailsBeyondCeiling) {
  ProcessParams tight;
  tight.vdd_max = 1.05;
  const auto op = voltage_margin_strategy(0.5, tight);
  EXPECT_FALSE(op.is_ok());
}

TEST(VoltageModel, AdaptiveStrategyDominatesWorstCasePeriodMargin) {
  // The adaptive clock pays the *mean* slowdown, not the worst case.
  const auto fixed = period_margin_strategy(0.2);
  const auto adaptive = adaptive_clock_strategy(0.05);
  EXPECT_GT(adaptive.throughput_factor, fixed.throughput_factor);
  EXPECT_LT(adaptive.energy_factor, fixed.energy_factor);
}

TEST(VoltageModel, StrategyOrderingAtTwentyPercent) {
  // Energy: voltage margin > period margin ~ adaptive.
  // Throughput: voltage margin = 1 > adaptive > period margin.
  const auto period = period_margin_strategy(0.2);
  const auto voltage = voltage_margin_strategy(0.2).value();
  const auto adaptive = adaptive_clock_strategy(0.06);
  EXPECT_GT(voltage.energy_factor, period.energy_factor);
  EXPECT_GT(voltage.energy_factor, adaptive.energy_factor);
  EXPECT_GT(voltage.throughput_factor, adaptive.throughput_factor);
  EXPECT_GT(adaptive.throughput_factor, period.throughput_factor);
}

}  // namespace
}  // namespace roclk::power
