#include "roclk/cdn/cdn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace roclk::cdn {
namespace {

TEST(FixedSampleCdn, ZeroDelayPassesThrough) {
  FixedSampleCdn cdn{0};
  cdn.reset(64.0);
  EXPECT_DOUBLE_EQ(cdn.push(70.0), 70.0);
  EXPECT_DOUBLE_EQ(cdn.push(71.0), 71.0);
}

TEST(FixedSampleCdn, DelaysByExactlyM) {
  FixedSampleCdn cdn{3};
  cdn.reset(64.0);
  EXPECT_DOUBLE_EQ(cdn.push(1.0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.push(2.0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.push(3.0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.push(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdn.push(5.0), 2.0);
  EXPECT_EQ(cdn.current_delay_samples(), 3u);
}

TEST(FixedSampleCdn, ResetRefillsPipeline) {
  FixedSampleCdn cdn{2};
  cdn.reset(10.0);
  cdn.push(1.0);
  cdn.reset(20.0);
  EXPECT_DOUBLE_EQ(cdn.push(99.0), 20.0);
  EXPECT_DOUBLE_EQ(cdn.push(98.0), 20.0);
  EXPECT_DOUBLE_EQ(cdn.push(97.0), 99.0);
}

TEST(QuantizedTimeCdn, MFollowsPeriodRatio) {
  QuantizedTimeCdn cdn{64.0};
  cdn.reset(64.0);
  cdn.push(64.0);
  EXPECT_EQ(cdn.current_delay_samples(), 1u);  // 64/64 = 1
  QuantizedTimeCdn fast{256.0};
  fast.reset(64.0);
  fast.push(64.0);
  EXPECT_EQ(fast.current_delay_samples(), 4u);
  QuantizedTimeCdn zero{0.0};
  zero.reset(64.0);
  EXPECT_DOUBLE_EQ(zero.push(77.0), 77.0);
  EXPECT_EQ(zero.current_delay_samples(), 0u);
}

TEST(QuantizedTimeCdn, MRoundsToNearest) {
  QuantizedTimeCdn cdn{100.0};
  cdn.reset(64.0);
  cdn.push(64.0);  // 100/64 = 1.5625 -> 2
  EXPECT_EQ(cdn.current_delay_samples(), 2u);
  cdn.push(45.0);  // 100/45 = 2.22 -> 2
  EXPECT_EQ(cdn.current_delay_samples(), 2u);
  cdn.push(28.0);  // 100/28 = 3.57 -> 4
  EXPECT_EQ(cdn.current_delay_samples(), 4u);
}

TEST(QuantizedTimeCdn, DeliversPeriodGeneratedMCyclesAgo) {
  QuantizedTimeCdn cdn{128.0};  // M = 2 at nominal 64
  cdn.reset(64.0);
  EXPECT_DOUBLE_EQ(cdn.push(64.0), 64.0);  // looks back to pre-sim fill
  EXPECT_DOUBLE_EQ(cdn.push(70.0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.push(72.0), 64.0);  // M~2: sees push #1
  EXPECT_DOUBLE_EQ(cdn.push(74.0), 70.0);
}

TEST(QuantizedTimeCdn, MReQuantisesAsPeriodChanges) {
  // The paper's M[n] = t_clk / T_clk[n]: a faster clock stretches the CDN
  // delay to more periods.
  QuantizedTimeCdn cdn{256.0};
  cdn.reset(64.0);
  cdn.push(64.0);
  EXPECT_EQ(cdn.current_delay_samples(), 4u);
  cdn.push(32.0);
  EXPECT_EQ(cdn.current_delay_samples(), 8u);
  cdn.push(128.0);
  EXPECT_EQ(cdn.current_delay_samples(), 2u);
}

TEST(QuantizedTimeCdn, PreSimulationHistoryIsInitialPeriod) {
  QuantizedTimeCdn cdn{640.0};  // M = 10 at 64
  cdn.reset(64.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(cdn.push(70.0), 64.0) << "push " << i;
  }
}

TEST(QuantizedTimeCdn, RejectsBadInputs) {
  EXPECT_THROW((QuantizedTimeCdn{-1.0}), std::logic_error);
  EXPECT_THROW((QuantizedTimeCdn{10.0, 1}), std::logic_error);
  QuantizedTimeCdn cdn{10.0};
  cdn.reset(64.0);
  EXPECT_THROW((void)cdn.push(0.0), std::logic_error);
}

TEST(QuantizedTimeCdn, RejectsBadExplicitRingDepth) {
  // The ring buffer is indexed with a power-of-two mask, so a depth that
  // is not a power of two (or cannot hold the history window) must be
  // refused at construction instead of aliasing reads at run time.
  EXPECT_THROW((QuantizedTimeCdn{10.0, 64, DelayQuantization::kRound, 100}),
               std::logic_error);
  EXPECT_THROW((QuantizedTimeCdn{10.0, 64, DelayQuantization::kRound, 32}),
               std::logic_error);
  EXPECT_NO_THROW(
      (QuantizedTimeCdn{10.0, 64, DelayQuantization::kRound, 128}));
}

TEST(QuantizedTimeCdn, ExplicitRingDepthMatchesAutoDepth) {
  // Oversizing the ring must not change delivered periods: the logical
  // window is `history`, the ring depth only affects storage.
  QuantizedTimeCdn auto_depth{640.0, 128};
  QuantizedTimeCdn oversized{640.0, 128, DelayQuantization::kRound, 1024};
  auto_depth.reset(64.0);
  oversized.reset(64.0);
  for (int i = 0; i < 200; ++i) {
    const double period = 64.0 + 0.5 * std::sin(0.1 * i);
    EXPECT_DOUBLE_EQ(auto_depth.push(period), oversized.push(period))
        << "push " << i;
  }
}

TEST(QuantizedTimeCdn, InterpolationMatchesRoundAtIntegerDelays) {
  // When t_clk / T is exactly integer the interpolating mode must behave
  // identically to the literal z^-M reading.
  QuantizedTimeCdn round_cdn{128.0, 4096, DelayQuantization::kRound};
  QuantizedTimeCdn interp_cdn{128.0, 4096,
                              DelayQuantization::kLinearInterp};
  round_cdn.reset(64.0);
  interp_cdn.reset(64.0);
  for (int i = 0; i < 40; ++i) {
    // Period stays 64 -> D = exactly 2 every cycle.
    EXPECT_DOUBLE_EQ(round_cdn.push(64.0), interp_cdn.push(64.0)) << i;
  }
}

TEST(QuantizedTimeCdn, InterpolationBlendsNeighbours) {
  // t_clk = 96, T = 64 -> D = 1.5: delivered is the midpoint of the
  // periods generated 1 and 2 cycles ago.
  QuantizedTimeCdn cdn{96.0, 4096, DelayQuantization::kLinearInterp};
  cdn.reset(64.0);
  cdn.push(64.0);   // history: [64(init)..., 64]
  cdn.push(100.0);  // D = 0.96 for this push
  const double delivered = cdn.push(64.0);  // D = 1.5: blend(100, 64)
  EXPECT_DOUBLE_EQ(delivered, 0.5 * 100.0 + 0.5 * 64.0);
}

TEST(QuantizedTimeCdn, FloorModeTruncates) {
  QuantizedTimeCdn cdn{100.0, 4096, DelayQuantization::kFloor};
  cdn.reset(64.0);
  cdn.push(64.0);  // D = 1.5625 -> floor 1: delivered is previous push...
  cdn.push(80.0);  // D = 1.25 -> floor 1: delivered = previous (64)
  EXPECT_DOUBLE_EQ(cdn.push(70.0), 80.0);  // D = 1.43 -> floor 1
}

TEST(QuantizedTimeCdn, SubPeriodDelaysDistinguishableOnlyWithInterp) {
  // The Fig. 9 columns: 0.75c and 1.0c collapse onto M = 1 under kRound
  // but differ under interpolation.
  auto run = [](double tclk, DelayQuantization q) {
    QuantizedTimeCdn cdn{tclk, 4096, q};
    cdn.reset(64.0);
    double out = 0.0;
    double period = 60.0;
    for (int i = 0; i < 16; ++i) {
      out = cdn.push(period);
      period += 1.0;  // ramp so look-backs differ
    }
    return out;
  };
  EXPECT_DOUBLE_EQ(run(48.0, DelayQuantization::kRound),
                   run(64.0, DelayQuantization::kRound));
  EXPECT_NE(run(48.0, DelayQuantization::kLinearInterp),
            run(64.0, DelayQuantization::kLinearInterp));
}

TEST(EdgeDelayCdn, ConstantTimeShift) {
  EdgeDelayCdn cdn{100.0};
  EXPECT_DOUBLE_EQ(cdn.deliver_time(0.0), 100.0);
  EXPECT_DOUBLE_EQ(cdn.deliver_time(64.0), 164.0);
  EXPECT_DOUBLE_EQ(cdn.delay_stages(), 100.0);
  EXPECT_THROW(EdgeDelayCdn{-1.0}, std::logic_error);
}

// Property: a constant input stream must pass through any CDN unchanged
// (steady state transparency), for a sweep of delays.
class CdnTransparency : public ::testing::TestWithParam<double> {};

TEST_P(CdnTransparency, ConstantStreamUnchanged) {
  QuantizedTimeCdn cdn{GetParam()};
  cdn.reset(64.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(cdn.push(64.0), 64.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Delays, CdnTransparency,
                         ::testing::Values(0.0, 6.4, 32.0, 64.0, 96.0, 128.0,
                                           320.0, 640.0));

// Regression for the look_back underflow: with zero pushes count_ == 0 and
// the old `m > count_ - 1` guard wrapped to SIZE_MAX, skipping the
// pre-simulation branch entirely.  Every look-back on a freshly reset CDN
// must read the initial period.
TEST(QuantizedTimeCdn, LookBackOnFreshlyResetCdnReadsInitialPeriod) {
  QuantizedTimeCdn cdn{64.0, /*history=*/16};
  cdn.reset(48.0);
  for (std::size_t m = 0; m < 20; ++m) {
    EXPECT_DOUBLE_EQ(cdn.peek_back(m), 48.0) << "m = " << m;
  }
  // A reset after traffic must also forget the pushed history.
  cdn.push(100.0);
  cdn.push(90.0);
  cdn.reset(52.0);
  for (std::size_t m = 0; m < 20; ++m) {
    EXPECT_DOUBLE_EQ(cdn.peek_back(m), 52.0) << "m = " << m;
  }
}

TEST(QuantizedTimeCdn, LookBackPastPushedCountReadsInitialPeriod) {
  QuantizedTimeCdn cdn{640.0, /*history=*/32};
  cdn.reset(64.0);
  // First push: D = 640/64 = 10 but only one period was ever generated, so
  // the delivered period is still the pre-simulation one.
  EXPECT_DOUBLE_EQ(cdn.push(64.0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.peek_back(0), 64.0);
  EXPECT_DOUBLE_EQ(cdn.peek_back(1), 64.0);
}

// The ring is rounded up to a power of two internally (mask arithmetic in
// the hot loop); a non-power-of-two history must keep byte-identical
// look-back semantics at its logical bound.
TEST(QuantizedTimeCdn, NonPowerOfTwoHistoryKeepsLogicalWindow) {
  QuantizedTimeCdn cdn{0.0, /*history=*/6};
  cdn.reset(1.0);
  for (int i = 0; i < 12; ++i) {
    cdn.push(100.0 + i);  // delay 0: delivered == pushed
  }
  // The newest 6 entries (the logical history) are retained...
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_DOUBLE_EQ(cdn.peek_back(m), 111.0 - static_cast<double>(m));
  }
  // ...and anything past the logical history reads the initial period even
  // though the physical ring (8 slots) still holds newer data.
  EXPECT_DOUBLE_EQ(cdn.peek_back(6), 1.0);
  EXPECT_DOUBLE_EQ(cdn.peek_back(7), 1.0);
}

}  // namespace
}  // namespace roclk::cdn
