// Property tests for the splittable counter-based RNG (DESIGN.md §13).
//
// The contract under test: a CounterRng's draws are a pure function of
// (StreamKey, draw index).  Same key => same draws, regardless of
// interleaving, split order at other keys, or which instance makes them;
// distinct keys => independent-looking streams.  These are the properties
// the sharded Monte-Carlo drivers rely on for scheduling invariance.
#include "roclk/common/stream_key.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace roclk {
namespace {

TEST(StreamKeyTest, EqualSeedsDeriveEqualKeys) {
  const StreamKey a{1234};
  const StreamKey b{1234};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.split("x").at(7), b.split("x").at(7));
  EXPECT_NE(StreamKey{1234}, StreamKey{1235});
}

TEST(StreamKeyTest, DerivationKindsLiveInDisjointFamilies) {
  const StreamKey k{99};
  // split(name), split(tag) and at(index) must never collide, even for
  // "the same" value: they are salted into different families.
  EXPECT_NE(k.split(std::uint64_t{5}), k.at(5));
  EXPECT_NE(k.split("5"), k.split(std::uint64_t{5}));
  EXPECT_NE(k.split("5"), k.at(5));
  // Derivation never returns the parent.
  EXPECT_NE(k.split("child"), k);
  EXPECT_NE(k.at(0), k);
}

TEST(StreamKeyTest, SplitIsOrderSensitiveAndNonCommutative) {
  const StreamKey k{7};
  EXPECT_NE(k.split("a").split("b"), k.split("b").split("a"));
  EXPECT_NE(k.split("a").at(1), k.at(1).split("a"));
  // Flattening the chain must not alias a nested chain.
  EXPECT_NE(k.split("ab"), k.split("a").split("b"));
}

TEST(StreamKeyTest, SiblingKeysAreDistinctAcrossWideIndexRange) {
  const StreamKey base = StreamKey{42}.split("chips");
  std::set<std::uint64_t> states;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    states.insert(base.at(i).state());
  }
  EXPECT_EQ(states.size(), 4096u);
}

TEST(CounterRngTest, DrawsArePureFunctionsOfKeyAndIndex) {
  const StreamKey key = StreamKey{2024}.split("purity");
  CounterRng sequential{key};
  const CounterRng indexed{key};
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(sequential(), indexed.word_at(i)) << "draw " << i;
  }
}

TEST(CounterRngTest, SameKeySameDrawsRegardlessOfInterleaving) {
  const StreamKey key = StreamKey{77}.split("interleave");
  // Reference: one instance drawing 64 uniforms back to back.
  CounterRng reference{key};
  std::vector<double> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(reference.uniform());

  // Interleaved: two instances of the same key advanced alternately, with
  // unrelated draws from other streams in between.
  CounterRng a{key};
  CounterRng other{StreamKey{77}.split("noise")};
  std::vector<double> got;
  for (int i = 0; i < 64; ++i) {
    (void)other.uniform();  // foreign draws must not disturb `a`
    got.push_back(a.uniform());
    (void)other();
  }
  EXPECT_EQ(got, expected);

  // Seek: entering the stream mid-way reproduces the suffix.
  CounterRng seeked{key};
  seeked.seek(32);
  for (int i = 32; i < 64; ++i) {
    EXPECT_EQ(seeked.uniform(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(CounterRngTest, SplitOrderDoesNotPerturbSiblingStreams) {
  // Drawing from (or even deriving) one child must not change another
  // child's stream — the property xor-tag seeding never guaranteed.
  const StreamKey root{31337};
  CounterRng before{root.split("stable")};
  const std::uint64_t w0 = before.word_at(0);
  const std::uint64_t w1 = before.word_at(1);

  CounterRng sibling{root.split("greedy")};
  for (int i = 0; i < 100; ++i) (void)sibling();

  CounterRng after{root.split("stable")};
  EXPECT_EQ(after.word_at(0), w0);
  EXPECT_EQ(after.word_at(1), w1);
}

TEST(CounterRngTest, DistinctKeysLookIndependent) {
  // Smoke-level independence: across 512 sibling streams, the first draw's
  // uniform mapping should have ~Uniform(0,1) mean and variance, and the
  // lag-1 correlation between adjacent siblings should be small.
  const StreamKey base = StreamKey{5150}.split("independence");
  const int n = 512;
  std::vector<double> first;
  first.reserve(n);
  for (int i = 0; i < n; ++i) {
    CounterRng rng{base.at(static_cast<std::uint64_t>(i))};
    first.push_back(rng.uniform());
  }
  double mean = 0.0;
  for (double v : first) mean += v;
  mean /= n;
  double var = 0.0;
  double lag1 = 0.0;
  for (int i = 0; i < n; ++i) {
    var += (first[i] - mean) * (first[i] - mean);
    if (i > 0) lag1 += (first[i] - mean) * (first[i - 1] - mean);
  }
  var /= n;
  lag1 /= (n - 1) * var;
  EXPECT_NEAR(mean, 0.5, 0.05);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.02);
  EXPECT_LT(std::abs(lag1), 0.15);
}

TEST(CounterRngTest, UniformBoundsAndMoments) {
  CounterRng rng{StreamKey{8}.split("uniform")};
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
    mean += v;
  }
  EXPECT_NEAR(mean / n, 0.5, 0.05);
}

TEST(CounterRngTest, UniformIntIsBoundedAndRoughlyFlat) {
  CounterRng rng{StreamKey{8}.split("uniform_int")};
  const std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.uniform_int(n);
    ASSERT_LT(v, n);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / static_cast<double>(n),
                0.15 * draws / static_cast<double>(n));
  }
}

TEST(CounterRngTest, NormalMomentsAndDrawStability) {
  CounterRng rng{StreamKey{8}.split("normal")};
  double mean = 0.0;
  double m2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    mean += v;
    m2 += v * v;
  }
  mean /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(m2 / n - mean * mean, 1.0, 0.05);

  // The Box-Muller spare is per-instance: a fresh instance of the same key
  // replays the identical normal sequence (no cross-instance cache).
  CounterRng replay{StreamKey{8}.split("normal")};
  CounterRng fresh{StreamKey{8}.split("normal")};
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(replay.normal(), fresh.normal()) << "normal draw " << i;
  }
  // Scaled draws consume the stream exactly like standard draws.
  CounterRng scaled{StreamKey{8}.split("normal")};
  CounterRng standard{StreamKey{8}.split("normal")};
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(scaled.normal(3.0, 2.0), 3.0 + 2.0 * standard.normal());
  }
}

TEST(CounterRngTest, SeekClearsTheNormalSpare) {
  const StreamKey key = StreamKey{8}.split("seek_spare");
  CounterRng a{key};
  (void)a.normal();  // leaves a spare cached
  a.seek(0);
  CounterRng b{key};
  // If seek kept the spare, a's next normal would pop the stale cache
  // instead of re-deriving draw 0.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(CounterRngTest, ExponentialIsPositiveWithMatchingMean) {
  CounterRng rng{StreamKey{8}.split("exponential")};
  const double lambda = 2.5;
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(lambda);
    ASSERT_GE(v, 0.0);
    mean += v;
  }
  EXPECT_NEAR(mean / n, 1.0 / lambda, 0.02);
}

}  // namespace
}  // namespace roclk
