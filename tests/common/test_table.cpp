#include "roclk/common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace roclk {
namespace {

TEST(TextTable, RendersAlignedGrid) {
  TextTable table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Borders present.
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, AddRowValuesFormats) {
  TextTable table{{"x", "y"}};
  table.add_row_values({1.23456, 2.0}, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TextTable, CsvQuotingFollowsRfc4180) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(TextTable, WriteCsvRoundTrip) {
  TextTable table{{"k", "v"}};
  table.add_row({"x,y", "1"});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"x,y\",1\n");
}

TEST(TextTable, SaveCsvWritesFile) {
  TextTable table{{"a"}};
  table.add_row({"1"});
  const std::string path = "/tmp/roclk_test_table.csv";
  ASSERT_TRUE(table.save_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::remove(path.c_str());
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 3), "2.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace roclk
