#include "roclk/common/rng.hpp"

#include <gtest/gtest.h>

#include "roclk/common/stats.hpp"

namespace roclk {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Xoshiro256 rng{8};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng{9};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntBounded) {
  Xoshiro256 rng{10};
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // roughly uniform
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng{11};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Xoshiro256 rng{12};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Xoshiro256 rng{13};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Xoshiro256 rng{14};
  EXPECT_THROW(rng.exponential(0.0), std::logic_error);
}

TEST(Rng, JumpDecorrelatesStreams) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  // Regression-pin the seeding path: identical inputs, identical stream.
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Rng, Hash64IsDeterministicAndSpreads) {
  EXPECT_EQ(hash64(1234), hash64(1234));
  EXPECT_NE(hash64(1234), hash64(1235));
}

}  // namespace
}  // namespace roclk
