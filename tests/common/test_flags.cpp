#include "roclk/common/flags.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace roclk {
namespace {

FlagParser make_parser() {
  FlagParser p{"test tool"};
  p.add_string("name", "default", "a string");
  p.add_double("ratio", 1.5, "a double");
  p.add_int("count", 42, "an int");
  p.add_bool("verbose", false, "a bool");
  return p;
}

TEST(Flags, DefaultsWhenUnparsed) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse(std::vector<std::string>{}).is_ok());
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.5);
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Flags, SpaceSeparatedValues) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse({"--name", "abc", "--ratio", "2.25", "--count", "-7"})
                  .is_ok());
  EXPECT_EQ(p.get_string("name"), "abc");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
  EXPECT_EQ(p.get_int("count"), -7);
}

TEST(Flags, EqualsSeparatedValues) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse({"--name=xyz", "--ratio=0.125", "--verbose=true"})
                  .is_ok());
  EXPECT_EQ(p.get_string("name"), "xyz");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.125);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Flags, BareBooleanSetsTrue) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse({"--verbose"}).is_ok());
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Flags, BooleanAcceptsCommonSpellings) {
  for (const char* text : {"true", "1", "yes"}) {
    auto p = make_parser();
    ASSERT_TRUE(p.parse({std::string{"--verbose="} + text}).is_ok());
    EXPECT_TRUE(p.get_bool("verbose")) << text;
  }
  for (const char* text : {"false", "0", "no"}) {
    auto p = make_parser();
    ASSERT_TRUE(p.parse({std::string{"--verbose="} + text}).is_ok());
    EXPECT_FALSE(p.get_bool("verbose")) << text;
  }
}

TEST(Flags, UnknownFlagRejected) {
  auto p = make_parser();
  const auto s = p.parse({"--bogus", "1"});
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(Flags, MalformedNumbersRejected) {
  auto p = make_parser();
  EXPECT_FALSE(p.parse({"--ratio", "abc"}).is_ok());
  auto q = make_parser();
  EXPECT_FALSE(q.parse({"--count", "3.5"}).is_ok());
  auto r = make_parser();
  EXPECT_FALSE(r.parse({"--verbose=maybe"}).is_ok());
}

TEST(Flags, MissingValueRejected) {
  auto p = make_parser();
  EXPECT_FALSE(p.parse({"--name"}).is_ok());
}

TEST(Flags, HelpRequested) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse({"--help"}).is_ok());
  EXPECT_TRUE(p.help_requested());
  const auto text = p.help_text();
  EXPECT_NE(text.find("--ratio"), std::string::npos);
  EXPECT_NE(text.find("test tool"), std::string::npos);
  EXPECT_NE(text.find("default: 42"), std::string::npos);
}

TEST(Flags, PositionalArgumentsCollected) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse({"input.csv", "--count", "3", "more"}).is_ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "more");
}

TEST(Flags, TypeMismatchIsProgrammingError) {
  auto p = make_parser();
  ASSERT_TRUE(p.parse(std::vector<std::string>{}).is_ok());
  EXPECT_THROW((void)p.get_double("name"), std::logic_error);
  EXPECT_THROW((void)p.get_string("missing"), std::logic_error);
}

TEST(Flags, ConfigFileRoundTrip) {
  const std::string path = "/tmp/roclk_flags_test.conf";
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "name = from_file   # trailing comment\n"
        << "\n"
        << "ratio=3.5\n"
        << "verbose = yes\n";
  }
  auto p = make_parser();
  ASSERT_TRUE(p.parse_file(path).is_ok());
  EXPECT_EQ(p.get_string("name"), "from_file");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 3.5);
  EXPECT_TRUE(p.get_bool("verbose"));
  // Command line parsed afterwards overrides the file.
  ASSERT_TRUE(p.parse({"--ratio", "9.0"}).is_ok());
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 9.0);
  std::remove(path.c_str());
}

TEST(Flags, ConfigFileErrors) {
  auto p = make_parser();
  EXPECT_EQ(p.parse_file("/nonexistent/file.conf").code(),
            StatusCode::kNotFound);

  const std::string path = "/tmp/roclk_flags_bad.conf";
  {
    std::ofstream out(path);
    out << "no equals sign here\n";
  }
  auto q = make_parser();
  EXPECT_EQ(q.parse_file(path).code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "unknown_option = 1\n";
  }
  auto r = make_parser();
  EXPECT_EQ(r.parse_file(path).code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(Flags, ArgcArgvInterface) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--count", "5"};
  ASSERT_TRUE(p.parse(3, argv).is_ok());
  EXPECT_EQ(p.get_int("count"), 5);
}

}  // namespace
}  // namespace roclk
