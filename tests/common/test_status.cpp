#include "roclk/common/status.hpp"

#include <gtest/gtest.h>

namespace roclk {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::invalid_argument("bad gain");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gain");
  EXPECT_NE(s.to_string().find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(s.to_string().find("bad gain"), std::string::npos);
}

TEST(Status, AllFactoryCodes) {
  EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r{Status::not_found("missing")};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string{"payload"}};
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ROCLK_CHECK / ROCLK_DCHECK / ROCLK_CHECK_OK are covered in
// test_check.cpp alongside roclk/common/check.hpp.

}  // namespace
}  // namespace roclk
