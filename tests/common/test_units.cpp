#include "roclk/common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace roclk {
namespace {

using namespace roclk::literals;

TEST(Units, StagesArithmetic) {
  const Stages a{10.0};
  const Stages b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 2.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_DOUBLE_EQ((-a).value(), -10.0);
}

TEST(Units, CompoundAssignment) {
  Stages a{1.0};
  a += Stages{2.0};
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  a -= Stages{0.5};
  EXPECT_DOUBLE_EQ(a.value(), 2.5);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a.value(), 10.0);
  a /= 5.0;
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Stages{1.0}, Stages{2.0});
  EXPECT_EQ(Stages{3.0}, Stages{3.0});
  EXPECT_GE(Cycles{5}, Cycles{5});
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((64_stages).value(), 64.0);
  EXPECT_DOUBLE_EQ((0.5_stages).value(), 0.5);
  EXPECT_EQ((100_cycles).value(), 100);
}

TEST(Units, SecondsConversionRoundTrip) {
  // Paper worked example: c = 64 stages <-> 1 ns.
  const Seconds stage_delay{1e-9 / 64.0};
  const Stages c{64.0};
  const Seconds period = to_seconds(c, stage_delay);
  EXPECT_NEAR(period.value(), 1e-9, 1e-18);
  const Stages back = to_stages(period, stage_delay);
  EXPECT_NEAR(back.value(), 64.0, 1e-9);
}

TEST(Units, CyclesAreIntegers) {
  Cycles n{3};
  n += Cycles{4};
  EXPECT_EQ(n.value(), 7);
  EXPECT_EQ((n * 2).value(), 14);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Stages{12.5};
  EXPECT_EQ(os.str(), "12.5");
}

}  // namespace
}  // namespace roclk
