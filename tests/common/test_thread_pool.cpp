#include "roclk/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace roclk {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.submit(nullptr), std::logic_error);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForIndex, ZeroIterationsIsNoop) {
  ThreadPool pool{2};
  bool touched = false;
  parallel_for_index(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForIndex, ResultsMatchSerialComputation) {
  std::vector<double> out(500, 0.0);
  parallel_for_index(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelForIndex, ReusablePool) {
  ThreadPool pool{2};
  std::atomic<int> total{0};
  parallel_for_index(pool, 10, [&](std::size_t) { total.fetch_add(1); });
  parallel_for_index(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, SharedPoolIsProcessWideAndUsable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> total{0};
  parallel_for(37, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 37);
}

TEST(ParallelFor, ManyTinyCallsOnSharedPool) {
  // Stress the per-call scheduling state: thousands of tiny sweeps must
  // neither leak, deadlock, nor drop indices.
  std::atomic<long> total{0};
  for (int call = 0; call < 2000; ++call) {
    parallel_for(3, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i) + 1);
    });
  }
  EXPECT_EQ(total.load(), 2000L * 6L);
}

TEST(ParallelFor, NestedCallsComplete) {
  // An inner parallel_for issued from worker context must finish even when
  // every worker is already busy in the outer loop (the caller claims
  // ranges itself).  A pool of 2 guarantees oversubscription.
  ThreadPool pool{2};
  std::vector<std::atomic<int>> hits(8 * 16);
  parallel_for(pool, 8, [&](std::size_t outer) {
    parallel_for(pool, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, LargeIndexSpaceCoversEveryIndexOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(100000);
  parallel_for(pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionsEscapeNowhereButWorkCompletes) {
  // fn runs on the calling thread for n == 1, so a throwing body is
  // observable there; the pool itself must stay usable afterwards.
  ThreadPool pool{2};
  EXPECT_THROW(
      parallel_for(pool, 1,
                   [](std::size_t) { throw std::runtime_error{"boom"}; }),
      std::runtime_error);
  std::atomic<int> total{0};
  parallel_for(pool, 10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

}  // namespace
}  // namespace roclk
