#include "roclk/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace roclk {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool{1};
  EXPECT_THROW(pool.submit(nullptr), std::logic_error);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForIndex, ZeroIterationsIsNoop) {
  ThreadPool pool{2};
  bool touched = false;
  parallel_for_index(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForIndex, ResultsMatchSerialComputation) {
  std::vector<double> out(500, 0.0);
  parallel_for_index(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ParallelForIndex, ReusablePool) {
  ThreadPool pool{2};
  std::atomic<int> total{0};
  parallel_for_index(pool, 10, [&](std::size_t) { total.fetch_add(1); });
  parallel_for_index(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 30);
}

}  // namespace
}  // namespace roclk
