#include "roclk/common/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "roclk/common/status.hpp"

namespace roclk {
namespace {

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(ROCLK_CHECK(true, "never evaluated"));
}

TEST(Check, ThrowsContractViolationWithContext) {
  try {
    const int lanes = 7;
    ROCLK_CHECK(lanes % 2 == 0, "lanes=" << lanes << " must be even");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lanes % 2 == 0"), std::string::npos);
    EXPECT_NE(what.find("lanes=7 must be even"), std::string::npos);
    EXPECT_STREQ(e.expression(), "lanes % 2 == 0");
    EXPECT_NE(std::string{e.file()}.find("test_check.cpp"),
              std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(Check, ViolationIsALogicError) {
  // Pre-contract-layer code and tests catch std::logic_error; the
  // derivation keeps them working.
  EXPECT_THROW(ROCLK_CHECK(false, "compat"), std::logic_error);
}

TEST(Check, MessageOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  const auto count = [&]() {
    ++evaluations;
    return "side effect";
  };
  ROCLK_CHECK(true, count());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(ROCLK_CHECK(false, count()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckOk, ForwardsStatusMessage) {
  EXPECT_NO_THROW(ROCLK_CHECK_OK(Status::ok()));
  try {
    ROCLK_CHECK_OK(Status::invalid_argument("gain must be 2^-k"));
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string{e.what()}.find("gain must be 2^-k"),
              std::string::npos);
  }
}

TEST(Dcheck, CompilesInEveryBuildAndFiresWhenEnabled) {
  // The condition must type-check even when DCHECKs compile to dead code.
  EXPECT_NO_THROW(ROCLK_DCHECK(1 + 1 == 2, "arithmetic"));
#if ROCLK_DCHECKS_ENABLED
  EXPECT_THROW(ROCLK_DCHECK(false, "debug-only guard"), ContractViolation);
#else
  EXPECT_NO_THROW(ROCLK_DCHECK(false, "stripped in release"));
#endif
}

}  // namespace
}  // namespace roclk
