#include "roclk/common/fixed_point.hpp"

#include <gtest/gtest.h>

namespace roclk {
namespace {

using Q16 = FixedPoint<16>;
using Q0 = FixedPoint<0>;

TEST(FixedPoint, ConstructionAndConversion) {
  EXPECT_DOUBLE_EQ(Q16::from_int(5).to_double(), 5.0);
  EXPECT_DOUBLE_EQ(Q16::from_double(0.5).to_double(), 0.5);
  EXPECT_EQ(Q16::from_double(1.0).raw(), Q16::kOne);
  EXPECT_EQ(Q16::from_int(-3).floor_to_int(), -3);
}

TEST(FixedPoint, RoundingOnFromDouble) {
  // One LSB at Frac=16 is 2^-16; half an LSB rounds away from zero-ish.
  const double lsb = 1.0 / 65536.0;
  EXPECT_EQ(Q16::from_double(lsb * 0.49).raw(), 0);
  EXPECT_EQ(Q16::from_double(lsb * 0.51).raw(), 1);
  EXPECT_EQ(Q16::from_double(-lsb * 0.51).raw(), -1);
}

TEST(FixedPoint, Arithmetic) {
  const auto a = Q16::from_double(1.25);
  const auto b = Q16::from_double(0.75);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 0.5);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
}

TEST(FixedPoint, ScaledPow2IsExactShift) {
  const auto a = Q16::from_double(3.0);
  EXPECT_DOUBLE_EQ(a.scaled_pow2(2).to_double(), 12.0);
  EXPECT_DOUBLE_EQ(a.scaled_pow2(-1).to_double(), 1.5);
}

TEST(FixedPoint, FloorToIntRoundsTowardMinusInfinity) {
  EXPECT_EQ(Q16::from_double(2.9).floor_to_int(), 2);
  EXPECT_EQ(Q16::from_double(-2.1).floor_to_int(), -3);
}

TEST(FixedPoint, IntegerModeBehavesLikeInt) {
  const auto a = Q0::from_int(7);
  EXPECT_EQ(a.scaled_pow2(-1).floor_to_int(), 3);
  EXPECT_EQ(Q0::from_int(-7).scaled_pow2(-1).floor_to_int(), -4);
}

TEST(PowerOfTwoGain, FromValueAcceptsExactPowers) {
  auto g = PowerOfTwoGain::from_value(8.0);
  ASSERT_TRUE(g.is_ok());
  EXPECT_EQ(g.value().exponent(), 3);
  EXPECT_FALSE(g.value().negative());
  EXPECT_DOUBLE_EQ(g.value().value(), 8.0);

  auto h = PowerOfTwoGain::from_value(0.125);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value().exponent(), -3);
  EXPECT_DOUBLE_EQ(h.value().value(), 0.125);

  auto n = PowerOfTwoGain::from_value(-2.0);
  ASSERT_TRUE(n.is_ok());
  EXPECT_TRUE(n.value().negative());
  EXPECT_DOUBLE_EQ(n.value().value(), -2.0);
}

TEST(PowerOfTwoGain, FromValueRejectsNonPowers) {
  EXPECT_FALSE(PowerOfTwoGain::from_value(3.0).is_ok());
  EXPECT_FALSE(PowerOfTwoGain::from_value(0.3).is_ok());
  EXPECT_FALSE(PowerOfTwoGain::from_value(0.0).is_ok());
}

TEST(PowerOfTwoGain, ApplyToIntegerShifts) {
  const PowerOfTwoGain times4{2};
  const PowerOfTwoGain quarter{-2};
  const PowerOfTwoGain minus_half{-1, true};
  EXPECT_EQ(times4.apply(std::int64_t{5}), 20);
  EXPECT_EQ(quarter.apply(std::int64_t{20}), 5);
  EXPECT_EQ(quarter.apply(std::int64_t{-1}), -1);  // floor(-0.25) = -1
  EXPECT_EQ(minus_half.apply(std::int64_t{8}), -4);
}

TEST(PowerOfTwoGain, ApplyToFixedPoint) {
  const PowerOfTwoGain half{-1};
  const auto x = Q16::from_double(5.0);
  EXPECT_DOUBLE_EQ(half.apply(x).to_double(), 2.5);
}

// The paper's gain set must all be representable as PowerOfTwoGain.
TEST(PowerOfTwoGain, PaperGainSetIsRepresentable) {
  for (double k : {2.0, 1.0, 0.5, 0.25, 0.125, 0.125, 8.0, 0.25}) {
    EXPECT_TRUE(PowerOfTwoGain::from_value(k).is_ok()) << k;
  }
}

}  // namespace
}  // namespace roclk
