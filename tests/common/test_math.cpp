#include "roclk/common/math.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace roclk {
namespace {

TEST(Math, Signum) {
  EXPECT_EQ(signum(5.0), 1);
  EXPECT_EQ(signum(-0.25), -1);
  EXPECT_EQ(signum(0.0), 0);
  EXPECT_EQ(signum(-7), -1);
}

TEST(Math, SignumDitherNeverZero) {
  EXPECT_EQ(signum_dither(0.0), 1);
  EXPECT_EQ(signum_dither(3.0), 1);
  EXPECT_EQ(signum_dither(-3.0), -1);
}

TEST(Math, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1ULL << 40));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(1025), 10);
}

TEST(Math, ShiftSignedPositiveCounts) {
  EXPECT_EQ(shift_signed(3, 2), 12);
  EXPECT_EQ(shift_signed(-3, 2), -12);
}

TEST(Math, ShiftSignedNegativeCountsRoundTowardMinusInf) {
  // Arithmetic right shift on two's complement: floor division by 2^k.
  EXPECT_EQ(shift_signed(7, -1), 3);
  EXPECT_EQ(shift_signed(-7, -1), -4);  // floor(-3.5) = -4
  EXPECT_EQ(shift_signed(-1, -3), -1);  // floor(-0.125) = -1
}

TEST(Math, PositiveFmod) {
  EXPECT_DOUBLE_EQ(positive_fmod(5.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(positive_fmod(-0.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(positive_fmod(-4.0, 2.0), 0.0);
}

TEST(Math, NearAndNearRel) {
  EXPECT_TRUE(near(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(near(1.0, 1.1));
  EXPECT_TRUE(near_rel(1e6, 1e6 * (1 + 1e-12)));
  EXPECT_FALSE(near_rel(1e6, 1e6 * 1.01));
  EXPECT_TRUE(near_rel(0.0, 1e-15));
}

TEST(Math, LerpAndSmoothstep) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep(1.0), 1.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.5), 0.5);
  // Monotone on [0, 1].
  EXPECT_LT(smoothstep(0.3), smoothstep(0.4));
}


TEST(Math, RoundTiesAwayMatchesLibmOnSpecials) {
  const double cases[] = {0.0,   -0.0,  0.5,    -0.5,   1.5,   -1.5,
                          2.5,   -2.5,  0.49999999999999994,
                          4503599627370495.5,  // largest x with a .5 tie
                          -4503599627370495.5, 1e308, -1e308,
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max()};
  for (double x : cases) {
    const double want = std::round(x);
    const double got = round_ties_away(x);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(want),
              std::bit_cast<std::uint64_t>(got))
        << "x = " << x;
  }
  EXPECT_TRUE(std::isnan(round_ties_away(
      std::numeric_limits<double>::quiet_NaN())));
}

TEST(Math, RoundTiesAwayMatchesLibmNearTies) {
  // Every representable neighbour of the half-integer ties in +-[0, 64).
  for (int k = -128; k < 128; ++k) {
    const double tie = 0.5 * static_cast<double>(k);
    for (double x : {tie, std::nextafter(tie, -1e9),
                     std::nextafter(tie, 1e9)}) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(std::round(x)),
                std::bit_cast<std::uint64_t>(round_ties_away(x)))
          << "x = " << x;
      EXPECT_EQ(std::llround(x), llround_ties_away(x)) << "x = " << x;
    }
  }
}

TEST(Math, RoundTiesAwayMatchesLibmOnRandomBitPatterns) {
  // Deterministic xorshift sweep over raw double bit patterns (finite
  // values only for llround, which has UB on overflow in both spellings).
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  for (int i = 0; i < 200000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double x = std::bit_cast<double>(state);
    if (std::isnan(x)) continue;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(std::round(x)),
              std::bit_cast<std::uint64_t>(round_ties_away(x)))
        << "bits = " << state;
    if (std::abs(x) < 9.0e18) {
      EXPECT_EQ(std::llround(x), llround_ties_away(x)) << "bits = " << state;
    }
  }
}

}  // namespace
}  // namespace roclk
