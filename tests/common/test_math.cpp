#include "roclk/common/math.hpp"

#include <gtest/gtest.h>

namespace roclk {
namespace {

TEST(Math, Signum) {
  EXPECT_EQ(signum(5.0), 1);
  EXPECT_EQ(signum(-0.25), -1);
  EXPECT_EQ(signum(0.0), 0);
  EXPECT_EQ(signum(-7), -1);
}

TEST(Math, SignumDitherNeverZero) {
  EXPECT_EQ(signum_dither(0.0), 1);
  EXPECT_EQ(signum_dither(3.0), 1);
  EXPECT_EQ(signum_dither(-3.0), -1);
}

TEST(Math, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1ULL << 40));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(1025), 10);
}

TEST(Math, ShiftSignedPositiveCounts) {
  EXPECT_EQ(shift_signed(3, 2), 12);
  EXPECT_EQ(shift_signed(-3, 2), -12);
}

TEST(Math, ShiftSignedNegativeCountsRoundTowardMinusInf) {
  // Arithmetic right shift on two's complement: floor division by 2^k.
  EXPECT_EQ(shift_signed(7, -1), 3);
  EXPECT_EQ(shift_signed(-7, -1), -4);  // floor(-3.5) = -4
  EXPECT_EQ(shift_signed(-1, -3), -1);  // floor(-0.125) = -1
}

TEST(Math, PositiveFmod) {
  EXPECT_DOUBLE_EQ(positive_fmod(5.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(positive_fmod(-0.5, 2.0), 1.5);
  EXPECT_DOUBLE_EQ(positive_fmod(-4.0, 2.0), 0.0);
}

TEST(Math, NearAndNearRel) {
  EXPECT_TRUE(near(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(near(1.0, 1.1));
  EXPECT_TRUE(near_rel(1e6, 1e6 * (1 + 1e-12)));
  EXPECT_FALSE(near_rel(1e6, 1e6 * 1.01));
  EXPECT_TRUE(near_rel(0.0, 1e-15));
}

TEST(Math, LerpAndSmoothstep) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep(1.0), 1.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.5), 0.5);
  // Monotone on [0, 1].
  EXPECT_LT(smoothstep(0.3), smoothstep(0.4));
}

}  // namespace
}  // namespace roclk
