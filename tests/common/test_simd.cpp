#include "roclk/common/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "roclk/common/math.hpp"

namespace roclk::simd {
namespace {

/// Scoped backend override so a failing test cannot leak a forced backend
/// into the rest of the suite.
struct BackendOverrideGuard {
  explicit BackendOverrideGuard(Backend backend) {
    set_backend_override(backend);
  }
  ~BackendOverrideGuard() { set_backend_override(std::nullopt); }
  BackendOverrideGuard(const BackendOverrideGuard&) = delete;
  BackendOverrideGuard& operator=(const BackendOverrideGuard&) = delete;
};

bool line_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes == 0;
}

// ------------------------------------------------ cache-aligned storage

TEST(CacheAlignedAllocator, AllocationsAreLineAlignedForOddSizes) {
  CacheAlignedAllocator<double> alloc;
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{9}, std::size_t{1000}}) {
    double* p = alloc.allocate(n);
    EXPECT_TRUE(line_aligned(p)) << n << " doubles";
    alloc.deallocate(p, n);
  }
  CacheAlignedAllocator<std::uint8_t> bytes;
  std::uint8_t* p = bytes.allocate(3);
  EXPECT_TRUE(line_aligned(p));
  bytes.deallocate(p, 3);
}

TEST(CacheAlignedAllocator, AlignedVectorStaysAlignedThroughGrowth) {
  aligned_vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<double>(i));
    ASSERT_TRUE(line_aligned(v.data())) << "after " << i + 1 << " pushes";
  }
  aligned_vector<std::int64_t> iv(37, 0);
  EXPECT_TRUE(line_aligned(iv.data()));
}

TEST(CacheAlignedAllocator, RebindsAndComparesEqual) {
  // std::vector rebinds the allocator internally; equality means any
  // instance can free any other instance's memory.
  EXPECT_TRUE(CacheAlignedAllocator<double>{} ==
              CacheAlignedAllocator<double>{});
  CacheAlignedAllocator<std::int64_t> from_double{
      CacheAlignedAllocator<double>{}};
  std::int64_t* p = from_double.allocate(5);
  EXPECT_TRUE(line_aligned(p));
  from_double.deallocate(p, 5);
}

// -------------------------------------------------- backend dispatch

TEST(SimdBackend, ParseBackendRecognisesNamesOnly) {
  EXPECT_EQ(parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(parse_backend("neon"), Backend::kNeon);
  EXPECT_EQ(parse_backend("native"), std::nullopt);
  EXPECT_EQ(parse_backend("auto"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
  EXPECT_EQ(parse_backend("sse9"), std::nullopt);
}

TEST(SimdBackend, ScalarIsAlwaysUsableAndNamed) {
  EXPECT_TRUE(backend_compiled(Backend::kScalar));
  EXPECT_TRUE(backend_cpu_supported(Backend::kScalar));
  EXPECT_STREQ(to_string(Backend::kScalar), "scalar");
  EXPECT_STREQ(to_string(Backend::kAvx2), "avx2");
  EXPECT_STREQ(to_string(Backend::kNeon), "neon");
}

TEST(SimdBackend, NativeBackendIsCompiledAndSupported) {
  const Backend native = native_backend();
  EXPECT_TRUE(backend_compiled(native));
  EXPECT_TRUE(backend_cpu_supported(native));
}

TEST(SimdBackend, OverrideOutranksEnvAndNative) {
  ASSERT_EQ(backend_override(), std::nullopt)
      << "another test leaked a backend override";
  {
    BackendOverrideGuard forced{Backend::kScalar};
    EXPECT_EQ(backend_override(), Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(backend_override(), std::nullopt);
  {
    BackendOverrideGuard forced{native_backend()};
    EXPECT_EQ(active_backend(), native_backend());
  }
  // With no override, the dispatcher still resolves to something usable
  // (env request or native detection, both degrade to scalar if unusable).
  const Backend resolved = active_backend();
  EXPECT_TRUE(backend_compiled(resolved));
  EXPECT_TRUE(backend_cpu_supported(resolved));
}

TEST(SimdBackend, UnusableOverrideDegradesToScalar) {
  for (const Backend candidate : {Backend::kAvx2, Backend::kNeon}) {
    if (backend_compiled(candidate) && backend_cpu_supported(candidate)) {
      continue;  // genuinely usable here; nothing to degrade
    }
    BackendOverrideGuard forced{candidate};
    EXPECT_EQ(active_backend(), Backend::kScalar) << to_string(candidate);
  }
}

// ------------------------------------------------ portable scalar pack
//
// The ensemble equivalence suite exercises every backend end to end; here
// we pin the portable pack's tricky single ops against the scalar
// reference functions they must reproduce bit for bit.

using V = ScalarTraits<4>;

TEST(ScalarPack, RoundTiesAwayMatchesMathHppBitForBit) {
  const std::vector<double> cases{0.0,   -0.0,  0.5,    -0.5,  1.5,
                                  -1.5,  2.5,   -2.5,   0.49,  -0.49,
                                  3.0,   -3.0,  1e15,   -1e15, 0x1p50,
                                  -0x1p50, 123456.5, -123456.5};
  for (std::size_t i = 0; i + V::kWidth <= cases.size(); i += V::kWidth) {
    double out[V::kWidth];
    V::store(out, V::round_ties_away(V::load(&cases[i])));
    for (std::size_t j = 0; j < V::kWidth; ++j) {
      const double expect = roclk::round_ties_away(cases[i + j]);
      // Bitwise comparison so -0.0 vs +0.0 mismatches are caught.
      EXPECT_EQ(std::memcmp(&out[j], &expect, sizeof(double)), 0)
          << "x=" << cases[i + j];
    }
  }
}

TEST(ScalarPack, CmpSelectComposesStdMinMaxExactly) {
  // std::min(a,b) = b<a ? b : a;  std::max(a,b) = a<b ? b : a.  The pack
  // must preserve that selection order so equal values (incl. -0.0 vs
  // +0.0) pick the same operand as the scalar reference.
  const double a[4] = {1.0, -0.0, 3.5, -2.0};
  const double b[4] = {2.0, 0.0, 3.5, -7.0};
  const V::D va = V::load(a);
  const V::D vb = V::load(b);
  double mn[4];
  double mx[4];
  V::store(mn, V::select(V::cmp_lt(vb, va), vb, va));
  V::store(mx, V::select(V::cmp_lt(va, vb), vb, va));
  for (int i = 0; i < 4; ++i) {
    const double smin = std::min(a[i], b[i]);
    const double smax = std::max(a[i], b[i]);
    EXPECT_EQ(std::memcmp(&mn[i], &smin, sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&mx[i], &smax, sizeof(double)), 0) << i;
  }
}

TEST(ScalarPack, IntConversionsExactInsideWindow) {
  const std::int64_t values[4] = {0, -1, (std::int64_t{1} << 50),
                                  -((std::int64_t{1} << 50) - 3)};
  double d[4];
  V::store(d, V::to_double_exact(V::iload(values)));
  std::int64_t back[4];
  V::istore(back, V::to_int_exact(V::load(d)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(d[i], static_cast<double>(values[i])) << i;
    EXPECT_EQ(back[i], values[i]) << i;
  }
}

TEST(ScalarPack, SignedShiftAndMasksMatchScalar) {
  // shift_signed: left for sh >= 0, arithmetic right for sh < 0.
  const std::int64_t values[4] = {-9, 9, -1, (std::int64_t{1} << 40) + 5};
  std::int64_t out[4];
  V::istore(out, V::ishift_signed(V::iload(values), -3));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], values[i] >> 3) << i;
  V::istore(out, V::ishift_signed(V::iload(values), 2));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], values[i] << 2) << i;

  const std::int64_t limit[4] = {10, 10, 10, 10};
  const unsigned below =
      V::imask_bits(V::icmp_lt(V::iload(values), V::iload(limit)));
  EXPECT_EQ(below, 0b0111u);  // lanes 0..2 are < 10, lane 3 is not
}

}  // namespace
}  // namespace roclk::simd
