#include "roclk/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace roclk {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3.0;
    whole.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(BatchStats, MeanVarMinMax) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_DOUBLE_EQ(peak_to_peak(xs), 3.0);
}

TEST(BatchStats, Rms) {
  const std::vector<double> xs{3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

TEST(BatchStats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  // Unsorted input is handled.
  const std::vector<double> shuffled{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 0.5), 25.0);
}

TEST(BatchStats, PercentilePreconditions) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(std::vector<double>{}, 0.5),
               std::logic_error);
  EXPECT_THROW((void)percentile(xs, 1.5), std::logic_error);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h{0.0, 10.0, 5};
  for (double x : {0.5, 1.0, 3.3, 9.9, -1.0, 10.0, 5.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);  // -1.0
  EXPECT_EQ(h.overflow(), 1u);   // 10.0 (right-open)
  EXPECT_EQ(h.count(0), 2u);     // 0.5 and 1.0 in [0, 2)
  EXPECT_EQ(h.count(1), 1u);     // 3.3
  EXPECT_EQ(h.count(2), 1u);     // 5.0
  EXPECT_EQ(h.count(4), 1u);     // 9.9
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), std::logic_error);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::logic_error);
}

}  // namespace
}  // namespace roclk
