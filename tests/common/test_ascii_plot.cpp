#include "roclk/common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace roclk {
namespace {

TEST(AsciiPlot, RendersTitleLegendAndGlyphs) {
  PlotOptions opts;
  opts.title = "demo plot";
  opts.x_label = "time";
  AsciiPlot plot{opts};
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys{0.0, 1.0, 4.0, 9.0};
  plot.add_series("squares", xs, ys, '*');
  const std::string out = plot.render();
  EXPECT_NE(out.find("demo plot"), std::string::npos);
  EXPECT_NE(out.find("squares"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("x: time"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesKeepDistinctGlyphs) {
  AsciiPlot plot;
  std::vector<double> xs{0.0, 1.0, 2.0};
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{3.0, 2.0, 1.0};
  plot.add_series("up", xs, a, 'u');
  plot.add_series("down", xs, b, 'd');
  const std::string out = plot.render();
  EXPECT_NE(out.find('u'), std::string::npos);
  EXPECT_NE(out.find('d'), std::string::npos);
}

TEST(AsciiPlot, LogXSkipsNonPositivePoints) {
  PlotOptions opts;
  opts.log_x = true;
  AsciiPlot plot{opts};
  std::vector<double> xs{0.0, 0.1, 1.0, 10.0};  // 0.0 must be ignored
  std::vector<double> ys{5.0, 1.0, 2.0, 3.0};
  plot.add_series("s", xs, ys, '#');
  EXPECT_NO_THROW((void)plot.render());
}

TEST(AsciiPlot, MismatchedSeriesThrows) {
  AsciiPlot plot;
  PlotSeries s;
  s.name = "bad";
  s.x = {1.0, 2.0};
  s.y = {1.0};
  EXPECT_THROW(plot.add_series(std::move(s)), std::logic_error);
}

TEST(AsciiPlot, TinyCanvasRejected) {
  PlotOptions opts;
  opts.width = 2;
  opts.height = 2;
  EXPECT_THROW(AsciiPlot{opts}, std::logic_error);
}

TEST(AsciiPlot, FixedYRangeIsRespected) {
  PlotOptions opts;
  opts.y_lo = -1.0;
  opts.y_hi = 1.0;
  AsciiPlot plot{opts};
  std::vector<double> xs{0.0, 1.0};
  std::vector<double> ys{-0.5, 0.5};
  plot.add_series("s", xs, ys, 'o');
  const std::string out = plot.render();
  // The top-of-axis label reflects the padded fixed range (~1.06).
  EXPECT_NE(out.find("1.06"), std::string::npos);
}

TEST(Sparkline, ProducesRequestedWidth) {
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(static_cast<double>(i % 10));
  const std::string line = sparkline(ys, 20);
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(line.size(), 20u * 3u);
}

TEST(Sparkline, HandlesConstantAndEmptyInput) {
  EXPECT_EQ(sparkline(std::vector<double>{}, 10), "");
  const std::vector<double> flat(16, 2.0);
  EXPECT_FALSE(sparkline(flat, 8).empty());
}

}  // namespace
}  // namespace roclk
