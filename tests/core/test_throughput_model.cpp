#include "roclk/core/throughput_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "roclk/control/iir_control.hpp"

namespace roclk::core {
namespace {

SimulationTrace trace_with(const std::vector<double>& taus,
                           double period = 64.0) {
  SimulationTrace trace;
  for (double tau : taus) {
    StepRecord r;
    r.tau = tau;
    r.t_dlv = period;
    trace.push(r);
  }
  return trace;
}

TEST(Throughput, ErrorFreeRunAtLogicDepthIsIdeal) {
  const auto trace = trace_with(std::vector<double>(100, 64.0), 64.0);
  const auto report = evaluate_throughput(trace, {64.0, 8.0});
  EXPECT_EQ(report.errors, 0u);
  EXPECT_DOUBLE_EQ(report.useful_cycles, 100.0);
  EXPECT_DOUBLE_EQ(report.total_time_stages, 6400.0);
  EXPECT_DOUBLE_EQ(report.efficiency, 1.0);
}

TEST(Throughput, SlowClockCostsEfficiency) {
  const auto trace = trace_with(std::vector<double>(100, 80.0), 80.0);
  const auto report = evaluate_throughput(trace, {64.0, 8.0});
  EXPECT_EQ(report.errors, 0u);
  EXPECT_DOUBLE_EQ(report.efficiency, 64.0 / 80.0);
}

TEST(Throughput, ErrorsChargeReplayPenalty) {
  std::vector<double> taus(100, 64.0);
  taus[10] = 60.0;  // two errors
  taus[50] = 63.0;
  const auto trace = trace_with(taus);
  const auto report = evaluate_throughput(trace, {64.0, 8.0});
  EXPECT_EQ(report.errors, 2u);
  EXPECT_DOUBLE_EQ(report.useful_cycles, 100.0 - 16.0);
  EXPECT_DOUBLE_EQ(report.efficiency, 84.0 / 100.0);
}

TEST(Throughput, UsefulCyclesFlooredAtZero) {
  const auto trace = trace_with(std::vector<double>(10, 10.0));  // all fail
  const auto report = evaluate_throughput(trace, {64.0, 8.0});
  EXPECT_EQ(report.errors, 10u);
  EXPECT_DOUBLE_EQ(report.useful_cycles, 0.0);
  EXPECT_DOUBLE_EQ(report.efficiency, 0.0);
}

TEST(Throughput, SkipDropsTransient) {
  std::vector<double> taus(20, 64.0);
  taus[0] = 1.0;  // transient error
  const auto trace = trace_with(taus);
  EXPECT_EQ(evaluate_throughput(trace, {64.0, 8.0}, 0).errors, 1u);
  EXPECT_EQ(evaluate_throughput(trace, {64.0, 8.0}, 1).errors, 0u);
}

TEST(Throughput, Preconditions) {
  const auto trace = trace_with({64.0});
  EXPECT_THROW((void)evaluate_throughput(trace, {0.0, 8.0}),
               std::logic_error);
  EXPECT_THROW((void)evaluate_throughput(trace, {64.0, -1.0}),
               std::logic_error);
  EXPECT_THROW((void)evaluate_throughput(trace, {64.0, 8.0}, 5),
               std::logic_error);
}

TEST(GovernedRun, GovernorDrivesLoopSetpoint) {
  LoopConfig cfg;
  cfg.setpoint_c = 76.0;
  cfg.cdn_delay_stages = 64.0;
  LoopSimulator sim{cfg, std::make_unique<control::IirControlHardware>()};

  control::GovernorConfig gov_cfg;
  gov_cfg.initial_setpoint = 76.0;
  gov_cfg.logic_depth = 64.0;
  gov_cfg.window = 64;
  gov_cfg.headroom = 2.0;
  control::SetpointGovernor governor{gov_cfg};

  const auto trace = run_with_governor(sim, governor,
                                       SimulationInputs::none(), 8000);
  EXPECT_EQ(trace.size(), 8000u);
  // Quiet environment: the governor must creep down to near L + headroom.
  EXPECT_LT(governor.setpoint(), 69.0);
  EXPECT_GE(governor.setpoint(), 64.0);
  EXPECT_EQ(governor.total_errors(), 0u);
  // And the loop actually followed: late delivered periods near the final c.
  EXPECT_NEAR(trace.delivered_period().back(), governor.setpoint(), 2.0);
}

TEST(GovernedRun, BacksOffWhenPushedIntoErrors) {
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;  // starts AT the logic depth: ripple causes errors
  cfg.cdn_delay_stages = 64.0;
  LoopSimulator sim{cfg, std::make_unique<control::IirControlHardware>()};

  control::GovernorConfig gov_cfg;
  gov_cfg.initial_setpoint = 64.0;
  gov_cfg.logic_depth = 64.0;
  gov_cfg.window = 64;
  control::SetpointGovernor governor{gov_cfg};

  const auto inputs = SimulationInputs::harmonic(6.0, 2560.0);
  const auto trace = run_with_governor(sim, governor, inputs, 8000);
  // The governor must have raised the set-point above the start.
  EXPECT_GT(governor.setpoint(), 64.0);
  // ...and late-run errors should be rarer than early-run errors.
  const auto tp_early = evaluate_throughput(trace, {64.0, 8.0}, 0);
  std::size_t late_errors = 0;
  const auto& tau = trace.tau();
  for (std::size_t i = 6000; i < tau.size(); ++i) {
    if (tau[i] < 64.0) ++late_errors;
  }
  EXPECT_LT(late_errors * 4, tp_early.errors + 1);
}

}  // namespace
}  // namespace roclk::core
