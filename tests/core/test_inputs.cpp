#include "roclk/core/inputs.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::core {
namespace {

TEST(Inputs, NoneIsQuiet) {
  const auto inputs = SimulationInputs::none();
  EXPECT_DOUBLE_EQ(inputs.e_ro(123.0), 0.0);
  EXPECT_DOUBLE_EQ(inputs.e_tdc(123.0), 0.0);
  EXPECT_DOUBLE_EQ(inputs.mu(123.0), 0.0);
}

TEST(Inputs, HomogeneousDrivesRoAndTdcIdentically) {
  auto wave = std::make_shared<signal::SineWaveform>(12.8, 1600.0);
  const auto inputs = SimulationInputs::homogeneous(wave, 3.0);
  for (double t : {0.0, 100.0, 987.0}) {
    EXPECT_DOUBLE_EQ(inputs.e_ro(t), wave->at(t));
    EXPECT_DOUBLE_EQ(inputs.e_tdc(t), wave->at(t));
  }
  EXPECT_DOUBLE_EQ(inputs.mu(0.0), 3.0);
  EXPECT_DOUBLE_EQ(inputs.mu(5000.0), 3.0);
}

TEST(Inputs, HarmonicShortcut) {
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0, -2.0);
  EXPECT_NEAR(inputs.e_ro(400.0), 12.8, 1e-9);  // quarter period
  EXPECT_DOUBLE_EQ(inputs.mu(0.0), -2.0);
}

TEST(Inputs, NullWaveformRejected) {
  EXPECT_THROW((void)SimulationInputs::homogeneous(nullptr),
               std::logic_error);
}

TEST(Inputs, SampleEvaluatesSignalsOnTheRunGrid) {
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0, -2.5);
  const InputBlock block = inputs.sample(64, 32.0);
  ASSERT_EQ(block.size(), 64u);
  EXPECT_DOUBLE_EQ(block.dt, 32.0);
  for (std::size_t k = 0; k < block.size(); ++k) {
    const double t = static_cast<double>(k) * 32.0;
    EXPECT_EQ(block.e_ro[k], inputs.e_ro(t)) << "k = " << k;
    EXPECT_EQ(block.e_tdc[k], inputs.e_tdc(t)) << "k = " << k;
    EXPECT_EQ(block.mu[k], inputs.mu(t)) << "k = " << k;
  }
}

TEST(Inputs, SampleRejectsNonPositiveDt) {
  const auto inputs = SimulationInputs::none();
  EXPECT_THROW((void)inputs.sample(8, 0.0), std::logic_error);
  const InputBlock empty = inputs.sample(0, 64.0);
  EXPECT_TRUE(empty.empty());
}

TEST(Inputs, FromVariationSourceScalesBySetpoint) {
  auto source = std::shared_ptr<const variation::VariationSource>(
      variation::DieToDieProcess::with_offset(0.1).clone());
  const auto inputs = SimulationInputs::from_variation_source(source, 64.0);
  EXPECT_NEAR(inputs.e_ro(0.0), 6.4, 1e-12);
  EXPECT_NEAR(inputs.e_tdc(0.0), 6.4, 1e-12);
  EXPECT_DOUBLE_EQ(inputs.mu(0.0), 0.0);
}

TEST(Inputs, FromVariationSourceTakesWorstTdcSite) {
  // A hotspot in one corner: the worst TDC (max variation) defines e_tdc,
  // while the central RO sees less.
  auto hotspot = std::make_shared<variation::TemperatureHotspot>(
      0.2, variation::DiePoint{5.0 / 6.0, 5.0 / 6.0}, 0.1, 0.0, 1.0);
  const auto inputs = SimulationInputs::from_variation_source(
      hotspot, 64.0, {0.5, 0.5}, 3);
  const double t = 100.0;
  EXPECT_GT(inputs.e_tdc(t), 0.15 * 64.0);  // near-peak at hot sensor
  EXPECT_LT(inputs.e_ro(t), inputs.e_tdc(t));
}

}  // namespace
}  // namespace roclk::core
