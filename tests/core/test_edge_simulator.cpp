#include "roclk/core/edge_simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "roclk/control/iir_control.hpp"

namespace roclk::core {
namespace {

EdgeSimConfig base_config(GeneratorMode mode) {
  EdgeSimConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = 64.0;
  cfg.mode = mode;
  return cfg;
}

TEST(EdgeSimulator, QuietEquilibriumForAllModes) {
  for (auto mode : {GeneratorMode::kControlledRo, GeneratorMode::kFreeRunningRo,
                    GeneratorMode::kFixedClock}) {
    std::unique_ptr<control::ControlBlock> ctrl;
    if (mode == GeneratorMode::kControlledRo) {
      ctrl = std::make_unique<control::IirControlHardware>();
    }
    EdgeSimulator sim{base_config(mode), std::move(ctrl)};
    const auto trace = sim.run(EdgeSimInputs{}, 200);
    ASSERT_EQ(trace.size(), 200u);
    EXPECT_EQ(trace.violation_count(), 0u) << to_string(mode);
    for (double tau : trace.tau()) {
      ASSERT_DOUBLE_EQ(tau, 64.0);
    }
  }
}

TEST(EdgeSimulator, ControlledModeRequiresController) {
  EXPECT_THROW((EdgeSimulator{base_config(GeneratorMode::kControlledRo),
                              nullptr}),
               std::logic_error);
}

TEST(EdgeSimulator, HomogeneousStepRejectedByClosedLoop) {
  EdgeSimulator sim{base_config(GeneratorMode::kControlledRo),
                    std::make_unique<control::IirControlHardware>()};
  EdgeSimInputs inputs;
  inputs.v_ro = [](double t) { return t > 2000.0 ? 0.1 : 0.0; };
  inputs.v_tdc = inputs.v_ro;
  const auto trace = sim.run(inputs, 800);
  // Steady state: tau back to ~c, period stretched ~10%.
  EXPECT_NEAR(trace.tau().back(), 64.0, 1.5);
  EXPECT_NEAR(trace.delivered_period().back(), 70.4, 1.5);
}

TEST(EdgeSimulator, FixedClockIgnoresVariationAndFails) {
  EdgeSimulator sim{base_config(GeneratorMode::kFixedClock), nullptr};
  EdgeSimInputs inputs;
  inputs.v_ro = [](double) { return 0.1; };
  inputs.v_tdc = inputs.v_ro;
  const auto trace = sim.run(inputs, 300);
  // tau ~ 64/1.1 = 58.2: persistent violation.
  EXPECT_NEAR(trace.tau().back(), 58.0, 1.0);
  EXPECT_GT(trace.violation_count(), 250u);
}

TEST(EdgeSimulator, TdcMismatchShiftsReadingsPhysically) {
  auto cfg = base_config(GeneratorMode::kFreeRunningRo);
  cfg.tdc_relative_mismatch = -0.1;  // TDC 10% faster: reads higher
  EdgeSimulator sim{cfg, nullptr};
  const auto trace = sim.run(EdgeSimInputs{}, 100);
  EXPECT_NEAR(trace.tau().back(), 64.0 / 0.9, 1.0);
}

TEST(EdgeSimulator, AgreesWithDiscreteModelForSlowPerturbations) {
  // Model-fidelity check (ablation A5 in miniature): for a slow harmonic
  // HoDV the event-driven and sample-domain simulators must report similar
  // safety margins and mean periods for the IIR system.
  const double c = 64.0;
  const double amplitude_frac = 0.1;
  const double period = 100.0 * c;

  EdgeSimulator edge{base_config(GeneratorMode::kControlledRo),
                     std::make_unique<control::IirControlHardware>()};
  EdgeSimInputs edge_inputs = EdgeSimInputs::homogeneous(
      std::make_shared<signal::SineWaveform>(amplitude_frac, period));
  const auto edge_trace = edge.run(edge_inputs, 4000);

  auto discrete = make_iir_system(c, c);
  const auto discrete_trace = discrete.run(
      SimulationInputs::harmonic(amplitude_frac * c, period), 4000);

  const double sm_edge = edge_trace.required_safety_margin(c, 1000);
  const double sm_discrete = discrete_trace.required_safety_margin(c, 1000);
  EXPECT_NEAR(sm_edge, sm_discrete, 2.0);
  EXPECT_NEAR(edge_trace.mean_delivered_period(1000),
              discrete_trace.mean_delivered_period(1000), 1.0);
}

TEST(EdgeSimulator, PhysicalMismatchMatchesAdditiveMuToFirstOrder) {
  // The paper's additive mu and the physical relative mismatch r relate as
  // mu ~ -c * r: a TDC whose stages are r slower reads ~c*r fewer stages.
  // Both loops must settle on the same delivered period ~ c * (1 + r).
  const double c = 64.0;
  const double r = 0.1;

  auto physical_cfg = base_config(GeneratorMode::kControlledRo);
  physical_cfg.tdc_relative_mismatch = r;
  EdgeSimulator physical{physical_cfg,
                         std::make_unique<control::IirControlHardware>()};
  const auto physical_trace = physical.run(EdgeSimInputs{}, 2000);

  auto additive = make_iir_system(c, c);
  SimulationInputs inputs;
  inputs.mu = [c, r](double) { return -c * r; };
  const auto additive_trace = additive.run(inputs, 2000);

  EXPECT_NEAR(physical_trace.mean_delivered_period(1000), c * (1.0 + r),
              1.5);
  EXPECT_NEAR(additive_trace.mean_delivered_period(1000),
              physical_trace.mean_delivered_period(1000), 1.5);
}

TEST(EdgeSimulator, RejectsInvalidConfig) {
  auto cfg = base_config(GeneratorMode::kFreeRunningRo);
  cfg.setpoint_c = 0.0;
  EXPECT_THROW((EdgeSimulator{cfg, nullptr}), std::logic_error);
  auto cfg2 = base_config(GeneratorMode::kFreeRunningRo);
  cfg2.tdc_relative_mismatch = -1.5;
  EXPECT_THROW((EdgeSimulator{cfg2, nullptr}), std::logic_error);
}

}  // namespace
}  // namespace roclk::core
