#include "roclk/core/loop_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/variation/sources.hpp"

namespace roclk::core {
namespace {

LoopConfig linear_config(double tclk = 64.0) {
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = tclk;
  cfg.quantize_lro = false;
  cfg.tdc_quantization = sensor::Quantization::kNone;
  return cfg;
}

TEST(LoopSimulator, ValidateRejectsBadConfigs) {
  LoopConfig cfg;
  cfg.setpoint_c = 0.0;
  EXPECT_FALSE(LoopSimulator::validate(cfg, true).is_ok());

  LoopConfig no_ctrl;
  EXPECT_FALSE(LoopSimulator::validate(no_ctrl, false).is_ok());

  LoopConfig neg;
  neg.cdn_delay_stages = -1.0;
  EXPECT_FALSE(LoopSimulator::validate(neg, true).is_ok());

  LoopConfig range;
  range.min_length = 100;
  range.max_length = 10;
  EXPECT_FALSE(LoopSimulator::validate(range, true).is_ok());

  LoopConfig bad_period;
  bad_period.open_loop_period = -1.0;
  EXPECT_FALSE(LoopSimulator::validate(bad_period, true).is_ok());

  LoopConfig bad_chain;
  bad_chain.tdc_max_reading = 0;
  EXPECT_FALSE(LoopSimulator::validate(bad_chain, true).is_ok());
}

TEST(LoopSimulator, TdcChainShorterThanSetpointFailsLoudly) {
  // A chain shorter than c saturates below the set-point and could never
  // report "period OK": the loop would lock at the rail forever.  The
  // mis-sizing must fail at construction, not misbehave at runtime.
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.tdc_max_reading = 63;
  EXPECT_FALSE(LoopSimulator::validate(cfg, true).is_ok());
  EXPECT_THROW((LoopSimulator{cfg,
                              std::make_unique<control::IirControlHardware>()}),
               std::logic_error);

  cfg.tdc_max_reading = 64;  // exactly c is the smallest legal chain
  EXPECT_TRUE(LoopSimulator::validate(cfg, true).is_ok());

  // set_setpoint re-checks the invariant against the existing chain.
  LoopSimulator sim{cfg, std::make_unique<control::IirControlHardware>()};
  EXPECT_THROW(sim.set_setpoint(65.0), std::logic_error);
  sim.set_setpoint(32.0);  // shrinking is always safe
}

TEST(LoopSimulator, ConstructionRejectsOutOfRangeLro) {
  // l_RO is a physical stage count: the saturation range must satisfy
  // 1 <= min <= max, and a config outside it fails at construction, not
  // mid-run.
  LoopConfig zero_min = linear_config();
  zero_min.min_length = 0;
  EXPECT_FALSE(LoopSimulator::validate(zero_min, true).is_ok());
  EXPECT_THROW((LoopSimulator{zero_min,
                              std::make_unique<control::IirControlHardware>()}),
               std::logic_error);

  LoopConfig inverted = linear_config();
  inverted.min_length = 64;
  inverted.max_length = 8;
  EXPECT_THROW((LoopSimulator{inverted,
                              std::make_unique<control::IirControlHardware>()}),
               std::logic_error);
}

// Equilibrium: with zero perturbation every system must hold tau = c
// exactly, forever, with zero violations.
class EquilibriumAllSystems
    : public ::testing::TestWithParam<std::tuple<GeneratorMode, double>> {};

TEST_P(EquilibriumAllSystems, QuietEnvironmentIsFixedPoint) {
  const auto [mode, tclk] = GetParam();
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = tclk;
  cfg.mode = mode;
  std::unique_ptr<control::ControlBlock> ctrl;
  if (mode == GeneratorMode::kControlledRo) {
    ctrl = std::make_unique<control::IirControlHardware>();
  }
  LoopSimulator sim{cfg, std::move(ctrl)};
  const auto trace = sim.run(SimulationInputs::none(), 200);
  EXPECT_EQ(trace.violation_count(), 0u);
  for (double tau : trace.tau()) {
    ASSERT_DOUBLE_EQ(tau, 64.0);
  }
  for (double t : trace.delivered_period()) {
    ASSERT_DOUBLE_EQ(t, 64.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndDelays, EquilibriumAllSystems,
    ::testing::Combine(::testing::Values(GeneratorMode::kControlledRo,
                                         GeneratorMode::kFreeRunningRo,
                                         GeneratorMode::kFixedClock),
                       ::testing::Values(0.0, 64.0, 160.0, 640.0)));

TEST(LoopSimulator, HomogeneousStepIsFullyRejectedByIirLoop) {
  // A permanent die-wide slowdown: the loop must return tau to c (zero
  // steady-state error, eq. 8) with the period stretched to c + e.
  auto sim = make_iir_system(64.0, 64.0);
  SimulationInputs inputs;
  inputs.e_ro = [](double t) { return t >= 640.0 ? 6.0 : 0.0; };
  inputs.e_tdc = inputs.e_ro;
  const auto trace = sim.run(inputs, 600);
  const double tau_end = trace.tau().back();
  EXPECT_NEAR(tau_end, 64.0, 1.0);
  EXPECT_NEAR(trace.delivered_period().back(), 70.0, 1.0);
}

TEST(LoopSimulator, MismatchStepShiftsPeriodOppositeWays) {
  // Positive mu (TDC reads optimistically high): loop shortens the period
  // to T ~ c - mu; negative mu lengthens it.  tau returns to c either way.
  for (double mu : {8.0, -8.0}) {
    auto sim = make_iir_system(64.0, 64.0);
    SimulationInputs inputs;
    inputs.mu = [mu](double t) { return t >= 640.0 ? mu : 0.0; };
    const auto trace = sim.run(inputs, 800);
    EXPECT_NEAR(trace.tau().back(), 64.0, 1.0) << "mu " << mu;
    EXPECT_NEAR(trace.delivered_period().back(), 64.0 - mu, 1.5)
        << "mu " << mu;
  }
}

TEST(LoopSimulator, FreeRoCancelsHomogeneousStepWithoutControl) {
  // The free-running RO is itself slowed by e, so after the CDN flushes,
  // its delivered period carries the correction automatically.
  auto sim = make_free_ro_system(64.0, 64.0);
  SimulationInputs inputs;
  inputs.e_ro = [](double t) { return t >= 640.0 ? 6.0 : 0.0; };
  inputs.e_tdc = inputs.e_ro;
  const auto trace = sim.run(inputs, 200);
  EXPECT_NEAR(trace.tau().back(), 64.0, 1e-9);
  EXPECT_NEAR(trace.delivered_period().back(), 70.0, 1e-9);
}

TEST(LoopSimulator, FixedClockCarriesPermanentError) {
  auto sim = make_fixed_clock_system(64.0, 64.0);
  SimulationInputs inputs;
  inputs.e_ro = [](double t) { return t >= 640.0 ? 6.0 : 0.0; };
  inputs.e_tdc = inputs.e_ro;
  const auto trace = sim.run(inputs, 200);
  // tau = c - e forever: a 6-stage violation the fixed clock cannot fix.
  EXPECT_NEAR(trace.tau().back(), 58.0, 1e-9);
  EXPECT_GT(trace.violation_count(), 50u);
}

TEST(LoopSimulator, FreeRoWithDesignMarginAvoidsViolations) {
  auto no_margin = make_free_ro_system(64.0, 64.0, 0.0);
  auto with_margin = make_free_ro_system(64.0, 64.0, 8.0);
  const auto inputs = SimulationInputs::harmonic(6.0, 1600.0);
  EXPECT_GT(no_margin.run(inputs, 2000).violation_count(200), 0u);
  EXPECT_EQ(with_margin.run(inputs, 2000).violation_count(200), 0u);
}

TEST(LoopSimulator, RoLengthSaturationBoundsLro) {
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = 64.0;
  cfg.min_length = 60;
  cfg.max_length = 68;
  LoopSimulator sim{cfg, std::make_unique<control::IirControlHardware>()};
  // Huge mismatch drives the controller far beyond the range.
  SimulationInputs inputs;
  inputs.mu = [](double) { return -30.0; };
  const auto trace = sim.run(inputs, 500);
  for (double l : trace.lro()) {
    ASSERT_GE(l, 60.0);
    ASSERT_LE(l, 68.0);
  }
}

TEST(LoopSimulator, ResetRestoresEquilibriumAfterDisturbance) {
  auto sim = make_teatime_system(64.0, 64.0);
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0);
  (void)sim.run(inputs, 500);
  sim.reset();
  const auto quiet = sim.run(SimulationInputs::none(), 100);
  EXPECT_EQ(quiet.violation_count(), 0u);
  EXPECT_DOUBLE_EQ(quiet.tau().back(), 64.0);
}

TEST(LoopSimulator, TeaTimeLimitCycleBoundedByLoopDelay) {
  // Under a static mismatch TEAtime settles into a limit cycle whose
  // amplitude is set by the loop transport delay (M + 2 cycles of blind
  // stepping before the sign information returns).
  auto sim = make_teatime_system(64.0, 64.0);  // M = 1 -> 3-cycle transport
  SimulationInputs inputs;
  inputs.mu = [](double) { return 5.0; };
  const auto trace = sim.run(inputs, 2000);
  EXPECT_LE(trace.tau_ripple(1500), 6.0);
  EXPECT_NEAR(trace.mean_delivered_period(1500), 59.0, 2.0);
}

TEST(LoopSimulator, FasterPerturbationNeedsMoreMargin) {
  // The heart of section II-A: the same amplitude at higher frequency is
  // harder to adapt to.
  const auto inputs_fast = SimulationInputs::harmonic(12.8, 25.0 * 64.0);
  const auto inputs_slow = SimulationInputs::harmonic(12.8, 100.0 * 64.0);
  auto sim_fast = make_iir_system(64.0, 64.0);
  auto sim_slow = make_iir_system(64.0, 64.0);
  const double sm_fast =
      sim_fast.run(inputs_fast, 6000).required_safety_margin(64.0, 2000);
  const double sm_slow =
      sim_slow.run(inputs_slow, 6000).required_safety_margin(64.0, 2000);
  EXPECT_GT(sm_fast, sm_slow);
}

TEST(LoopSimulator, SamplePeriodOverrideChangesPerturbationSampling) {
  LoopConfig cfg = linear_config();
  cfg.sample_period = 32.0;  // sample the waveform twice per nominal period
  LoopSimulator sim{cfg, std::make_unique<control::IirControlReference>()};
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0);
  const auto trace = sim.run(inputs, 100);
  EXPECT_EQ(trace.size(), 100u);
}

// ------------------------------------------------------- run_batch parity

namespace {

/// Asserts run_batch on a pre-sampled block reproduces run() bit for bit.
void expect_batch_matches_run(LoopSimulator& a, LoopSimulator& b,
                              const SimulationInputs& inputs,
                              std::size_t cycles) {
  const double dt = a.config().sample_period.value_or(a.config().setpoint_c);
  const auto reference = a.run(inputs, cycles);
  const auto batched = b.run_batch(inputs.sample(cycles, dt));
  ASSERT_EQ(reference.size(), batched.size());
  for (std::size_t k = 0; k < cycles; ++k) {
    ASSERT_EQ(reference.tau()[k], batched.tau()[k]) << "cycle " << k;
    ASSERT_EQ(reference.delta()[k], batched.delta()[k]) << "cycle " << k;
    ASSERT_EQ(reference.lro()[k], batched.lro()[k]) << "cycle " << k;
    ASSERT_EQ(reference.generated_period()[k],
              batched.generated_period()[k])
        << "cycle " << k;
    ASSERT_EQ(reference.delivered_period()[k],
              batched.delivered_period()[k])
        << "cycle " << k;
  }
  EXPECT_EQ(reference.violation_count(), batched.violation_count());
}

}  // namespace

TEST(LoopSimulatorBatch, MatchesRunBitForBitOnHarmonicInputs) {
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0, 3.0);
  auto a_iir = make_iir_system(64.0, 64.0);
  auto b_iir = make_iir_system(64.0, 64.0);
  expect_batch_matches_run(a_iir, b_iir, inputs, 3000);

  auto a_tea = make_teatime_system(64.0, 64.0);
  auto b_tea = make_teatime_system(64.0, 64.0);
  expect_batch_matches_run(a_tea, b_tea, inputs, 3000);

  auto a_free = make_free_ro_system(64.0, 64.0, 12.8);
  auto b_free = make_free_ro_system(64.0, 64.0, 12.8);
  expect_batch_matches_run(a_free, b_free, inputs, 3000);

  auto a_fix = make_fixed_clock_system(64.0, 64.0, 12.8);
  auto b_fix = make_fixed_clock_system(64.0, 64.0, 12.8);
  expect_batch_matches_run(a_fix, b_fix, inputs, 3000);
}

TEST(LoopSimulatorBatch, MatchesRunBitForBitOnFallbackControllers) {
  // Controllers outside the devirtualized IIR fast path exercise
  // run_batch's virtual-dispatch fallback branch.
  const auto inputs = SimulationInputs::harmonic(9.6, 1100.0, -2.0);
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = 64.0;
  cfg.mode = GeneratorMode::kControlledRo;

  {
    LoopSimulator a{cfg, std::make_unique<control::ProportionalControl>(0.5)};
    LoopSimulator b{cfg, std::make_unique<control::ProportionalControl>(0.5)};
    expect_batch_matches_run(a, b, inputs, 2000);
  }
  {
    LoopSimulator a{cfg, std::make_unique<control::PiControl>(0.5, 0.125)};
    LoopSimulator b{cfg, std::make_unique<control::PiControl>(0.5, 0.125)};
    expect_batch_matches_run(a, b, inputs, 2000);
  }
  {
    control::TeaTimeConfig tea;
    tea.zero_policy = control::SignZeroPolicy::kDither;
    tea.delayed_sign = true;
    LoopSimulator a{cfg, std::make_unique<control::TeaTimeControl>(tea)};
    LoopSimulator b{cfg, std::make_unique<control::TeaTimeControl>(tea)};
    expect_batch_matches_run(a, b, inputs, 2000);
  }
}

TEST(LoopSimulatorBatch, MatchesRunBitForBitOnOpenLoopMargins) {
  // The open-loop generators take the controller-free branch of the batch
  // loop; sweep the design margin including the no-margin edge.
  const auto inputs = SimulationInputs::harmonic(12.8, 900.0, 1.5);
  for (double margin : {0.0, 6.4, 19.2}) {
    auto a_free = make_free_ro_system(64.0, 64.0, margin);
    auto b_free = make_free_ro_system(64.0, 64.0, margin);
    expect_batch_matches_run(a_free, b_free, inputs, 1500);

    auto a_fix = make_fixed_clock_system(64.0, 64.0, margin);
    auto b_fix = make_fixed_clock_system(64.0, 64.0, margin);
    expect_batch_matches_run(a_fix, b_fix, inputs, 1500);
  }
}

TEST(LoopSimulatorBatch, MatchesRunBitForBitOnVariationSourceInputs) {
  const auto source = std::make_shared<const variation::VrmRipple>(
      0.08, 1600.0, 0.3);
  const auto inputs =
      SimulationInputs::from_variation_source(source, 64.0, {0.25, 0.75});
  auto a = make_iir_system(64.0, 96.0);
  auto b = make_iir_system(64.0, 96.0);
  expect_batch_matches_run(a, b, inputs, 2000);
}

TEST(LoopSimulatorBatch, MatchesRunWithFractionalSamplePeriod) {
  LoopConfig cfg = linear_config(100.0);
  cfg.sample_period = 31.7;
  cfg.cdn_quantization = cdn::DelayQuantization::kLinearInterp;
  LoopSimulator a{cfg, std::make_unique<control::IirControlReference>()};
  LoopSimulator b{cfg, std::make_unique<control::IirControlReference>()};
  expect_batch_matches_run(a, b, SimulationInputs::harmonic(5.0, 731.0),
                           1500);
}

TEST(LoopSimulatorBatch, RejectsRaggedBlock) {
  auto sim = make_iir_system(64.0, 64.0);
  InputBlock block;
  block.e_ro.assign(10, 0.0);
  block.e_tdc.assign(9, 0.0);
  block.mu.assign(10, 0.0);
  EXPECT_THROW((void)sim.run_batch(block), std::logic_error);
}

}  // namespace
}  // namespace roclk::core
