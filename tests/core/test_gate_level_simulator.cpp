#include "roclk/core/gate_level_simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <span>

#include "roclk/common/stats.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/variation/sources.hpp"

namespace roclk::core {
namespace {

GateLevelSimulator make_sim(GateLevelConfig cfg = {}) {
  return GateLevelSimulator{std::move(cfg),
                            std::make_unique<control::IirControlHardware>()};
}

TEST(GateLevelSim, ValidateCatchesBadConfigs) {
  GateLevelConfig bad;
  bad.setpoint_c = 0.0;
  EXPECT_FALSE(GateLevelSimulator::validate(bad).is_ok());
  GateLevelConfig no_tdc;
  no_tdc.tdcs.clear();
  EXPECT_FALSE(GateLevelSimulator::validate(no_tdc).is_ok());
  GateLevelConfig range;
  range.ro_min_length = 100;
  range.ro_max_length = 10;
  EXPECT_FALSE(GateLevelSimulator::validate(range).is_ok());
  EXPECT_THROW(make_sim(bad), std::logic_error);
  EXPECT_THROW((GateLevelSimulator{GateLevelConfig{}, nullptr}),
               std::logic_error);
}

TEST(GateLevelSim, QuietRunHoldsNearSetpointWithinTapGranularity) {
  auto sim = make_sim();
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  const auto trace = sim.run(quiet, 600);
  for (std::size_t i = 100; i < trace.size(); ++i) {
    ASSERT_NEAR(trace.tau()[i], 64.0, 2.0) << i;
    // Odd lengths only.
    ASSERT_EQ(static_cast<std::int64_t>(trace.lro()[i]) % 2, 1) << i;
  }
}

TEST(GateLevelSim, TracksHomogeneousSlowdownLikeBehaviouralLoop) {
  auto sim = make_sim();
  const auto slow = variation::DieToDieProcess::with_offset(0.12);
  const auto gate = sim.run(slow, 1200);

  auto behavioural = make_iir_system(64.0, 64.0);
  SimulationInputs inputs;
  inputs.e_ro = [](double) { return 0.12 * 64.0; };
  inputs.e_tdc = inputs.e_ro;
  const auto ref = behavioural.run(inputs, 1200);

  EXPECT_NEAR(gate.mean_delivered_period(600),
              ref.mean_delivered_period(600), 2.5);
  EXPECT_NEAR(gate.tau().back(), 64.0, 2.5);
}

TEST(GateLevelSim, WorstOfMultipleTdcsDrivesTheLoop) {
  GateLevelConfig cfg;
  // Two TDC chains: one in a (future) hotspot corner, one at centre.
  sensor::DetailedTdcConfig hot;
  hot.chain.start = {0.84, 0.84};
  hot.chain.end = {0.86, 0.86};
  sensor::DetailedTdcConfig centre;
  centre.chain.start = {0.50, 0.55};
  centre.chain.end = {0.52, 0.57};
  cfg.tdcs = {hot, centre};
  auto sim = GateLevelSimulator{
      cfg, std::make_unique<control::IirControlHardware>()};

  variation::TemperatureHotspot hotspot{0.15, {0.85, 0.85}, 0.05, 0.0, 1.0};
  const auto trace = sim.run(hotspot, 1200);
  // The loop must stretch the period for the hot TDC even though the RO
  // and the centre TDC feel nothing.
  EXPECT_NEAR(trace.mean_delivered_period(600), 64.0 * 1.15, 3.0);
}

TEST(GateLevelSim, JitterInflatesRippleButLoopHolds) {
  GateLevelConfig jittery;
  jittery.jitter.white_sigma = 1.0;
  auto sim = GateLevelSimulator{
      jittery, std::make_unique<control::IirControlHardware>()};
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  const auto trace = sim.run(quiet, 1500);

  auto clean_sim = make_sim();
  const auto clean = clean_sim.run(quiet, 1500);
  EXPECT_GT(trace.tau_ripple(500), clean.tau_ripple(500));
  // Still bounded and centred.
  EXPECT_NEAR(mean(std::span<const double>(trace.tau()).subspan(500)), 64.0,
              2.0);
}

TEST(GateLevelSim, ResetRestoresDeterminism) {
  auto sim = make_sim();
  variation::VrmRipple ripple{0.1, 1600.0};
  const auto a = sim.run(ripple, 300);
  sim.reset();
  const auto b = sim.run(ripple, 300);
  EXPECT_EQ(a.tau(), b.tau());
  EXPECT_EQ(a.lro(), b.lro());
}

TEST(GateLevelSim, TeaTimeControllerWorksAtGateLevel) {
  GateLevelConfig cfg;
  auto sim =
      GateLevelSimulator{cfg, std::make_unique<control::TeaTimeControl>()};
  const auto slow = variation::DieToDieProcess::with_offset(0.10);
  const auto trace = sim.run(slow, 1000);
  EXPECT_NEAR(trace.mean_delivered_period(500), 70.4, 3.0);
}

}  // namespace
}  // namespace roclk::core
