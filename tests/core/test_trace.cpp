#include "roclk/core/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace roclk::core {
namespace {

SimulationTrace make_trace() {
  SimulationTrace trace;
  // tau: 64, 62, 66, 61; setpoint 64.
  for (double tau : {64.0, 62.0, 66.0, 61.0}) {
    StepRecord r;
    r.tau = tau;
    r.delta = 64.0 - tau;
    r.lro = 64.0;
    r.t_gen = 64.0;
    r.t_dlv = tau + 1.0;  // arbitrary distinct value
    r.violation = tau < 64.0;
    trace.push(r);
  }
  return trace;
}

TEST(Trace, SizeAndColumns) {
  const auto trace = make_trace();
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_FALSE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.tau()[1], 62.0);
  EXPECT_DOUBLE_EQ(trace.delta()[1], 2.0);
  EXPECT_DOUBLE_EQ(trace.delivered_period()[2], 67.0);
}

TEST(Trace, TimingError) {
  const auto trace = make_trace();
  const auto err = trace.timing_error(64.0);
  ASSERT_EQ(err.size(), 4u);
  EXPECT_DOUBLE_EQ(err[0], 0.0);
  EXPECT_DOUBLE_EQ(err[1], -2.0);
  EXPECT_DOUBLE_EQ(err[2], 2.0);
  EXPECT_DOUBLE_EQ(err[3], -3.0);
}

TEST(Trace, ViolationCountWithSkip) {
  const auto trace = make_trace();
  EXPECT_EQ(trace.violation_count(), 2u);
  EXPECT_EQ(trace.violation_count(2), 1u);
  EXPECT_EQ(trace.violation_count(4), 0u);
}

TEST(Trace, RequiredSafetyMargin) {
  const auto trace = make_trace();
  EXPECT_DOUBLE_EQ(trace.required_safety_margin(64.0), 3.0);
  EXPECT_DOUBLE_EQ(trace.required_safety_margin(64.0, 2), 3.0);
  // All tau above setpoint: zero margin needed, never negative.
  EXPECT_DOUBLE_EQ(trace.required_safety_margin(60.0), 0.0);
}

TEST(Trace, MeanDeliveredPeriodWithSkip) {
  const auto trace = make_trace();
  EXPECT_DOUBLE_EQ(trace.mean_delivered_period(),
                   (65.0 + 63.0 + 67.0 + 62.0) / 4.0);
  EXPECT_DOUBLE_EQ(trace.mean_delivered_period(2), (67.0 + 62.0) / 2.0);
  EXPECT_DOUBLE_EQ(trace.mean_delivered_period(10), 0.0);
}

TEST(Trace, TauRipple) {
  const auto trace = make_trace();
  EXPECT_DOUBLE_EQ(trace.tau_ripple(), 5.0);  // 66 - 61
  EXPECT_DOUBLE_EQ(trace.tau_ripple(2), 5.0);
  EXPECT_DOUBLE_EQ(trace.tau_ripple(99), 0.0);
}

TEST(Trace, CsvExportRoundTrip) {
  const auto trace = make_trace();
  const std::string path = "/tmp/roclk_trace_test.csv";
  ASSERT_TRUE(trace.save_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "n,tau,delta,lro,t_gen,t_dlv,violation");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

TEST(Trace, ReserveDoesNotChangeSize) {
  SimulationTrace trace;
  trace.reserve(100);
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace roclk::core
