#include "roclk/core/ensemble_simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/signal/waveform.hpp"

namespace roclk::core {
namespace {

constexpr double kSetpoint = 64.0;

LoopConfig lane_config(GeneratorMode mode, double cdn_delay,
                       double open_loop_margin = 0.0) {
  LoopConfig cfg;
  cfg.setpoint_c = kSetpoint;
  cfg.cdn_delay_stages = cdn_delay;
  cfg.mode = mode;
  if (mode != GeneratorMode::kControlledRo) {
    cfg.open_loop_period = kSetpoint + open_loop_margin;
  }
  return cfg;
}

/// Per-lane inputs with lane-dependent phase and mismatch, so every lane
/// exercises a genuinely different trajectory.
std::vector<SimulationInputs> varied_inputs(std::size_t lanes) {
  std::vector<SimulationInputs> inputs;
  inputs.reserve(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    const double mu = -6.0 + 1.7 * static_cast<double>(w % 8);
    const double phase = 0.37 * static_cast<double>(w);
    inputs.push_back(SimulationInputs::harmonic(10.0, 1600.0, mu, phase));
  }
  return inputs;
}

/// Runs every lane of `ensemble` and checks each against a freshly built
/// scalar LoopSimulator fed the de-interleaved block through run_batch.
void expect_lanes_match_scalar(
    EnsembleSimulator& ensemble, const EnsembleInputBlock& block,
    const std::function<std::unique_ptr<control::ControlBlock>(std::size_t)>&
        make_controller,
    bool parallel = false) {
  TraceReducer reducer{ensemble.width(), block.cycles};
  ensemble.reset();
  ensemble.run(block, reducer, parallel);
  for (std::size_t w = 0; w < ensemble.width(); ++w) {
    LoopSimulator scalar{ensemble.lane_config(w), make_controller(w)};
    const SimulationTrace reference = scalar.run_batch(block.lane(w));
    const SimulationTrace& lane = reducer.trace(w);
    ASSERT_EQ(reference.size(), lane.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(reference.tau()[k], lane.tau()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.delta()[k], lane.delta()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.lro()[k], lane.lro()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.generated_period()[k], lane.generated_period()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.delivered_period()[k], lane.delivered_period()[k])
          << "lane " << w << " cycle " << k;
    }
    ASSERT_EQ(reference.violation_count(), lane.violation_count())
        << "lane " << w;
  }
}

// ------------------------------------------------------------- samplers

TEST(EnsembleInputs, SampleEnsembleMatchesPerLaneSampling) {
  const auto lanes = varied_inputs(11);
  const std::size_t n = 257;
  const auto block = sample_ensemble(lanes, n, kSetpoint);
  ASSERT_EQ(block.width, lanes.size());
  ASSERT_EQ(block.cycles, n);
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    const InputBlock scalar = lanes[w].sample(n, kSetpoint);
    const InputBlock deinterleaved = block.lane(w);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(scalar.e_ro[k], deinterleaved.e_ro[k]);
      ASSERT_EQ(scalar.e_tdc[k], deinterleaved.e_tdc[k]);
      ASSERT_EQ(scalar.mu[k], deinterleaved.mu[k]);
    }
  }
}

TEST(EnsembleInputs, ParallelSamplingMatchesSerial) {
  const auto lanes = varied_inputs(37);
  const auto serial = sample_ensemble(lanes, 300, kSetpoint, false);
  const auto parallel = sample_ensemble(lanes, 300, kSetpoint, true);
  ASSERT_EQ(serial.e_ro, parallel.e_ro);
  ASSERT_EQ(serial.e_tdc, parallel.e_tdc);
  ASSERT_EQ(serial.mu, parallel.mu);
}

TEST(EnsembleInputs, HomogeneousBroadcastMatchesPerLaneSampling) {
  const signal::SineWaveform wave{10.0, 1600.0, 0.25};
  const std::vector<double> mus{-3.0, 0.0, 1.5, 8.0, -12.0};
  const auto block =
      sample_homogeneous_ensemble(wave, mus, 200, kSetpoint);
  for (std::size_t w = 0; w < mus.size(); ++w) {
    const auto scalar =
        SimulationInputs::homogeneous(
            std::make_shared<signal::SineWaveform>(10.0, 1600.0, 0.25),
            mus[w])
            .sample(200, kSetpoint);
    const InputBlock lane = block.lane(w);
    ASSERT_EQ(scalar.e_ro, lane.e_ro) << "lane " << w;
    ASSERT_EQ(scalar.e_tdc, lane.e_tdc) << "lane " << w;
    ASSERT_EQ(scalar.mu, lane.mu) << "lane " << w;
  }
}

TEST(EnsembleInputs, FromBlocksRoundTripsThroughLane) {
  const auto lanes = varied_inputs(5);
  std::vector<InputBlock> blocks;
  for (const auto& in : lanes) blocks.push_back(in.sample(100, kSetpoint));
  const auto ensemble = EnsembleInputBlock::from_blocks(blocks);
  for (std::size_t w = 0; w < lanes.size(); ++w) {
    const InputBlock lane = ensemble.lane(w);
    ASSERT_EQ(blocks[w].e_ro, lane.e_ro);
    ASSERT_EQ(blocks[w].e_tdc, lane.e_tdc);
    ASSERT_EQ(blocks[w].mu, lane.mu);
  }
}

// ------------------------------------------- bit-for-bit vs run_batch

TEST(EnsembleSimulator, IirLanesMatchScalarRunBatchBitForBit) {
  // 19 lanes: not a multiple of the chunk width, so the tail chunk is
  // exercised.  Lane-dependent mismatch and phase give every lane its own
  // trajectory through the quantisers.
  const std::size_t lanes = 19;
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, lanes);
  EXPECT_TRUE(ensemble.uses_iir_fast_path());
  const auto block = sample_ensemble(varied_inputs(lanes), 2000, kSetpoint);
  expect_lanes_match_scalar(ensemble, block, [](std::size_t) {
    return std::make_unique<control::IirControlHardware>();
  });
}

TEST(EnsembleSimulator, HeterogeneousCdnDelaysMatchScalar) {
  // Different CDN delays per lane: the interleaved ring must honour each
  // lane's own history window and boundary conditions.
  const std::vector<double> delays{0.0, 16.0, 64.0, 96.0, 160.0, 640.0,
                                   48.0, 200.0, 1024.0};
  std::vector<LoopConfig> configs;
  std::vector<std::unique_ptr<control::ControlBlock>> controllers;
  for (double d : delays) {
    configs.push_back(lane_config(GeneratorMode::kControlledRo, d));
    controllers.push_back(std::make_unique<control::IirControlHardware>());
  }
  EnsembleSimulator ensemble{configs, std::move(controllers)};
  const auto block =
      sample_ensemble(varied_inputs(delays.size()), 3000, kSetpoint);
  expect_lanes_match_scalar(ensemble, block, [](std::size_t) {
    return std::make_unique<control::IirControlHardware>();
  });
}

TEST(EnsembleSimulator, TeaTimeFallbackMatchesScalar) {
  const std::size_t lanes = 10;
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::TeaTimeControl prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, lanes);
  EXPECT_FALSE(ensemble.uses_iir_fast_path());
  const auto block = sample_ensemble(varied_inputs(lanes), 2000, kSetpoint);
  expect_lanes_match_scalar(ensemble, block, [](std::size_t) {
    return std::make_unique<control::TeaTimeControl>();
  });
}

TEST(EnsembleSimulator, MixedControllerConfigsDisableFastPathButMatch) {
  // Same IirControlHardware type but different tap sets: the shared bank
  // cannot be used, and the per-lane fallback must still be exact.
  control::IirConfig alt;
  alt.taps = {2.0, 1.0, 0.5, 0.5};
  alt.k_star = 0.25;
  std::vector<LoopConfig> configs;
  std::vector<std::unique_ptr<control::ControlBlock>> controllers;
  for (std::size_t w = 0; w < 6; ++w) {
    configs.push_back(lane_config(GeneratorMode::kControlledRo, 64.0));
    if (w % 2 == 0) {
      controllers.push_back(std::make_unique<control::IirControlHardware>());
    } else {
      controllers.push_back(
          std::make_unique<control::IirControlHardware>(alt));
    }
  }
  EnsembleSimulator ensemble{configs, std::move(controllers)};
  EXPECT_FALSE(ensemble.uses_iir_fast_path());
  const auto block = sample_ensemble(varied_inputs(6), 1500, kSetpoint);
  expect_lanes_match_scalar(ensemble, block, [&](std::size_t w) {
    return w % 2 == 0
               ? std::make_unique<control::IirControlHardware>()
               : std::make_unique<control::IirControlHardware>(alt);
  });
}

TEST(EnsembleSimulator, OpenLoopModesMatchScalar) {
  for (const GeneratorMode mode :
       {GeneratorMode::kFreeRunningRo, GeneratorMode::kFixedClock}) {
    std::vector<LoopConfig> configs;
    for (std::size_t w = 0; w < 9; ++w) {
      configs.push_back(
          lane_config(mode, 64.0, 1.5 * static_cast<double>(w)));
    }
    EnsembleSimulator ensemble{configs, {}};
    const auto block = sample_ensemble(varied_inputs(9), 1500, kSetpoint);
    expect_lanes_match_scalar(
        ensemble, block,
        [](std::size_t) -> std::unique_ptr<control::ControlBlock> {
          return nullptr;
        });
  }
}

TEST(EnsembleSimulator, LinearInterpCdnMatchesScalar) {
  LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 80.0);
  cfg.cdn_quantization = cdn::DelayQuantization::kLinearInterp;
  cfg.quantize_lro = false;
  cfg.tdc_quantization = sensor::Quantization::kNone;
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, 7);
  const auto block = sample_ensemble(varied_inputs(7), 1500, kSetpoint);
  expect_lanes_match_scalar(ensemble, block, [](std::size_t) {
    return std::make_unique<control::IirControlHardware>();
  });
}

TEST(EnsembleSimulator, ParallelRunMatchesScalar) {
  const std::size_t lanes = 33;
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, lanes);
  const auto block = sample_ensemble(varied_inputs(lanes), 1200, kSetpoint);
  expect_lanes_match_scalar(
      ensemble, block,
      [](std::size_t) {
        return std::make_unique<control::IirControlHardware>();
      },
      /*parallel=*/true);
}

TEST(EnsembleSimulator, SuccessiveRunsContinueLikeRunBatch) {
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, 4);
  const auto inputs = varied_inputs(4);
  const auto first = sample_ensemble(inputs, 500, kSetpoint);
  TraceReducer reducer{4, 1000};
  ensemble.reset();
  ensemble.run(first, reducer);
  ensemble.run(first, reducer);  // continue, replaying the same samples
  for (std::size_t w = 0; w < 4; ++w) {
    LoopSimulator scalar{cfg,
                         std::make_unique<control::IirControlHardware>()};
    const InputBlock lane_block = first.lane(w);
    SimulationTrace reference = scalar.run_batch(lane_block);
    const SimulationTrace continued = scalar.run_batch(lane_block);
    ASSERT_EQ(reducer.trace(w).size(), 1000u);
    for (std::size_t k = 0; k < 500; ++k) {
      ASSERT_EQ(reference.tau()[k], reducer.trace(w).tau()[k]);
      ASSERT_EQ(continued.tau()[k], reducer.trace(w).tau()[k + 500]);
    }
  }
}

// ------------------------------------------------- streaming metrics

TEST(EnsembleMetrics, MetricsReducerMatchesEvaluateRunBitForBit) {
  using analysis::RunMetrics;
  const std::size_t lanes = 17;
  const std::size_t cycles = 2500;
  const std::size_t skip = 500;
  const double fixed_period = 1.2 * kSetpoint;
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, lanes);
  const auto block = sample_ensemble(varied_inputs(lanes), cycles, kSetpoint);

  const std::vector<RunMetrics> streamed = analysis::evaluate_ensemble(
      ensemble, block, {fixed_period}, skip);
  ASSERT_EQ(streamed.size(), lanes);

  for (std::size_t w = 0; w < lanes; ++w) {
    LoopSimulator scalar{cfg,
                         std::make_unique<control::IirControlHardware>()};
    const RunMetrics reference = analysis::evaluate_run(
        scalar.run_batch(block.lane(w)), kSetpoint, fixed_period, skip);
    ASSERT_EQ(reference.safety_margin, streamed[w].safety_margin)
        << "lane " << w;
    ASSERT_EQ(reference.mean_period, streamed[w].mean_period) << "lane " << w;
    ASSERT_EQ(reference.relative_adaptive_period,
              streamed[w].relative_adaptive_period)
        << "lane " << w;
    ASSERT_EQ(reference.violations, streamed[w].violations) << "lane " << w;
    ASSERT_EQ(reference.tau_ripple, streamed[w].tau_ripple) << "lane " << w;
  }
}

TEST(EnsembleMetrics, ReducerRejectsSkipLongerThanRun) {
  analysis::MetricsReducer reducer{2, 76.8, /*skip=*/100};
  EXPECT_THROW((void)reducer.metrics(0), std::logic_error);
}

// ------------------------------------------------------- validation

TEST(EnsembleSimulator, ValidateRejectsBadEnsembles) {
  const LoopConfig controlled =
      lane_config(GeneratorMode::kControlledRo, 64.0);
  const LoopConfig free_ro = lane_config(GeneratorMode::kFreeRunningRo, 64.0);

  // Empty ensemble.
  EXPECT_FALSE(EnsembleSimulator::validate({}, 0).is_ok());

  // Controller count mismatch.
  {
    const std::vector<LoopConfig> configs{controlled, controlled};
    EXPECT_FALSE(EnsembleSimulator::validate(configs, 1).is_ok());
    EXPECT_TRUE(EnsembleSimulator::validate(configs, 2).is_ok());
  }

  // Controllers supplied to an open-loop ensemble.
  {
    const std::vector<LoopConfig> configs{free_ro};
    EXPECT_FALSE(EnsembleSimulator::validate(configs, 1).is_ok());
    EXPECT_TRUE(EnsembleSimulator::validate(configs, 0).is_ok());
  }

  // Mixed generator modes.
  {
    const std::vector<LoopConfig> configs{controlled, free_ro};
    EXPECT_FALSE(EnsembleSimulator::validate(configs, 2).is_ok());
  }

  // Mixed quantisation settings.
  {
    LoopConfig other = controlled;
    other.tdc_quantization = sensor::Quantization::kNone;
    const std::vector<LoopConfig> configs{controlled, other};
    EXPECT_FALSE(EnsembleSimulator::validate(configs, 2).is_ok());
  }

  // A lane config that LoopSimulator itself would reject.
  {
    LoopConfig bad = controlled;
    bad.setpoint_c = -1.0;
    const std::vector<LoopConfig> configs{controlled, bad};
    EXPECT_FALSE(EnsembleSimulator::validate(configs, 2).is_ok());
  }
}

TEST(EnsembleSimulator, RejectsOutOfRangeLroAtConstruction) {
  LoopConfig bad = lane_config(GeneratorMode::kControlledRo, 64.0);
  bad.min_length = 0;
  const std::vector<LoopConfig> configs{bad};
  EXPECT_FALSE(EnsembleSimulator::validate(configs, 1).is_ok());
  const control::IirControlHardware prototype;
  EXPECT_THROW(EnsembleSimulator::uniform(bad, &prototype, 3),
               std::logic_error);
}

TEST(EnsembleMetrics, HomogeneousMcRejectsBadLanePreconditions) {
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, 3);
  const signal::SineWaveform wave{10.0, 1600.0, 0.0};
  const std::vector<double> mu(3, 0.0);

  // One static mu per lane, exactly.
  const std::vector<double> mu_short(2, 0.0);
  EXPECT_THROW((void)analysis::evaluate_homogeneous_mc(
                   ensemble, wave, mu_short, 100, kSetpoint, {kSetpoint}, 10),
               std::logic_error);
  // Fixed periods: one per lane or one shared, nothing in between.
  EXPECT_THROW((void)analysis::evaluate_homogeneous_mc(
                   ensemble, wave, mu, 100, kSetpoint,
                   {kSetpoint, kSetpoint}, 10),
               std::logic_error);
  // The sampling period must be positive.
  EXPECT_THROW((void)analysis::evaluate_homogeneous_mc(
                   ensemble, wave, mu, 100, 0.0, {kSetpoint}, 10),
               std::logic_error);
  // The transient skip must leave at least one counted cycle.
  EXPECT_THROW((void)analysis::evaluate_homogeneous_mc(
                   ensemble, wave, mu, 100, kSetpoint, {kSetpoint}, 100),
               std::logic_error);
}

TEST(EnsembleSimulator, RunRejectsMismatchedBlock) {
  const LoopConfig cfg = lane_config(GeneratorMode::kControlledRo, 64.0);
  const control::IirControlHardware prototype;
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, 3);
  TraceReducer reducer{3};
  const auto block = sample_ensemble(varied_inputs(4), 10, kSetpoint);
  EXPECT_THROW(ensemble.run(block, reducer), std::logic_error);
}

}  // namespace
}  // namespace roclk::core
