// Bit-exactness of the vectorized ensemble kernel against the scalar
// LoopSimulator reference, across backends, ensemble widths that exercise
// every vector/tail split, and every quantization mode.
//
// The ensemble engine promises each lane's streamed trace is identical to
// run_batch on that lane's config and inputs — on the forced portable
// scalar pack AND the native vector backend (AVX2/NEON where available).
// These tests are the gate behind that promise; the perf runner only
// times configurations this suite proves equivalent.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "roclk/common/simd.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/fault/fault.hpp"

namespace roclk::core {
namespace {

namespace simd = roclk::simd;

constexpr double kSetpoint = 64.0;
constexpr std::size_t kCycles = 600;

/// Scoped backend override; restores env/native resolution even when an
/// ASSERT unwinds mid-test.
struct BackendOverrideGuard {
  explicit BackendOverrideGuard(simd::Backend backend) {
    simd::set_backend_override(backend);
  }
  ~BackendOverrideGuard() { simd::set_backend_override(std::nullopt); }
  BackendOverrideGuard(const BackendOverrideGuard&) = delete;
  BackendOverrideGuard& operator=(const BackendOverrideGuard&) = delete;
};

/// Both backends every test must be exact on.  When the native backend is
/// the scalar pack (no vector unit compiled/available) the list collapses
/// to one entry — the tests still cover the portable pack + tail split.
std::vector<simd::Backend> backends_under_test() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  if (simd::native_backend() != simd::Backend::kScalar) {
    backends.push_back(simd::native_backend());
  }
  return backends;
}

LoopConfig make_config(sensor::Quantization tdc_q,
                       cdn::DelayQuantization cdn_q, bool quantize_lro) {
  LoopConfig cfg;
  cfg.setpoint_c = kSetpoint;
  cfg.cdn_delay_stages = kSetpoint;
  cfg.mode = GeneratorMode::kControlledRo;
  cfg.tdc_quantization = tdc_q;
  cfg.cdn_quantization = cdn_q;
  cfg.quantize_lro = quantize_lro;
  return cfg;
}

std::vector<SimulationInputs> varied_inputs(std::size_t lanes) {
  std::vector<SimulationInputs> inputs;
  inputs.reserve(lanes);
  for (std::size_t w = 0; w < lanes; ++w) {
    const double mu = -6.0 + 1.7 * static_cast<double>(w % 8);
    const double phase = 0.37 * static_cast<double>(w);
    inputs.push_back(SimulationInputs::harmonic(10.0, 1600.0, mu, phase));
  }
  return inputs;
}

/// Runs a `width`-lane uniform IIR ensemble on `backend` and checks every
/// lane's streamed trace bitwise against a fresh scalar run_batch.
void expect_bit_exact(std::size_t width, const LoopConfig& cfg,
                      simd::Backend backend,
                      const std::vector<fault::FaultSchedule>* faults =
                          nullptr) {
  BackendOverrideGuard forced{backend};
  const control::IirControlHardware prototype{control::paper_iir_config()};
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, width);
  if (faults != nullptr) ensemble.attach_faults(*faults);
  const auto block = sample_ensemble(varied_inputs(width), kCycles, kSetpoint);
  TraceReducer reducer{width, kCycles};
  ensemble.run(block, reducer);
  for (std::size_t w = 0; w < width; ++w) {
    LoopSimulator scalar{cfg, std::make_unique<control::IirControlHardware>(
                                  control::paper_iir_config())};
    if (faults != nullptr) scalar.attach_faults((*faults)[w]);
    const SimulationTrace reference = scalar.run_batch(block.lane(w));
    const SimulationTrace& lane = reducer.trace(w);
    ASSERT_EQ(reference.size(), lane.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(reference.tau()[k], lane.tau()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.delta()[k], lane.delta()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.lro()[k], lane.lro()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.generated_period()[k], lane.generated_period()[k])
          << "lane " << w << " cycle " << k;
      ASSERT_EQ(reference.delivered_period()[k], lane.delivered_period()[k])
          << "lane " << w << " cycle " << k;
    }
    ASSERT_EQ(reference.violation_count(), lane.violation_count())
        << "lane " << w;
  }
}

// Widths chosen around the vector geometry: 1 (pure tail), 3 and 5 are
// vector_width -/+ 1 for both AVX2 (4) and NEON (2), 13 is prime (vector
// groups + odd tail), 33 crosses the 32-lane chunk boundary so a second
// chunk with a 1-lane tail runs too.
const std::size_t kWidths[] = {1, 3, 5, 13, 33};

TEST(EnsembleSimd, OddWidthsBitExactOnEveryBackend) {
  const LoopConfig cfg = make_config(sensor::Quantization::kFloor,
                                     cdn::DelayQuantization::kRound, true);
  for (const simd::Backend backend : backends_under_test()) {
    for (const std::size_t width : kWidths) {
      SCOPED_TRACE(std::string{"backend "} + simd::to_string(backend) +
                   " width " + std::to_string(width));
      expect_bit_exact(width, cfg, backend);
    }
  }
}

TEST(EnsembleSimd, AllQuantizationModesBitExactOnEveryBackend) {
  // Full cross of TDC quantization x CDN quantization, with quantize_lro
  // alternating so both LRO paths appear in the sweep.  Width 13 keeps
  // vector groups and a masked tail in play for every combination.
  const sensor::Quantization tdc_modes[] = {sensor::Quantization::kFloor,
                                            sensor::Quantization::kNearest,
                                            sensor::Quantization::kNone};
  const cdn::DelayQuantization cdn_modes[] = {
      cdn::DelayQuantization::kRound, cdn::DelayQuantization::kFloor,
      cdn::DelayQuantization::kLinearInterp};
  for (const simd::Backend backend : backends_under_test()) {
    std::size_t combo = 0;
    for (const auto tdc_q : tdc_modes) {
      for (const auto cdn_q : cdn_modes) {
        const bool quantize_lro = (combo++ % 2) == 0;
        SCOPED_TRACE(std::string{"backend "} + simd::to_string(backend) +
                     " tdc " + std::to_string(static_cast<int>(tdc_q)) +
                     " cdn " + std::to_string(static_cast<int>(cdn_q)) +
                     " lro " + (quantize_lro ? "q" : "raw"));
        expect_bit_exact(13, make_config(tdc_q, cdn_q, quantize_lro),
                         backend);
      }
    }
  }
}

TEST(EnsembleSimd, MidVectorIsolatedLaneFallsBackExactly) {
  // Lane 2 sits mid-vector in every backend's first group.  Its schedule
  // forces isolation; the chunk must take the scalar fault path and still
  // reproduce run_batch bit for bit on every lane, isolated one included.
  const std::size_t width = 8;
  const LoopConfig cfg = make_config(sensor::Quantization::kFloor,
                                     cdn::DelayQuantization::kRound, true);
  std::vector<fault::FaultSchedule> schedules(width);
  schedules[2]
      .add({fault::FaultKind::kVoltageDroop, 30, 4, 1e308})
      .add({fault::FaultKind::kVoltageDroop, 30, 4, 1e308});
  // A recoverable glitch elsewhere keeps a second lane on the replay path
  // without isolating it.
  schedules[5].add({fault::FaultKind::kTdcGlitch, 100, 1, 7.0});

  for (const simd::Backend backend : backends_under_test()) {
    SCOPED_TRACE(simd::to_string(backend));
    expect_bit_exact(width, cfg, backend, &schedules);
  }

  // The isolation verdict itself must also match the scalar simulator.
  BackendOverrideGuard forced{simd::native_backend()};
  const control::IirControlHardware prototype{control::paper_iir_config()};
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, width);
  ensemble.attach_faults(schedules);
  const auto block = sample_ensemble(varied_inputs(width), kCycles, kSetpoint);
  TraceReducer reducer{width, kCycles};
  ensemble.run(block, reducer);
  EXPECT_TRUE(ensemble.isolated(2));
  EXPECT_EQ(ensemble.isolated_count(), 1u);
}

TEST(EnsembleSimd, ClearFaultsRestoresVectorPathExactly) {
  // After clear_faults the chunk is vector-eligible again and must still
  // match run_batch from the reset state.
  const LoopConfig cfg = make_config(sensor::Quantization::kFloor,
                                     cdn::DelayQuantization::kRound, true);
  const control::IirControlHardware prototype{control::paper_iir_config()};
  auto ensemble = EnsembleSimulator::uniform(cfg, &prototype, 5);
  std::vector<fault::FaultSchedule> schedules(5);
  schedules[1].add({fault::FaultKind::kTdcGlitch, 10, 1, 3.0});
  ensemble.attach_faults(schedules);
  ensemble.clear_faults();

  BackendOverrideGuard forced{simd::native_backend()};
  const auto block = sample_ensemble(varied_inputs(5), kCycles, kSetpoint);
  TraceReducer reducer{5, kCycles};
  ensemble.reset();
  ensemble.run(block, reducer);
  for (std::size_t w = 0; w < 5; ++w) {
    LoopSimulator scalar{cfg, std::make_unique<control::IirControlHardware>(
                                  control::paper_iir_config())};
    const SimulationTrace reference = scalar.run_batch(block.lane(w));
    for (std::size_t k = 0; k < reference.size(); ++k) {
      ASSERT_EQ(reference.tau()[k], reducer.trace(w).tau()[k])
          << "lane " << w << " cycle " << k;
    }
  }
}

}  // namespace
}  // namespace roclk::core
