#include "roclk/chip/clock_domain.hpp"

#include <gtest/gtest.h>

namespace roclk::chip {
namespace {

TEST(ClockDomain, LevelsGrowWithSize) {
  ClockDomainConfig small;
  small.size_mm = 0.4;  // below max_unbuffered
  EXPECT_EQ(ClockDomainGeometry{small}.tree_levels(), 0u);

  ClockDomainConfig big;
  big.size_mm = 8.0;
  EXPECT_GT(ClockDomainGeometry{big}.tree_levels(),
            ClockDomainGeometry{}.tree_levels());
}

TEST(ClockDomain, DelayMonotonicInSize) {
  double prev = 0.0;
  for (double size : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    ClockDomainConfig cfg;
    cfg.size_mm = size;
    const double delay = ClockDomainGeometry{cfg}.cdn_delay_stages();
    EXPECT_GT(delay, prev) << "size " << size;
    prev = delay;
  }
}

TEST(ClockDomain, DelayIncludesBuffersAndWire) {
  ClockDomainConfig cfg;
  cfg.size_mm = 1.0;
  cfg.buffer_delay_stages = 2.0;
  cfg.wire_delay_stages_per_mm = 20.0;
  cfg.max_unbuffered_mm = 0.5;
  // One level: span halves to 0.5 -> 1 buffer + 0.5 mm wire + final stub.
  const ClockDomainGeometry geom{cfg};
  EXPECT_EQ(geom.tree_levels(), 1u);
  EXPECT_NEAR(geom.cdn_delay_stages(), 2.0 + 0.5 * 20.0 + 0.5 * 20.0, 1e-12);
}

TEST(ClockDomain, MaxDomainSizeRespectsSixthPeriodRule) {
  // The returned size's CDN delay must be at most T/6 and nearly tight.
  const double period = 1200.0;
  const double size = ClockDomainGeometry::max_domain_size_mm(period);
  ClockDomainConfig cfg;
  cfg.size_mm = size;
  const double delay = ClockDomainGeometry{cfg}.cdn_delay_stages();
  EXPECT_LE(delay, period / 6.0 + 1e-6);
  // 5% larger domain must violate the budget.
  cfg.size_mm = size * 1.05;
  EXPECT_GT(ClockDomainGeometry{cfg}.cdn_delay_stages(), period / 6.0);
}

TEST(ClockDomain, FasterPerturbationShrinksDomain) {
  const double slow = ClockDomainGeometry::max_domain_size_mm(6400.0);
  const double fast = ClockDomainGeometry::max_domain_size_mm(640.0);
  EXPECT_GT(slow, fast);
}

TEST(ClockDomain, InvalidConfigRejected) {
  ClockDomainConfig bad;
  bad.size_mm = 0.0;
  EXPECT_THROW(ClockDomainGeometry{bad}, std::logic_error);
  ClockDomainConfig bad2;
  bad2.max_unbuffered_mm = 0.0;
  EXPECT_THROW(ClockDomainGeometry{bad2}, std::logic_error);
}

}  // namespace
}  // namespace roclk::chip
