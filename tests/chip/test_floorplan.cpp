#include "roclk/chip/floorplan.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::chip {
namespace {

using variation::DiePoint;

TEST(Floorplan, RandomPathsDeterministicAndBounded) {
  const auto fp = Floorplan::random_paths(20, 64.0, 77);
  ASSERT_EQ(fp.paths().size(), 20u);
  for (const auto& p : fp.paths()) {
    EXPECT_GE(p.location.x, 0.0);
    EXPECT_LE(p.location.x, 1.0);
    EXPECT_GE(p.depth_stages, 64.0 * 0.9 - 1e-9);
    EXPECT_LE(p.depth_stages, 64.0 * 1.1 + 1e-9);
  }
  const auto fp2 = Floorplan::random_paths(20, 64.0, 77);
  EXPECT_DOUBLE_EQ(fp.paths()[7].depth_stages, fp2.paths()[7].depth_stages);
}

TEST(Floorplan, SensorGridCoversDie) {
  Floorplan fp;
  fp.add_sensor_grid(3);
  EXPECT_EQ(fp.sensors().size(), 9u);
  // Centre sensor of a 3x3 grid sits in the middle.
  EXPECT_DOUBLE_EQ(fp.sensors()[4].location.x, 0.5);
  EXPECT_DOUBLE_EQ(fp.sensors()[4].location.y, 0.5);
}

TEST(Floorplan, PathDelayScalesWithVariation) {
  Floorplan fp;
  fp.add_path({{0.5, 0.5}, 100.0, "cp"});
  const auto v = variation::DieToDieProcess::with_offset(0.1);
  EXPECT_NEAR(fp.path_delay(fp.paths()[0], v, 0.0), 110.0, 1e-12);
}

TEST(Floorplan, WorstPathUnderHeterogeneousVariation) {
  Floorplan fp;
  fp.add_path({{0.1, 0.1}, 100.0, "cold"});
  fp.add_path({{0.9, 0.9}, 100.0, "hot"});
  variation::TemperatureHotspot hotspot{0.2, {0.9, 0.9}, 0.15, 0.0, 1.0};
  // After the thermal transient the hot path dominates.
  EXPECT_EQ(fp.worst_path_index(hotspot, 100.0), 1u);
  EXPECT_NEAR(fp.worst_path_delay(hotspot, 100.0), 120.0, 0.5);
}

TEST(Floorplan, NearestSensorEuclidean) {
  Floorplan fp;
  fp.add_sensor({{0.0, 0.0}, "sw"});
  fp.add_sensor({{1.0, 1.0}, "ne"});
  EXPECT_EQ(fp.nearest_sensor({0.1, 0.2}), 0u);
  EXPECT_EQ(fp.nearest_sensor({0.8, 0.7}), 1u);
}

TEST(Floorplan, BlindSpotZeroUnderHomogeneousVariation) {
  auto fp = Floorplan::random_paths(10, 64.0, 5);
  fp.add_sensor_grid(2);
  variation::VrmRipple vrm{0.1, 1000.0};
  EXPECT_NEAR(fp.worst_sensor_blind_spot(vrm, 250.0), 0.0, 1e-12);
}

TEST(Floorplan, BlindSpotPositiveWhenPathHotterThanSensor) {
  Floorplan fp;
  fp.add_path({{0.9, 0.9}, 64.0, "hot path"});
  fp.add_sensor({{0.1, 0.1}, "far sensor"});
  variation::TemperatureHotspot hotspot{0.2, {0.9, 0.9}, 0.1, 0.0, 1.0};
  EXPECT_GT(fp.worst_sensor_blind_spot(hotspot, 100.0), 0.1);
  // Adding a sensor next to the path closes the blind spot.
  fp.add_sensor({{0.88, 0.9}, "near sensor"});
  EXPECT_LT(fp.worst_sensor_blind_spot(hotspot, 100.0), 0.05);
}

TEST(Floorplan, EmptyPreconditionsThrow) {
  Floorplan fp;
  const auto v = variation::DieToDieProcess::with_offset(0.0);
  EXPECT_THROW((void)fp.worst_path_delay(v, 0.0), std::logic_error);
  EXPECT_THROW((void)fp.nearest_sensor({0.5, 0.5}), std::logic_error);
  EXPECT_THROW(fp.add_path({{0.5, 0.5}, -1.0, "bad"}), std::logic_error);
}

}  // namespace
}  // namespace roclk::chip
