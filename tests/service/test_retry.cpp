#include "roclk/service/retry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "roclk/service/fault_injector.hpp"
#include "roclk/service/server.hpp"
#include "roclk/service/session.hpp"

namespace roclk::service {
namespace {

Request corner_request() {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

TEST(RetryPolicy, OnlyIdempotentSafeStatusesAreRetryable) {
  EXPECT_TRUE(retryable_status(ResponseStatus::kOverloaded));
  EXPECT_TRUE(retryable_status(ResponseStatus::kShuttingDown));
  EXPECT_FALSE(retryable_status(ResponseStatus::kOk));
  EXPECT_FALSE(retryable_status(ResponseStatus::kInvalidRequest));
  EXPECT_FALSE(retryable_status(ResponseStatus::kDeadlineExceeded));
  EXPECT_FALSE(retryable_status(ResponseStatus::kMalformedFrame));
  EXPECT_FALSE(retryable_status(ResponseStatus::kUnsupportedVersion));
  EXPECT_FALSE(retryable_status(ResponseStatus::kInternalError));
}

TEST(RetryPolicy, BackoffIsDeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 450;
  policy.jitter_frac = 0.5;
  const StreamKey key{77};

  EXPECT_EQ(backoff_ms(policy, 0, key), 0u);
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const std::uint32_t wait = backoff_ms(policy, attempt, key);
    EXPECT_EQ(wait, backoff_ms(policy, attempt, key));  // pure function
    EXPECT_LE(wait, policy.max_backoff_ms);
  }
  // attempt 1 jitters around 100ms within [50, 150).
  const std::uint32_t first = backoff_ms(policy, 1, key);
  EXPECT_GE(first, 50u);
  EXPECT_LT(first, 150u);

  policy.jitter_frac = 0.0;
  EXPECT_EQ(backoff_ms(policy, 1, key), 100u);
  EXPECT_EQ(backoff_ms(policy, 2, key), 200u);
  EXPECT_EQ(backoff_ms(policy, 3, key), 400u);
  EXPECT_EQ(backoff_ms(policy, 4, key), 450u);  // capped
}

TEST(CircuitBreaker, TripsHalfOpensAndRecloses) {
  std::uint64_t now = 0;
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_ms = 1000;
  config.now_ms = [&now] { return now; };
  CircuitBreaker breaker{config};

  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());

  now += 999;
  EXPECT_FALSE(breaker.allow());
  now += 1;
  EXPECT_TRUE(breaker.allow());  // the half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // only one probe at a time

  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());

  // A failed probe reopens immediately, without reaching the threshold.
  breaker.record_failure();
  breaker.record_failure();
  now += 1000;
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

/// Dials socketpair connections into `service`, each served by its own
/// session thread; optionally wraps the client end in a FaultyStream.
class LoopbackDialer {
 public:
  explicit LoopbackDialer(SweepService& service) : service_{&service} {}
  ~LoopbackDialer() {
    for (std::thread& t : sessions_) t.join();
  }

  [[nodiscard]] Result<Client> dial(TransportFaultConfig faults = {},
                                    StreamKey key = StreamKey{0}) {
    FdStream client_end, server_end;
    if (Status s = make_stream_pair(client_end, server_end); !s.is_ok()) {
      return s;
    }
    sessions_.emplace_back([service = service_, fd = server_end.release()] {
      FdStream owned{fd};
      (void)run_server_session(owned.fd(), *service);
    });
    ++dials_;
    return Client{make_faulty_stream(std::move(client_end), key, faults)};
  }

  [[nodiscard]] int dials() const { return dials_; }

 private:
  SweepService* service_;
  std::vector<std::thread> sessions_;
  int dials_{0};
};

ResilientClientConfig no_sleep_config(std::vector<std::uint32_t>* slept) {
  ResilientClientConfig config;
  config.jitter_key = StreamKey{123};
  config.sleep_ms = [slept](std::uint32_t ms) {
    if (slept != nullptr) slept->push_back(ms);
  };
  return config;
}

TEST(ResilientClient, ReconnectsAfterAMidQueryConnectionReset) {
  SweepService service{{}};
  LoopbackDialer dialer{service};

  ResilientClientConfig config = no_sleep_config(nullptr);
  config.connect = [&dialer, first = true]() mutable -> Result<Client> {
    if (first) {
      first = false;
      // The first connection dies after its first transferred byte: the
      // request goes out, the stream resets before the response.
      TransportFaultConfig faults;
      faults.reset_after_bytes = 1;
      return dialer.dial(faults, StreamKey{1});
    }
    return dialer.dial();
  };
  ResilientClient client{config};

  const Result<Response> reply = client.query(corner_request());
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kOk);
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().transport_errors, 1u);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(dialer.dials(), 2);
}

TEST(ResilientClient, ShuttingDownAnswerRetriesAgainstAFreshConnection) {
  SweepService draining{{}};
  draining.begin_shutdown();
  SweepService healthy{{}};
  LoopbackDialer drain_dialer{draining};
  LoopbackDialer healthy_dialer{healthy};

  std::vector<std::uint32_t> slept;
  ResilientClientConfig config = no_sleep_config(&slept);
  config.connect = [&, first = true]() mutable -> Result<Client> {
    if (first) {
      first = false;
      return drain_dialer.dial();
    }
    return healthy_dialer.dial();
  };
  ResilientClient client{config};

  const Result<Response> reply = client.query(corner_request());
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kOk);
  EXPECT_EQ(client.stats().retryable_statuses, 1u);
  EXPECT_EQ(client.stats().retries, 1u);
  // A draining daemon is abandoned: the retry dialed a fresh connection.
  EXPECT_EQ(healthy_dialer.dials(), 1);
  // The recorded wait is exactly the deterministic schedule.
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_EQ(slept[0], backoff_ms(config.retry, 1, StreamKey{123}.at(0)));
}

TEST(ResilientClient, MalformedRequestsAreNeverRetried) {
  SweepService service{{}};
  LoopbackDialer dialer{service};

  ResilientClientConfig config = no_sleep_config(nullptr);
  config.connect = [&dialer] { return dialer.dial(); };
  ResilientClient client{config};

  Request invalid = corner_request();
  invalid.corner.setpoint_c = -1.0;
  const Result<Response> reply = client.query(invalid);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kInvalidRequest);
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(ResilientClient, ExhaustionReturnsTheLastTypedOutcome) {
  SweepService draining{{}};
  draining.begin_shutdown();
  LoopbackDialer dialer{draining};

  std::vector<std::uint32_t> slept;
  ResilientClientConfig config = no_sleep_config(&slept);
  config.retry.max_attempts = 3;
  config.connect = [&dialer] { return dialer.dial(); };
  ResilientClient client{config};

  const Result<Response> reply = client.query(corner_request());
  // The budget ran out, but the caller still sees the *typed* outcome —
  // "the service said not now", not "the wire never answered".
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kShuttingDown);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().exhausted, 1u);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(ResilientClient, BackoffBudgetBoundsTheRetryLoop) {
  SweepService draining{{}};
  draining.begin_shutdown();
  LoopbackDialer dialer{draining};

  std::vector<std::uint32_t> slept;
  ResilientClientConfig config = no_sleep_config(&slept);
  config.retry.max_attempts = 10;
  config.retry.jitter_frac = 0.0;
  config.retry.initial_backoff_ms = 100;
  config.retry.total_backoff_budget_ms = 250;  // 100 + 200 > 250
  config.connect = [&dialer] { return dialer.dial(); };
  ResilientClient client{config};

  const Result<Response> reply = client.query(corner_request());
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kShuttingDown);
  EXPECT_EQ(client.stats().attempts, 2u);  // first try + one 100ms retry
  EXPECT_EQ(slept, (std::vector<std::uint32_t>{100}));
}

TEST(ResilientClient, BreakerShedsQueriesLocallyAfterRepeatedFailures) {
  std::uint64_t now = 0;
  std::vector<std::uint32_t> slept;
  ResilientClientConfig config = no_sleep_config(&slept);
  config.retry.max_attempts = 2;
  config.breaker.failure_threshold = 2;
  config.breaker.open_ms = 1000;
  config.breaker.now_ms = [&now] { return now; };
  config.connect = [] { return Client::connect("no_such_socket.sock"); };
  ResilientClient client{config};

  const Result<Response> first = client.query(corner_request());
  EXPECT_FALSE(first.is_ok());  // both dials failed
  EXPECT_EQ(client.breaker().state(), BreakerState::kOpen);

  const Result<Response> second = client.query(corner_request());
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(client.stats().breaker_rejections, 1u);
  EXPECT_EQ(client.stats().attempts, 2u);  // the shed query never dialed

  now += 1000;  // the breaker half-opens and admits a probe again
  const Result<Response> third = client.query(corner_request());
  EXPECT_FALSE(third.is_ok());
  EXPECT_EQ(client.stats().breaker_rejections, 1u);
  EXPECT_GT(client.stats().attempts, 2u);
}

}  // namespace
}  // namespace roclk::service
