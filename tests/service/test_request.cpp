#include "roclk/service/request.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace roclk::service {
namespace {

Request small_corner() {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

TEST(RequestNormalize, ResolvesDefaultCycles) {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.cycles = 0;
  const Result<Request> norm = normalize(request);
  ASSERT_TRUE(norm.is_ok());
  EXPECT_GT(norm.value().corner.cycles, 0u);

  // Spelling the default out explicitly is the SAME request.
  Request explicit_request = request;
  explicit_request.corner.cycles = norm.value().corner.cycles;
  const Result<Request> explicit_norm = normalize(explicit_request);
  ASSERT_TRUE(explicit_norm.is_ok());
  EXPECT_EQ(content_hash(norm.value()), content_hash(explicit_norm.value()));
}

TEST(RequestNormalize, NegativeZeroHashesLikePositiveZero) {
  Request a = small_corner();
  Request b = small_corner();
  a.corner.mu_over_c = 0.0;
  b.corner.mu_over_c = -0.0;
  const Result<Request> na = normalize(a);
  const Result<Request> nb = normalize(b);
  ASSERT_TRUE(na.is_ok());
  ASSERT_TRUE(nb.is_ok());
  EXPECT_EQ(content_hash(na.value()), content_hash(nb.value()));
  EXPECT_EQ(na.value(), nb.value());
}

TEST(RequestNormalize, DeadlineIsNotPartOfTheIdentity) {
  Request a = small_corner();
  Request b = small_corner();
  a.deadline_ms = 0;
  b.deadline_ms = 5000;
  const Result<Request> na = normalize(a);
  const Result<Request> nb = normalize(b);
  ASSERT_TRUE(na.is_ok());
  ASSERT_TRUE(nb.is_ok());
  EXPECT_EQ(content_hash(na.value()), content_hash(nb.value()));
}

TEST(RequestNormalize, InactiveMembersAreZeroedForCanonicalEquality) {
  Request a = small_corner();
  Request b = small_corner();
  // Garbage in the inactive members must not affect identity.
  a.yield.seed = 999;
  a.grid.points = 77;
  const Result<Request> na = normalize(a);
  const Result<Request> nb = normalize(b);
  ASSERT_TRUE(na.is_ok());
  ASSERT_TRUE(nb.is_ok());
  EXPECT_EQ(na.value(), nb.value());
  EXPECT_EQ(content_hash(na.value()), content_hash(nb.value()));
}

TEST(RequestNormalize, DifferentScenariosHashDifferently) {
  Request a = small_corner();
  Request b = small_corner();
  b.corner.tclk_over_c = 1.25;
  const Result<Request> na = normalize(a);
  const Result<Request> nb = normalize(b);
  ASSERT_TRUE(na.is_ok());
  ASSERT_TRUE(nb.is_ok());
  EXPECT_NE(content_hash(na.value()), content_hash(nb.value()));
}

TEST(RequestNormalize, RejectsNonFiniteAndOutOfBoundValues) {
  Request nan_request = small_corner();
  nan_request.corner.mu_over_c = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(normalize(nan_request).is_ok());

  Request inf_request = small_corner();
  inf_request.corner.te_over_c = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(normalize(inf_request).is_ok());

  Request huge_request = small_corner();
  huge_request.corner.te_over_c = 1e300;  // would overflow cycle derivation
  EXPECT_FALSE(normalize(huge_request).is_ok());

  Request negative_request = small_corner();
  negative_request.corner.setpoint_c = -1.0;
  EXPECT_FALSE(normalize(negative_request).is_ok());

  Request cycle_request = small_corner();
  cycle_request.corner.cycles = 200000000;
  EXPECT_FALSE(normalize(cycle_request).is_ok());
}

TEST(RequestNormalize, RejectsUnknownEnumsAndBadSkip) {
  Request system_request = small_corner();
  system_request.corner.system = 9;
  EXPECT_FALSE(normalize(system_request).is_ok());

  Request quant_request = small_corner();
  quant_request.corner.quantization = 7;
  EXPECT_FALSE(normalize(quant_request).is_ok());

  Request skip_request = small_corner();
  skip_request.corner.skip = skip_request.corner.cycles;
  EXPECT_FALSE(normalize(skip_request).is_ok());

  Request kind_request = small_corner();
  kind_request.kind = static_cast<QueryKind>(42);
  EXPECT_FALSE(normalize(kind_request).is_ok());
}

TEST(RequestNormalize, ValidatesGrids) {
  Request grid;
  grid.kind = QueryKind::kGridSweep;
  grid.grid.base.cycles = 2000;
  grid.grid.base.skip = 200;
  grid.grid.lo = 0.5;
  grid.grid.hi = 2.0;
  grid.grid.points = 5;
  ASSERT_TRUE(normalize(grid).is_ok());

  Request one_point = grid;
  one_point.grid.points = 1;
  EXPECT_FALSE(normalize(one_point).is_ok());

  Request too_many = grid;
  too_many.grid.points = 5000;
  EXPECT_FALSE(normalize(too_many).is_ok());

  Request inverted = grid;
  inverted.grid.lo = 2.0;
  inverted.grid.hi = 0.5;
  EXPECT_FALSE(normalize(inverted).is_ok());

  Request log_zero = grid;
  log_zero.grid.axis = GridAxis::kMuOverC;
  log_zero.grid.scale = GridScale::kLog;
  log_zero.grid.lo = 0.0;
  EXPECT_FALSE(normalize(log_zero).is_ok());

  Request bad_axis = grid;
  bad_axis.grid.axis = static_cast<GridAxis>(9);
  EXPECT_FALSE(normalize(bad_axis).is_ok());
}

TEST(RequestNormalize, TeGridResolvesCyclesFromTheUpperBound) {
  Request grid;
  grid.kind = QueryKind::kGridSweep;
  grid.grid.axis = GridAxis::kTeOverC;
  grid.grid.lo = 10.0;
  grid.grid.hi = 100.0;
  grid.grid.points = 3;
  grid.grid.base.cycles = 0;
  grid.grid.base.skip = 100;
  const Result<Request> norm = normalize(grid);
  ASSERT_TRUE(norm.is_ok());

  Request corner;
  corner.kind = QueryKind::kCornerMargin;
  corner.corner.te_over_c = 100.0;
  corner.corner.cycles = 0;
  corner.corner.skip = 100;
  const Result<Request> corner_norm = normalize(corner);
  ASSERT_TRUE(corner_norm.is_ok());
  // Every te-grid point shares the cycle count the longest te needs.
  EXPECT_EQ(norm.value().grid.base.cycles,
            corner_norm.value().corner.cycles);
}

TEST(RequestNormalize, ValidatesYieldQueries) {
  Request yield;
  yield.kind = QueryKind::kYieldCurve;
  yield.yield.chips = 16;
  yield.yield.margin_points = 3;
  ASSERT_TRUE(normalize(yield).is_ok());

  Request no_chips = yield;
  no_chips.yield.chips = 0;
  EXPECT_FALSE(normalize(no_chips).is_ok());

  Request inverted = yield;
  inverted.yield.margin_lo = 10.0;
  inverted.yield.margin_hi = 1.0;
  EXPECT_FALSE(normalize(inverted).is_ok());

  Request bad_sigma = yield;
  bad_sigma.yield.d2d_sigma = -0.1;
  EXPECT_FALSE(normalize(bad_sigma).is_ok());
}

TEST(RequestWire, RoundTripsEveryQueryKind) {
  Request corner = small_corner();
  corner.deadline_ms = 750;

  Request grid;
  grid.kind = QueryKind::kGridSweep;
  grid.grid.axis = GridAxis::kMuOverC;
  grid.grid.scale = GridScale::kLinear;
  grid.grid.lo = -0.05;
  grid.grid.hi = 0.05;
  grid.grid.points = 3;
  grid.grid.base.cycles = 2000;
  grid.grid.base.skip = 200;

  Request yield;
  yield.kind = QueryKind::kYieldCurve;
  yield.yield.chips = 32;
  yield.yield.seed = 42;

  for (const Request& request : {corner, grid, yield}) {
    WireWriter writer;
    encode_request(request, writer);
    WireReader reader{writer.words.data(), writer.words.size()};
    const Result<Request> decoded = decode_request(reader);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), request);
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

TEST(RequestWire, RejectsTruncatedAndUnknownKindPayloads) {
  Request request = small_corner();
  WireWriter writer;
  encode_request(request, writer);

  WireReader truncated{writer.words.data(), writer.words.size() - 2};
  EXPECT_FALSE(decode_request(truncated).is_ok());

  std::vector<std::uint64_t> words = writer.words;
  words[1] = 42;  // unknown kind
  WireReader unknown{words.data(), words.size()};
  EXPECT_FALSE(decode_request(unknown).is_ok());
}

}  // namespace
}  // namespace roclk::service
