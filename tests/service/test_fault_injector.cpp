#include "roclk/service/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "roclk/service/client.hpp"
#include "roclk/service/server.hpp"
#include "roclk/service/session.hpp"

namespace roclk::service {
namespace {

Request corner_request() {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

TransportFaultConfig aggressive() {
  TransportFaultConfig config;
  config.short_op_rate = 0.6;
  config.eintr_rate = 0.4;
  config.bitflip_rate = 0.3;
  return config;
}

/// Pushes a fixed word script through a FaultyStream into a socketpair
/// and drains the peer; returns (stats, bytes that reached the wire).
std::pair<FaultStats, std::vector<unsigned char>> run_write_script(
    StreamKey key, const TransportFaultConfig& config) {
  FdStream a, b;
  EXPECT_TRUE(make_stream_pair(a, b).is_ok());
  auto faulty = make_faulty_stream(std::move(a), key, config);

  std::vector<std::uint64_t> script(64);
  for (std::size_t i = 0; i < script.size(); ++i) {
    script[i] = 0x0101010101010101ULL * i;
  }
  std::vector<unsigned char> received;
  std::thread drain{[fd = b.fd(), &received] {
    FdByteStream peer{fd};
    unsigned char chunk[256];
    for (;;) {
      const IoResult r = peer.read_some(chunk, sizeof(chunk));
      if (r.kind == IoResult::Kind::kInterrupted) continue;
      if (r.kind != IoResult::Kind::kOk) break;
      received.insert(received.end(), chunk, chunk + r.bytes);
    }
  }};
  EXPECT_TRUE(write_words(*faulty, script));
  faulty->close();
  drain.join();
  b.close();
  return {faulty->stats(), received};
}

TEST(FaultyStream, ZeroRatesArePassThrough) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  auto faulty_a = make_faulty_stream(std::move(a), StreamKey{7}, {});
  auto faulty_b = make_faulty_stream(std::move(b), StreamKey{8}, {});

  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = {10, 20, 30};
  ASSERT_TRUE(write_frame(*faulty_a, frame));

  const FrameReadOutcome outcome = read_frame(*faulty_b);
  ASSERT_EQ(outcome.result, ReadFrameResult::kFrame);
  EXPECT_EQ(outcome.frame.payload, frame.payload);

  const FaultStats& stats = faulty_b->stats();
  EXPECT_EQ(stats.short_reads, 0u);
  EXPECT_EQ(stats.eintr_injected, 0u);
  EXPECT_EQ(stats.bit_flips, 0u);
  EXPECT_EQ(stats.resets, 0u);
  EXPECT_GT(stats.reads, 0u);
}

TEST(FaultyStream, SameKeyReplaysTheSameScheduleBitForBit) {
  const auto [stats_1, bytes_1] = run_write_script(StreamKey{42}, aggressive());
  const auto [stats_2, bytes_2] = run_write_script(StreamKey{42}, aggressive());
  // Identical fault decisions AND identical corrupted bytes on the wire:
  // the whole failure is replayable, not just its summary counters.
  EXPECT_EQ(stats_1, stats_2);
  EXPECT_EQ(bytes_1, bytes_2);
  EXPECT_GT(stats_1.short_writes + stats_1.eintr_injected + stats_1.bit_flips,
            0u);
}

TEST(FaultyStream, DifferentKeysDrawDifferentSchedules) {
  const auto [stats_1, bytes_1] = run_write_script(StreamKey{42}, aggressive());
  const auto [stats_2, bytes_2] = run_write_script(StreamKey{43}, aggressive());
  EXPECT_TRUE(!(stats_1 == stats_2) || bytes_1 != bytes_2);
}

TEST(FaultyStream, ShortOpsAndEintrStormsAreTransparentlyRecovered) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kClientClosed);
  }};

  TransportFaultConfig config;
  config.short_op_rate = 1.0;  // every op transfers a strict prefix
  config.eintr_rate = 0.5;
  auto faulty = make_faulty_stream(std::move(client_end), StreamKey{11}, config);
  FaultyStream* injector = faulty.get();
  {
    Client client{std::move(faulty)};
    const Result<Response> pong = client.ping();
    ASSERT_TRUE(pong.is_ok());
    EXPECT_EQ(pong.value().status, ResponseStatus::kOk);

    const Result<Response> reply = client.query(corner_request());
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(reply.value().status, ResponseStatus::kOk);

    // The faults actually fired; the resume loops absorbed all of them.
    EXPECT_GT(injector->stats().short_writes + injector->stats().short_reads,
              0u);
    EXPECT_GT(injector->stats().eintr_injected, 0u);
  }
  server.join();
}

TEST(FaultyStream, BitFlipsAreCaughtByFrameChecksums) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  TransportFaultConfig config;
  config.bitflip_rate = 1.0;
  auto faulty = make_faulty_stream(std::move(a), StreamKey{5}, config);

  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(write_frame(*faulty, frame));
  EXPECT_GT(faulty->stats().bit_flips, 0u);

  const FrameReadOutcome outcome = read_frame(b.fd());
  EXPECT_EQ(outcome.result, ReadFrameResult::kMalformed);
}

TEST(FaultyStream, ResetAfterByteBudgetKillsTheStream) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  TransportFaultConfig config;
  config.reset_after_bytes = 1;  // dies after the first transfer
  auto faulty = make_faulty_stream(std::move(a), StreamKey{3}, config);

  ASSERT_TRUE(write_frame(*faulty, {FrameType::kPing, {}}));
  EXPECT_FALSE(faulty->valid());
  EXPECT_FALSE(write_frame(*faulty, {FrameType::kPing, {}}));

  unsigned char byte = 0;
  EXPECT_EQ(faulty->read_some(&byte, 1).kind, IoResult::Kind::kEof);
  EXPECT_GE(faulty->stats().resets, 2u);
}

TEST(FaultyStream, StallsRunTheHookInsteadOfSleeping) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  TransportFaultConfig config;
  config.stall_rate = 1.0;
  int hook_runs = 0;
  config.stall_hook = [&hook_runs] { ++hook_runs; };
  auto faulty = make_faulty_stream(std::move(a), StreamKey{9}, config);

  ASSERT_TRUE(write_frame(*faulty, {FrameType::kPing, {}}));
  EXPECT_EQ(faulty->stats().stalls, static_cast<std::uint64_t>(hook_runs));
  EXPECT_GT(hook_runs, 0);
}

}  // namespace
}  // namespace roclk::service
