#include "roclk/service/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "roclk/service/server.hpp"

namespace roclk::service {
namespace {

namespace fs = std::filesystem;

/// Scoped journal path: removed before and after each test so reruns
/// never see a stale file.
struct ScopedPath {
  explicit ScopedPath(std::string p) : path{std::move(p)} {
    fs::remove(path);
    fs::remove(path + ".tmp");
  }
  ~ScopedPath() {
    fs::remove(path);
    fs::remove(path + ".tmp");
  }
  std::string path;
};

Response ok_response(double seed) {
  Response response;
  response.content_hash = static_cast<std::uint64_t>(seed * 1000.0);
  response.values = {seed, seed * 2.0, seed * 3.0};
  return response;
}

Request corner_request(double tclk_over_c = 1.0) {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.tclk_over_c = tclk_over_c;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

std::vector<std::uint64_t> slurp_words(const std::string& path) {
  std::vector<std::uint64_t> words;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return words;
  std::uint64_t w = 0;
  while (std::fread(&w, sizeof(w), 1, file) == 1) words.push_back(w);
  std::fclose(file);
  return words;
}

void dump_words(const std::string& path,
                const std::vector<std::uint64_t>& words) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(words.data(), sizeof(std::uint64_t), words.size(),
                        file),
            words.size());
  std::fclose(file);
}

TEST(CacheJournal, AppendedEntriesRoundTripThroughLoad) {
  const ScopedPath scoped{"test_journal_roundtrip.jnl"};
  {
    CacheJournal journal;
    ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
    ASSERT_TRUE(journal.append(101, ok_response(1.0)).is_ok());
    ASSERT_TRUE(journal.append(202, ok_response(2.0)).is_ok());
    EXPECT_EQ(journal.appended_records(), 2u);
  }
  Status status;
  const JournalLoadResult loaded = CacheJournal::load(scoped.path, &status);
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.dropped_tail_words, 0u);
  ASSERT_EQ(loaded.records_loaded, 2u);
  EXPECT_EQ(loaded.entries[0].hash, 101u);
  EXPECT_EQ(loaded.entries[0].response, ok_response(1.0));
  EXPECT_EQ(loaded.entries[1].hash, 202u);
  EXPECT_EQ(loaded.entries[1].response, ok_response(2.0));
}

TEST(CacheJournal, ReopeningAppendsAfterExistingRecords) {
  const ScopedPath scoped{"test_journal_reopen.jnl"};
  {
    CacheJournal journal;
    ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
    ASSERT_TRUE(journal.append(1, ok_response(1.0)).is_ok());
  }
  {
    CacheJournal journal;
    ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
    ASSERT_TRUE(journal.append(2, ok_response(2.0)).is_ok());
  }
  const JournalLoadResult loaded = CacheJournal::load(scoped.path);
  ASSERT_EQ(loaded.records_loaded, 2u);
  EXPECT_EQ(loaded.entries[0].hash, 1u);
  EXPECT_EQ(loaded.entries[1].hash, 2u);
}

TEST(CacheJournal, TornFinalRecordKeepsEveryIntactPrefixEntry) {
  const ScopedPath scoped{"test_journal_torn.jnl"};
  {
    CacheJournal journal;
    ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
    ASSERT_TRUE(journal.append(1, ok_response(1.0)).is_ok());
    ASSERT_TRUE(journal.append(2, ok_response(2.0)).is_ok());
    ASSERT_TRUE(journal.append(3, ok_response(3.0)).is_ok());
  }
  // Tear the last record mid-payload, the way kill -9 during an append
  // would.
  const std::uint64_t record_words =
      CacheJournal::encode_record(3, ok_response(3.0)).size();
  const std::uintmax_t size = fs::file_size(scoped.path);
  fs::resize_file(scoped.path,
                  size - (record_words / 2) * sizeof(std::uint64_t));

  Status status;
  const JournalLoadResult loaded = CacheJournal::load(scoped.path, &status);
  EXPECT_FALSE(status.is_ok());  // the torn tail is reported...
  ASSERT_EQ(loaded.records_loaded, 2u);  // ...and every intact entry kept
  EXPECT_GT(loaded.dropped_tail_words, 0u);
  EXPECT_EQ(loaded.entries[0].hash, 1u);
  EXPECT_EQ(loaded.entries[1].hash, 2u);
}

TEST(CacheJournal, CorruptMiddleRecordDropsItAndEverythingAfter) {
  const ScopedPath scoped{"test_journal_corrupt.jnl"};
  {
    CacheJournal journal;
    ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
    ASSERT_TRUE(journal.append(1, ok_response(1.0)).is_ok());
    ASSERT_TRUE(journal.append(2, ok_response(2.0)).is_ok());
    ASSERT_TRUE(journal.append(3, ok_response(3.0)).is_ok());
  }
  std::vector<std::uint64_t> words = slurp_words(scoped.path);
  const std::size_t record_words =
      CacheJournal::encode_record(1, ok_response(1.0)).size();
  // Flip one bit inside record 2's payload (after the 3-word header and
  // record 1): its checksum fails, and framing is untrusted from there.
  words[3 + record_words + 4] ^= 1;
  dump_words(scoped.path, words);

  const JournalLoadResult loaded = CacheJournal::load(scoped.path);
  ASSERT_EQ(loaded.records_loaded, 1u);
  EXPECT_EQ(loaded.entries[0].hash, 1u);
  EXPECT_GT(loaded.dropped_tail_words, 0u);
}

TEST(CacheJournal, MissingAndCorruptHeaderFilesLoadEmpty) {
  Status status;
  const JournalLoadResult missing =
      CacheJournal::load("no_such_journal.jnl", &status);
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(missing.header_ok);
  EXPECT_EQ(missing.records_loaded, 0u);

  const ScopedPath scoped{"test_journal_badheader.jnl"};
  dump_words(scoped.path, {0xDEADBEEFULL, 1, 2, 3, 4});
  const JournalLoadResult corrupt = CacheJournal::load(scoped.path, &status);
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(corrupt.header_ok);
  EXPECT_EQ(corrupt.records_loaded, 0u);
}

TEST(CacheJournal, CompactionRewritesToExactlyTheGivenEntries) {
  const ScopedPath scoped{"test_journal_compact.jnl"};
  CacheJournal journal;
  ASSERT_TRUE(journal.open_for_append(scoped.path).is_ok());
  // The same hash stored many times bloats the log...
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(journal.append(7, ok_response(1.0)).is_ok());
  }
  const std::uintmax_t before = fs::file_size(scoped.path);

  // ...until compaction rewrites it to the single live entry.
  ASSERT_TRUE(journal.compact({{7, ok_response(1.0)}}).is_ok());
  EXPECT_EQ(journal.appended_records(), 0u);
  EXPECT_LT(fs::file_size(scoped.path), before);

  // The compacted journal is still appendable and still loads.
  ASSERT_TRUE(journal.append(8, ok_response(2.0)).is_ok());
  const JournalLoadResult loaded = CacheJournal::load(scoped.path);
  ASSERT_EQ(loaded.records_loaded, 2u);
  EXPECT_EQ(loaded.entries[0].hash, 7u);
  EXPECT_EQ(loaded.entries[1].hash, 8u);
}

TEST(SweepServiceJournal, WarmStartServesCachedResultsWithZeroSimulations) {
  const ScopedPath scoped{"test_journal_service.jnl"};
  Response original;
  {
    ServiceConfig config;
    config.journal_path = scoped.path;
    SweepService service{config};
    original = service.handle(corner_request(1.0));
    ASSERT_EQ(original.status, ResponseStatus::kOk);
    (void)service.handle(corner_request(1.25));
    EXPECT_EQ(service.stats().journal_appends, 2u);
  }
  // A "restarted daemon": same journal path, fresh process state.
  ServiceConfig config;
  config.journal_path = scoped.path;
  SweepService service{config};
  EXPECT_EQ(service.stats().journal_recovered, 2u);

  const Response warm = service.handle(corner_request(1.0));
  ASSERT_EQ(warm.status, ResponseStatus::kOk);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.values, original.values);  // bitwise-identical replay
  EXPECT_EQ(warm.content_hash, original.content_hash);
  EXPECT_EQ(service.stats().simulations, 0u);
}

TEST(SweepServiceJournal, TornJournalOnlyDegradesTheWarmStart) {
  const ScopedPath scoped{"test_journal_service_torn.jnl"};
  {
    ServiceConfig config;
    config.journal_path = scoped.path;
    SweepService service{config};
    ASSERT_EQ(service.handle(corner_request(1.0)).status, ResponseStatus::kOk);
    ASSERT_EQ(service.handle(corner_request(1.25)).status,
              ResponseStatus::kOk);
  }
  // Tear mid-append: drop the torn record's second half.
  const std::uintmax_t size = fs::file_size(scoped.path);
  fs::resize_file(scoped.path, size - 5 * sizeof(std::uint64_t));

  ServiceConfig config;
  config.journal_path = scoped.path;
  SweepService service{config};
  EXPECT_EQ(service.stats().journal_recovered, 1u);
  EXPECT_GT(service.stats().journal_dropped_words, 0u);
  // The intact entry is served from cache; the torn one re-simulates.
  EXPECT_TRUE(service.handle(corner_request(1.0)).from_cache);
  EXPECT_FALSE(service.handle(corner_request(1.25)).from_cache);
  EXPECT_EQ(service.stats().simulations, 1u);

  // The recovery compacted the file: a third start sees a clean journal
  // holding both entries again (the re-simulated one was re-appended).
  SweepService again{config};
  EXPECT_EQ(again.stats().journal_recovered, 2u);
  EXPECT_EQ(again.stats().journal_dropped_words, 0u);
}

TEST(SweepServiceJournal, CompactionTriggersAfterTheConfiguredBudget) {
  const ScopedPath scoped{"test_journal_service_compact.jnl"};
  ServiceConfig config;
  config.journal_path = scoped.path;
  config.cache_capacity = 1;       // every store evicts the previous entry
  config.journal_compact_every = 3;
  SweepService service{config};
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(service.handle(corner_request(1.0 + 0.05 * i)).status,
              ResponseStatus::kOk);
  }
  EXPECT_GE(service.stats().journal_compactions, 1u);
  // Compaction keeps only live cache entries: the journal holds at most
  // compact_every + capacity records, not all six.
  const JournalLoadResult loaded = CacheJournal::load(scoped.path);
  EXPECT_LE(loaded.records_loaded, 4u);
}

}  // namespace
}  // namespace roclk::service
