#include "roclk/service/transport.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "roclk/service/client.hpp"
#include "roclk/service/server.hpp"
#include "roclk/service/session.hpp"

namespace roclk::service {
namespace {

Request corner_request() {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

TEST(Transport, FramesRoundTripOverASocketPair) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());

  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = {10, 20, 30};
  ASSERT_TRUE(write_frame(a.fd(), frame));

  const FrameReadOutcome outcome = read_frame(b.fd());
  ASSERT_EQ(outcome.result, ReadFrameResult::kFrame);
  EXPECT_EQ(outcome.frame.type, frame.type);
  EXPECT_EQ(outcome.frame.payload, frame.payload);
}

TEST(Transport, CleanCloseReadsAsClosed) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  a.close();
  EXPECT_EQ(read_frame(b.fd()).result, ReadFrameResult::kClosed);
}

TEST(Transport, MidFrameCloseReadsAsTruncated) {
  FdStream a, b;
  ASSERT_TRUE(make_stream_pair(a, b).is_ok());
  const std::vector<std::uint64_t> whole =
      encode_frame({FrameType::kPing, {}});
  // Ship only the header, then hang up mid-frame.
  const std::vector<std::uint64_t> header{whole.begin(), whole.begin() + 3};
  ASSERT_TRUE(write_words(a.fd(), header));
  a.close();
  const FrameReadOutcome outcome = read_frame(b.fd());
  EXPECT_EQ(outcome.result, ReadFrameResult::kMalformed);
  EXPECT_EQ(outcome.error, DecodeError::kTruncated);
}

TEST(Transport, BadMagicVersionAndChecksumAreTyped) {
  {
    FdStream a, b;
    ASSERT_TRUE(make_stream_pair(a, b).is_ok());
    ASSERT_TRUE(write_words(a.fd(), {1, 2, 3, 4}));
    const FrameReadOutcome outcome = read_frame(b.fd());
    EXPECT_EQ(outcome.result, ReadFrameResult::kMalformed);
    EXPECT_EQ(outcome.error, DecodeError::kBadMagic);
  }
  {
    FdStream a, b;
    ASSERT_TRUE(make_stream_pair(a, b).is_ok());
    std::vector<std::uint64_t> words = encode_frame({FrameType::kPing, {}});
    words[1] = (std::uint64_t{9} << 32) |
               static_cast<std::uint64_t>(FrameType::kPing);
    ASSERT_TRUE(write_words(a.fd(), words));
    const FrameReadOutcome outcome = read_frame(b.fd());
    EXPECT_EQ(outcome.result, ReadFrameResult::kMalformed);
    EXPECT_EQ(outcome.error, DecodeError::kBadVersion);
  }
  {
    FdStream a, b;
    ASSERT_TRUE(make_stream_pair(a, b).is_ok());
    std::vector<std::uint64_t> words =
        encode_frame({FrameType::kRequest, {5, 6}});
    words.back() ^= 1;
    ASSERT_TRUE(write_words(a.fd(), words));
    const FrameReadOutcome outcome = read_frame(b.fd());
    EXPECT_EQ(outcome.result, ReadFrameResult::kMalformed);
    EXPECT_EQ(outcome.error, DecodeError::kBadChecksum);
  }
}

TEST(Session, ClientAndServiceRoundTripOverASocketPair) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kClientClosed);
  }};

  Client client{std::move(client_end)};
  const Result<Response> pong = client.ping();
  ASSERT_TRUE(pong.is_ok());
  EXPECT_EQ(pong.value().status, ResponseStatus::kOk);
  EXPECT_EQ(pong.value().message, "ready");

  const Result<Response> first = client.query(corner_request());
  ASSERT_TRUE(first.is_ok());
  ASSERT_EQ(first.value().status, ResponseStatus::kOk);
  EXPECT_FALSE(first.value().from_cache);

  const Result<Response> second = client.query(corner_request());
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().values, first.value().values);

  Request invalid = corner_request();
  invalid.corner.setpoint_c = -1.0;
  const Result<Response> rejected = client.query(invalid);
  ASSERT_TRUE(rejected.is_ok());
  EXPECT_EQ(rejected.value().status, ResponseStatus::kInvalidRequest);

  // Closing the client ends the session cleanly.
  { const Client closer = std::move(client); }
  server.join();
  EXPECT_EQ(service.stats().simulations, 1u);
}

TEST(Session, MalformedFrameGetsTypedAnswerAndClosesTheSession) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kMalformed);
  }};

  Client client{std::move(client_end)};
  const Result<Response> reply =
      client.send_raw({0xBADBADBADBADBAD0ULL, 1, 2, 3});
  server.join();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kMalformedFrame);
}

TEST(Session, WrongVersionGetsUnsupportedVersionAnswer) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kMalformed);
  }};

  std::vector<std::uint64_t> words = encode_frame({FrameType::kPing, {}});
  words[1] = (std::uint64_t{2} << 32) |
             static_cast<std::uint64_t>(FrameType::kPing);
  Client client{std::move(client_end)};
  const Result<Response> reply = client.send_raw(words);
  server.join();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kUnsupportedVersion);
}

TEST(Session, ShutdownFrameDrainsTheService) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kShutdownRequested);
  }};

  Client client{std::move(client_end)};
  const Result<Response> ack = client.shutdown_server();
  server.join();
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(ack.value().status, ResponseStatus::kOk);
  EXPECT_TRUE(service.shutting_down());
}

TEST(Session, ResponseFrameFromClientIsAProtocolViolation) {
  FdStream client_end, server_end;
  ASSERT_TRUE(make_stream_pair(client_end, server_end).is_ok());

  SweepService service{{}};
  std::thread server{[&service, fd = server_end.release()] {
    FdStream owned{fd};
    EXPECT_EQ(run_server_session(owned.fd(), service),
              SessionEnd::kMalformed);
  }};

  Client client{std::move(client_end)};
  const Result<Response> reply =
      client.send_raw(encode_frame({FrameType::kResponse, {}}));
  server.join();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().status, ResponseStatus::kMalformedFrame);
}

TEST(Transport, UnixListenerAcceptsAndUnlinksItsSocket) {
  const std::string path = "test_transport_listener.sock";
  {
    UnixListener listener;
    ASSERT_TRUE(listener.listen(path).is_ok());
    ASSERT_TRUE(listener.listening());

    SweepService service{{}};
    std::thread server{[&] {
      FdStream conn = listener.accept();
      ASSERT_TRUE(conn.valid());
      (void)run_server_session(conn.fd(), service);
    }};

    Result<Client> client = Client::connect(path);
    ASSERT_TRUE(client.is_ok());
    const Result<Response> pong = client.value().ping();
    ASSERT_TRUE(pong.is_ok());
    EXPECT_EQ(pong.value().status, ResponseStatus::kOk);
    {
      Client done = std::move(client).value();
    }
    server.join();
  }
  // Listener destruction unlinks the socket path.
  EXPECT_FALSE(Client::connect(path).is_ok());
}

TEST(Transport, ConnectToMissingSocketFailsCleanly) {
  EXPECT_FALSE(Client::connect("no_such_socket.sock").is_ok());
}

}  // namespace
}  // namespace roclk::service
