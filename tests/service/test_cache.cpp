#include "roclk/service/cache.hpp"

#include <gtest/gtest.h>

namespace roclk::service {
namespace {

Response response_with(double value) {
  Response response;
  response.values = {value};
  return response;
}

TEST(ResultCache, StoreThenLookupRoundTrips) {
  ResultCache cache{4};
  cache.store(1, response_with(1.0));
  Response out;
  ASSERT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out.values, std::vector<double>{1.0});
  EXPECT_FALSE(cache.lookup(2, out));
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedFirst) {
  ResultCache cache{2};
  cache.store(1, response_with(1.0));
  cache.store(2, response_with(2.0));
  Response out;
  ASSERT_TRUE(cache.lookup(1, out));  // refresh 1 -> 2 is now LRU
  cache.store(3, response_with(3.0));  // evicts 2
  EXPECT_TRUE(cache.lookup(1, out));
  EXPECT_FALSE(cache.lookup(2, out));
  EXPECT_TRUE(cache.lookup(3, out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCache, StoreRefreshesRecencyAndValue) {
  ResultCache cache{2};
  cache.store(1, response_with(1.0));
  cache.store(2, response_with(2.0));
  cache.store(1, response_with(10.0));  // refresh: 2 becomes LRU
  cache.store(3, response_with(3.0));   // evicts 2
  Response out;
  ASSERT_TRUE(cache.lookup(1, out));
  EXPECT_EQ(out.values, std::vector<double>{10.0});
  EXPECT_FALSE(cache.lookup(2, out));
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache{0};
  cache.store(1, response_with(1.0));
  Response out;
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ClearDropsEntries) {
  ResultCache cache{4};
  cache.store(1, response_with(1.0));
  cache.clear();
  Response out;
  EXPECT_FALSE(cache.lookup(1, out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace roclk::service
