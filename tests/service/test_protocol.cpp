#include "roclk/service/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace roclk::service {
namespace {

Response sample_response() {
  Response response;
  response.status = ResponseStatus::kOk;
  response.from_cache = true;
  response.coalesced = true;
  response.content_hash = 0xABCDEF0123456789ULL;
  response.message = "a diagnostic string spanning words";
  response.values = {1.5, -2.25, 0.0, 1e-9};
  return response;
}

TEST(ProtocolResponse, RoundTripsAllFields) {
  const Response original = sample_response();
  WireWriter writer;
  encode_response(original, writer);
  WireReader reader{writer.words.data(), writer.words.size()};
  const Result<Response> decoded = decode_response(reader);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), original);
}

TEST(ProtocolResponse, RoundTripsEveryStatusCode) {
  for (const ResponseStatus status :
       {ResponseStatus::kOk, ResponseStatus::kInvalidRequest,
        ResponseStatus::kOverloaded, ResponseStatus::kDeadlineExceeded,
        ResponseStatus::kShuttingDown, ResponseStatus::kMalformedFrame,
        ResponseStatus::kUnsupportedVersion,
        ResponseStatus::kInternalError}) {
    Response response = Response::error(status, to_string(status));
    WireWriter writer;
    encode_response(response, writer);
    WireReader reader{writer.words.data(), writer.words.size()};
    const Result<Response> decoded = decode_response(reader);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().status, status);
    EXPECT_EQ(decoded.value().message, to_string(status));
  }
}

TEST(ProtocolResponse, RejectsUnknownStatusAndTruncation) {
  WireWriter writer;
  encode_response(sample_response(), writer);

  std::vector<std::uint64_t> words = writer.words;
  words[0] = 99;  // unknown status code
  WireReader unknown{words.data(), words.size()};
  EXPECT_FALSE(decode_response(unknown).is_ok());

  WireReader truncated{writer.words.data(), writer.words.size() - 1};
  EXPECT_FALSE(decode_response(truncated).is_ok());
}

TEST(ProtocolFrame, RoundTripsThroughEncodeAndDecode) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL};
  const std::vector<std::uint64_t> words = encode_frame(frame);
  Frame decoded;
  ASSERT_EQ(decode_frame(words.data(), words.size(), decoded),
            DecodeError::kOk);
  EXPECT_EQ(decoded.type, frame.type);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(ProtocolFrame, EmptyPayloadFramesAreValid) {
  for (const FrameType type : {FrameType::kPing, FrameType::kShutdown}) {
    const std::vector<std::uint64_t> words = encode_frame({type, {}});
    Frame decoded;
    ASSERT_EQ(decode_frame(words.data(), words.size(), decoded),
              DecodeError::kOk);
    EXPECT_EQ(decoded.type, type);
    EXPECT_TRUE(decoded.payload.empty());
  }
}

TEST(ProtocolFrame, DetectsEveryStructuralFailure) {
  const std::vector<std::uint64_t> good =
      encode_frame({FrameType::kRequest, {7, 8, 9}});
  Frame decoded;

  std::vector<std::uint64_t> bad_magic = good;
  bad_magic[0] = 0x1111111111111111ULL;
  EXPECT_EQ(decode_frame(bad_magic.data(), bad_magic.size(), decoded),
            DecodeError::kBadMagic);

  std::vector<std::uint64_t> bad_version = good;
  bad_version[1] = (std::uint64_t{99} << 32) |
                   static_cast<std::uint64_t>(FrameType::kRequest);
  EXPECT_EQ(decode_frame(bad_version.data(), bad_version.size(), decoded),
            DecodeError::kBadVersion);

  std::vector<std::uint64_t> bad_type = good;
  bad_type[1] = (std::uint64_t{kProtocolVersion} << 32) | 200;
  EXPECT_EQ(decode_frame(bad_type.data(), bad_type.size(), decoded),
            DecodeError::kBadType);

  std::vector<std::uint64_t> oversized = good;
  oversized[2] = kMaxPayloadWords + 1;
  EXPECT_EQ(decode_frame(oversized.data(), oversized.size(), decoded),
            DecodeError::kOversized);

  EXPECT_EQ(decode_frame(good.data(), good.size() - 1, decoded),
            DecodeError::kTruncated);
  EXPECT_EQ(decode_frame(good.data(), 2, decoded), DecodeError::kTruncated);

  std::vector<std::uint64_t> corrupt = good;
  corrupt[3] ^= 1;  // flip a payload bit; checksum must catch it
  EXPECT_EQ(decode_frame(corrupt.data(), corrupt.size(), decoded),
            DecodeError::kBadChecksum);
}

TEST(ProtocolFrame, MapsDecodeErrorsToTypedStatuses) {
  EXPECT_EQ(to_response_status(DecodeError::kBadVersion),
            ResponseStatus::kUnsupportedVersion);
  for (const DecodeError err :
       {DecodeError::kBadMagic, DecodeError::kBadType,
        DecodeError::kOversized, DecodeError::kTruncated,
        DecodeError::kBadChecksum}) {
    EXPECT_EQ(to_response_status(err), ResponseStatus::kMalformedFrame);
  }
}

TEST(ProtocolFrame, ValidateHeaderMatchesFullDecode) {
  const std::vector<std::uint64_t> words =
      encode_frame({FrameType::kResponse, {11, 22}});
  FrameType type{};
  std::uint64_t payload_words = 0;
  ASSERT_EQ(validate_header(words.data(), type, payload_words),
            DecodeError::kOk);
  EXPECT_EQ(type, FrameType::kResponse);
  EXPECT_EQ(payload_words, 2u);
}

}  // namespace
}  // namespace roclk::service
