#include "roclk/service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "roclk/common/thread_pool.hpp"

namespace roclk::service {
namespace {

using namespace std::chrono_literals;

Request corner_request(double tclk_over_c = 1.0) {
  Request request;
  request.kind = QueryKind::kCornerMargin;
  request.corner.tclk_over_c = tclk_over_c;
  request.corner.cycles = 2000;
  request.corner.skip = 200;
  return request;
}

/// Spins until `predicate` holds (bounded); keeps deterministic-ordering
/// tests honest on a single-core host.
template <class Pred>
bool wait_for(Pred&& predicate, std::chrono::milliseconds budget = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(SweepService, ServesACornerQuery) {
  SweepService service{{}};
  const Response response = service.handle(corner_request());
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.values.size(), 5u);
  EXPECT_FALSE(response.from_cache);
  EXPECT_FALSE(response.coalesced);
  EXPECT_NE(response.content_hash, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(SweepService, RejectsInvalidRequestsWithTypedStatus) {
  SweepService service{{}};
  Request request = corner_request();
  request.corner.setpoint_c = -1.0;
  const Response response = service.handle(request);
  EXPECT_EQ(response.status, ResponseStatus::kInvalidRequest);
  EXPECT_FALSE(response.message.empty());
  EXPECT_EQ(service.stats().invalid, 1u);
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(SweepService, SecondIdenticalQueryHitsTheCache) {
  SweepService service{{}};
  const Response first = service.handle(corner_request());
  const Response second = service.handle(corner_request());
  ASSERT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.values, first.values);
  EXPECT_EQ(second.content_hash, first.content_hash);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(SweepService, ZeroCacheCapacityForcesResimulation) {
  ServiceConfig config;
  config.cache_capacity = 0;
  SweepService service{config};
  (void)service.handle(corner_request());
  const Response second = service.handle(corner_request());
  EXPECT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(service.stats().simulations, 2u);
}

TEST(SweepService, CacheCapacityBoundsTheWorkingSet) {
  ServiceConfig config;
  config.cache_capacity = 1;
  SweepService service{config};
  (void)service.handle(corner_request(1.0));
  (void)service.handle(corner_request(1.25));  // evicts the 1.0 entry
  const Response again = service.handle(corner_request(1.0));
  EXPECT_FALSE(again.from_cache);
  EXPECT_EQ(service.stats().simulations, 3u);
}

TEST(SweepService, ShutdownDrainsNewRequests) {
  SweepService service{{}};
  EXPECT_FALSE(service.shutting_down());
  service.begin_shutdown();
  EXPECT_TRUE(service.shutting_down());
  const Response response = service.handle(corner_request());
  EXPECT_EQ(response.status, ResponseStatus::kShuttingDown);
}

TEST(SweepService, ShutdownDrainsInFlightCoalescedRequests) {
  SweepService* service_ptr = nullptr;
  ServiceConfig config;
  // The owner's simulation is held until two waiters have coalesced onto
  // it AND shutdown has begun: the drain guarantee is then exercised with
  // requests genuinely in flight, not as a scheduling accident.
  config.before_execute = [&service_ptr] {
    (void)wait_for([&] {
      return service_ptr->stats().coalesced >= 2 &&
             service_ptr->shutting_down();
    });
  };
  SweepService service{config};
  service_ptr = &service;

  Response owner_response;
  std::thread owner{[&] { owner_response = service.handle(corner_request()); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 1; }));

  Response waiter_responses[2];
  std::thread waiters[2];
  for (int i = 0; i < 2; ++i) {
    waiters[i] = std::thread{[&service, &waiter_responses, i] {
      waiter_responses[i] = service.handle(corner_request());
    }};
  }
  ASSERT_TRUE(wait_for([&] { return service.stats().coalesced == 2; }));

  service.begin_shutdown();
  // A newcomer is refused immediately with the typed draining status...
  const Response refused = service.handle(corner_request());
  EXPECT_EQ(refused.status, ResponseStatus::kShuttingDown);

  owner.join();
  for (std::thread& t : waiters) t.join();

  // ...but everyone already in flight is served the real answer.
  ASSERT_EQ(owner_response.status, ResponseStatus::kOk);
  for (const Response& response : waiter_responses) {
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_TRUE(response.coalesced);
    EXPECT_EQ(response.values, owner_response.values);
  }
  EXPECT_EQ(service.stats().completed, 3u);
}

TEST(SweepService, InternalErrorsSurfaceAsTypedStatus) {
  ServiceConfig config;
  // The simulator layer is defensively robust, so inject the failure at
  // the seam the contract actually protects: anything thrown between
  // admission and publish must surface as a typed status instead of
  // tearing down the daemon, and must never be cached.
  config.before_execute = [] {
    throw std::runtime_error("synthetic simulator fault");
  };
  SweepService service{config};
  const Request request = corner_request();
  const Response response = service.handle(request);
  EXPECT_EQ(response.status, ResponseStatus::kInternalError);
  EXPECT_FALSE(response.message.empty());
  // Failures are not cached: the next identical ask re-executes.
  const Response again = service.handle(request);
  EXPECT_EQ(again.status, ResponseStatus::kInternalError);
  EXPECT_FALSE(again.from_cache);
  EXPECT_EQ(service.stats().simulations, 2u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(SweepService, ConcurrentIdenticalQueriesCoalesceOntoOneSimulation) {
  SweepService* service_ptr = nullptr;
  ServiceConfig config;
  // The owner holds its simulation until a second identical request has
  // been absorbed by the in-flight entry — coalescing is then guaranteed,
  // not a scheduling accident.
  config.before_execute = [&service_ptr] {
    (void)wait_for([&] { return service_ptr->stats().coalesced >= 1; });
  };
  SweepService service{config};
  service_ptr = &service;

  Response owner_response;
  std::thread owner{[&] { owner_response = service.handle(corner_request()); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 1; }));

  const Response waiter_response = service.handle(corner_request());
  owner.join();

  ASSERT_EQ(owner_response.status, ResponseStatus::kOk);
  ASSERT_EQ(waiter_response.status, ResponseStatus::kOk);
  EXPECT_TRUE(waiter_response.coalesced);
  EXPECT_EQ(waiter_response.values, owner_response.values);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(SweepService, AdmissionControlShedsExcessLoad) {
  std::atomic<bool> release{false};
  ServiceConfig config;
  config.max_in_flight = 1;
  config.before_execute = [&release] {
    while (!release.load()) std::this_thread::yield();
  };
  SweepService service{config};

  std::thread owner{[&] { (void)service.handle(corner_request(1.0)); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 1; }));

  // A DIFFERENT scenario cannot coalesce; the bound is reached -> shed.
  const Response shed = service.handle(corner_request(1.25));
  EXPECT_EQ(shed.status, ResponseStatus::kOverloaded);
  EXPECT_EQ(service.stats().shed, 1u);

  release.store(true);
  owner.join();

  // Capacity freed: the same scenario now executes.
  const Response after = service.handle(corner_request(1.25));
  EXPECT_EQ(after.status, ResponseStatus::kOk);
}

TEST(SweepService, CacheHitsBypassAdmissionControl) {
  std::atomic<bool> release{false};
  ServiceConfig config;
  config.max_in_flight = 1;
  config.before_execute = [&release] {
    while (!release.load()) std::this_thread::yield();
  };
  SweepService service{config};
  // Warm the cache before saturating admission.
  release.store(true);
  ASSERT_EQ(service.handle(corner_request(1.0)).status, ResponseStatus::kOk);
  release.store(false);

  std::thread owner{[&] { (void)service.handle(corner_request(1.25)); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 2; }));

  const Response hit = service.handle(corner_request(1.0));
  EXPECT_EQ(hit.status, ResponseStatus::kOk);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(service.stats().shed, 0u);

  release.store(true);
  owner.join();
}

TEST(SweepService, CoalescedWaiterTimesOutWithoutCancellingTheOwner) {
  SweepService* service_ptr = nullptr;
  ServiceConfig config;
  config.before_execute = [&service_ptr] {
    (void)wait_for([&] { return service_ptr->stats().deadline_exceeded >= 1; });
  };
  SweepService service{config};
  service_ptr = &service;

  Response owner_response;
  std::thread owner{[&] { owner_response = service.handle(corner_request()); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 1; }));

  Request impatient = corner_request();
  impatient.deadline_ms = 1;
  const Response timed_out = service.handle(impatient);
  owner.join();

  EXPECT_EQ(timed_out.status, ResponseStatus::kDeadlineExceeded);
  // The owner's simulation was NOT cancelled; its result landed in the
  // cache for the next asker.
  ASSERT_EQ(owner_response.status, ResponseStatus::kOk);
  const Response next = service.handle(corner_request());
  EXPECT_TRUE(next.from_cache);
  EXPECT_EQ(next.values, owner_response.values);
}

TEST(SweepService, DefaultDeadlineAppliesToRequestsCarryingNone) {
  SweepService* service_ptr = nullptr;
  ServiceConfig config;
  config.default_deadline_ms = 1;
  config.before_execute = [&service_ptr] {
    (void)wait_for([&] { return service_ptr->stats().deadline_exceeded >= 1; });
  };
  SweepService service{config};
  service_ptr = &service;

  std::thread owner{[&] { (void)service.handle(corner_request()); }};
  ASSERT_TRUE(wait_for([&] { return service.stats().simulations == 1; }));

  Request patientless = corner_request();  // deadline_ms == 0 -> inherits
  const Response timed_out = service.handle(patientless);
  owner.join();
  EXPECT_EQ(timed_out.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(SweepService, ResultsAreBitwiseIdenticalAcrossSimPools) {
  Request grid;
  grid.kind = QueryKind::kGridSweep;
  grid.grid.axis = GridAxis::kTclkOverC;
  grid.grid.lo = 0.8;
  grid.grid.hi = 1.6;
  grid.grid.points = 5;
  grid.grid.base.cycles = 2000;
  grid.grid.base.skip = 200;

  std::vector<Response> responses;
  {
    SweepService sequential{{}};  // sim_pool == nullptr
    responses.push_back(sequential.handle(grid));
  }
  {
    ThreadPool one{1};
    ServiceConfig config;
    config.sim_pool = &one;
    SweepService service{config};
    responses.push_back(service.handle(grid));
  }
  {
    ServiceConfig config;
    config.sim_pool = &ThreadPool::shared();
    SweepService service{config};
    responses.push_back(service.handle(grid));
  }
  ASSERT_EQ(responses[0].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[0].values.size(), 15u);
  // DESIGN.md §13: scheduling must never leak into results.
  EXPECT_EQ(responses[1].values, responses[0].values);
  EXPECT_EQ(responses[2].values, responses[0].values);
}

TEST(SweepService, ServesYieldCurveQueries) {
  Request request;
  request.kind = QueryKind::kYieldCurve;
  request.yield.chips = 32;
  request.yield.margin_points = 3;
  SweepService service{{}};
  const Response response = service.handle(request);
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.values.size(), 3u + 3u * 3u);
  // Yields are probabilities; adaptive beats fixed at every margin.
  for (std::size_t i = 3; i + 3 <= response.values.size(); i += 3) {
    EXPECT_GE(response.values[i + 1], 0.0);
    EXPECT_LE(response.values[i + 1], 1.0);
    EXPECT_GE(response.values[i + 2], response.values[i + 1]);
  }
}

}  // namespace
}  // namespace roclk::service
