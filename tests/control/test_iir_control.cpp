#include "roclk/control/iir_control.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "roclk/signal/filter.hpp"

namespace roclk::control {
namespace {

TEST(IirConfig, PaperParameterisationIsValid) {
  const auto cfg = paper_iir_config();
  EXPECT_TRUE(validate_iir_config(cfg).is_ok());
  EXPECT_DOUBLE_EQ(cfg.k_exp, 8.0);
  EXPECT_DOUBLE_EQ(cfg.k_star, 0.25);
  ASSERT_EQ(cfg.taps.size(), 6u);
  // k = {2, 1, 1/2, 1/4, 1/8, 1/8}; sum = 4 = 1/k* (eq. 10).
  double sum = 0.0;
  for (double k : cfg.taps) sum += k;
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

TEST(IirConfig, RejectsNonPowerOfTwoGains) {
  IirConfig cfg = paper_iir_config();
  cfg.taps[0] = 3.0;
  EXPECT_FALSE(validate_iir_config(cfg).is_ok());

  IirConfig bad_kexp = paper_iir_config();
  bad_kexp.k_exp = 6.0;
  EXPECT_FALSE(validate_iir_config(bad_kexp).is_ok());

  IirConfig bad_kstar = paper_iir_config();
  bad_kstar.k_star = 0.3;
  EXPECT_FALSE(validate_iir_config(bad_kstar).is_ok());
}

TEST(IirConfig, RejectsEq10Violation) {
  IirConfig cfg = paper_iir_config();
  cfg.k_star = 0.125;  // 1/sum(k) is 1/4, not 1/8
  EXPECT_FALSE(validate_iir_config(cfg).is_ok());
  // A consistent alternative set passes: k = {1, 1}, k* = 1/2.
  IirConfig alt;
  alt.taps = {1.0, 1.0};
  alt.k_star = 0.5;
  alt.k_exp = 8.0;
  EXPECT_TRUE(validate_iir_config(alt).is_ok());
}

TEST(IirConfig, RejectsEmptyTapsAndFractionalKexp) {
  IirConfig cfg;
  cfg.taps.clear();
  EXPECT_FALSE(validate_iir_config(cfg).is_ok());
  IirConfig frac = paper_iir_config();
  frac.k_exp = 0.5;
  EXPECT_FALSE(validate_iir_config(frac).is_ok());
}

TEST(IirConfig, RejectsNonIntegratorDenominatorAtConstruction) {
  // D(1) = 1/k* - sum(k_i): violating eq. 10 leaves the denominator
  // without its z = 1 integrator pole (eq. 8), so both controller
  // implementations must refuse to construct.
  IirConfig cfg;
  cfg.taps = {1.0, 1.0};
  cfg.k_star = 1.0;  // D(1) = 1 - 2 = -1 != 0
  cfg.k_exp = 8.0;
  const Status status = validate_iir_config(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_THROW(IirControlHardware{cfg}, std::logic_error);
  EXPECT_THROW(IirControlReference{cfg}, std::logic_error);
}

TEST(IirConfig, RejectsJuryUnstableFilterAtConstruction) {
  // taps = {2, -1}, k* = 1 satisfies eq. 10 (sum = 1) and eq. 8, but
  // D(z) = 1 - 2 z^-1 + z^-2 = (1 - z^-1)^2: after dividing out the
  // designed integrator pole the remaining root sits ON the unit circle,
  // so the filter is Jury-unstable and construction must fail.
  IirConfig cfg;
  cfg.taps = {2.0, -1.0};
  cfg.k_star = 1.0;
  cfg.k_exp = 8.0;
  const Status status = validate_iir_config(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("Jury-unstable"), std::string::npos)
      << status.message();
  EXPECT_THROW(IirControlHardware{cfg}, std::logic_error);
  EXPECT_THROW(IirControlReference{cfg}, std::logic_error);
}

TEST(IirPolynomials, MatchEquation9) {
  const auto [n, d] = iir_polynomials(paper_iir_config());
  // N(z) = z^-1.
  EXPECT_DOUBLE_EQ(n.coefficient(0), 0.0);
  EXPECT_DOUBLE_EQ(n.coefficient(1), 1.0);
  // D(z) = 4 - 2z^-1 - z^-2 - 0.5z^-3 - 0.25z^-4 - 0.125z^-5 - 0.125z^-6.
  EXPECT_DOUBLE_EQ(d.coefficient(0), 4.0);
  EXPECT_DOUBLE_EQ(d.coefficient(1), -2.0);
  EXPECT_DOUBLE_EQ(d.coefficient(2), -1.0);
  EXPECT_DOUBLE_EQ(d.coefficient(3), -0.5);
  EXPECT_DOUBLE_EQ(d.coefficient(6), -0.125);
  // eq. 8: D(1) = 0, N(1) = 1.
  EXPECT_NEAR(d.at_one(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(n.at_one(), 1.0);
}

TEST(IirReference, StepMatchesTransferFunctionImpulse) {
  // Drive the recursion with an impulse; compare against long division of
  // eq. 9 (both around a zero equilibrium).
  IirControlReference ref;
  ref.reset(0.0);
  const auto tf = iir_transfer_function(paper_iir_config());
  const auto expected = tf.impulse_response(64);
  for (std::size_t k = 0; k < expected.size(); ++k) {
    const double x = (k == 0) ? 1.0 : 0.0;
    EXPECT_NEAR(ref.step(x), expected[k], 1e-12) << "sample " << k;
  }
}

TEST(IirReference, EquilibriumHoldsAtInitialOutput) {
  IirControlReference ref;
  ref.reset(64.0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(ref.step(0.0), 64.0);
  }
}

TEST(IirReference, IntegratesConstantError) {
  // A persistent positive delta must grow the output without bound
  // (type-1 loop: the filter contains an integrator).
  IirControlReference ref;
  ref.reset(64.0);
  double y = 0.0;
  for (int i = 0; i < 50; ++i) y = ref.step(1.0);
  const double y50 = y;
  for (int i = 0; i < 50; ++i) y = ref.step(1.0);
  EXPECT_GT(y, y50 + 5.0);
}

TEST(IirHardware, EquilibriumExactAtPaperSetpoint) {
  // W = c * k_exp = 512 must be a fixed point of the integer datapath.
  IirControlHardware hw;
  hw.reset(64.0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(hw.step(0.0), 64.0);
  }
}

TEST(IirHardware, MinimumErrorPropagates) {
  // The paper chose k_exp = 8 so that |delta| = 1 still moves the filter.
  IirControlHardware hw;
  hw.reset(64.0);
  hw.step(1.0);
  double moved = 64.0;
  for (int i = 0; i < 16; ++i) moved = hw.step(1.0);
  EXPECT_GT(moved, 64.0);
}

TEST(IirHardware, TracksReferenceOverShortHorizon) {
  IirControlReference ref;
  IirControlHardware hw;
  ref.reset(64.0);
  hw.reset(64.0);
  double worst = 0.0;
  for (int i = 0; i < 50; ++i) {
    // Integer-valued sinusoidal error like the closed loop produces.
    const double delta =
        std::round(6.0 * std::sin(2.0 * 3.14159265358979 * i / 50.0));
    worst = std::max(worst, std::fabs(ref.step(delta) - hw.step(delta)));
  }
  // k_exp = 8 keeps short-horizon rounding error within ~2 stages.
  EXPECT_LT(worst, 2.5);
}

TEST(IirHardware, OpenLoopRoundingDriftIsSlow) {
  // The filter contains an integrator, so truncation bias accumulates when
  // run OPEN loop; the closed loop absorbs it (integration tests).  Here we
  // bound the drift rate itself: well under one stage per 10 cycles.
  IirControlReference ref;
  IirControlHardware hw;
  ref.reset(64.0);
  hw.reset(64.0);
  const int n = 1000;
  double final_gap = 0.0;
  for (int i = 0; i < n; ++i) {
    const double delta =
        std::round(6.0 * std::sin(2.0 * 3.14159265358979 * i / 50.0));
    final_gap = std::fabs(ref.step(delta) - hw.step(delta));
  }
  EXPECT_LT(final_gap / n, 0.1);
}

TEST(IirHardware, LargerKexpShrinksRoundingError) {
  auto run = [](double k_exp) {
    IirConfig cfg = paper_iir_config();
    cfg.k_exp = k_exp;
    IirControlReference ref{cfg};
    IirControlHardware hw{cfg};
    ref.reset(64.0);
    hw.reset(64.0);
    double acc = 0.0;
    for (int i = 0; i < 300; ++i) {
      const double delta =
          std::round(5.0 * std::sin(2.0 * 3.14159265358979 * i / 40.0));
      acc += std::fabs(ref.step(delta) - hw.step(delta));
    }
    return acc / 300.0;
  };
  const double err1 = run(1.0);
  const double err16 = run(16.0);
  EXPECT_LT(err16, err1);
}

TEST(IirHardware, CloneIsIndependent) {
  IirControlHardware hw;
  hw.reset(64.0);
  hw.step(3.0);
  auto copy = hw.clone();
  // Same state right after cloning...
  EXPECT_DOUBLE_EQ(copy->step(0.0), hw.step(0.0));
  // ...then divergent inputs give divergent outputs.
  copy->step(10.0);
  hw.step(-10.0);
  EXPECT_NE(copy->step(0.0), hw.step(0.0));
}

TEST(IirHardware, StateAccessorExposesScaledRegisters) {
  IirControlHardware hw;
  hw.reset(64.0);
  ASSERT_EQ(hw.state().size(), 6u);
  for (auto w : hw.state()) EXPECT_EQ(w, 512);  // 64 * k_exp
}

// Property: for several valid coefficient sets, the recursion's DC
// behaviour (integrator) and equilibrium hold.
struct CoeffCase {
  std::vector<double> taps;
  double k_star;
};

class IirCoefficientSets : public ::testing::TestWithParam<CoeffCase> {};

TEST_P(IirCoefficientSets, ValidAndEquilibriumStable) {
  IirConfig cfg;
  cfg.taps = GetParam().taps;
  cfg.k_star = GetParam().k_star;
  cfg.k_exp = 8.0;
  ASSERT_TRUE(validate_iir_config(cfg).is_ok());
  IirControlReference ref{cfg};
  ref.reset(100.0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_NEAR(ref.step(0.0), 100.0, 1e-9);
  }
  const auto [n, d] = iir_polynomials(cfg);
  EXPECT_NEAR(d.at_one(), 0.0, 1e-12);
  EXPECT_NE(n.at_one(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sets, IirCoefficientSets,
    ::testing::Values(CoeffCase{{1.0}, 1.0}, CoeffCase{{1.0, 1.0}, 0.5},
                      CoeffCase{{2.0, 1.0, 1.0}, 0.25},
                      CoeffCase{{2.0, 1.0, 0.5, 0.25, 0.125, 0.125}, 0.25},
                      CoeffCase{{4.0, 2.0, 1.0, 0.5, 0.25, 0.125, 0.125},
                                0.125}));

// ------------------------------------------------------------ anti-windup

constexpr double kAwMin = 8.0;
constexpr double kAwMax = 1024.0;

IirConfig windup_config() {
  IirConfig cfg = paper_iir_config();
  cfg.anti_windup = IirOutputClamp{kAwMin, kAwMax};
  return cfg;
}

TEST(IirAntiWindup, ValidateRejectsBadClampRanges) {
  IirConfig cfg = paper_iir_config();
  cfg.anti_windup = IirOutputClamp{10.0, 5.0};  // empty range
  EXPECT_FALSE(validate_iir_config(cfg).is_ok());
  cfg.anti_windup =
      IirOutputClamp{0.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(validate_iir_config(cfg).is_ok());
  EXPECT_TRUE(validate_iir_config(windup_config()).is_ok());
}

TEST(IirAntiWindup, ReturnValueIsUnchangedOnlyStateIsBounded) {
  IirControlHardware with{windup_config()};
  IirControlHardware without{paper_iir_config()};
  with.reset(64.0);
  without.reset(64.0);
  // First saturating step: the *outputs* must agree (the loop applies its
  // own clamp); only the stored state may differ.
  const double big = 500.0;
  EXPECT_DOUBLE_EQ(with.step(big), without.step(big));
}

TEST(IirAntiWindup, StateStaysBoundedWhileOutputIsPinnedAtTheClamp) {
  IirControlHardware with{windup_config()};
  IirControlHardware without{paper_iir_config()};
  with.reset(64.0);
  without.reset(64.0);
  // Sustained huge delta, as a stuck-at-max sensor would produce: the
  // unprotected integrator winds far beyond the clamp; the protected
  // newest state is back-calculated to it every cycle.
  const double kexp = windup_config().k_exp;
  for (int i = 0; i < 200; ++i) {
    (void)with.step(900.0);
    (void)without.step(900.0);
    EXPECT_LE(static_cast<double>(with.state()[0]), kAwMax * kexp)
        << "cycle " << i;
  }
  EXPECT_GT(static_cast<double>(without.state()[0]), kAwMax * kexp);
}

TEST(IirAntiWindup, RecoveryDoesNotOvershootBeyondTheNoWindupTrajectory) {
  IirControlHardware with{windup_config()};
  IirControlHardware without{paper_iir_config()};
  with.reset(64.0);
  without.reset(64.0);
  // Wind both up against the top clamp, then release with a small delta.
  for (int i = 0; i < 100; ++i) {
    (void)with.step(900.0);
    (void)without.step(900.0);
  }
  // On release the wound-up controller keeps commanding past the clamp for
  // many cycles (it must first unwind its state); the anti-windup one
  // re-enters the linear region at once and never exceeds the wound-up
  // command on the way down.
  std::size_t pinned_with = 0;
  std::size_t pinned_without = 0;
  for (int i = 0; i < 200; ++i) {
    const double yw = with.step(0.0);
    const double yo = without.step(0.0);
    if (yw > kAwMax) ++pinned_with;
    if (yo > kAwMax) ++pinned_without;
    EXPECT_LE(yw, yo + 1e-9) << "cycle " << i;
  }
  EXPECT_LT(pinned_with, pinned_without);
}

TEST(IirAntiWindup, ReferenceImplementationBoundsItsOutputStateToo) {
  IirConfig cfg = windup_config();
  IirControlReference with{cfg};
  IirControlReference without{paper_iir_config()};
  with.reset(64.0);
  without.reset(64.0);
  for (int i = 0; i < 100; ++i) {
    (void)with.step(900.0);
    (void)without.step(900.0);
  }
  double released_with = 0.0;
  double released_without = 0.0;
  for (int i = 0; i < 50; ++i) {
    released_with = with.step(0.0);
    released_without = without.step(0.0);
  }
  // The protected reference unwinds at least as fast.
  EXPECT_LE(released_with, released_without + 1e-9);
}

TEST(IirAntiWindup, DisengagedConfigMatchesLegacyBitForBit) {
  // anti_windup is optional and disengaged by default: the published
  // datapath must be untouched, state included.
  IirControlHardware legacy{paper_iir_config()};
  IirConfig cfg = paper_iir_config();
  cfg.anti_windup.reset();
  IirControlHardware current{cfg};
  legacy.reset(64.0);
  current.reset(64.0);
  for (int i = 0; i < 300; ++i) {
    const double delta = 700.0 * std::sin(0.05 * i);
    ASSERT_EQ(legacy.step(delta), current.step(delta)) << "cycle " << i;
    ASSERT_EQ(legacy.state(), current.state()) << "cycle " << i;
  }
}

}  // namespace
}  // namespace roclk::control
