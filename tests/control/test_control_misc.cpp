#include <gtest/gtest.h>

#include "roclk/control/control_block.hpp"

namespace roclk::control {
namespace {

TEST(Proportional, OutputsBiasPlusScaledPreviousError) {
  ProportionalControl p{2.0};
  p.reset(64.0);
  EXPECT_DOUBLE_EQ(p.step(3.0), 64.0);  // reacts to prior delta (0)
  EXPECT_DOUBLE_EQ(p.step(0.0), 70.0);  // 64 + 2*3
  EXPECT_DOUBLE_EQ(p.step(0.0), 64.0);
}

TEST(Proportional, SteadyStateErrorPersists) {
  // Without an integrator the output under constant error is constant,
  // never growing to cancel it — the empirical face of violating eq. 8.
  ProportionalControl p{1.0};
  p.reset(64.0);
  p.step(4.0);
  double y = 0.0;
  for (int i = 0; i < 50; ++i) y = p.step(4.0);
  EXPECT_DOUBLE_EQ(y, 68.0);  // parked at bias + kp*delta, not integrating
}

TEST(Proportional, RejectsNonPositiveGain) {
  EXPECT_THROW(ProportionalControl{0.0}, std::logic_error);
  EXPECT_THROW(ProportionalControl{-1.0}, std::logic_error);
}

TEST(Pi, IntegratesError) {
  PiControl pi{0.0, 1.0};
  pi.reset(64.0);
  pi.step(2.0);
  // Integral grows by 2 per cycle (after the one-cycle latency).
  EXPECT_DOUBLE_EQ(pi.step(2.0), 66.0);
  EXPECT_DOUBLE_EQ(pi.step(2.0), 68.0);
}

TEST(Pi, ProportionalPathAddsImmediateKick) {
  PiControl pi{3.0, 0.5};
  pi.reset(10.0);
  pi.step(2.0);
  // y = bias + kp*prev_delta + ki*integral = 10 + 6 + 1 = 17.
  EXPECT_DOUBLE_EQ(pi.step(0.0), 17.0);
}

TEST(Pi, ResetClearsIntegral) {
  PiControl pi{1.0, 1.0};
  pi.reset(0.0);
  pi.step(5.0);
  pi.step(5.0);
  pi.reset(0.0);
  EXPECT_DOUBLE_EQ(pi.step(0.0), 0.0);
}

TEST(Pi, RejectsBadGains) {
  EXPECT_THROW((PiControl{-1.0, 1.0}), std::logic_error);
  EXPECT_THROW((PiControl{1.0, 0.0}), std::logic_error);
}

TEST(ControlBlocks, CloneRoundTrip) {
  ProportionalControl p{2.0};
  p.reset(5.0);
  auto pc = p.clone();
  EXPECT_EQ(pc->name(), "P control");

  PiControl pi{1.0, 0.5};
  pi.reset(5.0);
  auto pic = pi.clone();
  EXPECT_EQ(pic->name(), "PI control");
  EXPECT_DOUBLE_EQ(pic->step(0.0), pi.step(0.0));
}

}  // namespace
}  // namespace roclk::control
