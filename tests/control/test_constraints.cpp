#include "roclk/control/constraints.hpp"

#include <gtest/gtest.h>

#include "roclk/control/iir_control.hpp"
#include "roclk/signal/jury.hpp"

namespace roclk::control {
namespace {

using signal::Polynomial;

TEST(Constraints, PaperIirSatisfiesEquation8) {
  const auto [n, d] = iir_polynomials(paper_iir_config());
  const auto report = check_paper_constraints(n, d);
  EXPECT_TRUE(report.numerator_ok);
  EXPECT_TRUE(report.denominator_ok);
  EXPECT_TRUE(report.satisfied());
  EXPECT_DOUBLE_EQ(report.n_at_one, 1.0);
  EXPECT_NEAR(report.d_at_one, 0.0, 1e-12);
}

TEST(Constraints, ProportionalControllerViolatesEquation8) {
  // H = kp: N = kp, D = 1 -> D(1) != 0.
  const auto report =
      check_paper_constraints(Polynomial{{2.0}}, Polynomial{{1.0}});
  EXPECT_TRUE(report.numerator_ok);
  EXPECT_FALSE(report.denominator_ok);
  EXPECT_FALSE(report.satisfied());
}

TEST(Constraints, ZeroNumeratorAtDcViolates) {
  // N = 1 - z^-1 has N(1) = 0: the loop cannot hold a DC correction.
  const auto report = check_paper_constraints(Polynomial{{1.0, -1.0}},
                                              Polynomial{{1.0, -1.0}});
  EXPECT_FALSE(report.numerator_ok);
  EXPECT_TRUE(report.denominator_ok);
  EXPECT_FALSE(report.satisfied());
}

TEST(ClosedLoopCharacteristic, BuildsDPlusNDelayed) {
  // D = 1 - z^-1, N = z^-1, M = 0: D + N z^-2 = 1 - z^-1 + z^-3.
  const auto coeffs = closed_loop_characteristic(
      Polynomial::delay(1), Polynomial{{1.0, -1.0}}, 0);
  // Positive powers, highest first: z^3 - z^2 + 1.
  ASSERT_EQ(coeffs.size(), 4u);
  EXPECT_DOUBLE_EQ(coeffs[0], 1.0);
  EXPECT_DOUBLE_EQ(coeffs[1], -1.0);
  EXPECT_DOUBLE_EQ(coeffs[2], 0.0);
  EXPECT_DOUBLE_EQ(coeffs[3], 1.0);
}

TEST(ClosedLoopStability, PaperIirStableAtSmallM) {
  const auto [n, d] = iir_polynomials(paper_iir_config());
  for (std::size_t m : {0u, 1u, 2u}) {
    const auto s = closed_loop_stability(n, d, m);
    ASSERT_TRUE(s.is_ok()) << "M = " << m;
    EXPECT_TRUE(s.value().stable) << "M = " << m;
    EXPECT_LT(s.value().spectral_radius, 1.0);
  }
}

TEST(ClosedLoopStability, LongCdnDelayEventuallyDestabilises) {
  // The delay margin is finite: growing M must push the spectral radius
  // past 1 (the mechanism behind the Fig. 8 upper-plot degradation).  The
  // growth is not monotone cycle-to-cycle, so compare regimes, not steps.
  const auto [n, d] = iir_polynomials(paper_iir_config());
  const auto small = closed_loop_stability(n, d, 1);
  const auto large = closed_loop_stability(n, d, 64);
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_LT(small.value().spectral_radius, 1.0);
  EXPECT_GT(large.value().spectral_radius, 1.0);
  EXPECT_FALSE(large.value().stable);
}

TEST(ClosedLoopStability, MaxStableCdnDelayExistsAndIsTight) {
  const auto [n, d] = iir_polynomials(paper_iir_config());
  const auto max_m = max_stable_cdn_delay(n, d, 128);
  ASSERT_TRUE(max_m.has_value());
  EXPECT_GE(*max_m, 1u);
  // One past the boundary must be unstable.
  const auto beyond = closed_loop_stability(n, d, *max_m + 1);
  ASSERT_TRUE(beyond.is_ok());
  EXPECT_FALSE(beyond.value().stable);
  // The boundary itself is stable.
  const auto at = closed_loop_stability(n, d, *max_m);
  ASSERT_TRUE(at.is_ok());
  EXPECT_TRUE(at.value().stable);
}

TEST(ClosedLoopStability, PureIntegratorLoopHasKnownBoundary) {
  // H = z^-1/(1 - z^-1) (TEAtime's linearised shell): characteristic
  // 1 - z^-1 + z^{-M-3}.  The Jury verdict and the explicit root
  // locations must agree on it.
  const auto n = Polynomial::delay(1);
  const Polynomial d{{1.0, -1.0}};
  const auto s0 = closed_loop_stability(n, d, 0);
  ASSERT_TRUE(s0.is_ok());
  const auto jury = signal::jury_test(closed_loop_characteristic(n, d, 0));
  ASSERT_TRUE(jury.is_ok());
  EXPECT_EQ(s0.value().stable, jury.value().stable);
}

TEST(ClosedLoopStability, JuryAgreesWithRootsAcrossM) {
  const auto [n, d] = iir_polynomials(paper_iir_config());
  for (std::size_t m = 0; m <= 12; ++m) {
    const auto roots_verdict = closed_loop_stability(n, d, m);
    ASSERT_TRUE(roots_verdict.is_ok());
    const auto jury = signal::jury_test(closed_loop_characteristic(n, d, m));
    ASSERT_TRUE(jury.is_ok());
    EXPECT_EQ(roots_verdict.value().stable, jury.value().stable)
        << "M = " << m;
  }
}

}  // namespace
}  // namespace roclk::control
