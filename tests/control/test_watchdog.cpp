// Watchdog state machine and the HardenedControl wrapper that maps its
// states onto loop commands.
#include "roclk/control/watchdog.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "roclk/control/hardened_control.hpp"
#include "roclk/control/iir_control.hpp"

namespace roclk::control {
namespace {

WatchdogConfig fast_config() {
  WatchdogConfig config;
  config.delta_bound = 8.0;
  config.trip_cycles = 3;
  config.hold_cycles = 4;
  config.relock_bound = 2.0;
  config.relock_cycles = 2;
  config.stall_cycles = 3;
  config.reacquire_timeout = 32;
  return config;
}

TEST(Watchdog, ValidateRejectsBadConfigs) {
  WatchdogConfig config;
  config.delta_bound = 0.0;
  EXPECT_FALSE(Watchdog::validate(config).is_ok());
  config = {};
  config.relock_bound = config.delta_bound + 1.0;  // lock above the trip
  EXPECT_FALSE(Watchdog::validate(config).is_ok());
  config = {};
  config.trip_cycles = 0;
  EXPECT_FALSE(Watchdog::validate(config).is_ok());
  config = {};
  config.stall_cycles = 0;
  EXPECT_FALSE(Watchdog::validate(config).is_ok());
  config = {};
  config.reacquire_timeout = config.relock_cycles;  // could never relock
  EXPECT_FALSE(Watchdog::validate(config).is_ok());
  EXPECT_TRUE(Watchdog::validate(WatchdogConfig{}).is_ok());
}

TEST(Watchdog, StaysLockedThroughBoundedTransients) {
  Watchdog dog{fast_config()};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dog.observe(i % 2 == 0 ? 7.9 : -7.9), WatchdogState::kLocked);
  }
  // Out-of-bound streaks shorter than trip_cycles do not trip.
  EXPECT_EQ(dog.observe(20.0), WatchdogState::kLocked);
  EXPECT_EQ(dog.observe(20.0), WatchdogState::kLocked);
  EXPECT_EQ(dog.observe(0.0), WatchdogState::kLocked);  // streak broken
  EXPECT_EQ(dog.trips(), 0u);
}

TEST(Watchdog, TripsAfterSustainedLossOfLock) {
  Watchdog dog{fast_config()};
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kLocked);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kLocked);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kDegraded);
  EXPECT_EQ(dog.trips(), 1u);
}

TEST(Watchdog, FullDegradeHoldReacquireRelockRoundTrip) {
  Watchdog dog{fast_config()};
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  ASSERT_EQ(dog.state(), WatchdogState::kDegraded);

  // Hold for hold_cycles (the trip cycle counts as the first held cycle),
  // whatever the deltas do meanwhile.
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kDegraded);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kDegraded);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kReacquiring);

  // Two in-bound cycles relock.
  EXPECT_EQ(dog.observe(1.0), WatchdogState::kReacquiring);
  EXPECT_EQ(dog.observe(1.0), WatchdogState::kLocked);
  EXPECT_GT(dog.last_relock_latency(), 0u);
}

TEST(Watchdog, ReacquiringBouncesBackToDegradedWhileFaultPersists) {
  Watchdog dog{fast_config()};
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  ASSERT_EQ(dog.state(), WatchdogState::kReacquiring);
  // The fault is still active: |delta| pinned at 50 makes no progress, so
  // after stall_cycles non-improving cycles (the first observation scores
  // against the reset baseline and cannot stall) the watchdog re-trips.
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kReacquiring);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kReacquiring);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kReacquiring);
  EXPECT_EQ(dog.observe(50.0), WatchdogState::kDegraded);
  EXPECT_EQ(dog.trips(), 2u);
}

TEST(Watchdog, ImprovingDescentFromTheSafeParkNeverRetrips) {
  Watchdog dog{fast_config()};
  for (int i = 0; i < 3; ++i) (void)dog.observe(500.0);
  for (int i = 0; i < 3; ++i) (void)dog.observe(500.0);
  ASSERT_EQ(dog.state(), WatchdogState::kReacquiring);
  // The descent from the safe park is far out of bound the whole way down,
  // but |delta| shrinks every cycle: that is healthy re-acquisition, not a
  // fault, and must never bounce back to degraded.
  for (double magnitude = 500.0; magnitude > 2.0; magnitude *= 0.8) {
    ASSERT_EQ(dog.observe(magnitude), WatchdogState::kReacquiring)
        << "re-tripped at |delta| = " << magnitude;
  }
  (void)dog.observe(1.0);
  EXPECT_EQ(dog.observe(1.0), WatchdogState::kLocked);
  EXPECT_EQ(dog.trips(), 1u);
}

TEST(Watchdog, ReacquireTimeoutCatchesOscillatingFaults) {
  WatchdogConfig config = fast_config();
  config.reacquire_timeout = 8;
  Watchdog dog{config};
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  ASSERT_EQ(dog.state(), WatchdogState::kReacquiring);
  // Alternating magnitudes neither stall (every other cycle improves) nor
  // relock; the hard timeout still bounces the loop back to safety.
  std::size_t cycles = 0;
  while (dog.state() == WatchdogState::kReacquiring) {
    (void)dog.observe(cycles % 2 == 0 ? 50.0 : 30.0);
    ASSERT_LT(++cycles, 20u) << "timeout never fired";
  }
  EXPECT_EQ(dog.state(), WatchdogState::kDegraded);
  EXPECT_LE(cycles, config.reacquire_timeout);
  EXPECT_EQ(dog.trips(), 2u);
}

TEST(Watchdog, NanDeltaCountsTowardTheTrip) {
  Watchdog dog{fast_config()};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  (void)dog.observe(nan);
  (void)dog.observe(nan);
  EXPECT_EQ(dog.observe(nan), WatchdogState::kDegraded);
}

TEST(Watchdog, ResetRestoresLockButKeepsTripStatistics) {
  Watchdog dog{fast_config()};
  for (int i = 0; i < 3; ++i) (void)dog.observe(50.0);
  dog.reset();
  EXPECT_EQ(dog.state(), WatchdogState::kLocked);
  EXPECT_EQ(dog.trips(), 1u);
  EXPECT_EQ(dog.observe(0.0), WatchdogState::kLocked);
}

// ------------------------------------------------------- HardenedControl

constexpr double kSetpoint = 64.0;
constexpr double kSafe = 1024.0;

HardenedConfig hardened_config() {
  HardenedConfig config;
  config.setpoint_c = kSetpoint;
  config.safe_lro = kSafe;
  config.guard.tau_min = 32.0;
  config.guard.tau_max = 128.0;
  config.guard.max_step = 16.0;
  config.guard.hold_limit = 4;
  config.watchdog = fast_config();
  return config;
}

std::unique_ptr<HardenedControl> make_unit() {
  return make_hardened_iir(paper_iir_config(), hardened_config(), 8.0, kSafe);
}

TEST(HardenedControl, ValidateRejectsBadConfigs) {
  HardenedConfig config = hardened_config();
  config.safe_lro = 0.0;
  EXPECT_FALSE(validate_hardened_config(config).is_ok());
  config = hardened_config();
  config.guard.tau_min = 1000.0;  // empty guard range
  EXPECT_FALSE(validate_hardened_config(config).is_ok());
  config = hardened_config();
  config.watchdog.trip_cycles = 0;
  EXPECT_FALSE(validate_hardened_config(config).is_ok());
  EXPECT_TRUE(validate_hardened_config(hardened_config()).is_ok());
}

TEST(HardenedControl, TracksLikeTheInnerControllerWhileHealthy) {
  auto hardened = make_unit();
  IirControlHardware plain{paper_iir_config()};
  hardened->reset(kSetpoint);
  plain.reset(kSetpoint);
  // Small plausible deltas: the guard passes them through verbatim and
  // the hardened output equals the bare IIR's.
  for (int i = 0; i < 50; ++i) {
    const double delta = (i % 5) - 2.0;
    EXPECT_DOUBLE_EQ(hardened->step(delta), plain.step(delta)) << "step " << i;
  }
  EXPECT_EQ(hardened->watchdog().state(), WatchdogState::kLocked);
}

TEST(HardenedControl, GuardMasksIsolatedGlitchesFromTheInnerLoop) {
  auto hardened = make_unit();
  auto plain = std::make_unique<IirControlHardware>(paper_iir_config());
  hardened->reset(kSetpoint);
  plain->reset(kSetpoint);
  double h = 0.0;
  double p = 0.0;
  for (int i = 0; i < 10; ++i) {
    h = hardened->step(0.0);
    p = plain->step(0.0);
  }
  // One wild glitch: delta = -136 means tau = 200, far outside the guard's
  // plausible range.  The hardened unit holds last-good (delta ~ 0); the
  // bare controller swallows the outlier whole.  The IIR has no direct
  // feedthrough (the input lands in a z^-1 register), so the trajectories
  // diverge on the NEXT step.
  h = hardened->step(kSetpoint - 200.0);
  p = plain->step(kSetpoint - 200.0);
  EXPECT_NEAR(h, kSetpoint, 1.0);  // command stays at the operating point
  h = hardened->step(0.0);
  p = plain->step(0.0);
  EXPECT_NE(h, p);
  EXPECT_NEAR(h, kSetpoint, 1.0);
  EXPECT_EQ(hardened->guard().stats().range_rejects, 1u);
  EXPECT_EQ(hardened->watchdog().state(), WatchdogState::kLocked);
}

TEST(HardenedControl, DegradesToSafeCommandUnderPersistentFault) {
  auto hardened = make_unit();
  hardened->reset(kSetpoint);
  const HardenedConfig& config = hardened->config();
  // A persistent stuck-at-zero sensor: tau = 0, delta = 64.  The guard
  // holds for hold_limit cycles, then resyncs; the watchdog trips after
  // trip_cycles of out-of-bound deltas.
  double command = 0.0;
  std::size_t degrade_at = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    command = hardened->step(kSetpoint);
    if (hardened->watchdog().state() == WatchdogState::kDegraded) {
      degrade_at = i;
      break;
    }
  }
  ASSERT_EQ(hardened->watchdog().state(), WatchdogState::kDegraded);
  EXPECT_DOUBLE_EQ(command, kSafe);
  EXPECT_LE(degrade_at,
            config.guard.hold_limit + config.watchdog.trip_cycles + 1);
  // Degraded holds the safe command regardless of the input.
  EXPECT_DOUBLE_EQ(hardened->step(kSetpoint), kSafe);
}

TEST(HardenedControl, ReacquiresAndRelocksAfterTheFaultClears) {
  auto hardened = make_unit();
  hardened->reset(kSetpoint);
  // Trip on a persistent fault, then clear it.
  while (hardened->watchdog().state() != WatchdogState::kDegraded) {
    (void)hardened->step(kSetpoint);
  }
  // Healthy deltas from here on: the hold expires, re-acquisition runs
  // closed loop, and the unit relocks.
  std::size_t cycles = 0;
  while (hardened->watchdog().state() != WatchdogState::kLocked) {
    (void)hardened->step(0.5);
    ASSERT_LT(++cycles, 100u) << "never relocked";
  }
  const WatchdogConfig& wd = hardened->config().watchdog;
  EXPECT_LE(cycles, wd.hold_cycles + wd.relock_cycles + 1);
  // Locked again: healthy tracking resumes through the guard.
  (void)hardened->step(0.0);
  EXPECT_EQ(hardened->watchdog().state(), WatchdogState::kLocked);
}

TEST(HardenedControl, CloneReplaysIdentically) {
  auto hardened = make_unit();
  hardened->reset(kSetpoint);
  for (int i = 0; i < 7; ++i) (void)hardened->step(1.0);
  auto copy = hardened->clone();
  for (int i = 0; i < 30; ++i) {
    const double delta = i < 10 ? 50.0 : 0.0;  // trips, then recovers
    EXPECT_DOUBLE_EQ(hardened->step(delta), copy->step(delta)) << "step " << i;
  }
}

}  // namespace
}  // namespace roclk::control
