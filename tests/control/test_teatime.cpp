#include "roclk/control/teatime.hpp"

#include <gtest/gtest.h>

namespace roclk::control {
namespace {

TEST(TeaTime, HoldsAtEquilibriumWithZeroError) {
  TeaTimeControl tea;
  tea.reset(64.0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(tea.step(0.0), 64.0);
  }
}

TEST(TeaTime, MovesOneStepPerCycleTowardErrorSign) {
  TeaTimeControl tea;
  tea.reset(64.0);
  // delta > 0 (tau too small, period too short) -> lengthen the RO.
  EXPECT_DOUBLE_EQ(tea.step(5.0), 65.0);
  EXPECT_DOUBLE_EQ(tea.step(5.0), 66.0);
  // delta < 0 -> shorten.
  EXPECT_DOUBLE_EQ(tea.step(-5.0), 65.0);
  EXPECT_DOUBLE_EQ(tea.step(-5.0), 64.0);
}

TEST(TeaTime, DelayedSignVariantReactsOneCycleLater) {
  TeaTimeConfig cfg;
  cfg.delayed_sign = true;
  TeaTimeControl tea{cfg};
  tea.reset(64.0);
  EXPECT_DOUBLE_EQ(tea.step(5.0), 64.0);  // reacts to prior delta (0)
  EXPECT_DOUBLE_EQ(tea.step(5.0), 65.0);
  EXPECT_DOUBLE_EQ(tea.step(-5.0), 66.0);  // still consuming +5
  EXPECT_DOUBLE_EQ(tea.step(-5.0), 65.0);
}

TEST(TeaTime, SlewRateIsOneStepRegardlessOfErrorMagnitude) {
  TeaTimeControl tea;
  tea.reset(0.0);
  double y = 0.0;
  for (int i = 0; i < 10; ++i) y = tea.step(1000.0);
  EXPECT_DOUBLE_EQ(y, 10.0);  // bang-bang: 1 stage/cycle, not proportional
}

TEST(TeaTime, ConfigurableStepSize) {
  TeaTimeConfig cfg;
  cfg.step_stages = 2.0;
  TeaTimeControl tea{cfg};
  tea.reset(64.0);
  EXPECT_DOUBLE_EQ(tea.step(3.0), 66.0);
  EXPECT_DOUBLE_EQ(tea.step(3.0), 68.0);
  EXPECT_THROW(TeaTimeControl{TeaTimeConfig{0.0}}, std::logic_error);
}

TEST(TeaTime, DitherPolicyNeverRests) {
  TeaTimeConfig cfg;
  cfg.zero_policy = SignZeroPolicy::kDither;
  TeaTimeControl tea{cfg};
  tea.reset(64.0);
  // sign(0) = +1 under dithering: the output creeps upward on zero error,
  // the original TEAtime behaviour (it relies on the loop to push back).
  EXPECT_DOUBLE_EQ(tea.step(0.0), 65.0);
  EXPECT_DOUBLE_EQ(tea.step(0.0), 66.0);
}

TEST(TeaTime, LimitCycleUnderAlternatingError) {
  // In closed loop TEAtime dithers +/- one step; emulate with alternating
  // error signs and verify bounded oscillation.
  TeaTimeControl tea;
  tea.reset(64.0);
  double lo = 64.0;
  double hi = 64.0;
  double sign = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double y = tea.step(sign);
    sign = -sign;
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  EXPECT_GE(lo, 62.0);
  EXPECT_LE(hi, 66.0);
}

TEST(TeaTime, ResetRestoresEquilibrium) {
  TeaTimeControl tea;
  tea.reset(64.0);
  tea.step(5.0);
  tea.step(5.0);
  tea.reset(32.0);
  EXPECT_DOUBLE_EQ(tea.step(0.0), 32.0);  // holds: sign(0) = 0 by default
}

TEST(TeaTime, CloneCopiesAccumulator) {
  TeaTimeControl tea;
  tea.reset(64.0);
  tea.step(1.0);
  tea.step(1.0);
  auto copy = tea.clone();
  EXPECT_DOUBLE_EQ(copy->step(0.0), tea.step(0.0));
}

TEST(TeaTime, NameIsPaperLabel) {
  TeaTimeControl tea;
  EXPECT_EQ(tea.name(), "TEAtime RO");
}

}  // namespace
}  // namespace roclk::control
