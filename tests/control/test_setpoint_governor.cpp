#include "roclk/control/setpoint_governor.hpp"

#include <gtest/gtest.h>

namespace roclk::control {
namespace {

GovernorConfig small_window() {
  GovernorConfig cfg;
  cfg.initial_setpoint = 70.0;
  cfg.logic_depth = 64.0;
  cfg.window = 4;
  cfg.step_up = 2.0;
  cfg.step_down = 1.0;
  cfg.headroom = 2.0;
  return cfg;
}

TEST(Governor, ValidateCatchesBadConfigs) {
  GovernorConfig bad = small_window();
  bad.logic_depth = 0.0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  bad = small_window();
  bad.window = 0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  bad = small_window();
  bad.min_setpoint = 100.0;
  bad.max_setpoint = 50.0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  bad = small_window();
  bad.initial_setpoint = 1000.0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  bad = small_window();
  bad.step_up = 0.0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  bad = small_window();
  bad.headroom = -1.0;
  EXPECT_FALSE(SetpointGovernor::validate(bad).is_ok());
  EXPECT_THROW(SetpointGovernor{bad}, std::logic_error);
}

TEST(Governor, HoldsWithinWindow) {
  SetpointGovernor gov{small_window()};
  // Three observations (window is 4): no decision yet.
  EXPECT_DOUBLE_EQ(gov.observe(70.0), 70.0);
  EXPECT_DOUBLE_EQ(gov.observe(70.0), 70.0);
  EXPECT_DOUBLE_EQ(gov.observe(70.0), 70.0);
  EXPECT_EQ(gov.epochs(), 0u);
}

TEST(Governor, BacksOffOnError) {
  SetpointGovernor gov{small_window()};
  gov.observe(70.0);
  gov.observe(63.0);  // below L = 64: a real error
  gov.observe(70.0);
  const double next = gov.observe(70.0);  // window closes
  EXPECT_DOUBLE_EQ(next, 72.0);           // +step_up
  EXPECT_EQ(gov.epochs(), 1u);
  EXPECT_EQ(gov.total_errors(), 1u);
}

TEST(Governor, CreepsDownWithHeadroom) {
  SetpointGovernor gov{small_window()};
  // Worst tau 70: slack above L is 6 >= headroom(2) + step_down(1).
  for (int i = 0; i < 4; ++i) gov.observe(70.0);
  EXPECT_DOUBLE_EQ(gov.setpoint(), 69.0);
  for (int i = 0; i < 4; ++i) gov.observe(69.0);
  EXPECT_DOUBLE_EQ(gov.setpoint(), 68.0);
}

TEST(Governor, HoldsWhenSlackInsufficient) {
  SetpointGovernor gov{small_window()};
  // Worst tau 66: slack 2 < headroom + step_down = 3 -> hold.
  for (int i = 0; i < 4; ++i) gov.observe(66.0);
  EXPECT_DOUBLE_EQ(gov.setpoint(), 70.0);
}

TEST(Governor, WorstReadingInWindowDecides) {
  SetpointGovernor gov{small_window()};
  gov.observe(75.0);
  gov.observe(66.0);  // the worst one
  gov.observe(75.0);
  gov.observe(75.0);
  EXPECT_DOUBLE_EQ(gov.setpoint(), 70.0);  // held because of the dip
}

TEST(Governor, ClampsToRange) {
  GovernorConfig cfg = small_window();
  cfg.max_setpoint = 71.0;
  SetpointGovernor gov{cfg};
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 4; ++i) gov.observe(10.0);  // constant errors
  }
  EXPECT_DOUBLE_EQ(gov.setpoint(), 71.0);

  GovernorConfig floor_cfg = small_window();
  floor_cfg.min_setpoint = 69.0;
  SetpointGovernor floor_gov{floor_cfg};
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 4; ++i) floor_gov.observe(200.0);  // huge slack
  }
  EXPECT_DOUBLE_EQ(floor_gov.setpoint(), 69.0);
}

TEST(Governor, ResetRestoresInitialState) {
  SetpointGovernor gov{small_window()};
  for (int i = 0; i < 8; ++i) gov.observe(10.0);
  EXPECT_GT(gov.setpoint(), 70.0);
  gov.reset();
  EXPECT_DOUBLE_EQ(gov.setpoint(), 70.0);
  EXPECT_EQ(gov.epochs(), 0u);
  EXPECT_EQ(gov.total_errors(), 0u);
}

TEST(Governor, ConvergesToKneeUnderStaticConditions) {
  // Simulated plant: the loop pins tau at c (perfect tracking), the
  // pipeline needs 64.  Governor should descend to just above L + headroom.
  GovernorConfig cfg = small_window();
  cfg.initial_setpoint = 80.0;
  cfg.window = 8;
  SetpointGovernor gov{cfg};
  double c = cfg.initial_setpoint;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    c = gov.observe(c);  // tau == current set-point
  }
  // Fixed point: slack = c - 64 < headroom + step_down = 3 stops descent.
  EXPECT_LT(gov.setpoint(), 68.0);
  EXPECT_GE(gov.setpoint(), 64.0);
  EXPECT_EQ(gov.total_errors(), 0u);
}

}  // namespace
}  // namespace roclk::control
