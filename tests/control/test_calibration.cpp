#include "roclk/control/calibration.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace roclk::control {
namespace {

/// Synthetic monotone plant: zero errors iff c >= threshold.
SetpointProbe threshold_probe(double threshold) {
  return [threshold](double c, std::size_t, std::size_t cycles) {
    return c >= threshold ? 0u : cycles;
  };
}

TEST(Calibration, FindsThresholdWithinResolution) {
  CalibrationConfig cfg;
  cfg.resolution = 0.25;
  const auto result = calibrate_setpoint(threshold_probe(71.3), cfg);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GE(result.value().minimum_safe, 71.3);
  EXPECT_LE(result.value().minimum_safe, 71.3 + 2.0 * cfg.resolution);
  EXPECT_DOUBLE_EQ(result.value().setpoint,
                   result.value().minimum_safe + cfg.guard_band);
}

TEST(Calibration, AlreadySafeAtBottomOfBracket) {
  const auto result = calibrate_setpoint(threshold_probe(10.0));
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().minimum_safe, 32.0);  // bracket floor
  EXPECT_EQ(result.value().probes, 2u);                 // hi + lo only
}

TEST(Calibration, FailsWhenNothingIsSafe) {
  const auto result = calibrate_setpoint(threshold_probe(1e6));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(Calibration, RejectsBadConfigAndProbe) {
  EXPECT_FALSE(calibrate_setpoint(nullptr).is_ok());
  CalibrationConfig bad;
  bad.min_setpoint = 100.0;
  bad.max_setpoint = 50.0;
  EXPECT_FALSE(calibrate_setpoint(threshold_probe(60.0), bad).is_ok());
  CalibrationConfig zero;
  zero.probe_cycles = 0;
  EXPECT_FALSE(calibrate_setpoint(threshold_probe(60.0), zero).is_ok());
}

TEST(Calibration, AccountsProbeBudget) {
  CalibrationConfig cfg;
  cfg.probe_cycles = 100;
  cfg.settle_cycles = 10;
  const auto result = calibrate_setpoint(threshold_probe(70.0), cfg);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().total_cycles, result.value().probes * 110u);
  EXPECT_GE(result.value().probes, 3u);
}

TEST(Calibration, EndToEndOnTheRealLoop) {
  // Calibrate an IIR loop under a 10% HoDV: the minimum safe set-point
  // must sit a few stages of ripple above the logic depth L = 64.
  CalibrationConfig cfg;
  cfg.logic_depth = 64.0;
  cfg.min_setpoint = 60.0;
  cfg.max_setpoint = 90.0;
  cfg.probe_cycles = 1200;
  cfg.settle_cycles = 300;

  SetpointProbe probe = [&cfg](double c, std::size_t settle,
                               std::size_t cycles) -> std::size_t {
    core::LoopConfig loop_cfg;
    loop_cfg.setpoint_c = c;
    loop_cfg.cdn_delay_stages = 64.0;
    core::LoopSimulator sim{
        loop_cfg, std::make_unique<control::IirControlHardware>()};
    const auto trace = sim.run(
        core::SimulationInputs::harmonic(0.1 * 64.0, 40.0 * 64.0),
        settle + cycles);
    std::size_t errors = 0;
    for (std::size_t i = settle; i < trace.size(); ++i) {
      if (trace.tau()[i] < cfg.logic_depth) ++errors;
    }
    return errors;
  };

  const auto result = calibrate_setpoint(probe, cfg);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result.value().minimum_safe, 64.0);
  EXPECT_LT(result.value().minimum_safe, 72.0);

  // The calibrated set-point must indeed run clean.
  EXPECT_EQ(probe(result.value().setpoint, 300, 2400), 0u);
  // And a set-point at L itself must not (ripple dips below L).
  EXPECT_GT(probe(64.0, 300, 2400), 0u);
}

}  // namespace
}  // namespace roclk::control
