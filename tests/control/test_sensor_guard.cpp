#include "roclk/control/sensor_guard.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace roclk::control {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

SensorGuardConfig basic_config() {
  SensorGuardConfig config;
  config.tau_min = 32.0;
  config.tau_max = 128.0;
  config.max_step = 8.0;
  config.hold_limit = 3;
  return config;
}

TEST(SensorGuard, ValidateRejectsBadConfigs) {
  SensorGuardConfig config;
  config.tau_min = 10.0;
  config.tau_max = 5.0;
  EXPECT_FALSE(SensorGuard::validate(config).is_ok());
  config = {};
  config.max_step = -1.0;
  EXPECT_FALSE(SensorGuard::validate(config).is_ok());
  config = {};
  config.median_window = 4;  // must be odd
  EXPECT_FALSE(SensorGuard::validate(config).is_ok());
  config.median_window = 5;
  EXPECT_TRUE(SensorGuard::validate(config).is_ok());
}

TEST(SensorGuard, PassesPlausibleReadingsThrough) {
  SensorGuard guard{basic_config()};
  guard.reset(64.0);
  EXPECT_DOUBLE_EQ(guard.filter(66.0), 66.0);
  EXPECT_DOUBLE_EQ(guard.filter(60.0), 60.0);
  EXPECT_FALSE(guard.holding());
  EXPECT_EQ(guard.stats().range_rejects, 0u);
  EXPECT_EQ(guard.stats().rate_rejects, 0u);
}

TEST(SensorGuard, HoldsLastGoodOnRangeViolation) {
  SensorGuard guard{basic_config()};
  guard.reset(64.0);
  EXPECT_DOUBLE_EQ(guard.filter(500.0), 64.0);  // out of range
  EXPECT_TRUE(guard.holding());
  EXPECT_DOUBLE_EQ(guard.filter(0.0), 64.0);  // dropped-sample zero
  EXPECT_EQ(guard.stats().range_rejects, 2u);
  EXPECT_DOUBLE_EQ(guard.last_good(), 64.0);
}

TEST(SensorGuard, HoldsLastGoodOnRateViolation) {
  SensorGuard guard{basic_config()};
  guard.reset(64.0);
  // 100 is in range but 36 stages away: implausibly fast.
  EXPECT_DOUBLE_EQ(guard.filter(100.0), 64.0);
  EXPECT_EQ(guard.stats().rate_rejects, 1u);
  // A gradual approach is accepted.
  EXPECT_DOUBLE_EQ(guard.filter(70.0), 70.0);
  EXPECT_DOUBLE_EQ(guard.filter(77.0), 77.0);
}

TEST(SensorGuard, ResyncsAfterHoldLimit) {
  SensorGuard guard{basic_config()};
  guard.reset(64.0);
  // A genuine operating-point shift beyond max_step: held hold_limit
  // times, then the guard accepts the raw stream.
  EXPECT_DOUBLE_EQ(guard.filter(100.0), 64.0);
  EXPECT_DOUBLE_EQ(guard.filter(100.0), 64.0);
  EXPECT_DOUBLE_EQ(guard.filter(100.0), 64.0);
  EXPECT_DOUBLE_EQ(guard.filter(100.0), 100.0);  // resync
  EXPECT_EQ(guard.stats().resyncs, 1u);
  EXPECT_FALSE(guard.holding());
  EXPECT_DOUBLE_EQ(guard.filter(101.0), 101.0);
}

TEST(SensorGuard, MedianOfKMasksIsolatedOutliers) {
  SensorGuardConfig config = basic_config();
  config.median_window = 3;
  config.max_step = 0.0;  // isolate the median stage
  SensorGuard guard{config};
  guard.reset(64.0);
  // Window pre-filled with 64: one glitch never wins the median.
  EXPECT_DOUBLE_EQ(guard.filter(120.0), 64.0);
  EXPECT_DOUBLE_EQ(guard.filter(64.0), 64.0);
  EXPECT_DOUBLE_EQ(guard.filter(64.0), 64.0);
  EXPECT_EQ(guard.stats().range_rejects, 0u);
}

TEST(SensorGuard, NanIsHeldAndNeverAccepted) {
  SensorGuardConfig config = basic_config();
  config.hold_limit = 1;
  SensorGuard guard{config};
  guard.reset(64.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(guard.filter(kNan), 64.0) << "call " << i;
  }
  // NaN never resyncs (it would poison last_good_ forever)...
  EXPECT_EQ(guard.stats().resyncs, 0u);
  EXPECT_DOUBLE_EQ(guard.last_good(), 64.0);
  // ...and never enters the median window.
  EXPECT_DOUBLE_EQ(guard.filter(66.0), 66.0);
}

TEST(SensorGuard, NanNeverPoisonsTheMedianWindow) {
  SensorGuardConfig config = basic_config();
  config.median_window = 3;
  SensorGuard guard{config};
  guard.reset(64.0);
  (void)guard.filter(kNan);
  (void)guard.filter(kNan);
  (void)guard.filter(kNan);
  // If any NaN had entered the window the median could never recover; the
  // pre-filled window instead lets the healthy stream win immediately.
  EXPECT_DOUBLE_EQ(guard.filter(65.0), 64.0);  // median of {65, 64, 64}
  EXPECT_DOUBLE_EQ(guard.filter(65.0), 65.0);  // median of {65, 65, 64}
}

TEST(SensorGuard, DisabledStagesAreTransparent) {
  SensorGuard guard{SensorGuardConfig{}};  // defaults: wide range, no rate
  guard.reset(64.0);
  EXPECT_DOUBLE_EQ(guard.filter(1e9), 1e9);
  EXPECT_DOUBLE_EQ(guard.filter(0.0), 0.0);
}

}  // namespace
}  // namespace roclk::control
