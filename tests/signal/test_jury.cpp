#include "roclk/signal/jury.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "roclk/signal/roots.hpp"

namespace roclk::signal {
namespace {

TEST(Jury, StableFirstOrder) {
  // z - 0.5: root at 0.5.
  auto r = jury_test(std::vector<double>{1.0, -0.5});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().stable);
}

TEST(Jury, UnstableFirstOrder) {
  // z - 1.5.
  auto r = jury_test(std::vector<double>{1.0, -1.5});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().stable);
  EXPECT_FALSE(r.value().failed_condition.empty());
}

TEST(Jury, RootExactlyOnCircleIsNotStrictlyStable) {
  // z - 1.
  auto r = jury_test(std::vector<double>{1.0, -1.0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().stable);
}

TEST(Jury, StableSecondOrder) {
  // (z - 0.3)(z + 0.4) = z^2 + 0.1 z - 0.12.
  auto r = jury_test(std::vector<double>{1.0, 0.1, -0.12});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().stable);
}

TEST(Jury, UnstableSecondOrderComplexPair) {
  // z^2 + 1.21: roots at +/- 1.1i.
  auto r = jury_test(std::vector<double>{1.0, 0.0, 1.21});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().stable);
}

TEST(Jury, NegativeLeadingCoefficientHandled) {
  // -(z - 0.5): same root.
  auto r = jury_test(std::vector<double>{-1.0, 0.5});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().stable);
}

TEST(Jury, ConstantPolynomialIsTriviallyStable) {
  auto r = jury_test(std::vector<double>{3.0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().stable);
}

TEST(Jury, EmptyRejected) {
  auto r = jury_test(std::vector<double>{});
  EXPECT_FALSE(r.is_ok());
}

TEST(JuryWithoutUnitRoot, DividesOutIntegrator) {
  // (z - 1)(z - 0.5) = z^2 - 1.5 z + 0.5: marginally stable overall, but
  // stable after removing the unit root.
  auto r = jury_test_without_unit_root(std::vector<double>{1.0, -1.5, 0.5});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().stable);
}

TEST(JuryWithoutUnitRoot, DetectsResidualInstability) {
  // (z - 1)(z - 2) = z^2 - 3z + 2.
  auto r = jury_test_without_unit_root(std::vector<double>{1.0, -3.0, 2.0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().stable);
}

TEST(JuryWithoutUnitRoot, RequiresRootAtOne) {
  auto r = jury_test_without_unit_root(std::vector<double>{1.0, -0.5});
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

// Property: the Jury verdict must agree with explicit root finding for a
// family of second/third-order polynomials parameterised by a pole radius.
class JuryVsRoots : public ::testing::TestWithParam<double> {};

TEST_P(JuryVsRoots, AgreesWithSpectralRadius) {
  const double radius = GetParam();
  // Complex pair at radius * e^{+/- j pi/3} plus a real pole at radius/2:
  // (z^2 - 2 r cos60 z + r^2)(z - r/2).
  const double cos60 = 0.5;
  std::vector<double> quad{1.0, -2.0 * radius * cos60, radius * radius};
  std::vector<double> cubic{
      quad[0], quad[1] - 0.5 * radius * quad[0],
      quad[2] - 0.5 * radius * quad[1], -0.5 * radius * quad[2]};
  auto jury = jury_test(cubic);
  ASSERT_TRUE(jury.is_ok());
  auto roots = find_roots(cubic);
  ASSERT_TRUE(roots.is_ok());
  const bool stable_by_roots = spectral_radius(roots.value()) < 1.0;
  EXPECT_EQ(jury.value().stable, stable_by_roots) << "radius " << radius;
}

INSTANTIATE_TEST_SUITE_P(Radii, JuryVsRoots,
                         ::testing::Values(0.2, 0.5, 0.8, 0.95, 0.999, 1.05,
                                           1.3, 2.0));

}  // namespace
}  // namespace roclk::signal
