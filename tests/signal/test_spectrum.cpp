#include "roclk/signal/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "roclk/common/math.hpp"

namespace roclk::signal {
namespace {

std::vector<double> make_tone(std::size_t n, double cycles_per_sample,
                              double amplitude, double phase = 0.0) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = amplitude *
            std::sin(kTwoPi * cycles_per_sample * static_cast<double>(i) +
                     phase);
  }
  return xs;
}

TEST(Fft, RequiresPowerOfTwo) {
  EXPECT_FALSE(fft(std::vector<double>(12, 0.0)).is_ok());
  EXPECT_FALSE(fft(std::vector<double>{}).is_ok());
  EXPECT_TRUE(fft(std::vector<double>(16, 0.0)).is_ok());
}

TEST(Fft, MatchesDirectDft) {
  std::vector<double> xs{1.0, 2.0, -1.0, 0.5, 0.0, 3.0, -2.0, 1.5};
  auto fast = fft(xs);
  ASSERT_TRUE(fast.is_ok());
  const auto slow = dft(xs);
  ASSERT_EQ(fast.value().size(), slow.size());
  for (std::size_t k = 0; k < slow.size(); ++k) {
    EXPECT_NEAR(std::abs(fast.value()[k] - slow[k]), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(Fft, DcBinIsSum) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  auto spec = fft(xs);
  ASSERT_TRUE(spec.is_ok());
  EXPECT_NEAR(spec.value()[0].real(), 10.0, 1e-12);
  EXPECT_NEAR(spec.value()[0].imag(), 0.0, 1e-12);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  const auto xs = make_tone(n, 4.0 / n, 1.0);
  auto spec = fft(xs);
  ASSERT_TRUE(spec.is_ok());
  for (std::size_t k = 1; k < n / 2; ++k) {
    const double expected = (k == 4) ? static_cast<double>(n) / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(spec.value()[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(Goertzel, MatchesDftBin) {
  const std::size_t n = 50;
  const auto xs = make_tone(n, 5.0 / n, 2.0, 0.3);
  const auto spectrum = dft(xs);
  const auto g = goertzel(xs, 5.0 / static_cast<double>(n));
  EXPECT_NEAR(std::abs(g - spectrum[5]), 0.0, 1e-8);
}

TEST(ToneAmplitude, RecoversSinusoidAmplitude) {
  const std::size_t n = 200;
  const auto xs = make_tone(n, 10.0 / n, 3.5, 1.1);
  EXPECT_NEAR(tone_amplitude(xs, 10.0 / static_cast<double>(n)), 3.5, 1e-9);
}

TEST(ToneAmplitude, ZeroForQuietSignal) {
  std::vector<double> xs(128, 0.0);
  EXPECT_NEAR(tone_amplitude(xs, 0.1), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(tone_amplitude(std::vector<double>{}, 0.1), 0.0);
}

TEST(DominantBin, FindsStrongestTone) {
  const std::size_t n = 96;
  auto xs = make_tone(n, 7.0 / n, 1.0);
  const auto weak = make_tone(n, 13.0 / n, 0.2);
  for (std::size_t i = 0; i < n; ++i) xs[i] += weak[i];
  EXPECT_EQ(dominant_bin(xs), 7u);
}

// Parameterised sweep: amplitude recovery across frequencies.
class ToneSweep : public ::testing::TestWithParam<int> {};

TEST_P(ToneSweep, AmplitudeRecoveredAtBin) {
  const std::size_t n = 256;
  const int bin = GetParam();
  const double f = static_cast<double>(bin) / static_cast<double>(n);
  const auto xs = make_tone(n, f, 1.25);
  EXPECT_NEAR(tone_amplitude(xs, f), 1.25, 1e-9);
  EXPECT_EQ(dominant_bin(xs), static_cast<std::size_t>(bin));
}

INSTANTIATE_TEST_SUITE_P(Bins, ToneSweep,
                         ::testing::Values(2, 5, 11, 23, 47, 90, 120));

}  // namespace
}  // namespace roclk::signal
