#include "roclk/signal/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "roclk/common/math.hpp"

namespace roclk::signal {
namespace {

TEST(Waveform, ZeroAndConstant) {
  ZeroWaveform zero;
  EXPECT_DOUBLE_EQ(zero.at(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(zero.at(1e9), 0.0);
  ConstantWaveform five{5.0};
  EXPECT_DOUBLE_EQ(five.at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(five.at(123.0), 5.0);
}

TEST(Waveform, SineAmplitudePeriodPhase) {
  SineWaveform s{2.0, 100.0};
  EXPECT_NEAR(s.at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(s.at(25.0), 2.0, 1e-12);
  EXPECT_NEAR(s.at(50.0), 0.0, 1e-12);
  EXPECT_NEAR(s.at(75.0), -2.0, 1e-12);
  EXPECT_NEAR(s.at(100.0), s.at(0.0), 1e-9);  // periodic

  SineWaveform shifted{1.0, 100.0, kPi / 2.0};
  EXPECT_NEAR(shifted.at(0.0), 1.0, 1e-12);
}

TEST(Waveform, SineRejectsNonPositivePeriod) {
  EXPECT_THROW((SineWaveform{1.0, 0.0}), std::logic_error);
}

TEST(Waveform, TrianglePulseShape) {
  TrianglePulseWaveform tri{4.0, 10.0, 8.0};  // peak 4 at t = 14
  EXPECT_DOUBLE_EQ(tri.at(9.9), 0.0);
  EXPECT_DOUBLE_EQ(tri.at(10.0), 0.0);
  EXPECT_NEAR(tri.at(12.0), 2.0, 1e-12);   // rising edge midpoint
  EXPECT_NEAR(tri.at(14.0), 4.0, 1e-12);   // apex
  EXPECT_NEAR(tri.at(16.0), 2.0, 1e-12);   // falling edge
  EXPECT_DOUBLE_EQ(tri.at(18.0), 0.0);
  EXPECT_DOUBLE_EQ(tri.at(100.0), 0.0);
}

TEST(Waveform, StepAndRamp) {
  StepWaveform st{3.0, 5.0};
  EXPECT_DOUBLE_EQ(st.at(4.999), 0.0);
  EXPECT_DOUBLE_EQ(st.at(5.0), 3.0);
  EXPECT_DOUBLE_EQ(st.at(1e6), 3.0);

  RampWaveform ramp{0.5, 10.0, 2.0};  // saturates at 2 after 4 time units
  EXPECT_DOUBLE_EQ(ramp.at(10.0), 0.0);
  EXPECT_NEAR(ramp.at(12.0), 1.0, 1e-12);
  EXPECT_NEAR(ramp.at(14.0), 2.0, 1e-12);
  EXPECT_NEAR(ramp.at(100.0), 2.0, 1e-12);  // clamped

  RampWaveform down{-0.5, 0.0, -1.0};
  EXPECT_NEAR(down.at(10.0), -1.0, 1e-12);
}

TEST(Waveform, SquareDutyCycle) {
  SquareWaveform sq{1.0, 10.0};
  EXPECT_DOUBLE_EQ(sq.at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(sq.at(6.0), -1.0);
  EXPECT_DOUBLE_EQ(sq.at(11.0), 1.0);
}

TEST(Waveform, HoldNoiseIsDeterministicAndPiecewiseConstant) {
  HoldNoiseWaveform noise{1.0, 10.0, 42};
  EXPECT_DOUBLE_EQ(noise.at(3.0), noise.at(7.0));    // same hold slot
  EXPECT_DOUBLE_EQ(noise.at(3.0), noise.at(3.0));    // repeatable
  HoldNoiseWaveform same{1.0, 10.0, 42};
  EXPECT_DOUBLE_EQ(noise.at(123.0), same.at(123.0));  // seed-deterministic
  HoldNoiseWaveform other{1.0, 10.0, 43};
  EXPECT_NE(noise.at(123.0), other.at(123.0));
}

TEST(Waveform, HoldNoiseRoughlyUnitVariance) {
  HoldNoiseWaveform noise{2.0, 1.0, 7};
  double acc = 0.0;
  double acc2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = noise.at(static_cast<double>(i) + 0.5);
    acc += v;
    acc2 += v * v;
  }
  const double mean = acc / n;
  const double var = acc2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Waveform, CompositeSumsWithScales) {
  CompositeWaveform comp;
  comp.add(std::make_unique<ConstantWaveform>(1.0), 2.0);
  comp.add(std::make_unique<StepWaveform>(3.0, 10.0), -1.0);
  EXPECT_DOUBLE_EQ(comp.at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(comp.at(10.0), -1.0);
  EXPECT_EQ(comp.size(), 2u);
}

TEST(Waveform, CompositeCopyIsDeep) {
  CompositeWaveform comp;
  comp.add(std::make_unique<SineWaveform>(1.0, 100.0));
  CompositeWaveform copy{comp};
  EXPECT_DOUBLE_EQ(copy.at(25.0), comp.at(25.0));
  auto cloned = comp.clone();
  EXPECT_DOUBLE_EQ(cloned->at(25.0), comp.at(25.0));
}

TEST(Waveform, SampleGrid) {
  SineWaveform s{1.0, 4.0};
  const auto xs = s.sample(4, 1.0);
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_NEAR(xs[0], 0.0, 1e-12);
  EXPECT_NEAR(xs[1], 1.0, 1e-12);
  EXPECT_NEAR(xs[2], 0.0, 1e-12);
  EXPECT_NEAR(xs[3], -1.0, 1e-12);
  const auto offset = s.sample(2, 1.0, 1.0);
  EXPECT_NEAR(offset[0], 1.0, 1e-12);
}

TEST(Waveform, CloneIsIndependentPolymorphicCopy) {
  std::unique_ptr<Waveform> tri =
      std::make_unique<TrianglePulseWaveform>(1.0, 0.0, 2.0);
  auto copy = tri->clone();
  EXPECT_DOUBLE_EQ(copy->at(1.0), tri->at(1.0));
}

}  // namespace
}  // namespace roclk::signal
