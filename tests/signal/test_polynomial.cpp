#include "roclk/signal/polynomial.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace roclk::signal {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_EQ(p.degree(), 0u);
  EXPECT_DOUBLE_EQ(p.evaluate(2.0), 0.0);
}

TEST(Polynomial, DegreeIgnoresTrailingZeros) {
  Polynomial p{{1.0, 0.0, 2.0, 0.0, 0.0}};
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, CoefficientBeyondRangeIsZero) {
  Polynomial p{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(p.coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(p.coefficient(1), 2.0);
  EXPECT_DOUBLE_EQ(p.coefficient(7), 0.0);
}

TEST(Polynomial, EvaluateInNegativePowers) {
  // p(z) = 1 + 2 z^-1 + 3 z^-2 at z = 2: 1 + 1 + 0.75 = 2.75.
  Polynomial p{{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(p.evaluate(2.0), 2.75);
  EXPECT_DOUBLE_EQ(p.at_one(), 6.0);
}

TEST(Polynomial, EvaluateComplexOnUnitCircle) {
  // p(z) = 1 - z^-1 at z = e^{j pi} = -1: 1 - (-1) = 2.
  Polynomial p{{1.0, -1.0}};
  const auto v = p.evaluate(std::complex<double>{-1.0, 0.0});
  EXPECT_NEAR(v.real(), 2.0, 1e-12);
  EXPECT_NEAR(v.imag(), 0.0, 1e-12);
}

TEST(Polynomial, DelayFactory) {
  const auto d3 = Polynomial::delay(3);
  EXPECT_EQ(d3.degree(), 3u);
  EXPECT_DOUBLE_EQ(d3.coefficient(3), 1.0);
  EXPECT_DOUBLE_EQ(d3.evaluate(2.0), 0.125);
  EXPECT_DOUBLE_EQ(Polynomial::delay(0).evaluate(5.0), 1.0);
}

TEST(Polynomial, AdditionAndSubtraction) {
  Polynomial a{{1.0, 2.0}};
  Polynomial b{{0.5, 0.0, 3.0}};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum.coefficient(0), 1.5);
  EXPECT_DOUBLE_EQ(sum.coefficient(1), 2.0);
  EXPECT_DOUBLE_EQ(sum.coefficient(2), 3.0);
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff.coefficient(2), -3.0);
}

TEST(Polynomial, MultiplicationConvolves) {
  // (1 + z^-1)(1 - z^-1) = 1 - z^-2.
  Polynomial a{{1.0, 1.0}};
  Polynomial b{{1.0, -1.0}};
  const auto prod = a * b;
  EXPECT_DOUBLE_EQ(prod.coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(prod.coefficient(1), 0.0);
  EXPECT_DOUBLE_EQ(prod.coefficient(2), -1.0);
}

TEST(Polynomial, ScalarMultiplyAndNegate) {
  Polynomial p{{1.0, -2.0}};
  const auto q = p * 3.0;
  EXPECT_DOUBLE_EQ(q.coefficient(0), 3.0);
  EXPECT_DOUBLE_EQ(q.coefficient(1), -6.0);
  EXPECT_DOUBLE_EQ((-p).coefficient(1), 2.0);
}

TEST(Polynomial, DelayedShiftsCoefficients) {
  Polynomial p{{1.0, 2.0}};
  const auto d = p.delayed(2);
  EXPECT_DOUBLE_EQ(d.coefficient(0), 0.0);
  EXPECT_DOUBLE_EQ(d.coefficient(2), 1.0);
  EXPECT_DOUBLE_EQ(d.coefficient(3), 2.0);
  // Multiplying by delay(2) is the same operation.
  EXPECT_TRUE(d == p * Polynomial::delay(2));
}

TEST(Polynomial, TrimRemovesSmallTrailing) {
  Polynomial p{{1.0, 2.0, 1e-15}};
  p.trim();
  EXPECT_EQ(p.degree(), 1u);
}

TEST(Polynomial, AscendingInZReversalForRoots) {
  // p = 1 - 0.5 z^-1 corresponds to z - 0.5 (root at z = 0.5):
  Polynomial p{{1.0, -0.5}};
  const auto coeffs = p.ascending_in_z();
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_DOUBLE_EQ(coeffs[0], 1.0);
  EXPECT_DOUBLE_EQ(coeffs[1], -0.5);
}

TEST(Polynomial, EqualityIgnoresStorageLength) {
  Polynomial a{{1.0, 2.0}};
  Polynomial b{{1.0, 2.0, 0.0}};
  EXPECT_TRUE(a == b);
  Polynomial c{{1.0, 2.1}};
  EXPECT_FALSE(a == c);
}

TEST(Polynomial, ToStringReadable) {
  Polynomial p{{1.0, -0.5, 0.0, 0.25}};
  const auto s = p.to_string();
  EXPECT_NE(s.find("z^-1"), std::string::npos);
  EXPECT_NE(s.find("z^-3"), std::string::npos);
  EXPECT_EQ(s.find("z^-2"), std::string::npos);  // zero term omitted
}

}  // namespace
}  // namespace roclk::signal
