#include "roclk/signal/roots.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace roclk::signal {
namespace {

void expect_contains_root(const std::vector<std::complex<double>>& roots,
                          std::complex<double> expected, double tol = 1e-8) {
  const bool found = std::any_of(
      roots.begin(), roots.end(),
      [&](const auto& r) { return std::abs(r - expected) < tol; });
  EXPECT_TRUE(found) << "missing root " << expected.real() << "+"
                     << expected.imag() << "i";
}

TEST(Roots, Linear) {
  // 2x - 6 = 0 -> x = 3.
  auto r = find_roots(std::vector<double>{2.0, -6.0});
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 1u);
  expect_contains_root(r.value(), {3.0, 0.0});
}

TEST(Roots, QuadraticRealRoots) {
  // (x-1)(x-2) = x^2 - 3x + 2.
  auto r = find_roots(std::vector<double>{1.0, -3.0, 2.0});
  ASSERT_TRUE(r.is_ok());
  expect_contains_root(r.value(), {1.0, 0.0});
  expect_contains_root(r.value(), {2.0, 0.0});
}

TEST(Roots, QuadraticComplexPair) {
  // x^2 + 1 -> +/- i.
  auto r = find_roots(std::vector<double>{1.0, 0.0, 1.0});
  ASSERT_TRUE(r.is_ok());
  expect_contains_root(r.value(), {0.0, 1.0});
  expect_contains_root(r.value(), {0.0, -1.0});
}

TEST(Roots, RepeatedRoot) {
  // (x-1)^3.
  auto r = find_roots(std::vector<double>{1.0, -3.0, 3.0, -1.0});
  ASSERT_TRUE(r.is_ok());
  for (const auto& root : r.value()) {
    EXPECT_NEAR(std::abs(root - std::complex<double>{1.0, 0.0}), 0.0, 1e-4);
  }
}

TEST(Roots, LeadingZerosStripped) {
  auto r = find_roots(std::vector<double>{0.0, 0.0, 1.0, -2.0});
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 1u);
  expect_contains_root(r.value(), {2.0, 0.0});
}

TEST(Roots, ConstantHasNoRoots) {
  auto r = find_roots(std::vector<double>{5.0});
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(Roots, EmptyPolynomialRejected) {
  auto r = find_roots(std::vector<double>{0.0, 0.0});
  EXPECT_FALSE(r.is_ok());
}

TEST(Roots, HighDegreeDelayPolynomial) {
  // z^12 - 0.5: 12 roots evenly spread on a circle of radius 0.5^(1/12).
  std::vector<double> coeffs(13, 0.0);
  coeffs[0] = 1.0;
  coeffs[12] = -0.5;
  auto r = find_roots(coeffs);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 12u);
  const double expected_radius = std::pow(0.5, 1.0 / 12.0);
  for (const auto& root : r.value()) {
    EXPECT_NEAR(std::abs(root), expected_radius, 1e-8);
  }
}

TEST(Roots, PaperClosedLoopCharacteristicIsSolvable) {
  // D(z) + N(z) z^{-M-2} for the paper IIR at M = 1, in positive powers
  // (multiplied through by z^6):
  //   4 z^6 - 2 z^5 - z^4 + 0.5 z^3 - 0.25 z^2 - 0.125 z - 0.125 .
  std::vector<double> coeffs{4.0, -2.0, -1.0, 0.5, -0.25, -0.125, -0.125};
  auto r = find_roots(coeffs);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 6u);
  // The paper's loop is stable at M = 1: every root inside the unit circle.
  EXPECT_LT(spectral_radius(r.value()), 1.0);
}

TEST(Roots, SpectralRadius) {
  std::vector<std::complex<double>> roots{{0.5, 0.0}, {0.0, 0.9}, {-0.2, 0.0}};
  EXPECT_NEAR(spectral_radius(roots), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(spectral_radius({}), 0.0);
}

// Property sweep: random-coefficient polynomials must reproduce near-zero
// residuals at every reported root.
class RootsResidual : public ::testing::TestWithParam<int> {};

TEST_P(RootsResidual, ResidualsAreSmall) {
  const int degree = GetParam();
  std::vector<double> coeffs(static_cast<std::size_t>(degree) + 1);
  // Deterministic pseudo-random coefficients in [-2, 2].
  std::uint64_t s = 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(degree + 1);
  for (auto& c : coeffs) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    c = static_cast<double>(static_cast<std::int64_t>(s >> 11)) /
            static_cast<double>(1LL << 52) -
        2.0;
    if (c == 0.0) c = 1.0;
  }
  auto r = find_roots(coeffs);
  ASSERT_TRUE(r.is_ok());
  for (const auto& root : r.value()) {
    std::complex<double> p{0.0, 0.0};
    for (double c : coeffs) p = p * root + c;
    EXPECT_LT(std::abs(p), 1e-6 * std::abs(coeffs[0]) *
                               std::pow(std::max(1.0, std::abs(root)),
                                        degree));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, RootsResidual,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace roclk::signal
