#include "roclk/signal/transfer_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "roclk/common/math.hpp"
#include "roclk/signal/filter.hpp"

namespace roclk::signal {
namespace {

TEST(TransferFunction, ZeroDenominatorRejected) {
  EXPECT_THROW((TransferFunction{Polynomial::one(), Polynomial{{0.0, 0.0}}}),
               std::logic_error);
}

TEST(TransferFunction, DcGain) {
  // H = (1 + z^-1) / (1 - 0.5 z^-1): H(1) = 2 / 0.5 = 4.
  TransferFunction h{Polynomial{{1.0, 1.0}}, Polynomial{{1.0, -0.5}}};
  ASSERT_TRUE(h.dc_gain().has_value());
  EXPECT_DOUBLE_EQ(*h.dc_gain(), 4.0);
}

TEST(TransferFunction, DcGainUndefinedForIntegrator) {
  TransferFunction integrator{Polynomial::one(), Polynomial{{1.0, -1.0}}};
  EXPECT_FALSE(integrator.dc_gain().has_value());
}

TEST(TransferFunction, FrequencyResponseOfDelay) {
  const auto d = TransferFunction::delay(1);
  const auto h = d.frequency_response(kPi / 2.0);  // z = j
  EXPECT_NEAR(std::abs(h), 1.0, 1e-12);
  EXPECT_NEAR(std::arg(h), -kPi / 2.0, 1e-12);
}

TEST(TransferFunction, SeriesParallelFeedbackAlgebra) {
  TransferFunction a{Polynomial{{2.0}}, Polynomial{{1.0}}};       // 2
  TransferFunction b{Polynomial{{1.0}}, Polynomial{{1.0, -0.5}}};  // 1/(1-.5z^-1)
  const auto series = a.series(b);
  EXPECT_DOUBLE_EQ(*series.dc_gain(), 4.0);
  const auto par = a.parallel(b);
  EXPECT_DOUBLE_EQ(*par.dc_gain(), 4.0);  // 2 + 2
  // Unity negative feedback around gain 2: 2 / (1 + 2) = 2/3.
  const auto fb = a.feedback(TransferFunction::identity());
  EXPECT_NEAR(*fb.dc_gain(), 2.0 / 3.0, 1e-12);
}

TEST(TransferFunction, PolesOfFirstOrder) {
  TransferFunction h{Polynomial::one(), Polynomial{{1.0, -0.5}}};
  auto poles = h.poles();
  ASSERT_TRUE(poles.is_ok());
  ASSERT_EQ(poles.value().size(), 1u);
  EXPECT_NEAR(std::abs(poles.value()[0] - std::complex<double>{0.5, 0.0}),
              0.0, 1e-10);
}

TEST(TransferFunction, StabilityClassification) {
  TransferFunction stable{Polynomial::one(), Polynomial{{1.0, -0.5}}};
  ASSERT_TRUE(stable.stability().is_ok());
  EXPECT_EQ(stable.stability().value(), Stability::kStable);

  TransferFunction marginal{Polynomial::one(), Polynomial{{1.0, -1.0}}};
  EXPECT_EQ(marginal.stability().value(), Stability::kMarginallyStable);

  TransferFunction unstable{Polynomial::one(), Polynomial{{1.0, -1.5}}};
  EXPECT_EQ(unstable.stability().value(), Stability::kUnstable);

  // Double integrator: repeated pole on the circle -> unstable.
  TransferFunction dbl{Polynomial::one(),
                       Polynomial{{1.0, -2.0, 1.0}}};
  EXPECT_EQ(dbl.stability().value(), Stability::kUnstable);
}

TEST(TransferFunction, ImpulseResponseOfFirstOrder) {
  // H = 1/(1 - 0.5 z^-1): h[n] = 0.5^n.
  TransferFunction h{Polynomial::one(), Polynomial{{1.0, -0.5}}};
  const auto imp = h.impulse_response(6);
  for (std::size_t n = 0; n < imp.size(); ++n) {
    EXPECT_NEAR(imp[n], std::pow(0.5, static_cast<double>(n)), 1e-12);
  }
}

TEST(TransferFunction, StepResponseConvergesToDcGain) {
  TransferFunction h{Polynomial{{0.25}}, Polynomial{{1.0, -0.75}}};
  const auto step = h.step_response(200);
  EXPECT_NEAR(step.back(), *h.dc_gain(), 1e-10);
}

TEST(TransferFunction, ImpulseResponseMatchesLinearFilter) {
  TransferFunction h{Polynomial{{0.5, 0.2}}, Polynomial{{1.0, -0.3, 0.1}}};
  const auto imp = h.impulse_response(32);
  LinearFilter filter{h};
  for (std::size_t n = 0; n < imp.size(); ++n) {
    const double x = n == 0 ? 1.0 : 0.0;
    EXPECT_NEAR(filter.step(x), imp[n], 1e-12) << "sample " << n;
  }
}

TEST(TransferFunction, NormalizeCancelsSharedDelayAndScales) {
  // (z^-2 + z^-3) / (2 z^-2) -> (1 + z^-1) / 2 -> scaled: (0.5 + 0.5z^-1)/1
  TransferFunction h{Polynomial{{0.0, 0.0, 1.0, 1.0}},
                     Polynomial{{0.0, 0.0, 2.0}}};
  h.normalize();
  EXPECT_DOUBLE_EQ(h.denominator().coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(h.numerator().coefficient(0), 0.5);
  EXPECT_DOUBLE_EQ(h.numerator().coefficient(1), 0.5);
}

TEST(PaperClosedLoop, MatchesEquations4And5) {
  // The loop algebra delta = p - lRO z^{-M-2} implies the identity
  // H_delta(z) = 1 - H_lRO(z) z^{-M-2}; verify it at an arbitrary point.
  const Polynomial n = Polynomial::delay(1);
  const Polynomial d{{4.0, -2.0, -1.0, -0.5, -0.25, -0.125, -0.125}};
  const std::size_t m = 3;
  const auto loop = make_paper_closed_loop(n, d, m);
  const std::complex<double> z{0.9, 0.3};
  const auto h_lro = loop.to_ro_length.evaluate(z);
  const auto h_delta = loop.to_error.evaluate(z);
  const auto zmm2 = std::pow(z, -static_cast<double>(m + 2));
  EXPECT_NEAR(std::abs(h_delta - (1.0 - h_lro * zmm2)), 0.0, 1e-10);
}

TEST(PaperClosedLoop, FinalValueOfErrorIsZeroWhenConstraintHolds) {
  // D(1) = 0 (type-1), N(1) != 0 -> H_delta(1) = 0/..(finite) = 0.
  const Polynomial n = Polynomial::delay(1);
  const Polynomial d{{4.0, -2.0, -1.0, -0.5, -0.25, -0.125, -0.125}};
  ASSERT_NEAR(d.at_one(), 0.0, 1e-12);
  const auto loop = make_paper_closed_loop(n, d, 1);
  const auto fv = loop.to_error.step_final_value();
  ASSERT_TRUE(fv.has_value());
  EXPECT_NEAR(*fv, 0.0, 1e-12);
  // And l_RO settles to a non-zero value: H_lRO(1) = N(1)/(0 + N(1)) = 1.
  const auto fv_lro = loop.to_ro_length.step_final_value();
  ASSERT_TRUE(fv_lro.has_value());
  EXPECT_NEAR(*fv_lro, 1.0, 1e-12);
}

TEST(PaperCombinedInput, ConstantHomogeneousVariationCancels) {
  // eq. 5: e enters as e[k-1] - e[k-M-2]; a constant e must vanish once the
  // delayed term is populated.
  std::vector<double> c(32, 0.0);
  std::vector<double> e(32, 5.0);
  std::vector<double> mu(32, 0.0);
  const std::size_t m = 2;
  const auto p = paper_combined_input(c, e, mu, m);
  // After k >= M+2 both taps are inside the sequence: contribution zero.
  for (std::size_t k = m + 2; k < p.size(); ++k) {
    EXPECT_NEAR(p[k], 0.0, 1e-12) << "k=" << k;
  }
  // During the fill-in window the RO-path tap is still outside: p = e[k-1].
  EXPECT_NEAR(p[1], 5.0, 1e-12);
}

TEST(PaperCombinedInput, MismatchEntersWithNegativeSignAndFullDelay) {
  std::vector<double> c(16, 0.0);
  std::vector<double> e(16, 0.0);
  std::vector<double> mu(16, 0.0);
  mu[0] = 3.0;  // impulse
  const std::size_t m = 1;
  const auto p = paper_combined_input(c, e, mu, m);
  // -mu z^{-M-2}: impulse appears at k = M+2 with sign -1.
  EXPECT_NEAR(p[m + 2], -3.0, 1e-12);
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (k != m + 2) EXPECT_NEAR(p[k], 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace roclk::signal
