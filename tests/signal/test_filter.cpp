#include "roclk/signal/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace roclk::signal {
namespace {

TEST(LinearFilter, FirImpulseResponseEqualsCoefficients) {
  LinearFilter fir{{1.0, 2.0, 3.0}, {1.0}};
  EXPECT_DOUBLE_EQ(fir.step(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 2.0);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 3.0);
  EXPECT_DOUBLE_EQ(fir.step(0.0), 0.0);
}

TEST(LinearFilter, FirstOrderIirGeometricDecay) {
  LinearFilter iir{{1.0}, {1.0, -0.5}};
  EXPECT_DOUBLE_EQ(iir.step(1.0), 1.0);
  EXPECT_DOUBLE_EQ(iir.step(0.0), 0.5);
  EXPECT_DOUBLE_EQ(iir.step(0.0), 0.25);
}

TEST(LinearFilter, NormalizesLeadingDenominator) {
  // (2 + 0)/ (2 - z^-1) == 1 / (1 - 0.5 z^-1).
  LinearFilter a{{2.0}, {2.0, -1.0}};
  LinearFilter b{{1.0}, {1.0, -0.5}};
  for (int i = 0; i < 16; ++i) {
    const double x = (i == 0) ? 1.0 : 0.1 * i;
    EXPECT_NEAR(a.step(x), b.step(x), 1e-12);
  }
}

TEST(LinearFilter, ZeroLeadingDenominatorRejected) {
  EXPECT_THROW((LinearFilter{{1.0}, {0.0, 1.0}}), std::logic_error);
}

TEST(LinearFilter, ResetClearsState) {
  LinearFilter f{{1.0}, {1.0, -0.9}};
  f.step(1.0);
  f.step(0.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.step(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.step(1.0), 1.0);
}

TEST(LinearFilter, ProcessMatchesSteps) {
  LinearFilter a{{0.3, 0.1}, {1.0, -0.4}};
  LinearFilter b = a;
  std::vector<double> xs{1.0, -2.0, 0.5, 0.0, 3.0};
  const auto batch = a.process(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], b.step(xs[i]));
  }
}

TEST(LinearFilter, DcGainReachedOnStep) {
  // H(1) = 0.2 / (1 - 0.8) = 1.
  LinearFilter f{{0.2}, {1.0, -0.8}};
  double y = 0.0;
  for (int i = 0; i < 400; ++i) y = f.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-9);
}

TEST(ExponentialSmoother, PrimesOnFirstSample) {
  ExponentialSmoother s{0.5};
  EXPECT_DOUBLE_EQ(s.step(10.0), 10.0);
  EXPECT_DOUBLE_EQ(s.step(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.step(0.0), 2.5);
}

TEST(ExponentialSmoother, AlphaOneTracksInput) {
  ExponentialSmoother s{1.0};
  s.step(1.0);
  EXPECT_DOUBLE_EQ(s.step(7.0), 7.0);
}

TEST(ExponentialSmoother, InvalidAlphaRejected) {
  EXPECT_THROW(ExponentialSmoother{0.0}, std::logic_error);
  EXPECT_THROW(ExponentialSmoother{1.5}, std::logic_error);
}

TEST(SlidingMinimum, TracksWindowMinimum) {
  SlidingMinimum m{3};
  EXPECT_DOUBLE_EQ(m.step(5.0), 5.0);
  EXPECT_DOUBLE_EQ(m.step(3.0), 3.0);
  EXPECT_DOUBLE_EQ(m.step(4.0), 3.0);
  EXPECT_DOUBLE_EQ(m.step(6.0), 3.0);  // window {3,4,6}
  EXPECT_DOUBLE_EQ(m.step(7.0), 4.0);  // window {4,6,7}
  EXPECT_DOUBLE_EQ(m.step(8.0), 6.0);  // window {6,7,8}
}

TEST(SlidingMinimum, WindowOneIsIdentity) {
  SlidingMinimum m{1};
  EXPECT_DOUBLE_EQ(m.step(5.0), 5.0);
  EXPECT_DOUBLE_EQ(m.step(9.0), 9.0);
  EXPECT_DOUBLE_EQ(m.step(1.0), 1.0);
}

TEST(SlidingMinimum, LongStreamStaysCorrectAndBounded) {
  // Compare against a brute-force window minimum over a pseudo-random
  // stream; also exercises the internal compaction path.
  const std::size_t window = 17;
  SlidingMinimum m{window};
  std::vector<double> xs;
  std::uint64_t s = 99;
  for (int i = 0; i < 5000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    xs.push_back(static_cast<double>(s % 1000));
    const double got = m.step(xs.back());
    double expect = xs.back();
    const std::size_t begin = xs.size() > window ? xs.size() - window : 0;
    for (std::size_t j = begin; j < xs.size(); ++j) {
      expect = std::min(expect, xs[j]);
    }
    ASSERT_DOUBLE_EQ(got, expect) << "at step " << i;
  }
}

TEST(SlidingMinimum, ResetStartsFresh) {
  SlidingMinimum m{4};
  m.step(1.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.step(9.0), 9.0);
}

}  // namespace
}  // namespace roclk::signal
