#include "roclk/fault/fault.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "roclk/fault/injector.hpp"

namespace roclk::fault {
namespace {

TEST(FaultEvent, ActiveWindowIsHalfOpen) {
  const FaultEvent event{FaultKind::kTdcGlitch, 10, 3, 4.0};
  EXPECT_FALSE(event.active_at(9));
  EXPECT_TRUE(event.active_at(10));
  EXPECT_TRUE(event.active_at(12));
  EXPECT_FALSE(event.active_at(13));
  EXPECT_FALSE(event.permanent());
}

TEST(FaultEvent, PermanentEventNeverExpires) {
  const FaultEvent event{FaultKind::kTdcStuckAt, 5, FaultEvent::kPermanent,
                         12.0};
  EXPECT_TRUE(event.permanent());
  EXPECT_FALSE(event.active_at(4));
  EXPECT_TRUE(event.active_at(5));
  EXPECT_TRUE(event.active_at(1'000'000));
}

TEST(FaultSchedule, ValidateEventRejectsUnphysicalParameters) {
  FaultEvent event{FaultKind::kTdcGlitch, 0, 1,
                   std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(FaultSchedule::validate_event(event).is_ok());
  event.magnitude = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FaultSchedule::validate_event(event).is_ok());

  // A TDC cannot present a negative code.
  event = {FaultKind::kTdcStuckAt, 0, 1, -1.0};
  EXPECT_FALSE(FaultSchedule::validate_event(event).is_ok());
  event.magnitude = 0.0;
  EXPECT_TRUE(FaultSchedule::validate_event(event).is_ok());

  // Magnitude-free kinds reject a magnitude that would be ignored.
  event = {FaultKind::kTdcDroppedSample, 0, 1, 1.0};
  EXPECT_FALSE(FaultSchedule::validate_event(event).is_ok());
  event = {FaultKind::kCdnDeliveryDrop, 0, 1, 2.0};
  EXPECT_FALSE(FaultSchedule::validate_event(event).is_ok());
  event = {FaultKind::kCdnDeliveryDrop, 0, 1, 0.0};
  EXPECT_TRUE(FaultSchedule::validate_event(event).is_ok());
}

TEST(FaultSchedule, AddKeepsEventsSortedByStart) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kTdcGlitch, 30, 1, 1.0})
      .add({FaultKind::kVoltageDroop, 10, 2, 3.0})
      .add({FaultKind::kRoStageFailure, 20, 1, -2.0});
  ASSERT_EQ(schedule.size(), 3u);
  const auto events = schedule.events();
  EXPECT_EQ(events[0].start_cycle, 10u);
  EXPECT_EQ(events[1].start_cycle, 20u);
  EXPECT_EQ(events[2].start_cycle, 30u);
  EXPECT_FALSE(schedule.has_permanent_event());
  schedule.add({FaultKind::kTdcStuckAt, 40, FaultEvent::kPermanent, 8.0});
  EXPECT_TRUE(schedule.has_permanent_event());
}

TEST(FaultSchedule, RandomIsAPureFunctionOfSeedAndSpec) {
  RandomFaultSpec spec;
  spec.event_count = 16;
  const FaultSchedule a = FaultSchedule::random(1234, spec);
  const FaultSchedule b = FaultSchedule::random(1234, spec);
  EXPECT_EQ(a, b);
  const FaultSchedule c = FaultSchedule::random(1235, spec);
  EXPECT_NE(a, c);
  ASSERT_EQ(a.size(), 16u);
  for (const FaultEvent& event : a.events()) {
    EXPECT_TRUE(FaultSchedule::validate_event(event).is_ok());
    EXPECT_LT(event.start_cycle, spec.horizon_cycles);
    EXPECT_GE(event.duration, 1u);
    EXPECT_LE(event.duration, spec.max_duration);
  }
}

TEST(FaultSchedule, RandomHonoursTheKindFilter) {
  RandomFaultSpec spec;
  spec.event_count = 12;
  spec.kinds = {FaultKind::kVoltageDroop};
  spec.droop_min = 2.0;
  spec.droop_max = 6.0;
  const FaultSchedule schedule = FaultSchedule::random(7, spec);
  for (const FaultEvent& event : schedule.events()) {
    EXPECT_EQ(event.kind, FaultKind::kVoltageDroop);
    EXPECT_GE(event.magnitude, 2.0);
    EXPECT_LE(event.magnitude, 6.0);
  }
}

TEST(FaultInjector, ResolvesPrecedenceAndSumsAdditiveKinds) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kTdcGlitch, 2, 4, 5.0})
      .add({FaultKind::kTdcGlitch, 3, 2, -1.0})
      .add({FaultKind::kTdcStuckAt, 4, 1, 100.0})
      .add({FaultKind::kVoltageDroop, 4, 2, 2.5})
      .add({FaultKind::kVoltageDroop, 5, 1, 1.5});
  FaultInjector injector{schedule};

  EXPECT_FALSE(injector.begin_cycle(0).any);
  EXPECT_FALSE(injector.begin_cycle(1).any);

  CycleFaults f = injector.begin_cycle(2);
  EXPECT_TRUE(f.any);
  EXPECT_DOUBLE_EQ(f.tau_glitch, 5.0);

  f = injector.begin_cycle(3);  // overlapping glitches sum
  EXPECT_DOUBLE_EQ(f.tau_glitch, 4.0);

  f = injector.begin_cycle(4);  // stuck-at masks the glitches
  EXPECT_TRUE(f.tau_stuck);
  EXPECT_DOUBLE_EQ(f.tau_stuck_value, 100.0);
  EXPECT_DOUBLE_EQ(f.tau_glitch, 4.0);
  EXPECT_DOUBLE_EQ(f.droop, 2.5);

  f = injector.begin_cycle(5);  // stuck expired, droops sum
  EXPECT_FALSE(f.tau_stuck);
  EXPECT_DOUBLE_EQ(f.droop, 4.0);

  f = injector.begin_cycle(6);
  EXPECT_FALSE(f.any);

  // reset() rewinds the cursor to cycle 0.
  injector.reset();
  EXPECT_FALSE(injector.begin_cycle(0).any);
  EXPECT_DOUBLE_EQ(injector.begin_cycle(2).tau_glitch, 5.0);
}

}  // namespace
}  // namespace roclk::fault
