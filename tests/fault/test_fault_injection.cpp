// Fault replay through the two simulation engines.
//
// The contracts under test:
//  * a faulted run is a pure function of (seed, schedule) — replaying the
//    same schedule reproduces the trace bit for bit;
//  * attaching an empty schedule (or none) leaves the no-fault trajectory
//    bit-for-bit untouched;
//  * lane w of a faulted ensemble run equals a scalar LoopSimulator
//    running the same schedule, sample for sample;
//  * a lane whose faulted dynamics go non-physical is isolated — frozen at
//    its last good record — and never poisons MetricsReducer with NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "roclk/analysis/ensemble_metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/fault/fault.hpp"

namespace roclk::core {
namespace {

constexpr double kSetpoint = 64.0;
constexpr std::size_t kCycles = 600;

LoopConfig loop_config() {
  LoopConfig config;
  config.setpoint_c = kSetpoint;
  config.cdn_delay_stages = 2.0 * kSetpoint;
  return config;
}

std::unique_ptr<control::ControlBlock> make_iir() {
  return std::make_unique<control::IirControlHardware>(
      control::paper_iir_config());
}

fault::FaultSchedule mixed_schedule() {
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::kTdcGlitch, 60, 3, 17.0})
      .add({fault::FaultKind::kTdcStuckAt, 120, 8, 200.0})
      .add({fault::FaultKind::kTdcDroppedSample, 180, 2, 0.0})
      .add({fault::FaultKind::kRoStageFailure, 240, 40, 5.0})
      .add({fault::FaultKind::kCdnDeliveryDrop, 320, 1, 0.0})
      .add({fault::FaultKind::kVoltageDroop, 380, 20, 6.0});
  return schedule;
}

void expect_traces_equal(const SimulationTrace& a, const SimulationTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a.tau()[k], b.tau()[k]) << "cycle " << k;
    ASSERT_EQ(a.delta()[k], b.delta()[k]) << "cycle " << k;
    ASSERT_EQ(a.lro()[k], b.lro()[k]) << "cycle " << k;
    ASSERT_EQ(a.generated_period()[k], b.generated_period()[k])
        << "cycle " << k;
    ASSERT_EQ(a.delivered_period()[k], b.delivered_period()[k])
        << "cycle " << k;
    ASSERT_EQ(a.violation_flags()[k], b.violation_flags()[k]) << "cycle " << k;
  }
}

TEST(FaultInjection, FaultedRunIsReproducibleFromSeedAndSchedule) {
  fault::RandomFaultSpec spec;
  spec.horizon_cycles = kCycles;
  spec.event_count = 6;
  const auto schedule = fault::FaultSchedule::random(99, spec);
  const auto inputs = SimulationInputs::harmonic(8.0, 900.0, -2.0);

  LoopSimulator a{loop_config(), make_iir()};
  a.attach_faults(schedule);
  const SimulationTrace first = a.run(inputs, kCycles);

  LoopSimulator b{loop_config(), make_iir()};
  b.attach_faults(fault::FaultSchedule::random(99, spec));
  const SimulationTrace second = b.run(inputs, kCycles);
  expect_traces_equal(first, second);

  // reset() rewinds the injector with the loop: the replay repeats.
  a.reset();
  expect_traces_equal(first, a.run(inputs, kCycles));
}

TEST(FaultInjection, EmptyScheduleLeavesTrajectoryUntouched) {
  const auto inputs = SimulationInputs::harmonic(8.0, 900.0, 1.5);

  LoopSimulator plain{loop_config(), make_iir()};
  const SimulationTrace reference = plain.run(inputs, kCycles);

  LoopSimulator armed{loop_config(), make_iir()};
  armed.attach_faults(fault::FaultSchedule{});
  EXPECT_TRUE(armed.has_faults());
  expect_traces_equal(reference, armed.run(inputs, kCycles));

  // clear_faults() restores the unarmed fast path.
  armed.clear_faults();
  EXPECT_FALSE(armed.has_faults());
  armed.reset();
  expect_traces_equal(reference, armed.run(inputs, kCycles));
}

TEST(FaultInjection, FaultsChangeTheTrajectory) {
  const auto inputs = SimulationInputs::harmonic(8.0, 900.0, 0.0);
  LoopSimulator plain{loop_config(), make_iir()};
  const SimulationTrace reference = plain.run(inputs, kCycles);

  LoopSimulator faulted{loop_config(), make_iir()};
  faulted.attach_faults(mixed_schedule());
  const SimulationTrace trace = faulted.run(inputs, kCycles);
  std::size_t differing = 0;
  for (std::size_t k = 0; k < kCycles; ++k) {
    if (trace.tau()[k] != reference.tau()[k]) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjection, StuckAtPinsTheReadingWithinTheChain) {
  LoopConfig config = loop_config();
  config.tdc_max_reading = 128;
  fault::FaultSchedule schedule;
  // The stuck code exceeds the chain: the mux still saturates at
  // max_reading, like real hardware.
  schedule.add({fault::FaultKind::kTdcStuckAt, 10, 5, 1000.0});
  LoopSimulator sim{config, make_iir()};
  sim.attach_faults(schedule);
  const SimulationTrace trace = sim.run(SimulationInputs::none(), 20);
  for (std::size_t k = 10; k < 15; ++k) {
    EXPECT_DOUBLE_EQ(trace.tau()[k], 128.0) << "cycle " << k;
  }
  EXPECT_DOUBLE_EQ(trace.tau()[9], kSetpoint);  // pre-fault equilibrium
}

TEST(FaultInjection, ViolationFlagJudgesTheTrueReadingNotTheFaultedOne) {
  // A stuck-at-high reading hides nothing: the die still met timing, so no
  // violation is recorded; conversely the fault does not fabricate one.
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::kTdcStuckAt, 5, 3, 1.0});
  LoopSimulator sim{loop_config(), make_iir()};
  sim.attach_faults(schedule);
  const SimulationTrace trace = sim.run(SimulationInputs::none(), 30);
  // Quiet environment at equilibrium: the true tau never dips below c on
  // the faulted cycles themselves (the controller reacts a cycle later).
  EXPECT_EQ(trace.violation_flags()[5], 0);
  EXPECT_EQ(trace.violation_flags()[6], 0);
  EXPECT_LT(trace.tau()[5], kSetpoint);  // but the corrupted reading is low
}

TEST(FaultInjection, NonPhysicalFaultIsolatesTheLoopInsteadOfPoisoning) {
  // Two overlapping droops of 1e308 fold to +inf at the injector; the
  // delivered period goes non-finite one cycle later and the loop must
  // freeze at its last good record, not stream NaN.
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::kVoltageDroop, 20, 4, 1e308})
      .add({fault::FaultKind::kVoltageDroop, 20, 4, 1e308});
  LoopSimulator sim{loop_config(), make_iir()};
  sim.attach_faults(schedule);
  const SimulationTrace trace = sim.run(SimulationInputs::none(), 60);
  EXPECT_TRUE(sim.isolated());
  ASSERT_EQ(trace.size(), 60u);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    EXPECT_TRUE(std::isfinite(trace.tau()[k])) << "cycle " << k;
    EXPECT_TRUE(std::isfinite(trace.delivered_period()[k])) << "cycle " << k;
  }
  // Frozen: the tail repeats the last good record.
  const std::size_t last = trace.size() - 1;
  EXPECT_EQ(trace.tau()[last], trace.tau()[last - 1]);
  EXPECT_EQ(trace.delivered_period()[last], trace.delivered_period()[last - 1]);

  sim.reset();
  EXPECT_FALSE(sim.isolated());
}

// ------------------------------------------------------------- ensemble

TEST(FaultInjection, EnsembleLanesMatchScalarUnderPerLaneSchedules) {
  constexpr std::size_t kLanes = 21;  // crosses a chunk boundary
  const LoopConfig config = loop_config();
  const control::IirControlHardware prototype{control::paper_iir_config()};
  EnsembleSimulator ensemble =
      EnsembleSimulator::uniform(config, &prototype, kLanes);

  std::vector<fault::FaultSchedule> schedules(kLanes);
  fault::RandomFaultSpec spec;
  spec.horizon_cycles = kCycles;
  spec.event_count = 4;
  for (std::size_t w = 0; w < kLanes; ++w) {
    if (w % 3 == 0) continue;  // every third lane stays fault-free
    schedules[w] = fault::FaultSchedule::random(1000 + w, spec);
  }
  ensemble.attach_faults(schedules);
  EXPECT_TRUE(ensemble.has_faults());

  std::vector<SimulationInputs> inputs;
  for (std::size_t w = 0; w < kLanes; ++w) {
    inputs.push_back(
        SimulationInputs::harmonic(6.0, 1100.0, -4.0 + 0.9 * w, 0.21 * w));
  }
  const auto block = sample_ensemble(inputs, kCycles, kSetpoint);

  TraceReducer reducer{kLanes, kCycles};
  ensemble.run(block, reducer);
  for (std::size_t w = 0; w < kLanes; ++w) {
    LoopSimulator scalar{config, make_iir()};
    scalar.attach_faults(schedules[w]);
    const SimulationTrace reference = scalar.run_batch(block.lane(w));
    SCOPED_TRACE("lane " + std::to_string(w));
    expect_traces_equal(reference, reducer.trace(w));
  }
}

TEST(FaultInjection, IsolatedLaneIsReportedAndSkippedByMetrics) {
  constexpr std::size_t kLanes = 5;
  const LoopConfig config = loop_config();
  const control::IirControlHardware prototype{control::paper_iir_config()};
  EnsembleSimulator ensemble =
      EnsembleSimulator::uniform(config, &prototype, kLanes);

  std::vector<fault::FaultSchedule> schedules(kLanes);
  schedules[2]
      .add({fault::FaultKind::kVoltageDroop, 30, 4, 1e308})
      .add({fault::FaultKind::kVoltageDroop, 30, 4, 1e308});
  ensemble.attach_faults(schedules);

  std::vector<SimulationInputs> inputs(kLanes,
                                       SimulationInputs::harmonic(4.0, 800.0));
  const auto block = sample_ensemble(inputs, 200, kSetpoint);
  analysis::MetricsReducer reducer{kLanes, kSetpoint, /*skip=*/50};
  ensemble.run(block, reducer);

  EXPECT_TRUE(ensemble.isolated(2));
  EXPECT_EQ(ensemble.isolated_count(), 1u);
  for (std::size_t w = 0; w < kLanes; ++w) {
    if (w == 2) continue;
    EXPECT_FALSE(ensemble.isolated(w)) << "lane " << w;
    const analysis::RunMetrics metrics = reducer.metrics(w);
    EXPECT_TRUE(std::isfinite(metrics.mean_period)) << "lane " << w;
    EXPECT_TRUE(std::isfinite(metrics.safety_margin)) << "lane " << w;
  }
  // The isolated lane saw every cycle but contributed no samples after its
  // isolation point; whatever it did contribute is finite.
  EXPECT_EQ(reducer.cycles_seen(2), 200u);

  // reset() clears the isolation flags with the rest of the lane state.
  ensemble.reset();
  EXPECT_EQ(ensemble.isolated_count(), 0u);
}

TEST(FaultInjection, ClearFaultsRestoresTheFaultFreeKernel) {
  constexpr std::size_t kLanes = 4;
  const LoopConfig config = loop_config();
  const control::IirControlHardware prototype{control::paper_iir_config()};
  EnsembleSimulator ensemble =
      EnsembleSimulator::uniform(config, &prototype, kLanes);

  std::vector<SimulationInputs> inputs(
      kLanes, SimulationInputs::harmonic(5.0, 700.0, 2.0));
  const auto block = sample_ensemble(inputs, 150, kSetpoint);

  TraceReducer clean{kLanes, 150};
  ensemble.run(block, clean);

  std::vector<fault::FaultSchedule> schedules(kLanes);
  schedules[0].add({fault::FaultKind::kTdcGlitch, 40, 2, 25.0});
  ensemble.attach_faults(schedules);
  ensemble.reset();
  TraceReducer faulted{kLanes, 150};
  ensemble.run(block, faulted);
  EXPECT_NE(clean.trace(0).tau(), faulted.trace(0).tau());
  expect_traces_equal(clean.trace(1), faulted.trace(1));

  ensemble.clear_faults();
  EXPECT_FALSE(ensemble.has_faults());
  ensemble.reset();
  TraceReducer cleared{kLanes, 150};
  ensemble.run(block, cleared);
  for (std::size_t w = 0; w < kLanes; ++w) {
    SCOPED_TRACE("lane " + std::to_string(w));
    expect_traces_equal(clean.trace(w), cleared.trace(w));
  }
}

}  // namespace
}  // namespace roclk::core
