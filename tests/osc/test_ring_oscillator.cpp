#include "roclk/osc/ring_oscillator.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::osc {
namespace {

TEST(RingOscillator, DefaultConfigValidAndAtInitialLength) {
  RingOscillator ro;
  EXPECT_EQ(ro.length(), 64);
  EXPECT_FALSE(ro.saturated());
}

TEST(RingOscillator, ValidateCatchesBadRanges) {
  RingOscillatorConfig bad;
  bad.min_length = 0;
  EXPECT_FALSE(RingOscillator::validate(bad).is_ok());

  RingOscillatorConfig swapped;
  swapped.min_length = 100;
  swapped.max_length = 10;
  EXPECT_FALSE(RingOscillator::validate(swapped).is_ok());

  RingOscillatorConfig outside;
  outside.initial_length = 4096;
  EXPECT_FALSE(RingOscillator::validate(outside).is_ok());

  RingOscillatorConfig zero_delay;
  zero_delay.stage_delay_seconds = 0.0;
  EXPECT_FALSE(RingOscillator::validate(zero_delay).is_ok());

  EXPECT_THROW(RingOscillator{bad}, std::logic_error);
}

TEST(RingOscillator, SetLengthClampsAndFlagsSaturation) {
  RingOscillatorConfig cfg;
  cfg.min_length = 32;
  cfg.max_length = 96;
  cfg.initial_length = 64;
  RingOscillator ro{cfg};
  EXPECT_EQ(ro.set_length(80), 80);
  EXPECT_FALSE(ro.saturated());
  EXPECT_EQ(ro.set_length(1000), 96);
  EXPECT_TRUE(ro.saturated());
  EXPECT_EQ(ro.set_length(1), 32);
  EXPECT_TRUE(ro.saturated());
  EXPECT_EQ(ro.set_length(64), 64);
  EXPECT_FALSE(ro.saturated());
}

TEST(RingOscillator, PhysicalPeriodIsMultiplicative) {
  RingOscillator ro;
  EXPECT_DOUBLE_EQ(ro.period_stages_physical(0.0), 64.0);
  EXPECT_DOUBLE_EQ(ro.period_stages_physical(0.25), 80.0);
  EXPECT_DOUBLE_EQ(ro.period_stages_physical(-0.25), 48.0);
}

TEST(RingOscillator, AdditivePeriodIsLinearised) {
  RingOscillator ro;
  EXPECT_DOUBLE_EQ(ro.period_stages_additive(0.0), 64.0);
  EXPECT_DOUBLE_EQ(ro.period_stages_additive(12.8), 76.8);
  EXPECT_DOUBLE_EQ(ro.period_stages_additive(-5.0), 59.0);
}

TEST(RingOscillator, LinearisationAgreesToFirstOrder) {
  // T_mult = l(1+v) vs T_add = l + c*v with l == c: identical.
  RingOscillator ro;
  const double v = 0.2;
  EXPECT_NEAR(ro.period_stages_physical(v),
              ro.period_stages_additive(64.0 * v), 1e-12);
}

TEST(RingOscillator, PeriodInSecondsUsesStageDelay) {
  RingOscillatorConfig cfg;
  cfg.stage_delay_seconds = 1e-9 / 64.0;  // c = 64 <-> 1 ns
  RingOscillator ro{cfg};
  EXPECT_NEAR(ro.period_seconds(0.0), 1e-9, 1e-18);
  EXPECT_NEAR(ro.period_seconds(0.2), 1.2e-9, 1e-18);
}

TEST(RingOscillator, ActsAsPointSensorOfItsOwnLocation) {
  RingOscillatorConfig cfg;
  cfg.location = {0.9, 0.9};
  RingOscillator ro{cfg};
  variation::TemperatureHotspot hotspot{0.2, {0.9, 0.9}, 0.1, 0.0, 1.0};
  EXPECT_GT(ro.local_variation(hotspot, 100.0), 0.15);
  RingOscillatorConfig far_cfg;
  far_cfg.location = {0.1, 0.1};
  RingOscillator far_ro{far_cfg};
  EXPECT_LT(far_ro.local_variation(hotspot, 100.0), 0.05);
}

TEST(FixedClockSource, HoldsPeriod) {
  FixedClockSource fixed{76.8};
  EXPECT_DOUBLE_EQ(fixed.period_stages(), 76.8);
  EXPECT_THROW(FixedClockSource{0.0}, std::logic_error);
  EXPECT_THROW(FixedClockSource{-5.0}, std::logic_error);
}

}  // namespace
}  // namespace roclk::osc
