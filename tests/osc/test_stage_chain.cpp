#include "roclk/osc/stage_chain.hpp"

#include <gtest/gtest.h>

#include "roclk/variation/sources.hpp"

namespace roclk::osc {
namespace {

variation::DieToDieProcess quiet() {
  return variation::DieToDieProcess::with_offset(0.0);
}

TEST(StageChain, ValidateRejectsDegenerateConfigs) {
  StageChainConfig bad;
  bad.stages = 2;
  EXPECT_FALSE(StageChain::validate(bad).is_ok());
  StageChainConfig zero;
  zero.nominal_stage_delay = 0.0;
  EXPECT_FALSE(StageChain::validate(zero).is_ok());
  EXPECT_THROW(StageChain{bad}, std::logic_error);
}

TEST(StageChain, PositionsInterpolateAlongSegment) {
  StageChainConfig cfg;
  cfg.stages = 3;
  cfg.start = {0.0, 0.0};
  cfg.end = {1.0, 0.5};
  StageChain chain{cfg};
  EXPECT_DOUBLE_EQ(chain.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(chain.position(1).x, 0.5);
  EXPECT_DOUBLE_EQ(chain.position(1).y, 0.25);
  EXPECT_DOUBLE_EQ(chain.position(2).x, 1.0);
}

TEST(StageChain, NominalChainDelayEqualsCount) {
  StageChain chain;
  const auto v = quiet();
  EXPECT_DOUBLE_EQ(chain.chain_delay(64, v, 0.0), 64.0);
  EXPECT_DOUBLE_EQ(chain.chain_delay(0, v, 0.0), 0.0);
}

TEST(StageChain, HomogeneousVariationScalesDelay) {
  StageChain chain;
  const auto slow = variation::DieToDieProcess::with_offset(0.25);
  EXPECT_DOUBLE_EQ(chain.chain_delay(64, slow, 0.0), 80.0);
}

TEST(StageChain, HeterogeneousVariationIsPerStage) {
  // A hotspot over one end of the chain slows only nearby stages.
  StageChainConfig cfg;
  cfg.stages = 101;
  cfg.start = {0.0, 0.5};
  cfg.end = {1.0, 0.5};
  StageChain chain{cfg};
  variation::TemperatureHotspot hotspot{0.2, {1.0, 0.5}, 0.1, 0.0, 1.0};
  const double front_half = chain.chain_delay(50, hotspot, 100.0);
  const double full = chain.chain_delay(101, hotspot, 100.0);
  const double back_half = full - front_half;
  EXPECT_GT(back_half, front_half + 1.0);  // hot end slower
}

TEST(StageChain, StagesCrossedInverseOfChainDelay) {
  StageChain chain;
  const auto v = quiet();
  EXPECT_EQ(chain.stages_crossed(64.0, v, 0.0), 64u);
  EXPECT_EQ(chain.stages_crossed(63.5, v, 0.0), 63u);
  EXPECT_EQ(chain.stages_crossed(0.0, v, 0.0), 0u);
  // Window beyond the chain saturates at the physical length.
  EXPECT_EQ(chain.stages_crossed(1e6, v, 0.0), chain.size());
}

TEST(StageChain, StagesCrossedShrinksWhenSlow) {
  StageChain chain;
  const auto slow = variation::DieToDieProcess::with_offset(0.25);
  EXPECT_EQ(chain.stages_crossed(64.0, slow, 0.0), 51u);  // 64/1.25
}

TEST(NearestOdd, RoundsUpFromEven) {
  EXPECT_EQ(nearest_odd(63), 63);
  EXPECT_EQ(nearest_odd(64), 65);
  EXPECT_EQ(nearest_odd(3), 3);
}

TEST(TappedRo, EnforcesOddLengths) {
  TappedRingOscillator ro{StageChainConfig{}, 33, 127};
  EXPECT_EQ(ro.set_length(64), 65);
  EXPECT_EQ(ro.set_length(65), 65);
  EXPECT_EQ(ro.length() % 2, 1);
}

TEST(TappedRo, ClampsToTapRange) {
  TappedRingOscillator ro{StageChainConfig{}, 33, 127};
  EXPECT_EQ(ro.set_length(5), 33);
  EXPECT_EQ(ro.set_length(1000), 127);
}

TEST(TappedRo, PeriodSumsSelectedStageDelays) {
  TappedRingOscillator ro{StageChainConfig{}, 33, 127};
  ro.set_length(65);
  const auto v = quiet();
  EXPECT_DOUBLE_EQ(ro.period_stages(v, 0.0), 65.0);
  const auto slow = variation::DieToDieProcess::with_offset(0.1);
  EXPECT_NEAR(ro.period_stages(slow, 0.0), 71.5, 1e-9);
}

TEST(TappedRo, RangeExceedingChainRejected) {
  StageChainConfig cfg;
  cfg.stages = 65;
  EXPECT_THROW((TappedRingOscillator{cfg, 33, 127}), std::logic_error);
}

}  // namespace
}  // namespace roclk::osc
