#include "roclk/osc/jitter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "roclk/common/stats.hpp"

namespace roclk::osc {
namespace {

TEST(Jitter, QuietByDefault) {
  JitterModel jitter;
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(jitter.sample(), 0.0);
  }
}

TEST(Jitter, DeterministicInSeed) {
  JitterConfig cfg;
  cfg.white_sigma = 0.5;
  cfg.walk_sigma = 0.1;
  JitterModel a{cfg};
  JitterModel b{cfg};
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(), b.sample());
  }
}

TEST(Jitter, WhiteComponentHasRequestedRms) {
  JitterConfig cfg;
  cfg.white_sigma = 0.4;
  JitterModel jitter{cfg};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(jitter.sample());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.4, 0.01);
}

TEST(Jitter, WalkAccumulatesButLeaks) {
  JitterConfig cfg;
  cfg.walk_sigma = 0.2;
  cfg.walk_leak = 0.99;
  JitterModel jitter{cfg};
  // Stationary variance of a leaky accumulator: sigma^2/(1-leak^2).
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(jitter.sample());
  const double expected =
      0.2 / std::sqrt(1.0 - 0.99 * 0.99);
  EXPECT_NEAR(stats.stddev(), expected, 0.15 * expected);
}

TEST(Jitter, WalkIsCorrelatedWhiteIsNot) {
  // Lag-1 autocorrelation: ~leak for the walk, ~0 for white noise.
  auto lag1 = [](JitterConfig cfg) {
    JitterModel jitter{cfg};
    double prev = jitter.sample();
    double num = 0.0;
    double den = 0.0;
    for (int i = 0; i < 50000; ++i) {
      const double cur = jitter.sample();
      num += prev * cur;
      den += prev * prev;
      prev = cur;
    }
    return num / den;
  };
  JitterConfig white;
  white.white_sigma = 0.3;
  EXPECT_NEAR(lag1(white), 0.0, 0.05);
  JitterConfig walk;
  walk.walk_sigma = 0.3;
  walk.walk_leak = 0.995;
  EXPECT_GT(lag1(walk), 0.9);
}

TEST(Jitter, ResetReplaysExactly) {
  JitterConfig cfg;
  cfg.white_sigma = 1.0;
  cfg.walk_sigma = 0.5;
  JitterModel jitter{cfg};
  std::vector<double> first;
  for (int i = 0; i < 32; ++i) first.push_back(jitter.sample());
  jitter.reset();
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(jitter.sample(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Jitter, RejectsBadConfig) {
  JitterConfig bad;
  bad.white_sigma = -1.0;
  EXPECT_THROW(JitterModel{bad}, std::logic_error);
  JitterConfig leak;
  leak.walk_leak = 1.5;
  EXPECT_THROW(JitterModel{leak}, std::logic_error);
}

}  // namespace
}  // namespace roclk::osc
