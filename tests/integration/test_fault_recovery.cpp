// Acceptance scenario for the fault subsystem + hardened loop (ISSUE 5):
// a transient TDC stuck-at fault mid-run.
//
//  * The guarded (SensorGuard + Watchdog + anti-windup IIR) loop incurs
//    ZERO true timing errors once the watchdog snaps to the safe period,
//    and re-locks within a bounded number of cycles after the fault
//    clears.
//  * The unguarded paper IIR swallows the corrupted readings whole, drives
//    l_RO into the fast rail and commits true timing errors — demonstrably
//    worse than the hardened loop.
//  * Both simulators reproduce a faulted run bit-for-bit from
//    (seed, schedule).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "roclk/analysis/fault_metrics.hpp"
#include "roclk/control/hardened_control.hpp"
#include "roclk/core/ensemble_simulator.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/fault/fault.hpp"

namespace roclk {
namespace {

constexpr double kSetpoint = 64.0;
constexpr double kTclk = 2.0 * kSetpoint;
constexpr std::size_t kCycles = 1200;
constexpr std::uint64_t kFaultStart = 300;
constexpr std::uint64_t kFaultCycles = 60;

/// The paper's dangerous direction: the mux sticks HIGH (tau = 200 while
/// c = 64), so an unguarded controller believes the clock is far too slow
/// and drives l_RO into the fast rail — a true timing-error storm.
fault::FaultSchedule stuck_high_schedule() {
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::kTdcStuckAt, kFaultStart, kFaultCycles,
                200.0});
  return schedule;
}

core::SimulationTrace run_system(
    core::LoopSimulator sim, const fault::FaultSchedule& schedule,
    const core::SimulationInputs& inputs = core::SimulationInputs::none()) {
  sim.attach_faults(schedule);
  return sim.run(inputs, kCycles);
}

TEST(FaultRecoveryAcceptance, GuardedLoopDegradesGracefullyAndRelocks) {
  // Quiet environment: the fault is the ONLY disturbance, so any timing
  // error in the guarded trace is attributable to the fault response.
  // (Under ambient variation the quantised loop dithers by design — the
  // paper's Fig. 7 — which would drown the signal this test isolates.)
  const auto schedule = stuck_high_schedule();
  const core::SimulationTrace guarded =
      run_system(core::make_hardened_iir_system(kSetpoint, kTclk), schedule);
  const core::SimulationTrace baseline =
      run_system(core::make_iir_system(kSetpoint, kTclk), schedule);

  // The degradation snap: the first faulted cycle commanding the safe
  // maximum length.
  std::size_t snap = 0;
  for (std::size_t k = kFaultStart; k < kCycles; ++k) {
    if (guarded.lro()[k] >= 1024.0) {
      snap = k;
      break;
    }
  }
  ASSERT_GT(snap, 0u) << "watchdog never degraded";
  // The watchdog needs guard-resync + trip cycles to conclude loss of
  // lock; the snap must come within that bounded detection window.
  EXPECT_LE(snap, kFaultStart + 16);

  // Zero true timing errors from the snap onward: parked at the safe
  // period through the fault, and no undershoot on the way back.
  const auto& violations = guarded.violation_flags();
  for (std::size_t k = snap; k < kCycles; ++k) {
    ASSERT_EQ(violations[k], 0) << "true timing error at cycle " << k;
  }

  // Re-locks within a bounded window after the fault clears, and the
  // type-1 property (zero steady-state error) is restored at the tail.
  const analysis::HardeningVerdict verdict =
      analysis::compare_hardening(guarded, baseline, schedule);
  EXPECT_TRUE(verdict.guarded.relocked);
  EXPECT_LE(verdict.guarded.relock_latency, 400u);
  EXPECT_TRUE(verdict.guarded.reconverged)
      << "tail |delta| = " << verdict.guarded.tail_max_abs_delta;
  EXPECT_TRUE(verdict.guarded_recovers());

  // The unguarded baseline is demonstrably worse: it commits true timing
  // errors during the fault, the guarded loop stays clean.
  EXPECT_GT(verdict.baseline.violations_during +
                verdict.baseline.violations_after,
            verdict.guarded.violations_during +
                verdict.guarded.violations_after);
  EXPECT_GT(verdict.baseline.violations_during, 0u);
  EXPECT_TRUE(verdict.guarded_no_worse());
}

TEST(FaultRecoveryAcceptance, LongNegativeGlitchCannotPoisonTheRelockFloor) {
  // A negative glitch subtracts from the reading, so the loop settles at a
  // LONGER l_RO whose (faulted) reading equals the set-point — and, if the
  // glitch outlasts re-acquisition, the watchdog relocks onto that
  // corrupted operating point.  When the fault then clears, the descent
  // back to the true equilibrium stalls pinned at the stale re-acquisition
  // floor; the floor-release valve must let the loop through instead of
  // bouncing between degraded and re-acquiring forever.
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::kTdcGlitch, kFaultStart, /*duration=*/120,
                /*magnitude=*/-48.0});
  const core::SimulationTrace guarded =
      run_system(core::make_hardened_iir_system(kSetpoint, kTclk), schedule);
  const core::SimulationTrace baseline =
      run_system(core::make_iir_system(kSetpoint, kTclk), schedule);

  const analysis::HardeningVerdict verdict =
      analysis::compare_hardening(guarded, baseline, schedule);
  EXPECT_TRUE(verdict.guarded.relocked) << "stale floor livelocked recovery";
  EXPECT_TRUE(verdict.guarded.reconverged)
      << "tail |delta| = " << verdict.guarded.tail_max_abs_delta;
  EXPECT_TRUE(verdict.guarded_no_worse());
}

TEST(FaultRecoveryAcceptance, FaultedRunsAreReproducibleInBothEngines) {
  fault::RandomFaultSpec spec;
  spec.horizon_cycles = 800;
  spec.event_count = 5;
  const std::uint64_t seed = 20120917;  // SOCC'12, why not
  const auto schedule = fault::FaultSchedule::random(seed, spec);
  ASSERT_EQ(schedule, fault::FaultSchedule::random(seed, spec));

  // Scalar engine: two independent simulators, same (seed, schedule),
  // under ambient harmonic variation.
  const auto ambient = core::SimulationInputs::harmonic(2.0, 900.0);
  const core::SimulationTrace first = run_system(
      core::make_hardened_iir_system(kSetpoint, kTclk), schedule, ambient);
  const core::SimulationTrace second = run_system(
      core::make_hardened_iir_system(kSetpoint, kTclk), schedule, ambient);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first.tau(), second.tau());
  EXPECT_EQ(first.lro(), second.lro());
  EXPECT_EQ(first.delivered_period(), second.delivered_period());
  EXPECT_EQ(first.violation_flags(), second.violation_flags());

  // Ensemble engine: a hardened lane replaying the same schedule streams
  // the identical trajectory bit for bit.
  core::LoopConfig config;
  config.setpoint_c = kSetpoint;
  config.cdn_delay_stages = kTclk;
  const core::LoopSimulator prototype =
      core::make_hardened_iir_system(kSetpoint, kTclk);
  core::EnsembleSimulator ensemble = core::EnsembleSimulator::uniform(
      config, prototype.controller(), /*width=*/3);
  ensemble.attach_faults({schedule, fault::FaultSchedule{}, schedule});

  std::vector<core::SimulationInputs> inputs(
      3, core::SimulationInputs::harmonic(2.0, 900.0));
  const auto block = core::sample_ensemble(inputs, kCycles, kSetpoint);
  core::TraceReducer reducer{3, kCycles};
  ensemble.run(block, reducer);
  EXPECT_EQ(reducer.trace(0).tau(), first.tau());
  EXPECT_EQ(reducer.trace(0).lro(), first.lro());
  EXPECT_EQ(reducer.trace(0).violation_flags(), first.violation_flags());
  EXPECT_EQ(reducer.trace(2).tau(), first.tau());
  // The fault-free middle lane took a different trajectory.
  EXPECT_NE(reducer.trace(1).tau(), first.tau());
}

}  // namespace
}  // namespace roclk
