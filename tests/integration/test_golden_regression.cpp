// Golden-trace regression: the exact integer sequences the paper systems
// produce for a pinned scenario.  The loop is fully deterministic (integer
// controller, seeded everything), so any change to the control law, the
// loop wiring or the quantisers shows up here sample-for-sample.
//
// Scenario: c = 64, t_clk = 1c, harmonic HoDV amplitude 0.2c / period 25c,
// static mu = +3 stages; samples 100..119 of the run.
#include <gtest/gtest.h>

#include <vector>

#include "roclk/core/loop_simulator.hpp"

namespace roclk::core {
namespace {

constexpr std::size_t kFirst = 100;
constexpr std::size_t kCount = 20;

SimulationTrace run_golden(LoopSimulator sim) {
  const auto inputs = SimulationInputs::harmonic(12.8, 1600.0, 3.0);
  return sim.run(inputs, kFirst + kCount);
}

template <class T>
std::vector<T> window(const std::vector<T>& xs) {
  return {xs.begin() + kFirst, xs.begin() + kFirst + kCount};
}

TEST(GoldenRegression, IirTauSequence) {
  const auto trace = run_golden(make_iir_system(64.0, 64.0));
  const std::vector<double> expected{55, 56, 57, 58, 59, 61, 64, 66, 68, 69,
                                     71, 71, 71, 72, 70, 70, 69, 66, 65, 63};
  EXPECT_EQ(window(trace.tau()), expected);
}

TEST(GoldenRegression, IirLroSequence) {
  const auto trace = run_golden(make_iir_system(64.0, 64.0));
  const std::vector<double> expected{61, 62, 63, 64, 65, 65, 65, 65, 64, 63,
                                     63, 61, 61, 60, 58, 58, 57, 56, 57, 56};
  EXPECT_EQ(window(trace.lro()), expected);
}

TEST(GoldenRegression, IirDeliveredPeriods) {
  const auto trace = run_golden(make_iir_system(64.0, 64.0));
  const std::vector<double> expected{
      52.8336, 56.8168, 61.0000, 65.1832, 69.1664, 72.7622, 75.8074,
      77.1735, 77.7747, 77.5733, 75.5818, 72.8626, 70.5237, 65.7120,
      62.6043, 58.3957, 53.2880, 50.4763, 47.1374, 44.4182};
  const auto got = window(trace.delivered_period());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 5e-4) << i;
  }
}

TEST(GoldenRegression, TeaTimeTauSequence) {
  const auto trace = run_golden(make_teatime_system(64.0, 64.0));
  const std::vector<double> expected{56, 57, 58, 59, 60, 62, 65, 67, 70, 70,
                                     71, 71, 71, 71, 70, 69, 68, 66, 64, 62};
  EXPECT_EQ(window(trace.tau()), expected);
}

TEST(GoldenRegression, RunIsExactlyRepeatable) {
  const auto a = run_golden(make_iir_system(64.0, 64.0));
  const auto b = run_golden(make_iir_system(64.0, 64.0));
  EXPECT_EQ(a.tau(), b.tau());
  EXPECT_EQ(a.lro(), b.lro());
  EXPECT_EQ(a.delivered_period(), b.delivered_period());
}

}  // namespace
}  // namespace roclk::core
