// Gate-level cross-check: a hand-wired loop built from the *detailed*
// hardware models (tap-multiplexed ring oscillator on a physical stage
// chain, thermometer-code TDC with a ones-count decoder) must adapt the
// same way the behavioural LoopSimulator does.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/osc/stage_chain.hpp"
#include "roclk/sensor/thermometer.hpp"
#include "roclk/variation/sources.hpp"

namespace roclk {
namespace {

/// Minimal discrete loop on the gate-level models: one sample per period,
/// CDN as a one-period delay (t_clk = c), TDC with one-cycle latency.
core::SimulationTrace run_gate_level_loop(
    const variation::VariationSource& source, std::size_t cycles,
    double setpoint_c = 64.0) {
  osc::StageChainConfig ro_chain;
  ro_chain.stages = 257;
  ro_chain.start = {0.48, 0.5};
  ro_chain.end = {0.52, 0.5};
  osc::TappedRingOscillator ro{ro_chain, 9, 255};
  ro.set_length(static_cast<std::int64_t>(setpoint_c) + 1);  // odd: 65

  sensor::DetailedTdcConfig tdc_cfg;
  tdc_cfg.chain.stages = 513;
  tdc_cfg.chain.start = {0.6, 0.6};
  tdc_cfg.chain.end = {0.62, 0.62};
  sensor::DetailedTdc tdc{tdc_cfg};

  control::IirControlHardware controller;
  controller.reset(setpoint_c);

  core::SimulationTrace trace;
  trace.reserve(cycles);

  // Delay registers (as in the Fig. 4 loop with M = 1).
  double t_gen_prev = setpoint_c;   // period in flight through the CDN
  double t_dlv_prev = setpoint_c;   // period delivered last cycle
  double time = 0.0;

  for (std::size_t n = 0; n < cycles; ++n) {
    core::StepRecord record;
    // TDC measures last cycle's delivered period (one-cycle latency).
    record.tau = static_cast<double>(tdc.measure(t_dlv_prev, source, time));
    record.delta = setpoint_c - record.tau;
    record.violation = record.tau < setpoint_c;
    record.lro =
        static_cast<double>(ro.set_length(static_cast<std::int64_t>(
            std::llround(controller.step(record.delta)))));
    // RO generates this cycle's period from its own local environment.
    record.t_gen = ro.period_stages(source, time);
    // CDN: one-period pipe.
    record.t_dlv = t_gen_prev;
    t_gen_prev = record.t_gen;
    t_dlv_prev = record.t_dlv;
    time += setpoint_c;
    trace.push(record);
  }
  return trace;
}

TEST(GateLevel, QuietLoopSettlesNearSetpoint) {
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  const auto trace = run_gate_level_loop(quiet, 500);
  // Odd-length quantisation allows only 63/65, so tau dithers around 64;
  // the loop must stay within the 2-stage tap granularity.
  for (std::size_t i = 100; i < trace.size(); ++i) {
    EXPECT_NEAR(trace.tau()[i], 64.0, 2.0) << i;
  }
}

TEST(GateLevel, HomogeneousStepAbsorbedLikeBehaviouralModel) {
  // 10% die-wide slowdown from t = 0.
  const auto slow = variation::DieToDieProcess::with_offset(0.10);
  const auto gate = run_gate_level_loop(slow, 1200);

  auto behavioural = core::make_iir_system(64.0, 64.0);
  core::SimulationInputs inputs;
  inputs.e_ro = [](double) { return 6.4; };
  inputs.e_tdc = inputs.e_ro;
  const auto ref = behavioural.run(inputs, 1200);

  // Both settle: tau near c, delivered period near c * 1.1 = 70.4.
  EXPECT_NEAR(gate.tau().back(), 64.0, 2.5);
  EXPECT_NEAR(ref.tau().back(), 64.0, 1.0);
  EXPECT_NEAR(gate.mean_delivered_period(600),
              ref.mean_delivered_period(600), 2.5);
}

TEST(GateLevel, RoTdcMismatchCreatesThePaperMuEffect) {
  // A hotspot over the TDC chain (not the RO): the TDC reads low, the
  // loop stretches the period — negative mu in the paper's terms.
  variation::TemperatureHotspot hotspot{0.15, {0.61, 0.61}, 0.05, 0.0, 1.0};
  const auto trace = run_gate_level_loop(hotspot, 1500);
  // Settled period ~ c * 1.15 (the loop compensates the TDC's slow gates).
  EXPECT_NEAR(trace.mean_delivered_period(1000), 64.0 * 1.15, 3.0);
}

TEST(GateLevel, OddLengthQuantisationCostsBoundedRipple) {
  // Compare tau ripple between the gate-level loop (2-stage tap steps) and
  // the behavioural loop (1-stage steps) in a quiet environment.
  const auto quiet = variation::DieToDieProcess::with_offset(0.0);
  const auto gate = run_gate_level_loop(quiet, 1500);
  EXPECT_LE(gate.tau_ripple(500), 4.0);
}

}  // namespace
}  // namespace roclk
