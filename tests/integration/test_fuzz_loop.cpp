// Failure-injection / fuzz tests: random configurations and hostile inputs
// must never produce NaNs, unbounded state or inconsistent trace flags.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "roclk/common/rng.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace roclk::core {
namespace {

void check_trace_invariants(const SimulationTrace& trace,
                            const LoopConfig& cfg) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_TRUE(std::isfinite(trace.tau()[i])) << i;
    ASSERT_TRUE(std::isfinite(trace.delta()[i])) << i;
    ASSERT_TRUE(std::isfinite(trace.lro()[i])) << i;
    ASSERT_TRUE(std::isfinite(trace.generated_period()[i])) << i;
    ASSERT_TRUE(std::isfinite(trace.delivered_period()[i])) << i;
    ASSERT_GT(trace.generated_period()[i], 0.0) << i;
    ASSERT_GT(trace.delivered_period()[i], 0.0) << i;
    // delta and violation must agree with tau.
    ASSERT_DOUBLE_EQ(trace.delta()[i], cfg.setpoint_c - trace.tau()[i]);
    ASSERT_EQ(trace.tau()[i] < cfg.setpoint_c,
              static_cast<bool>(trace.delta()[i] > 0.0))
        << i;
    // lro respects the saturation range.
    ASSERT_GE(trace.lro()[i], static_cast<double>(cfg.min_length)) << i;
    ASSERT_LE(trace.lro()[i], static_cast<double>(cfg.max_length)) << i;
  }
}

class FuzzLoop : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzLoop, RandomConfigAndInputsKeepInvariants) {
  Xoshiro256 rng{GetParam()};

  LoopConfig cfg;
  cfg.setpoint_c = rng.uniform(16.0, 128.0);
  cfg.cdn_delay_stages = rng.uniform(0.0, 4.0) * cfg.setpoint_c;
  cfg.min_length = static_cast<std::int64_t>(rng.uniform(2.0, 16.0));
  cfg.max_length =
      cfg.min_length + static_cast<std::int64_t>(rng.uniform(64.0, 512.0));
  cfg.cdn_quantization = rng.uniform() < 0.5
                             ? cdn::DelayQuantization::kRound
                             : cdn::DelayQuantization::kLinearInterp;
  cfg.mode = GeneratorMode::kControlledRo;

  std::unique_ptr<control::ControlBlock> controller;
  if (rng.uniform() < 0.5) {
    controller = std::make_unique<control::IirControlHardware>();
  } else {
    controller = std::make_unique<control::TeaTimeControl>();
  }
  LoopSimulator sim{cfg, std::move(controller)};

  // Hostile inputs: large steps, fast tones, random walks, occasional
  // extreme mismatch — amplitudes up to 40% of c.
  const double amp = 0.4 * cfg.setpoint_c;
  double walk = 0.0;
  SimulationTrace trace;
  trace.reserve(2000);
  for (int n = 0; n < 2000; ++n) {
    walk = 0.98 * walk + rng.normal(0.0, 0.05 * cfg.setpoint_c);
    const double e =
        amp * std::sin(0.3 * n) * (rng.uniform() < 0.1 ? -1.0 : 1.0) + walk;
    const double mu = rng.uniform() < 0.02
                          ? rng.uniform(-0.3, 0.3) * cfg.setpoint_c
                          : 0.0;
    // Clamp so the additive model keeps generated periods positive even in
    // the worst draw (the simulator itself also floors at 1 stage).
    const double e_safe =
        std::clamp(e, -0.6 * cfg.setpoint_c, 0.6 * cfg.setpoint_c);
    trace.push(sim.step(e_safe, e_safe, mu));
  }
  check_trace_invariants(trace, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLoop,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(FuzzLoop, SaturationRecovery) {
  // Drive the loop hard into both saturation rails, then release: it must
  // come back to equilibrium (anti-windup behaviour of the real datapath).
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = 64.0;
  cfg.min_length = 48;
  cfg.max_length = 80;
  LoopSimulator sim{cfg, std::make_unique<control::IirControlHardware>()};

  SimulationTrace trace;
  for (int n = 0; n < 3000; ++n) {
    double mu = 0.0;
    if (n >= 200 && n < 800) mu = -40.0;   // force lro to the top rail
    if (n >= 800 && n < 1400) mu = +40.0;  // slam to the bottom rail
    trace.push(sim.step(0.0, 0.0, mu));
  }
  // After release the loop must return to tau = c.
  for (std::size_t i = 2800; i < trace.size(); ++i) {
    EXPECT_NEAR(trace.tau()[i], 64.0, 1.5) << i;
  }
}

TEST(FuzzLoop, ExtremeButFinitePerturbationsClampPeriod) {
  LoopConfig cfg;
  cfg.setpoint_c = 64.0;
  cfg.cdn_delay_stages = 64.0;
  LoopSimulator sim{cfg, std::make_unique<control::TeaTimeControl>()};
  // A perturbation deeper than the whole period: the generated period must
  // clamp at the simulator's 1-stage floor instead of going non-positive.
  const auto record = sim.step(-200.0, -200.0, 0.0);
  (void)record;
  const auto next = sim.step(-200.0, -200.0, 0.0);
  EXPECT_GT(next.t_gen, 0.0);
}

}  // namespace
}  // namespace roclk::core
