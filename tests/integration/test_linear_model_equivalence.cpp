// The identity-critical property: the time-domain loop simulator, run
// without quantisation, must reproduce the closed-loop transfer functions
// of paper eqs. 4-5 sample for sample.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"
#include "roclk/signal/filter.hpp"
#include "roclk/signal/transfer_function.hpp"

namespace roclk::core {
namespace {

constexpr double kC = 64.0;

LoopSimulator linear_iir_loop(double tclk_stages) {
  LoopConfig cfg;
  cfg.setpoint_c = kC;
  cfg.cdn_delay_stages = tclk_stages;
  cfg.quantize_lro = false;
  cfg.tdc_quantization = sensor::Quantization::kNone;
  cfg.min_length = 1;
  cfg.max_length = 1 << 20;  // effectively unconstrained: stay linear
  return LoopSimulator{cfg,
                       std::make_unique<control::IirControlReference>()};
}

/// Runs the simulator under perturbation sequences e[], mu[] (one value per
/// cycle) and returns the delta trace.
std::vector<double> simulate_delta(LoopSimulator& sim,
                                   const std::vector<double>& e,
                                   const std::vector<double>& mu) {
  SimulationTrace trace;
  sim.reset();
  for (std::size_t n = 0; n < e.size(); ++n) {
    trace.push(sim.step(e[n], e[n], mu[n]));
  }
  return trace.delta();
}

/// Predicts delta via eq. 5: delta = D/(D + N z^{-M-2}) applied to
///   p[n] = e[n-1] - e[n-M-2] - mu[n-1]
/// (mu enters at the TDC with one cycle of latency in our simulator; for
/// the paper's static-mu experiments the placement is equivalent).
std::vector<double> predict_delta(std::size_t m, const std::vector<double>& e,
                                  const std::vector<double>& mu) {
  const auto [num, den] =
      control::iir_polynomials(control::paper_iir_config());
  const auto loop = signal::make_paper_closed_loop(num, den, m);
  signal::LinearFilter h_delta{loop.to_error};
  auto at = [](const std::vector<double>& xs, std::ptrdiff_t i) {
    return (i >= 0 && static_cast<std::size_t>(i) < xs.size())
               ? xs[static_cast<std::size_t>(i)]
               : 0.0;
  };
  std::vector<double> out(e.size());
  for (std::size_t n = 0; n < e.size(); ++n) {
    const auto i = static_cast<std::ptrdiff_t>(n);
    const double p = at(e, i - 1) -
                     at(e, i - static_cast<std::ptrdiff_t>(m) - 2) -
                     at(mu, i - 1);
    out[n] = h_delta.step(p);
  }
  return out;
}

class LinearEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LinearEquivalence, StepInHomogeneousVariation) {
  const std::size_t m = GetParam();
  const double tclk = static_cast<double>(m) * kC;  // M = tclk/c exactly
  auto sim = linear_iir_loop(tclk);

  const std::size_t n = 400;
  std::vector<double> e(n, 0.0);
  std::vector<double> mu(n, 0.0);
  // Amplitude small enough that T_gen never drives the CDN's M[n] away
  // from tclk/c (the linear model assumes a constant M).
  for (std::size_t k = 50; k < n; ++k) e[k] = 1.5;

  const auto sim_delta = simulate_delta(sim, e, mu);
  const auto tf_delta = predict_delta(m, e, mu);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(sim_delta[k], tf_delta[k], 1e-6) << "M=" << m << " n=" << k;
  }
}

TEST_P(LinearEquivalence, ImpulseInMismatch) {
  const std::size_t m = GetParam();
  auto sim = linear_iir_loop(static_cast<double>(m) * kC);

  const std::size_t n = 300;
  std::vector<double> e(n, 0.0);
  std::vector<double> mu(n, 0.0);
  mu[60] = 2.0;

  const auto sim_delta = simulate_delta(sim, e, mu);
  const auto tf_delta = predict_delta(m, e, mu);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(sim_delta[k], tf_delta[k], 1e-6) << "M=" << m << " n=" << k;
  }
}

TEST_P(LinearEquivalence, SmallSinusoid) {
  const std::size_t m = GetParam();
  auto sim = linear_iir_loop(static_cast<double>(m) * kC);

  const std::size_t n = 600;
  std::vector<double> e(n, 0.0);
  std::vector<double> mu(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Tiny amplitude: even near-resonance loop gain cannot swing T_gen far
    // enough for the CDN's M[n] to re-quantise away from tclk/c.
    e[k] = 0.1 * std::sin(2.0 * 3.14159265358979 * static_cast<double>(k) /
                          80.0);
  }
  const auto sim_delta = simulate_delta(sim, e, mu);
  const auto tf_delta = predict_delta(m, e, mu);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(sim_delta[k], tf_delta[k], 1e-6) << "M=" << m << " n=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(CdnDelays, LinearEquivalence,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

TEST(LinearEquivalence, FinalValueTheoremHoldsInSimulation) {
  // eq. 6/7: under a step perturbation, delta -> 0 and l_RO changes.
  auto sim = linear_iir_loop(kC);
  const std::size_t n = 2000;
  std::vector<double> e(n, 0.0);
  std::vector<double> mu(n, 3.0);  // constant mismatch from t = 0
  sim.reset();
  SimulationTrace trace;
  for (std::size_t k = 0; k < n; ++k) {
    trace.push(sim.step(e[k], e[k], mu[k]));
  }
  EXPECT_NEAR(trace.delta().back(), 0.0, 1e-9);
  EXPECT_NEAR(trace.lro().back(), kC - 3.0, 1e-6);
}

}  // namespace
}  // namespace roclk::core
