// Integration tests asserting the paper's headline qualitative claims on
// full simulations (the benches print the corresponding tables/figures).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "roclk/analysis/analytic.hpp"
#include "roclk/control/control_block.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/stats.hpp"

namespace roclk::analysis {
namespace {

ExperimentParams test_params() {
  ExperimentParams p;
  p.min_cycles = 3000;
  p.transient_skip = 800;
  p.periods_of_perturbation = 10.0;
  return p;
}

// Section II-A / Fig. 2: the free-running RO helps against a harmonic HoDV
// only while t_clk stays inside the benefit windows.
TEST(PaperClaims, FreeRoBenefitWindowObservedInSimulation) {
  const auto p = test_params();
  const double c = p.setpoint_c;
  const double te_over_c = 25.0;
  const double amplitude = p.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude);
  const std::size_t cycles = cycles_for(p, te_over_c);

  // Inside the first window (t_clk ~ 1c << Te/6 ~ 4.2c): better than fixed.
  const auto good = measure_system(SystemKind::kFreeRo, c, 1.0 * c, amplitude,
                                   te_over_c * c, 0.0, fixed_period, cycles,
                                   1000);
  EXPECT_LT(good.relative_adaptive_period, 1.0);

  // Near the worst point (t_clk ~ Te/2 = 12.5c, delay difference ~ half a
  // perturbation period): the RO *amplifies* the mismatch; worse than 1.
  const auto bad = measure_system(SystemKind::kFreeRo, c, 11.5 * c, amplitude,
                                  te_over_c * c, 0.0, fixed_period, cycles,
                                  1000);
  EXPECT_GT(bad.relative_adaptive_period, 1.0);
}

// Section IV-A / Fig. 7: slower perturbations are adapted better by every
// adaptive system, and the needed margin shrinks toward ripple level.
TEST(PaperClaims, AdaptationImprovesWithSlowerHoDV) {
  const auto p = test_params();
  const double c = p.setpoint_c;
  const double amplitude = p.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude);
  for (auto kind : {SystemKind::kIir, SystemKind::kTeaTime}) {
    double prev_margin = 1e9;
    for (double te : {25.0, 37.5, 50.0}) {
      const auto m =
          measure_system(kind, c, c, amplitude, te * c, 0.0, fixed_period,
                         cycles_for(p, te), 1000);
      EXPECT_LT(m.safety_margin, prev_margin + 0.51)
          << to_string(kind) << " Te/c=" << te;
      prev_margin = m.safety_margin;
    }
    // At Te = 50c the margin is a small fraction of the perturbation.
    EXPECT_LT(prev_margin, 0.5 * amplitude) << to_string(kind);
  }
}

// Section IV-A conclusion: under pure HoDV all three adaptive systems beat
// the fixed clock for slow perturbations.
TEST(PaperClaims, AdaptiveSystemsRecoverMarginUnderSlowHoDV) {
  const auto p = test_params();
  const double c = p.setpoint_c;
  const double amplitude = p.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude);
  const double te = 100.0;
  for (auto kind : kAdaptiveSystems) {
    const auto m = measure_system(kind, c, c, amplitude, te * c, 0.0,
                                  fixed_period, cycles_for(p, te), 1000);
    EXPECT_LT(m.relative_adaptive_period, 1.0) << to_string(kind);
  }
}

// Section IV-B / Fig. 9: with heterogeneous mismatch the free RO stops
// being the best option; the IIR RO wins at mid-low frequencies.
TEST(PaperClaims, IirBeatsFreeRoUnderMismatch) {
  const auto p = test_params();
  const std::vector<double> mu{-0.2, -0.1, 0.0, 0.1, 0.2};
  const auto cell = fig9_mismatch_sweep(1.0, 50.0, mu, p);
  double iir_mean = 0.0;
  double free_mean = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    iir_mean += cell.iir[i];
    free_mean += cell.free_ro[i];
  }
  EXPECT_LT(iir_mean, free_mean);
}

// Fig. 9 top row (fast perturbation): TEAtime overtakes the IIR RO on most
// of the mu range.
TEST(PaperClaims, TeaTimeCompetitiveAtFastPerturbations) {
  const auto p = test_params();
  const std::vector<double> mu{-0.2, -0.1, 0.0, 0.1, 0.2};
  const auto cell = fig9_mismatch_sweep(1.0, 25.0, mu, p);
  int teatime_wins = 0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    if (cell.teatime[i] <= cell.iir[i] + 1e-9) ++teatime_wins;
  }
  EXPECT_GE(teatime_wins, 3) << "TEAtime should win most of the mu range";
}

// Conclusion section: the free RO alone cannot correct heterogeneous
// variations — its margin must grow with |mu| while the IIR RO's does not.
TEST(PaperClaims, FreeRoMarginGrowsWithMismatch) {
  const auto p = test_params();
  const double c = p.setpoint_c;
  const double amplitude = p.amplitude_frac * c;
  const double fixed_period = fixed_clock_period(c, amplitude, 0.2 * c);
  const std::size_t cycles = cycles_for(p, 50.0);
  const auto no_mu =
      measure_system(SystemKind::kFreeRo, c, c, amplitude, 50.0 * c, 0.0,
                     fixed_period, cycles, 1000);
  const auto with_mu =
      measure_system(SystemKind::kFreeRo, c, c, amplitude, 50.0 * c, -0.2 * c,
                     fixed_period, cycles, 1000);
  EXPECT_GT(with_mu.safety_margin, no_mu.safety_margin + 0.5 * 0.2 * c);

  const auto iir_no_mu =
      measure_system(SystemKind::kIir, c, c, amplitude, 50.0 * c, 0.0,
                     fixed_period, cycles, 1000);
  const auto iir_mu =
      measure_system(SystemKind::kIir, c, c, amplitude, 50.0 * c, -0.2 * c,
                     fixed_period, cycles, 1000);
  EXPECT_LT(iir_mu.safety_margin - iir_no_mu.safety_margin, 3.0);
}

// Section IV worked examples: the measured margin reductions land in the
// paper's announced ballpark (60% for HoDV, 70% with HeDV).
TEST(PaperClaims, WorkedExampleMagnitudes) {
  const auto p = test_params();
  const double c = p.setpoint_c;
  const double amplitude = p.amplitude_frac * c;

  // IV-A: Te = 100c, t_clk = 1c, HoDV only.
  const double fixed_a = fixed_clock_period(c, amplitude);
  const auto m_a =
      measure_system(SystemKind::kIir, c, c, amplitude, 100.0 * c, 0.0,
                     fixed_a, cycles_for(p, 100.0), 1000);
  const auto ex_a = worked_example(m_a.relative_adaptive_period, fixed_a, c);
  EXPECT_GT(ex_a.margin_reduction, 0.4);
  EXPECT_LE(ex_a.margin_reduction, 1.0);

  // IV-B: with mu = +0.2c the loop recovers mismatch margin as well.
  const double fixed_b = fixed_clock_period(c, amplitude, 0.2 * c);
  const auto m_b =
      measure_system(SystemKind::kIir, c, c, amplitude, 100.0 * c, 0.2 * c,
                     fixed_b, cycles_for(p, 100.0), 1000);
  const auto ex_b = worked_example(m_b.relative_adaptive_period, fixed_b, c);
  EXPECT_GT(ex_b.margin_reduction, ex_a.margin_reduction);
}

// Section III-A / eq. 8 demonstrated in closed loop: a controller without
// an integrator (D(1) != 0) parks on a permanent adaptation error, while
// any eq.-8-compliant controller (IIR, PI) drives it to zero.
TEST(PaperClaims, Equation8SeparatesControllersInClosedLoop) {
  auto run_with = [](std::unique_ptr<control::ControlBlock> ctrl) {
    core::LoopConfig cfg;
    cfg.setpoint_c = 64.0;
    cfg.cdn_delay_stages = 64.0;
    cfg.quantize_lro = false;
    cfg.tdc_quantization = sensor::Quantization::kNone;
    core::LoopSimulator sim{cfg, std::move(ctrl)};
    core::SimulationInputs inputs;
    inputs.mu = [](double) { return 4.0; };  // constant mismatch step
    const auto trace = sim.run(inputs, 3000);
    return std::fabs(trace.delta().back());
  };

  // P controller: H = kp -> D(1) = 1 != 0: permanent error ~ mu/(1+kp).
  const double p_error =
      run_with(std::make_unique<control::ProportionalControl>(0.5));
  EXPECT_GT(p_error, 1.0);

  // PI controller: integrator -> D(1) = 0: error annihilated.
  const double pi_error =
      run_with(std::make_unique<control::PiControl>(0.25, 0.05));
  EXPECT_LT(pi_error, 1e-3);

  // The paper's IIR: same property by construction (eq. 10).
  const double iir_error =
      run_with(std::make_unique<control::IirControlReference>());
  EXPECT_LT(iir_error, 1e-6);
}

}  // namespace
}  // namespace roclk::analysis
