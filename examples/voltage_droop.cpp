// voltage_droop — the paper's single-event HoDV (section II-A.2) end to
// end: an off-chip supply droop sweeps across the die while four clock
// generation systems ride it out.  Shows the t_clk < T_nu/2 boundary of
// eq. 3: a CDN slower than half the event duration erases the free RO's
// advantage.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "roclk/roclk.hpp"

namespace {

using namespace roclk;

struct DroopOutcome {
  double worst_error;  // most negative tau - c (stages)
  std::size_t violations;
};

DroopOutcome ride_droop(analysis::SystemKind kind, double tclk_stages,
                        double duration_stages) {
  const double c = 64.0;
  auto system = analysis::make_system(kind, c, tclk_stages);
  // 15% droop peaking mid-run.
  auto droop = std::make_shared<signal::TrianglePulseWaveform>(
      0.15 * c, 600.0 * c, duration_stages);
  const auto inputs = core::SimulationInputs::homogeneous(droop);
  const auto trace = system.run(inputs, 2000);
  const auto err = trace.timing_error(c);
  DroopOutcome out;
  out.worst_error = *std::min_element(err.begin(), err.end());
  out.violations = trace.violation_count();
  return out;
}

}  // namespace

int main() {
  using analysis::SystemKind;

  std::printf("voltage droop ride-through (single-event HoDV, eq. 3)\n");
  std::printf("droop: 15%% supply dip, triangular, duration T_nu\n\n");

  const double c = 64.0;
  for (double duration_over_c : {64.0, 16.0, 4.0}) {
    const double duration = duration_over_c * c;
    std::printf("--- droop duration T_nu = %.0fc ---\n", duration_over_c);
    std::printf("%-12s %14s %14s %12s\n", "system", "tclk=0.5c", "tclk=8c",
                "(worst tau-c)");
    for (auto kind :
         {SystemKind::kIir, SystemKind::kTeaTime, SystemKind::kFreeRo,
          SystemKind::kFixedClock}) {
      const auto small_domain = ride_droop(kind, 0.5 * c, duration);
      const auto big_domain = ride_droop(kind, 8.0 * c, duration);
      std::printf("%-12s %14.2f %14.2f\n", analysis::to_string(kind),
                  small_domain.worst_error, big_domain.worst_error);
    }
    // eq. 3 reference: mismatch the CDN induces for the free RO.
    const double nu0 = 0.15 * c;
    std::printf("eq. 3 worst mismatch: tclk=0.5c -> %.2f, tclk=8c -> %.2f "
                "(event alone: %.2f)\n\n",
                analysis::single_event_worst_mismatch(0.5 * c, duration, nu0),
                analysis::single_event_worst_mismatch(8.0 * c, duration, nu0),
                nu0);
  }

  std::printf(
      "Reading: for a long droop every adaptive clock absorbs it; once the\n"
      "CDN delay exceeds half the event duration (t_clk > T_nu/2) the\n"
      "adaptive clocks degrade to the fixed clock's exposure, exactly the\n"
      "eq. 3 saturation.\n");
  return 0;
}
