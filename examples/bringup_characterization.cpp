// bringup_characterization — the post-silicon view.
//
// A bring-up engineer gets a taped-out adaptive-clock chip (here: the
// gate-level simulator standing in for silicon) and only sees traces.  The
// example characterises it black-box: estimate the loop's effective
// transport delay by cross-correlation, measure its tone attenuation
// against eq. 5's prediction, then stress it with a train of supply droop
// events and check the error-detection budget.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "roclk/roclk.hpp"

int main() {
  using namespace roclk;

  const double c = 64.0;
  std::printf("black-box bring-up of an adaptive-clock 'chip'\n\n");

  // --- step 1: loop-delay identification on the free-running clock ------
  // (control loop held open, a known two-tone wiggle on the supply).
  auto open_loop =
      analysis::make_system(analysis::SystemKind::kFreeRo, c, 1.0 * c, 0.0,
                            cdn::DelayQuantization::kRound);
  const std::function<double(double)> wiggle = [c](double t) {
    return 4.0 * std::sin(kTwoPi * t / (17.3 * c)) +
           2.5 * std::sin(kTwoPi * t / (41.7 * c));
  };
  core::SimulationInputs id_inputs;
  id_inputs.e_ro = wiggle;
  id_inputs.e_tdc = wiggle;
  const auto id_trace = open_loop.run(id_inputs, 2000);

  std::vector<double> pert(2000);
  for (std::size_t n = 0; n < pert.size(); ++n) {
    pert[n] = wiggle(static_cast<double>(n) * c);
  }
  const auto err = id_trace.timing_error(c);
  const std::vector<double> err_w(err.begin() + 64, err.end());
  const std::vector<double> pert_w(pert.begin() + 64, pert.end());
  const auto delay = analysis::estimate_loop_delay(err_w, pert_w);
  if (delay.is_ok()) {
    std::printf("estimated loop transport delay: %td cycles "
                "(correlation %.3f) — expect t_clk/c + 2 = 3\n",
                delay.value().delay_cycles, delay.value().correlation);
  } else {
    std::printf("loop-delay estimation failed: %s\n",
                delay.status().to_string().c_str());
  }

  // --- step 2: closed-loop attenuation vs eq. 5 -------------------------
  std::printf("\nclosed-loop tone attenuation (IIR RO):\n");
  std::printf("%10s %12s %12s\n", "Te/c", "measured", "eq. 5");
  const auto [num, den] =
      control::iir_polynomials(control::paper_iir_config());
  for (double te : {30.0, 80.0, 300.0}) {
    const double measured = analysis::measured_error_gain(
        analysis::SystemKind::kIir, c, c, 1.0, te);
    const double predicted = analysis::analytic_error_gain(num, den, 1, te);
    std::printf("%10.0f %12.3f %12.3f\n", te, measured, predicted);
  }

  // --- step 3: droop-train stress on the gate-level chip ----------------
  std::printf("\ndroop-train stress on the gate-level model:\n");
  variation::DroopTrain train{0.12, 400.0 * c, 8.0 * c, 60.0 * c, 2026};
  core::GateLevelConfig chip_cfg;
  chip_cfg.jitter.white_sigma = 0.3;  // a realistically noisy RO
  // Run with ripple headroom above the pipeline's L = 64 (the set-point
  // governor of examples/setpoint_tuning.cpp finds this value online).
  chip_cfg.setpoint_c = 68.0;
  core::GateLevelSimulator chip{
      chip_cfg, std::make_unique<control::IirControlHardware>()};
  const auto stress = chip.run(train, 20000);
  const core::ThroughputConfig tp{c, 8.0};
  const auto report = core::evaluate_throughput(stress, tp, 1000);
  std::printf("  20000 cycles, %zu droop events' worth of exposure\n",
              stress.size() / 400);
  std::printf("  detected timing errors : %zu\n", report.errors);
  std::printf("  pipeline efficiency    : %.4f\n", report.efficiency);
  std::printf("  worst reading          : %.0f stages (L = %.0f)\n",
              min_of(stress.tau()), c);
  std::printf("  period trace           : %s\n",
              sparkline(stress.delivered_period(), 64).c_str());

  std::printf(
      "\nReading: the identification recovers the design's loop delay from "
      "traces alone, the\nmeasured attenuation overlays eq. 5, and with 4 "
      "stages of ripple headroom the\ngate-level chip rides a realistic "
      "droop train cleanly at ~94%% of ideal throughput.\n");
  return 0;
}
