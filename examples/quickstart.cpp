// quickstart — build a self-adaptive clock, perturb it, watch it adapt.
//
// Reproduces in miniature what the paper proposes: a ring oscillator whose
// length is steered by an integer IIR filter fed from the worst TDC
// reading, compared against a fixed clock, under a die-wide sinusoidal
// supply-ripple variation (harmonic HoDV).
#include <cstdio>

#include "roclk/roclk.hpp"

int main() {
  using namespace roclk;

  const double c = 64.0;        // set-point: desired TDC reading (stages)
  const double t_clk = c;       // CDN delay: one nominal period
  const double amplitude = 0.2 * c;  // HoDV amplitude (stages)
  const double period = 50.0 * c;    // HoDV period (stages)

  std::printf("roclk quickstart\n");
  std::printf("  set-point c = %.0f stages, CDN delay = %.0f stages\n", c,
              t_clk);
  std::printf("  harmonic HoDV: amplitude %.1f stages, period %.0f stages\n\n",
              amplitude, period);

  // The paper's three adaptive systems plus the fixed-clock baseline.
  auto inputs = core::SimulationInputs::harmonic(amplitude, period);
  const std::size_t cycles = 4000;
  const std::size_t skip = 1000;
  const double t_fixed = analysis::fixed_clock_period(c, amplitude);

  std::printf("%-12s %18s %14s %16s %12s\n", "system", "safety margin",
              "mean period", "rel. period", "violations");
  for (auto kind : analysis::kAllSystems) {
    auto system = analysis::make_system(kind, c, t_clk);
    auto trace = system.run(inputs, cycles);
    auto metrics = analysis::evaluate_run(trace, c, t_fixed, skip);
    std::printf("%-12s %15.2f st %11.2f st %15.3f %11zu\n",
                analysis::to_string(kind), metrics.safety_margin,
                metrics.mean_period, metrics.relative_adaptive_period,
                metrics.violations);
  }

  // Show the IIR loop chasing the perturbation, cycle by cycle.
  std::printf("\nIIR RO timing error tau - c, periods 500..600:\n");
  auto iir = analysis::make_system(analysis::SystemKind::kIir, c, t_clk);
  auto trace = iir.run(inputs, 601);
  auto err = trace.timing_error(c);
  std::vector<double> window(err.begin() + 500, err.begin() + 601);
  std::printf("  %s\n", sparkline(window, 64).c_str());
  std::printf("  worst negative error in window: %.2f stages\n",
              -*std::min_element(window.begin(), window.end()));

  std::printf(
      "\nA relative period below %.3f means the adaptive clock beat the\n"
      "fixed clock's worst-case margin (T_fixed = %.1f stages).\n",
      1.0, t_fixed);
  return 0;
}
