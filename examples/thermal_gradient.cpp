// thermal_gradient — heterogeneous variation on a real floorplan: a
// hotspot grows under one corner of the die where a critical path lives.
// A free-running RO parked elsewhere never notices (the paper's "point
// sensor" failure); a TDC array catches it, and the closed loop stretches
// the clock before the path fails.
#include <cstdio>
#include <memory>

#include "roclk/roclk.hpp"

int main() {
  using namespace roclk;

  const double c = 64.0;

  // Floorplan: 24 candidate critical paths, 3x3 TDC grid.
  auto floorplan = chip::Floorplan::random_paths(24, c, /*seed=*/2024);
  floorplan.add_sensor_grid(3);

  // Hotspot under the north-east corner, 18% peak slowdown, thermal time
  // constant of ~1500 nominal periods.
  auto env = std::make_shared<variation::CompositeVariation>();
  env->add(std::make_unique<variation::TemperatureHotspot>(
      0.18, variation::DiePoint{0.85, 0.85}, 0.18, 200.0 * c, 1500.0 * c));
  env->add(std::make_unique<variation::VrmRipple>(0.03, 40.0 * c));

  std::printf("thermal gradient on a 24-path floorplan, 3x3 TDC grid\n\n");

  // Where is the worst path once the hotspot is up?
  const double t_hot = 5000.0 * c;
  const auto worst_idx = floorplan.worst_path_index(*env, t_hot);
  const auto& worst_path = floorplan.paths()[worst_idx];
  std::printf("hottest critical path: %s at (%.2f, %.2f), delay %.1f -> %.1f stages\n",
              worst_path.name.c_str(), worst_path.location.x,
              worst_path.location.y,
              worst_path.depth_stages,
              floorplan.path_delay(worst_path, *env, t_hot));
  std::printf("worst sensor blind spot (path vs nearest TDC): %.4f\n\n",
              floorplan.worst_sensor_blind_spot(*env, t_hot));

  // Drive the closed loop from the worst TDC reading on the grid; the RO
  // sits at die centre and senses only its own (cooler) environment.
  const auto inputs = core::SimulationInputs::from_variation_source(
      env, c, variation::DiePoint{0.5, 0.5}, 3);

  std::printf("%-12s %16s %14s %12s %16s\n", "system", "worst tau-c",
              "final period", "violations", "mean period");
  for (auto kind : analysis::kAllSystems) {
    auto system = analysis::make_system(kind, c, 1.0 * c);
    const auto trace = system.run(inputs, 8000);
    const auto err = trace.timing_error(c);
    double worst = 0.0;
    for (double e : err) worst = std::min(worst, e);
    std::printf("%-12s %16.2f %14.2f %12zu %16.2f\n",
                analysis::to_string(kind), worst,
                trace.delivered_period().back(),
                trace.violation_count(),
                trace.mean_delivered_period(2000));
  }

  std::printf(
      "\nReading: the fixed clock and the (centre-parked) free RO run "
      "straight into the\nhotspot-induced slowdown at the corner path; the "
      "TDC-fed closed loops stretch the\nperiod by ~the hotspot depth and "
      "keep tau pinned at the set-point.\n");
  return 0;
}
