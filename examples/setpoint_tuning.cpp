// setpoint_tuning — the paper's section V sketch made concrete: the
// pipeline detects and replays real timing errors (tau < logic depth L),
// and an outer governor moves the set-point c to maximise throughput.
//
// Static sweep first (where IS the optimum c?), then the governor finding
// it online while a thermal drift slowly moves the ground under it.
#include <cstdio>
#include <memory>

#include "roclk/roclk.hpp"

namespace {

using namespace roclk;

core::LoopSimulator make_loop(double setpoint) {
  core::LoopConfig cfg;
  cfg.setpoint_c = setpoint;
  cfg.cdn_delay_stages = 64.0;
  return core::LoopSimulator{
      cfg, std::make_unique<control::IirControlHardware>()};
}

}  // namespace

int main() {
  const double logic_depth = 64.0;  // L: stages of logic per pipeline stage
  const core::ThroughputConfig tp_cfg{logic_depth, /*replay=*/8.0};
  const auto inputs = core::SimulationInputs::harmonic(0.08 * 64.0,
                                                       40.0 * 64.0);

  std::printf("set-point tuning with error detection + replay\n");
  std::printf("logic depth L = %.0f stages, replay penalty = %.0f cycles, "
              "8%% HoDV at Te = 40c\n\n", logic_depth,
              tp_cfg.replay_penalty_cycles);

  // 1. Static sweep: run each fixed set-point, score throughput.
  std::printf("static sweep of c:\n");
  std::printf("%6s %10s %12s %12s\n", "c", "errors", "efficiency",
              "mean period");
  double best_eff = 0.0;
  double best_c = 0.0;
  for (double c = 62.0; c <= 78.0; c += 2.0) {
    auto sim = make_loop(c);
    const auto trace = sim.run(inputs, 6000);
    const auto report = core::evaluate_throughput(trace, tp_cfg, 1000);
    std::printf("%6.0f %10zu %12.4f %12.2f\n", c, report.errors,
                report.efficiency, trace.mean_delivered_period(1000));
    if (report.efficiency > best_eff) {
      best_eff = report.efficiency;
      best_c = c;
    }
  }
  std::printf("static optimum: c = %.0f (efficiency %.4f)\n\n", best_c,
              best_eff);

  // 2. Governor: start from a deliberately conservative set-point and let
  // the window policy close the gap online.
  control::GovernorConfig gov_cfg;
  gov_cfg.initial_setpoint = 76.0;
  gov_cfg.logic_depth = logic_depth;
  gov_cfg.window = 200;
  gov_cfg.headroom = 2.0;
  control::SetpointGovernor governor{gov_cfg};
  auto sim = make_loop(gov_cfg.initial_setpoint);
  const auto trace =
      core::run_with_governor(sim, governor, inputs, 20000);
  const auto report = core::evaluate_throughput(trace, tp_cfg, 2000);

  std::printf("governed run (starts at c = %.0f):\n", gov_cfg.initial_setpoint);
  std::printf("  final set-point      : %.1f\n", governor.setpoint());
  std::printf("  epochs / total errors: %zu / %llu\n", governor.epochs(),
              static_cast<unsigned long long>(governor.total_errors()));
  std::printf("  efficiency           : %.4f (static optimum %.4f)\n",
              report.efficiency, best_eff);
  std::printf("  tau trace            : %s\n",
              sparkline(trace.tau(), 64).c_str());

  // 3. Same governor surviving a slow thermal drift: the optimum moves,
  // the governor follows.
  auto drifting = std::make_shared<variation::CompositeVariation>();
  drifting->add(std::make_unique<variation::VrmRipple>(0.08, 40.0 * 64.0));
  drifting->add(std::make_unique<variation::TemperatureHotspot>(
      0.1, variation::DiePoint{0.5, 0.5}, 0.6, 400.0 * 64.0, 4000.0 * 64.0));
  const auto drift_inputs =
      core::SimulationInputs::from_variation_source(drifting, 64.0);

  control::SetpointGovernor governor2{gov_cfg};
  auto sim2 = make_loop(gov_cfg.initial_setpoint);
  const auto trace2 =
      core::run_with_governor(sim2, governor2, drift_inputs, 20000);
  const auto report2 = core::evaluate_throughput(trace2, tp_cfg, 2000);
  std::printf("\nunder a +10%% thermal drift the governor lands at c = %.1f "
              "(efficiency %.4f)\n",
              governor2.setpoint(), report2.efficiency);
  std::printf("  period trace         : %s\n",
              sparkline(trace2.delivered_period(), 64).c_str());
  // 4. The bring-up alternative: a one-shot binary-search calibration
  // (paper section III: "choose the correct set-point c ... once the chip
  // is produced") instead of continuous governing.
  control::CalibrationConfig cal_cfg;
  cal_cfg.logic_depth = logic_depth;
  cal_cfg.min_setpoint = 60.0;
  cal_cfg.max_setpoint = 90.0;
  cal_cfg.probe_cycles = 1500;
  cal_cfg.settle_cycles = 300;
  control::SetpointProbe probe = [&](double c, std::size_t settle,
                                     std::size_t cycles) -> std::size_t {
    auto probe_sim = make_loop(c);
    const auto t = probe_sim.run(inputs, settle + cycles);
    std::size_t errors = 0;
    for (std::size_t i = settle; i < t.size(); ++i) {
      if (t.tau()[i] < logic_depth) ++errors;
    }
    return errors;
  };
  const auto calibrated = control::calibrate_setpoint(probe, cal_cfg);
  if (calibrated.is_ok()) {
    std::printf(
        "\none-shot calibration: minimum safe c = %.2f, recommended c = "
        "%.2f\n  (%zu probes, %zu cycles of calibration time; governor "
        "found %.1f online)\n",
        calibrated.value().minimum_safe, calibrated.value().setpoint,
        calibrated.value().probes, calibrated.value().total_cycles,
        governor.setpoint());
  }

  std::printf(
      "\nReading: raising c buys safety, the replay penalty punishes "
      "optimism; the governor\nconverges to the knee and tracks it as "
      "conditions drift — no design-time margin at all.\nA one-shot "
      "calibration finds the same operating point at bring-up time.\n");
  return 0;
}
