// clock_domain_sizing — the paper's t_clk <-> clock-domain-size trade-off
// (section II-A): "This trade-off relates not only the maximum frequency of
// the dynamic variation with CDN delay but also the clock domain size".
//
// Uses the buffered-H-tree model to translate physical domain sizes into
// CDN delays, finds the largest domain that still tolerates a given supply
// ripple (t_clk < T_nu/6), and confirms the boundary by simulation.
#include <cstdio>

#include "roclk/roclk.hpp"

int main() {
  using namespace roclk;

  const double c = 64.0;
  std::printf("clock domain sizing against supply ripple\n\n");

  // Physical geometry -> CDN delay.
  std::printf("%12s %10s %16s\n", "domain (mm)", "levels", "t_clk (stages)");
  for (double size : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    chip::ClockDomainConfig cfg;
    cfg.size_mm = size;
    const chip::ClockDomainGeometry geom{cfg};
    std::printf("%12.1f %10zu %16.1f\n", size, geom.tree_levels(),
                geom.cdn_delay_stages());
  }

  // Ripple frequencies -> maximum safe domain size (t_clk < T_nu/6).
  std::printf("\n%16s %22s %18s\n", "ripple Te (c)", "max domain (mm)",
              "t_clk there");
  for (double te_over_c : {25.0, 50.0, 100.0, 400.0}) {
    const double max_mm =
        chip::ClockDomainGeometry::max_domain_size_mm(te_over_c * c);
    chip::ClockDomainConfig cfg;
    cfg.size_mm = max_mm;
    std::printf("%16.1f %22.2f %18.1f\n", te_over_c, max_mm,
                chip::ClockDomainGeometry{cfg}.cdn_delay_stages());
  }

  // Simulation check: a free RO inside vs outside the budget for Te = 50c.
  const double te = 50.0 * c;
  const double budget = te / 6.0;
  std::printf("\nsimulation check at Te = 50c (benefit budget t_clk < %.1f "
              "stages):\n", budget);
  for (double tclk : {0.5 * budget, 3.0 * budget}) {
    auto sim = analysis::make_system(analysis::SystemKind::kFreeRo, c, tclk);
    const auto trace =
        sim.run(core::SimulationInputs::harmonic(0.2 * c, te), 6000);
    const auto metrics = analysis::evaluate_run(
        trace, c, analysis::fixed_clock_period(c, 0.2 * c), 1500);
    std::printf("  t_clk = %6.1f stages: relative adaptive period %.3f %s\n",
                tclk, metrics.relative_adaptive_period,
                metrics.relative_adaptive_period < 1.0
                    ? "(beats fixed clock)"
                    : "(WORSE than fixed clock)");
  }

  std::printf(
      "\nReading: the faster the environment, the smaller the clock domain "
      "an adaptive RO\ncan serve — eq. 2's benefit boundary translated "
      "into millimetres via the H-tree model.\n");
  return 0;
}
