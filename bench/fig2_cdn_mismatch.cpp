// Experiment E1 — paper Fig. 2: CDN-delay-induced mismatch dnu/nu0 as a
// function of t_clk/T_nu for a harmonic and a single-event (triangular)
// HoDV.  Analytic curves (eqs. 2-3) cross-validated against (a) direct
// numerical evaluation of eq. 1 and (b) free-running-RO loop simulations.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/analytic.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/table.hpp"
#include "roclk/signal/waveform.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Fig. 2 — mismatch induced between the RO and a CP by the CDN delay",
      "x axis: t_clk/T_nu; y axis: dnu/nu0.  Harmonic (eq. 2) vs single "
      "triangular event (eq. 3).");

  TextTable table{{"tclk/Tnu", "harmonic (eq2)", "harmonic (numeric eq1)",
                   "single event (eq3)", "single event (numeric eq1)"}};

  const double period = 512.0;
  const double nu0 = 1.0;
  signal::SineWaveform harmonic{nu0, period};
  signal::TrianglePulseWaveform pulse{nu0, 4.0 * period, period};

  std::vector<double> xs;
  std::vector<double> y_harm;
  std::vector<double> y_single;
  for (int i = 0; i <= 160; ++i) {
    const double ratio = 4.0 * i / 160.0;
    const double t_clk = ratio * period;
    const double harm = analysis::harmonic_worst_mismatch(t_clk, period, nu0);
    const double single =
        analysis::single_event_worst_mismatch(t_clk, period, nu0);
    xs.push_back(ratio);
    y_harm.push_back(harm);
    y_single.push_back(single);
    if (i % 8 == 0) {
      // Numeric eq. 1 evaluation at the table's coarser grid.
      const double harm_num =
          analysis::numeric_worst_mismatch(harmonic, period, t_clk);
      double single_num = 0.0;
      for (int k = 0; k <= 12000; ++k) {
        const double t = 3.0 * period + k * period / 2000.0;
        single_num = std::max(
            single_num, std::fabs(analysis::cdn_mismatch(pulse, t, t_clk)));
      }
      table.add_row_values({ratio, harm, harm_num, single, single_num});
    }
  }

  table.print(std::cout);
  rb::save_table(table, "fig2_cdn_mismatch");

  PlotOptions opts;
  opts.title = "Fig. 2 reproduction: dnu/nu0 vs t_clk/T_nu";
  opts.x_label = "t_clk / T_nu";
  opts.y_label = "dnu / nu0";
  opts.height = 18;
  AsciiPlot plot{opts};
  plot.add_series("harmonic HoDV", xs, y_harm, '*');
  plot.add_series("single event HoDV", xs, y_single, 'o');
  std::printf("\n%s\n", plot.render().c_str());

  // Shape assertions straight from the paper's discussion of Fig. 2.
  rb::shape_check(
      analysis::harmonic_worst_mismatch(period, period, nu0) < 1e-9,
      "harmonic curve has zero-mismatch islands at integer t_clk/T_nu");
  rb::shape_check(
      analysis::harmonic_worst_mismatch(period / 2.0, period, nu0) > 1.99,
      "harmonic curve peaks at 2*nu0 at half-integer t_clk/T_nu");
  rb::shape_check(analysis::harmonic_ro_beneficial(period / 6.0 * 0.99,
                                                   period) &&
                      !analysis::harmonic_ro_beneficial(period / 6.0 * 1.01,
                                                        period),
                  "benefit boundary sits at t_clk = T_nu/6");
  rb::shape_check(
      analysis::single_event_worst_mismatch(0.49 * period, period, nu0) <
              nu0 &&
          analysis::single_event_worst_mismatch(0.51 * period, period, nu0) ==
              nu0,
      "single-event curve saturates at nu0 for t_clk > T_nu/2");

  // Loop-simulation cross-check: the free-running RO's *observed* timing
  // error under a harmonic HoDV matches eq. 2 evaluated at the loop's
  // effective delay (CDN plus the RO and TDC registers: (M+1) periods).
  rb::print_header("Cross-check", "free-RO simulation vs eq. 2");
  TextTable sim_table{{"tclk/c", "Te/c", "sim worst |tau-c|", "eq2 at (M+1)c"}};
  const double c = 64.0;
  const double amp = 0.2 * c;
  for (double tclk_over_c : {0.0, 1.0, 2.0, 4.0}) {
    for (double te_over_c : {25.0, 50.0}) {
      auto sim = analysis::make_system(analysis::SystemKind::kFreeRo, c,
                                       tclk_over_c * c);
      auto trace = sim.run(
          core::SimulationInputs::harmonic(amp, te_over_c * c), 6000);
      const auto err = trace.timing_error(c);
      double worst = 0.0;
      for (std::size_t i = 1000; i < err.size(); ++i) {
        worst = std::max(worst, std::fabs(err[i]));
      }
      const double m_eff = std::round(tclk_over_c) + 1.0;
      const double expected = analysis::harmonic_worst_mismatch(
          m_eff * c, te_over_c * c, amp);
      sim_table.add_row_values({tclk_over_c, te_over_c, worst, expected});
    }
  }
  sim_table.print(std::cout);
  rb::save_table(sim_table, "fig2_simulation_crosscheck");
  return 0;
}
