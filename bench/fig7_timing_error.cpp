// Experiment E2 — paper Fig. 7: timing error tau - c over period numbers
// 500..600 for the IIR RO, free RO, TEAtime RO and a fixed clock, under a
// harmonic HoDV of amplitude 0.2c with CDN delay t_clk = 1c, for
// perturbation periods Te = {25c, 37.5c, 50c}.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/ascii_plot.hpp"
#include "roclk/common/stats.hpp"
#include "roclk/common/table.hpp"

int main() {
  using namespace roclk;
  using analysis::SystemKind;
  namespace rb = roclk::bench;

  rb::print_header(
      "Fig. 7 — timing error tau - c for different clock generation systems",
      "c = 64, HoDV amplitude 0.2c, t_clk = 1c = one clock period.\n"
      "Top: Te = 25c; middle: Te = 37.5c; bottom: Te = 50c.");

  std::vector<double> worst_iir;  // per panel, for the shape checks
  std::vector<double> worst_fixed;

  for (double te_over_c : {25.0, 37.5, 50.0}) {
    const auto result = analysis::fig7_timing_error(te_over_c);
    std::printf("--- perturbation period Te = %.1fc ---\n", te_over_c);

    PlotOptions opts;
    opts.title = "tau - c, periods 500..600";
    opts.x_label = "period number";
    opts.height = 14;
    opts.y_lo = -14.0;
    opts.y_hi = 14.0;
    AsciiPlot plot{opts};
    static constexpr char kGlyphs[] = {'i', 't', 'f', 'x'};  // trace order

    TextTable table{{"system", "min(tau-c)", "max(tau-c)", "peak-to-peak",
                     "needed SM (stages)"}};
    std::vector<double> xs(result.traces[0].timing_error.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<double>(result.first_period + i);
    }
    for (std::size_t s = 0; s < result.traces.size(); ++s) {
      const auto& tr = result.traces[s];
      const double lo = min_of(tr.timing_error);
      const double hi = max_of(tr.timing_error);
      table.add_row({std::string{analysis::to_string(tr.system)},
                     format_double(lo, 2), format_double(hi, 2),
                     format_double(hi - lo, 2),
                     format_double(std::max(0.0, -lo), 2)});
      plot.add_series(analysis::to_string(tr.system), xs, tr.timing_error,
                      kGlyphs[s]);
      if (tr.system == SystemKind::kIir) worst_iir.push_back(-lo);
      if (tr.system == SystemKind::kFixedClock) worst_fixed.push_back(-lo);
    }
    table.print(std::cout);
    std::printf("\n%s\n", plot.render().c_str());

    // CSV with the full traces, one column per system.
    TextTable csv{{"period", "iir", "teatime", "free_ro", "fixed"}};
    for (std::size_t i = 0; i < xs.size(); ++i) {
      csv.add_row_values({xs[i], result.traces[0].timing_error[i],
                          result.traces[1].timing_error[i],
                          result.traces[2].timing_error[i],
                          result.traces[3].timing_error[i]});
    }
    std::string name = "fig7_te_" + std::to_string(te_over_c);
    std::replace(name.begin(), name.end(), '.', '_');
    rb::save_table(csv, name);
  }

  // Paper's reading of Fig. 7.
  rb::shape_check(worst_iir[0] <= worst_fixed[0] + 0.5,
                  "Te=25c: adaptive margin close to (slightly below) fixed");
  rb::shape_check(worst_iir[1] < worst_iir[0],
                  "Te=37.5c: appreciable adaptation error reduction vs 25c");
  rb::shape_check(worst_iir[2] < worst_iir[1] + 0.5 &&
                      worst_iir[2] < 0.4 * worst_fixed[2],
                  "Te=50c: adaptation error reduced to a minimum");
  return 0;
}
