// Ablation A4 — TEAtime design choices: sign(0) dithering policy, step
// size, and the Fig. 6 latency reading (accumulator-register vs extra
// pipeline register).
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/teatime.hpp"
#include "roclk/core/loop_simulator.hpp"

namespace {

roclk::analysis::RunMetrics run_variant(const roclk::control::TeaTimeConfig&
                                            cfg,
                                        double te_over_c) {
  using namespace roclk;
  core::LoopConfig loop_cfg;
  loop_cfg.setpoint_c = 64.0;
  loop_cfg.cdn_delay_stages = 64.0;
  core::LoopSimulator sim{loop_cfg,
                          std::make_unique<control::TeaTimeControl>(cfg)};
  const auto trace = sim.run(
      core::SimulationInputs::harmonic(12.8, te_over_c * 64.0), 8000);
  return analysis::evaluate_run(trace, 64.0, 76.8, 2000);
}

}  // namespace

int main() {
  using namespace roclk;
  using control::SignZeroPolicy;
  using control::TeaTimeConfig;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A4 — TEAtime policy, step size and latency",
      "HoDV amplitude 0.2c, t_clk = 1c; metrics over the steady state.");

  struct Variant {
    const char* label;
    TeaTimeConfig cfg;
  };
  const Variant variants[] = {
      {"step 1, hold, immediate (default)", {}},
      {"step 1, dither, immediate",
       {1.0, SignZeroPolicy::kDither, false}},
      {"step 1, hold, delayed sign", {1.0, SignZeroPolicy::kHold, true}},
      {"step 2, hold, immediate", {2.0, SignZeroPolicy::kHold, false}},
      {"step 4, hold, immediate", {4.0, SignZeroPolicy::kHold, false}},
  };

  for (double te_over_c : {25.0, 100.0}) {
    std::printf("--- Te = %.0fc ---\n", te_over_c);
    TextTable table{{"variant", "SM (stages)", "tau ripple",
                     "rel. period", "violations"}};
    for (const auto& v : variants) {
      const auto m = run_variant(v.cfg, te_over_c);
      table.add_row({v.label, format_double(m.safety_margin, 2),
                     format_double(m.tau_ripple, 2),
                     format_double(m.relative_adaptive_period, 3),
                     std::to_string(m.violations)});
    }
    table.print(std::cout);
    char name[64];
    std::snprintf(name, sizeof name, "ablation_teatime_te%03d",
                  static_cast<int>(te_over_c));
    rb::save_table(table, name);
  }

  // The step size trades slew rate against overshoot: steps up to the
  // perturbation's slew (~3.2 stages/cycle at Te = 25c) keep pace, while
  // oversized steps overshoot everywhere and always pay ripple.
  const auto step1_fast = run_variant({}, 25.0);
  const auto step2_fast =
      run_variant({2.0, SignZeroPolicy::kHold, false}, 25.0);
  const auto step4_fast =
      run_variant({4.0, SignZeroPolicy::kHold, false}, 25.0);
  const auto step1_slow = run_variant({}, 100.0);
  const auto step4_slow =
      run_variant({4.0, SignZeroPolicy::kHold, false}, 100.0);
  rb::shape_check(
      step2_fast.safety_margin <= step1_fast.safety_margin + 0.01,
      "a step matching the perturbation slew keeps pace at Te = 25c");
  rb::shape_check(step4_fast.safety_margin > step2_fast.safety_margin,
                  "an oversized step overshoots even at Te = 25c");
  rb::shape_check(step4_slow.tau_ripple > step1_slow.tau_ripple,
                  "larger steps cost ripple on slow perturbations");

  // The delayed-sign reading of Fig. 6 costs margin at every frequency —
  // the reason the default uses the accumulator-register reading.
  const auto delayed_fast =
      run_variant({1.0, SignZeroPolicy::kHold, true}, 25.0);
  rb::shape_check(step1_fast.safety_margin <= delayed_fast.safety_margin,
                  "immediate-sign TEAtime dominates the delayed reading");
  return 0;
}
