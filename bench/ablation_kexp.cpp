// Ablation A1 — the k_exp internal scaling of the integer IIR control
// block.  The paper: "kexp value is chosen to ensure that the minimum
// perturbation propagates through almost all the branches of the filter."
// We measure (a) open-loop rounding error of the shift-based datapath vs
// the exact recursion, and (b) closed-loop safety margin, for
// k_exp in {1, 2, 4, 8, 16}.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "roclk/analysis/metrics.hpp"
#include "roclk/control/iir_control.hpp"
#include "roclk/core/loop_simulator.hpp"

int main() {
  using namespace roclk;
  namespace rb = roclk::bench;

  rb::print_header(
      "Ablation A1 — integer scaling k_exp of the IIR control block",
      "Open-loop: mean |hardware - reference| over 200 cycles of a "
      "quantised sinusoidal error.\nClosed-loop: safety margin under the "
      "paper's HoDV (0.2c, Te = 50c, t_clk = 1c).");

  TextTable table{{"k_exp", "open-loop rounding error (stages)",
                   "closed-loop SM (stages)", "closed-loop tau ripple"}};

  const double c = 64.0;
  double err_k1 = 0.0;
  double err_k8 = 0.0;
  for (double k_exp : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    control::IirConfig cfg = control::paper_iir_config();
    cfg.k_exp = k_exp;

    // Open-loop rounding comparison.
    control::IirControlReference ref{cfg};
    control::IirControlHardware hw{cfg};
    ref.reset(c);
    hw.reset(c);
    double acc = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const double delta = std::round(
          6.0 * std::sin(2.0 * 3.14159265358979 * i / 40.0));
      acc += std::fabs(ref.step(delta) - hw.step(delta));
    }
    const double open_loop_err = acc / n;
    if (k_exp == 1.0) err_k1 = open_loop_err;
    if (k_exp == 8.0) err_k8 = open_loop_err;

    // Closed-loop margin with this k_exp.
    core::LoopConfig loop_cfg;
    loop_cfg.setpoint_c = c;
    loop_cfg.cdn_delay_stages = c;
    core::LoopSimulator sim{
        loop_cfg, std::make_unique<control::IirControlHardware>(cfg)};
    const auto trace =
        sim.run(core::SimulationInputs::harmonic(0.2 * c, 50.0 * c), 6000);
    const auto metrics = analysis::evaluate_run(
        trace, c, analysis::fixed_clock_period(c, 0.2 * c), 1500);

    table.add_row_values({k_exp, open_loop_err, metrics.safety_margin,
                          metrics.tau_ripple});
  }
  table.print(std::cout);
  rb::save_table(table, "ablation_kexp");

  rb::shape_check(err_k8 < err_k1,
                  "k_exp = 8 (paper) rounds less than an unscaled datapath");
  return 0;
}
