// Experiments E7/E8 — the worked examples closing paper sections IV-A and
// IV-B, with measured (not assumed) adaptation:
//   IV-A: c = 64 <-> 1 ns; 20% HoDV forces a fixed clock to 1.2 ns; the
//         adaptive clock's measured relative period converts to ns and a
//         safety-margin reduction (paper quotes 60% for a 10% c-reduction).
//   IV-B: + 20% HeDV mismatch forces the fixed clock to 1.4 ns; paper
//         quotes a 70% margin reduction for a 20% c-reduction.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "roclk/analysis/experiments.hpp"
#include "roclk/common/table.hpp"

int main() {
  using namespace roclk;
  using analysis::SystemKind;
  namespace rb = roclk::bench;

  analysis::ExperimentParams params;
  const double c = params.setpoint_c;
  const double amplitude = params.amplitude_frac * c;

  rb::print_header(
      "Worked example IV-A — HoDV only",
      "c = 64 stages <-> 1 ns.  T_fixed = 1.2 ns.  Te = 100c, t_clk = 1c.");
  {
    const double fixed = analysis::fixed_clock_period(c, amplitude);
    TextTable table{{"system", "rel. period", "adaptive period (ns)",
                     "margin saved (ns)", "SM reduction (%)"}};
    for (auto kind : analysis::kAdaptiveSystems) {
      const auto m = analysis::measure_system(
          kind, c, c, amplitude, 100.0 * c, 0.0, fixed,
          analysis::cycles_for(params, 100.0), 1500);
      const auto ex =
          analysis::worked_example(m.relative_adaptive_period, fixed, c);
      table.add_row({std::string{analysis::to_string(kind)},
                     format_double(m.relative_adaptive_period, 3),
                     format_double(ex.adaptive_period_ns, 3),
                     format_double(ex.margin_saved_ns, 3),
                     format_double(100.0 * ex.margin_reduction, 1)});
      if (kind == SystemKind::kIir) {
        rb::shape_check(ex.margin_reduction > 0.4,
                        "IV-A: IIR RO recovers a large fraction of the "
                        "0.2 ns margin (paper example: 60%)");
      }
    }
    table.print(std::cout);
    rb::save_table(table, "worked_example_iva");
  }

  rb::print_header(
      "Worked example IV-B — HoDV + HeDV mismatch",
      "T_fixed = 1.4 ns (c -> 90 in the paper's stage units).  Te = 100c,\n"
      "t_clk = 1c, mu = +0.2c (TDC region faster than the RO).");
  {
    const double fixed = analysis::fixed_clock_period(c, amplitude, 0.2 * c);
    TextTable table{{"system", "rel @ mu=-0.2c", "rel @ mu=0",
                     "rel @ mu=+0.2c", "mean rel.", "adaptive (ns)",
                     "SM reduction (%)"}};
    for (auto kind : analysis::kAdaptiveSystems) {
      // The mismatch a given chip draws is unknown at design time; average
      // the measured relative period across the mu range the fixed clock
      // must budget for.
      double rel_sum = 0.0;
      double rel_at[3] = {0.0, 0.0, 0.0};
      const double mus[3] = {-0.2 * c, 0.0, 0.2 * c};
      for (int i = 0; i < 3; ++i) {
        const auto m = analysis::measure_system(
            kind, c, c, amplitude, 100.0 * c, mus[i], fixed,
            analysis::cycles_for(params, 100.0), 1500);
        rel_at[i] = m.relative_adaptive_period;
        rel_sum += rel_at[i];
      }
      const double rel_mean = rel_sum / 3.0;
      const auto ex = analysis::worked_example(rel_mean, fixed, c);
      table.add_row({std::string{analysis::to_string(kind)},
                     format_double(rel_at[0], 3), format_double(rel_at[1], 3),
                     format_double(rel_at[2], 3), format_double(rel_mean, 3),
                     format_double(ex.adaptive_period_ns, 3),
                     format_double(100.0 * ex.margin_reduction, 1)});
      if (kind == SystemKind::kIir) {
        rb::shape_check(ex.margin_reduction > 0.55,
                        "IV-B: with mismatch margin included the closed "
                        "loop recovers even more (paper example: 70%)");
      }
    }
    table.print(std::cout);
    rb::save_table(table, "worked_example_ivb");
  }

  std::printf(
      "\nNote: the paper's 60%%/70%% figures are illustrative arithmetic "
      "('if the adaptive clock\nallows reducing c by 10%%/20%%'); the rows "
      "above substitute *measured* relative periods\ninto the same "
      "conversion.\n");
  return 0;
}
