// Shared helpers for the experiment benches.
//
// Every bench prints the paper artefact it regenerates (series tables and
// an ASCII rendition of the figure) and saves the raw rows as CSV under
// bench_results/ so external plotting can reproduce the exact figure.
#pragma once

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "roclk/common/table.hpp"

namespace roclk::bench {

/// Directory CSV artefacts are written to (created on demand).
inline std::string results_dir() {
  const std::filesystem::path dir{"bench_results"};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

/// Saves a table to bench_results/<name>.csv and reports where.
inline void save_table(const TextTable& table, const std::string& name) {
  const std::string path = results_dir() + "/" + name + ".csv";
  if (table.save_csv(path)) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

inline void print_header(const char* artefact, const char* description) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n%s\n", artefact, description);
  std::printf("================================================================================\n\n");
}

/// Prints a PASS/NOTE shape-assertion line (benches are not tests, but they
/// state whether the paper's qualitative claim held in this run).
inline void shape_check(bool ok, const char* claim) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK " : "SHAPE-DIFF", claim);
}

// ------------------------------------------------- perf-run recording

/// One before/after measurement of a perf runner.  `threads` is the thread
/// count the 'after' path actually used (not hardware_concurrency, which
/// the run record carries separately) and `simd_backend` the kernel
/// backend it dispatched to — both recorded per entry so a sweeps file
/// mixing scalar/SIMD and 1-thread/N-thread runs stays interpretable.
struct PerfEntry {
  std::string name;
  std::string unit;
  double before_items_per_sec{0.0};
  double after_items_per_sec{0.0};
  int threads{1};
  std::string simd_backend{"scalar"};
  /// Optional latency percentiles in microseconds (service soak entries).
  /// Emitted into the JSON record only when p99_us > 0.
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
  [[nodiscard]] double speedup() const {
    return before_items_per_sec > 0.0
               ? after_items_per_sec / before_items_per_sec
               : 0.0;
  }
};

/// Git revision the binary was configured from (set by CMake; "-dirty"
/// marks an uncommitted tree).
inline const char* git_sha() {
#ifdef ROCLK_GIT_SHA
  return ROCLK_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Current wall-clock time as ISO-8601 UTC.
inline std::string timestamp_utc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Appends one run record to a schema-2 perf log:
///   {"schema": 2,
///    "runs": [{"runner", "git_sha", "timestamp_utc", "hardware_threads",
///              "notes", "benchmarks": [...]}, ...]}
/// Every invocation appends a run instead of clobbering history, so the
/// committed file accumulates the perf trajectory across PRs.  A missing or
/// pre-schema-2 file is started fresh.  `runner` and `notes` must not
/// contain characters needing JSON escaping.
inline bool append_perf_run(const std::string& path,
                            const std::string& runner,
                            const std::string& notes,
                            const std::vector<PerfEntry>& entries) {
  std::ostringstream run;
  run << "    {\n"
      << "      \"runner\": \"" << runner << "\",\n"
      << "      \"git_sha\": \"" << git_sha() << "\",\n"
      << "      \"timestamp_utc\": \"" << timestamp_utc() << "\",\n"
      << "      \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "      \"notes\": \"" << notes << "\",\n"
      << "      \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PerfEntry& e = entries[i];
    char latency[160] = "";
    if (e.p99_us > 0.0) {
      std::snprintf(latency, sizeof latency,
                    ", \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f",
                    e.p50_us, e.p95_us, e.p99_us);
    }
    char line[640];
    std::snprintf(line, sizeof line,
                  "        {\"name\": \"%s\", \"unit\": \"%s\", "
                  "\"before_items_per_sec\": %.1f, "
                  "\"after_items_per_sec\": %.1f, \"speedup\": %.2f, "
                  "\"threads\": %d, \"simd_backend\": \"%s\"%s}%s\n",
                  e.name.c_str(), e.unit.c_str(), e.before_items_per_sec,
                  e.after_items_per_sec, e.speedup(), e.threads,
                  e.simd_backend.c_str(), latency,
                  i + 1 < entries.size() ? "," : "");
    run << line;
  }
  run << "      ]\n    }";

  std::string existing;
  {
    std::ifstream in{path, std::ios::binary};
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }

  // An existing schema-2 file ends with the close of "runs"; splice the new
  // run in front of it.  Anything else (absent, legacy schema) starts over.
  std::string out;
  const std::string closing = "\n  ]\n}";
  const std::size_t at = existing.rfind(closing);
  if (existing.rfind("{\n  \"schema\": 2", 0) == 0 &&
      at != std::string::npos) {
    out = existing.substr(0, at) + ",\n" + run.str() + "\n  ]\n}\n";
  } else {
    out = "{\n  \"schema\": 2,\n  \"runs\": [\n" + run.str() + "\n  ]\n}\n";
  }

  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  if (!f) return false;
  f << out;
  return static_cast<bool>(f);
}

}  // namespace roclk::bench
