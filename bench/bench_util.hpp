// Shared helpers for the experiment benches.
//
// Every bench prints the paper artefact it regenerates (series tables and
// an ASCII rendition of the figure) and saves the raw rows as CSV under
// bench_results/ so external plotting can reproduce the exact figure.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "roclk/common/table.hpp"

namespace roclk::bench {

/// Directory CSV artefacts are written to (created on demand).
inline std::string results_dir() {
  const std::filesystem::path dir{"bench_results"};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

/// Saves a table to bench_results/<name>.csv and reports where.
inline void save_table(const TextTable& table, const std::string& name) {
  const std::string path = results_dir() + "/" + name + ".csv";
  if (table.save_csv(path)) {
    std::printf("[csv] %s\n", path.c_str());
  } else {
    std::printf("[csv] FAILED to write %s\n", path.c_str());
  }
}

inline void print_header(const char* artefact, const char* description) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n%s\n", artefact, description);
  std::printf("================================================================================\n\n");
}

/// Prints a PASS/NOTE shape-assertion line (benches are not tests, but they
/// state whether the paper's qualitative claim held in this run).
inline void shape_check(bool ok, const char* claim) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK " : "SHAPE-DIFF", claim);
}

}  // namespace roclk::bench
